"""Workload-generation throughput benchmarks.

The paper's headline deliverable is the generators themselves ("
researchers can generate as many workloads as they wish").  These
benches time one workload generation per benchmark — the practical
cost of minting a fresh workload — and validate what comes out.
"""

import pytest

from repro.core.suite import benchmark_ids, get_generator
from repro.core.validation import validate_workload_set
from repro.core.workload import Workload


@pytest.mark.parametrize("bid", sorted(benchmark_ids()))
def test_generate_one_workload(benchmark, bid):
    import itertools

    gen = get_generator(bid)
    seed = itertools.count()

    def make():
        return gen.generate(1000 + next(seed))

    w = benchmark(make)
    assert isinstance(w, Workload)
    assert w.benchmark == bid


@pytest.mark.parametrize("bid", ["505.mcf_r", "557.xz_r", "548.exchange2_r"])
def test_generated_sets_validate(benchmark, bid):
    """Workload consistency, the paper's hard-won lesson for mcf."""
    gen = get_generator(bid)

    def build_and_validate():
        return validate_workload_set(gen.alberta_set(base_seed=77))

    report = benchmark.pedantic(build_and_validate, rounds=1, iterations=1, warmup_rounds=0)
    assert report.ok, report.summary()
