"""FDO evaluation benchmarks (Sections II and VII).

Not a table in the paper, but its motivating experiment: compare the
criticized single-train/single-ref methodology against cross-validated
evaluation over the Alberta workloads, and show that the single number
misrepresents the distribution.
"""

import pytest

from repro.fdo import cross_validate, single_workload_methodology

BENCHES = ("557.xz_r", "505.mcf_r", "523.xalancbmk_r")


@pytest.mark.parametrize("bid", BENCHES)
def test_single_workload_methodology(benchmark, bid):
    result = benchmark.pedantic(
        lambda: single_workload_methodology(bid), rounds=1, iterations=1, warmup_rounds=0
    )
    print(f"\n{bid}: train={result.train_workload} eval={result.eval_workload} "
          f"speedup={result.speedup:.4f}")
    assert 0.7 < result.speedup < 1.5


@pytest.mark.parametrize("bid", BENCHES)
def test_cross_validation(benchmark, bid):
    cv = benchmark.pedantic(
        lambda: cross_validate(bid, max_workloads=5),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    s = cv.summary()
    print(f"\n{bid}: n={s['n']} mean={s['mean']:.4f} "
          f"[{s['min']:.4f}, {s['max']:.4f}] regressions={s['n_regressions']}")
    assert s["n"] == 20
    # the distribution has real spread, which a single number hides
    assert s["max"] - s["min"] > 0.0


def test_single_number_within_cv_range_but_not_representative(benchmark):
    """The paper's methodological point, stated as an assertion: the
    single train->ref speedup is one draw from a distribution whose
    spread is comparable to the effect being measured."""
    single, cv = benchmark.pedantic(
        lambda: (
            single_workload_methodology("557.xz_r").speedup,
            cross_validate("557.xz_r", max_workloads=6),
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    s = cv.summary()
    spread = s["max"] - s["min"]
    effect = abs(s["mean"] - 1.0)
    print(f"\nsingle={single:.4f} cv_mean={s['mean']:.4f} spread={spread:.4f} "
          f"effect={effect:.4f}")
    assert spread > 0.25 * max(effect, 1e-9) or spread > 0.01


def test_combined_profile_is_robust(benchmark):
    """Berube's combined profiling: merged profiles avoid the worst
    mismatch regressions of single-workload training."""
    combined = benchmark.pedantic(
        lambda: cross_validate("557.xz_r", max_workloads=4, combined=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    loo = cross_validate("557.xz_r", max_workloads=4)
    print(f"\ncombined min={combined.summary()['min']:.4f} "
          f"loo min={loo.summary()['min']:.4f}")
    assert combined.summary()["min"] >= loo.summary()["min"] - 0.05
