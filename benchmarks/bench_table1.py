"""Regenerate Table I: the SPEC CPU 2006 -> 2017 INT evolution.

The table is static metadata (officially submitted times); the bench
measures the render path and checks the paper's headline numbers —
arithmetic mean times of 517 s (2017) and 405 s (2006).
"""

from repro.analysis.tables import render_table1, table1_rows
from repro.spec.history import evolution_summary


def test_table1_regenerates(benchmark):
    text = benchmark(render_table1)
    print()
    print(text)
    assert "505.mcf_r" in text

    rows = table1_rows()
    footer = rows[-1]
    assert footer["time2017"] == 517, "paper: 2017 arithmetic mean is 517 s"
    assert footer["time2006"] == 405, "paper: 2006 arithmetic mean is 405 s"


def test_section3_evolution_facts(benchmark):
    summary = benchmark(evolution_summary)
    # 2017 runs are longer on average than 2006 runs
    assert summary["mean_time_2017"] > summary["mean_time_2006"]
    # nine INT areas carried over; three dropped; one new
    assert summary["n_carried_over"] == 9
    assert summary["n_dropped_2006"] == 3
    assert summary["n_new_2017"] == 1
