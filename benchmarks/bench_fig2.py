"""Regenerate Figure 2: method coverage per workload.

The paper plots 531.deepsjeng_r (left, workload-stable coverage)
against 557.xz_r (right, coverage that shifts with the workload).  The
bench reproduces both panels and asserts that contrast via mu_g(M).
"""

from repro.analysis.figures import figure2_series, render_figure2


def test_figure2_deepsjeng(benchmark, characterized):
    char = benchmark.pedantic(
        lambda: characterized("531.deepsjeng_r"), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(render_figure2(char, top_n=5))
    series = figure2_series(char)
    assert len(series["workloads"]) == 12


def test_figure2_xz(benchmark, characterized):
    char = benchmark.pedantic(
        lambda: characterized("557.xz_r"), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(render_figure2(char, top_n=5))
    series = figure2_series(char)
    assert len(series["workloads"]) == 12


def test_figure2_contrast(benchmark, characterized):
    """deepsjeng's coverage is stable (paper mu_g(M)=1); xz's moves
    with the workload (paper mu_g(M)=23)."""
    deepsjeng, xz = benchmark.pedantic(
        lambda: (characterized("531.deepsjeng_r"), characterized("557.xz_r")),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert xz.mu_g_m > deepsjeng.mu_g_m
    assert deepsjeng.mu_g_m < 2.0
