"""Regenerate Table II: the paper's per-benchmark characterization.

One bench per benchmark runs its full Alberta workload set under the
machine model and produces the Table II row (workload count, top-down
mu_g/sigma_g per category, mu_g(V), mu_g(M), refrate time).  The final
bench assembles and prints the complete table and asserts the *shape*
findings the paper reports:

* workload counts match the published table exactly;
* leela has the highest bad-speculation fraction; exchange2 the
  highest retiring fraction and the most workload-stable profile;
* omnetpp and lbm are strongly back-end bound;
* lbm and cactuBSSN have tiny bad-speculation means whose variation
  inflates mu_g(V) (the paper's summarization caveat);
* xalancbmk has the largest method-coverage variation mu_g(M), and the
  kernel-style benchmarks (mcf, deepsjeng, leela) sit near 1.
"""

import os
import time

import pytest

from repro.analysis.paper_baseline import compare_to_paper
from repro.analysis.sensitivity import detect_caveats, rank_by_mu_g_m
from repro.analysis.tables import render_table2
from repro.core.characterize import characterize_suite
from repro.core.suite import benchmark_ids

TABLE2_COUNTS = {
    "502.gcc_r": 19,
    "505.mcf_r": 7,
    "507.cactuBSSN_r": 11,
    "510.parest_r": 8,
    "511.povray_r": 10,
    "519.lbm_r": 30,
    "520.omnetpp_r": 10,
    "521.wrf_r": 16,
    "523.xalancbmk_r": 8,
    "526.blender_r": 16,
    "531.deepsjeng_r": 12,
    "541.leela_r": 12,
    "544.nab_r": 11,
    "548.exchange2_r": 13,
    "557.xz_r": 12,
}


@pytest.mark.parametrize("bid", sorted(TABLE2_COUNTS))
def test_table2_row(benchmark, characterized, bid):
    char = benchmark.pedantic(
        lambda: characterized(bid), rounds=1, iterations=1, warmup_rounds=0
    )
    row = char.table2_row()
    print()
    print(
        f"{row['benchmark']:<17} #wl={row['n_workloads']:>2} "
        f"f={row['f_mu_g']:5.1f}/{row['f_sigma_g']:.1f} "
        f"b={row['b_mu_g']:5.1f}/{row['b_sigma_g']:.1f} "
        f"s={row['s_mu_g']:5.1f}/{row['s_sigma_g']:.1f} "
        f"r={row['r_mu_g']:5.1f}/{row['r_sigma_g']:.1f} "
        f"mu_gV={row['mu_g_v']:6.1f} mu_gM={row['mu_g_m']:6.1f}"
    )
    assert row["n_workloads"] == TABLE2_COUNTS[bid]
    assert row["refrate_seconds"] > 0


def test_table2_full_and_shape(benchmark, characterized):
    chars = benchmark.pedantic(
        lambda: [characterized(bid) for bid in sorted(benchmark_ids(table2_only=True))],
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(render_table2(chars))

    by_id = {c.benchmark_id: c for c in chars}

    # --- bad speculation: leela leads, lbm/cactuBSSN are tiny ----------
    s_rank = sorted(chars, key=lambda c: -c.topdown.mu_g("bad_speculation"))
    assert s_rank[0].benchmark_id in ("541.leela_r", "557.xz_r")
    assert by_id["541.leela_r"].topdown.mu_g("bad_speculation") > 0.15
    assert by_id["519.lbm_r"].topdown.mu_g("bad_speculation") < 0.01
    assert by_id["507.cactuBSSN_r"].topdown.mu_g("bad_speculation") < 0.01

    # --- retiring: exchange2 leads -------------------------------------
    r_rank = sorted(chars, key=lambda c: -c.topdown.mu_g("retiring"))
    assert r_rank[0].benchmark_id == "548.exchange2_r"

    # --- back-end: omnetpp among the most memory-bound -----------------
    b_rank = [c.benchmark_id for c in sorted(chars, key=lambda c: -c.topdown.mu_g("back_end"))]
    assert b_rank.index("520.omnetpp_r") < 3

    # --- the mu_g(V) caveat: lbm and cactuBSSN inflated -----------------
    v_rank = [c.benchmark_id for c in sorted(chars, key=lambda c: -c.mu_g_v)]
    assert set(v_rank[:2]) == {"519.lbm_r", "507.cactuBSSN_r"}
    caveats = detect_caveats(chars)
    flagged = {c.benchmark_id for c in caveats}
    assert {"519.lbm_r", "507.cactuBSSN_r"} <= flagged

    # --- mu_g(M): xalancbmk highest; kernels near 1 ---------------------
    m_rank = rank_by_mu_g_m(chars)
    assert m_rank[0][0] == "523.xalancbmk_r"
    for kernel in ("505.mcf_r", "531.deepsjeng_r", "541.leela_r"):
        assert by_id[kernel].mu_g_m < 2.5

    # --- stability: exchange2's sigma_g near 1 everywhere ---------------
    ex = by_id["548.exchange2_r"]
    for cat in ("front_end", "back_end", "bad_speculation", "retiring"):
        assert ex.topdown.sigma_g(cat) < 2.0

    # --- quantitative shape: rank correlations against the published
    # table, and every column leader matches the paper -------------------
    comparison = compare_to_paper(chars)
    print()
    for key, value in comparison.items():
        if key == "leaders":
            for col, who in value.items():
                print(f"  leader {col}: {who}")
        else:
            print(f"  {key}: {value:.3f}")
    assert comparison["spearman_f_mu"] > 0.6
    assert comparison["spearman_s_mu"] > 0.6
    assert comparison["spearman_b_mu"] > 0.4
    assert comparison["spearman_mu_g_v"] > 0.5
    for col, who in comparison["leaders"].items():
        paper_leader, our_leader = (part.split("=")[1] for part in who.split())
        assert paper_leader == our_leader, f"{col}: {who}"


def test_table2_engine_speedup(tmp_path):
    """Parallel + cached Table II vs. the serial loop.

    Measures the three regimes the engine exists for — serial cold,
    parallel cold (``workers=4``), and warm cache — over the full
    benchmark x workload matrix, asserts all three produce byte-identical
    ``table2_row()`` dicts, and prints the perf trajectory.  The speedup
    assertions only apply where the hardware can express them: the
    parallel bound needs >= 4 CPUs, the warm-cache bound always holds.
    """
    cache_dir = tmp_path / "cache"

    t0 = time.perf_counter()
    serial = characterize_suite(workers=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = characterize_suite(workers=4)
    t_parallel = time.perf_counter() - t0

    t0 = time.perf_counter()
    cold = characterize_suite(workers=4, cache=cache_dir)
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = characterize_suite(workers=4, cache=cache_dir)
    t_warm = time.perf_counter() - t0

    serial_rows = [c.table2_row() for c in serial]
    assert [c.table2_row() for c in parallel] == serial_rows
    assert [c.table2_row() for c in cold] == serial_rows
    assert [c.table2_row() for c in warm] == serial_rows

    print()
    print(f"serial cold        : {t_serial:8.2f}s")
    print(f"parallel-4 cold    : {t_parallel:8.2f}s  ({t_serial / t_parallel:.2f}x)")
    print(f"parallel-4 + cache : {t_cold:8.2f}s  (cold, writes cache)")
    print(f"warm cache         : {t_warm:8.2f}s  ({t_warm / t_serial:6.1%} of serial)")

    assert t_warm < 0.10 * t_serial, "warm-cache rerun should be <10% of cold serial"
    if (os.cpu_count() or 1) >= 4:
        assert t_serial / t_parallel >= 2.5, (
            f"expected >=2.5x parallel speedup on {os.cpu_count()} CPUs, "
            f"got {t_serial / t_parallel:.2f}x"
        )
    else:
        print(f"(only {os.cpu_count()} CPU(s): parallel speedup bound not applicable)")


def test_table2_fault_tolerance_overhead(tmp_path):
    """Retry/quarantine/trace machinery vs. the plain parallel path.

    On a healthy suite run the fault tolerance is pure bookkeeping: no
    retries fire, nothing is quarantined, and the trace journal is a
    sequential append.  This bench runs the full matrix both ways,
    asserts every resilience counter is zero and the rows are
    byte-identical, and prints the measured overhead (expected ~0; the
    bound is generous because both runs pay the pool-startup noise).
    """
    from repro.core.run import Run

    t0 = time.perf_counter()
    plain = characterize_suite(workers=4)
    t_plain = time.perf_counter() - t0

    trace_path = tmp_path / "suite.jsonl"
    t0 = time.perf_counter()
    result = Run(
        workers=4, retries=2, strict=False, timeout=300.0, trace=trace_path
    ).characterize_suite()
    t_guarded = time.perf_counter() - t0

    assert result.ok
    summary = result.summary
    assert summary.retries == 0
    assert summary.timeouts == 0
    assert summary.crashes == 0
    assert summary.quarantined == 0
    assert summary.failed == 0

    plain_rows = [c.table2_row() for c in plain]
    assert [c.table2_row() for c in result.characterizations] == plain_rows

    overhead = t_guarded / t_plain - 1.0
    print()
    print(f"parallel-4 plain            : {t_plain:8.2f}s")
    print(f"parallel-4 + retries/trace  : {t_guarded:8.2f}s  ({overhead:+.1%})")
    print(f"journal                     : {trace_path.stat().st_size} B, "
          f"{summary.cells} spans")
    assert t_guarded < 1.5 * t_plain, (
        f"fault-tolerance overhead too high: {overhead:+.1%}"
    )
