"""Phase-sampled replay accuracy/speedup benchmark.

Records the golden sampling numbers into ``BENCH_sampling.json``: for
each refrate stream, one exact replay and one phase-sampled replay
under the default :class:`~repro.machine.sampling.SamplingPlan`, with
the max absolute top-down-fraction error and the exact-to-replayed
event ratio.  The JSON is the baseline ``repro watchdog
--sampling-baseline`` diffs against (warn-only) and the per-benchmark
error report CI uploads as an artifact.

Set ``REPRO_BENCH_FULL=1`` to sweep every registered benchmark (the
committed baseline's configuration); the default smoke subset matches
the tier-1 golden tests.  ``REPRO_BENCH_JSON_SAMPLING`` overrides the
output path.
"""

import json
import os
import time

from repro.core.suite import alberta_workloads, get_benchmark, registry
from repro.core.topdown import CATEGORIES
from repro.machine.capture import capture_execution, replay_capture
from repro.machine.sampling import SamplingPlan

#: Same acceptance bounds the golden tests assert.
_MAX_ERROR = 0.02
_MIN_RATIO = 10.0

#: Smoke subset, aligned with tests/test_sampling.py's tier-1 trio.
_SAMPLING_SMOKE_IDS = ("505.mcf_r", "519.lbm_r", "557.xz_r")


def _refrate_workload(workloads):
    return next((w for w in workloads if w.name.endswith(".refrate")), workloads[0])


def test_sampling_accuracy_speedup():
    """Sampled vs exact replay on refrate streams -> BENCH_sampling.json.

    The speedup asserted is the deterministic *event* ratio (total
    events over replayed events) — wall-clock per replay is recorded
    for the report but not gated, since the sampled path's fixed
    clustering overhead dominates on the smallest streams.
    """
    full = bool(os.environ.get("REPRO_BENCH_FULL"))
    ids = sorted(registry()) if full else list(_SAMPLING_SMOKE_IDS)
    plan = SamplingPlan()

    cells = {}
    worst_err, worst_ratio = 0.0, float("inf")
    for bid in ids:
        workload = _refrate_workload(alberta_workloads(bid))
        capture = capture_execution(get_benchmark(bid), workload)

        t0 = time.perf_counter()
        exact = replay_capture(capture)
        wall_exact = time.perf_counter() - t0

        t0 = time.perf_counter()
        sampled = replay_capture(capture, sampling=plan)
        wall_sampled = time.perf_counter() - t0

        err = max(
            abs(getattr(sampled.report.topdown, c) - getattr(exact.report.topdown, c))
            for c in CATEGORIES
        )
        ratio = sampled.sampling.event_ratio
        worst_err = max(worst_err, err)
        worst_ratio = min(worst_ratio, ratio)
        cells[bid] = {
            "workload": workload.name,
            "n_events": capture.n_events,
            "events_replayed": sampled.sampling.events_replayed,
            "event_ratio": round(ratio, 2),
            "max_topdown_error": round(err, 6),
            "wall_exact_s": round(wall_exact, 6),
            "wall_sampled_s": round(wall_sampled, 6),
        }

    out = {
        "schema": 1,
        "mode": "full" if full else "smoke",
        "plan": plan.to_dict(),
        "benchmarks": cells,
    }
    path = os.environ.get("REPRO_BENCH_JSON_SAMPLING", "BENCH_sampling.json")
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(
        f"\nsampling: {len(cells)} benchmark(s), worst error "
        f"{worst_err:.4f}, min event ratio {worst_ratio:.1f}x -> {path}"
    )
    assert worst_err < _MAX_ERROR
    assert worst_ratio >= _MIN_RATIO
