"""Section VII study benchmarks.

These regenerate the paper's proposed follow-on experiments (the
"would-be-nices") and assert their expected outcomes.
"""

import numpy as np
import pytest

from repro.core import alberta_workloads
from repro.studies import (
    collect_features,
    hidden_learning_gap,
    kernel_representativeness,
    most_similar_pairs,
)


def test_kernel_representativeness_contrast(benchmark, characterized):
    """Single-reference kernels: safe for stable benchmarks, lossy for
    workload-sensitive ones — the paper's Section VII hypothesis."""

    def run():
        stable = kernel_representativeness(
            characterized("548.exchange2_r"), target_coverage=0.9
        )
        sensitive = kernel_representativeness(
            characterized("523.xalancbmk_r"), target_coverage=0.9
        )
        return stable, sensitive

    stable, sensitive = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(f"\nexchange2 worst kernel coverage: {stable.worst_coverage:.2f}")
    print(f"xalancbmk worst kernel coverage: {sensitive.worst_coverage:.2f}")
    assert stable.worst_coverage > sensitive.worst_coverage


def test_hidden_learning_gap(benchmark):
    """Tuning and evaluating on the same workloads overstates quality."""
    ws = alberta_workloads("557.xz_r")
    report = benchmark.pedantic(
        lambda: hidden_learning_gap(ws, n_tuning=4, candidates=(4, 16, 64)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print(f"\ntuned value={report.tuning.best_value} "
          f"gap={report.optimism_gap:+.4f} regret={report.regret:.4f}")
    assert report.regret >= -1e-9


def test_program_similarity(benchmark):
    """lbm and wrf (stencil FP) must be mutual near-neighbours."""
    ids = ("519.lbm_r", "521.wrf_r", "541.leela_r", "557.xz_r", "505.mcf_r")
    features = benchmark.pedantic(
        lambda: [collect_features(b) for b in ids],
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    pairs = most_similar_pairs(features, top=10)
    ranked = {(a, b): s for a, b, s in pairs}
    print("\n" + "\n".join(f"{a} ~ {b}: {s:.2f}" for a, b, s in pairs[:4]))
    assert ranked[("519.lbm_r", "521.wrf_r")] > ranked[("519.lbm_r", "541.leela_r")]
    vec = np.stack([f.vector for f in features])
    assert np.isfinite(vec).all()


def test_compiler_variation_study(benchmark):
    """The distributed study: branch/cache/time counters per workload
    under the baseline and FDO builds."""
    from repro.studies import compiler_variation, variation_table

    observations = benchmark.pedantic(
        lambda: compiler_variation("505.mcf_r", max_workloads=4),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(variation_table(observations))
    by_build: dict = {}
    for obs in observations:
        by_build.setdefault(obs.build, []).append(obs)
    assert len(by_build["baseline"]) == len(by_build["fdo-train"]) == 4
    # counters vary across workloads: the study's raison d'etre
    rates = {o.branch_misprediction_rate for o in by_build["baseline"]}
    assert len(rates) == 4
