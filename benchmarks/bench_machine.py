"""Machine-model ablation and replay-throughput benchmarks.

DESIGN.md calls out two modelling choices worth ablating:

* **branch predictor** — gshare vs bimodal: the bad-speculation
  fraction must respond to predictor quality;
* **memory latency / MLP** — the back-end-bound fraction must respond
  to the memory system, which is what separates omnetpp/lbm from
  exchange2 in Table II.

``test_replay_throughput`` additionally measures the vectorized replay
kernel against the frozen scalar reference on refrate event streams and
writes ``BENCH_machine.json`` (uploaded as a CI artifact).
"""

import json
import os
import time

import pytest

from repro.core.characterize import characterize
from repro.machine import MachineConfig


def test_predictor_ablation(benchmark):
    """A weaker predictor raises bad speculation on a branchy benchmark."""

    def run():
        gshare = characterize("557.xz_r", machine=MachineConfig(predictor="gshare"))
        bimodal = characterize("557.xz_r", machine=MachineConfig(predictor="bimodal"))
        return gshare, bimodal

    gshare, bimodal = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    s_g = gshare.topdown.mu_g("bad_speculation")
    s_b = bimodal.topdown.mu_g("bad_speculation")
    print(f"\nxz bad-speculation: gshare={s_g:.4f} bimodal={s_b:.4f}")
    assert s_b > s_g * 0.9  # bimodal is never meaningfully better


def test_memory_latency_ablation(benchmark):
    """Slower memory makes the pointer-chasing benchmark more back-end
    bound and the compute kernel barely budges."""

    def run():
        slow = MachineConfig(mem_latency=400.0)
        fast = MachineConfig(mem_latency=60.0)
        return (
            characterize("520.omnetpp_r", machine=slow),
            characterize("520.omnetpp_r", machine=fast),
            characterize("548.exchange2_r", machine=slow),
            characterize("548.exchange2_r", machine=fast),
        )

    om_slow, om_fast, ex_slow, ex_fast = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    om_delta = om_slow.topdown.mu_g("back_end") - om_fast.topdown.mu_g("back_end")
    ex_delta = ex_slow.topdown.mu_g("back_end") - ex_fast.topdown.mu_g("back_end")
    print(f"\nback-end delta (slow-fast mem): omnetpp={om_delta:.4f} exchange2={ex_delta:.4f}")
    assert om_delta > 0.02
    assert om_delta > 1.5 * abs(ex_delta)


@pytest.mark.parametrize("width", [2, 4, 8])
def test_pipeline_width_scaling(benchmark, width):
    """Wider issue lowers simulated time on a retiring-bound benchmark."""
    char = benchmark.pedantic(
        lambda: characterize("548.exchange2_r", machine=MachineConfig(width=width)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print(f"\nwidth={width} refrate={char.refrate_seconds:.6f}s")
    assert char.refrate_seconds > 0


def test_machine_preset_sweep(benchmark):
    """Characterize one benchmark across the named machine presets.

    Section I cites Breughe et al.'s question of how sensitive
    processor customization is to input data; sweeping presets shows
    the per-machine top-down mix while workload sensitivity (mu_g(V))
    stays a property of the benchmark."""
    from repro.machine import PRESETS

    def run():
        return {
            name: characterize("557.xz_r", machine=config)
            for name, config in PRESETS.items()
        }

    by_preset = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for name, char in by_preset.items():
        td = char.topdown
        print(
            f"  {name:<10} f={td.mu_g('front_end') * 100:5.1f} "
            f"b={td.mu_g('back_end') * 100:5.1f} "
            f"s={td.mu_g('bad_speculation') * 100:5.1f} "
            f"r={td.mu_g('retiring') * 100:5.1f} "
            f"mu_gV={char.mu_g_v:5.1f} refrate={char.refrate_seconds:.6f}s"
        )
    atom = by_preset["atom-like"]
    sandy = by_preset["i7-2600"]
    sky = by_preset["i7-6700k"]
    # the weaker predictor mispredicts more often (the bad-speculation
    # *fraction* can still be lower on the narrow core: its wrong-path
    # squash is cheaper and slow memory dominates the denominator)
    from repro.core import alberta_workloads, get_benchmark
    from repro.machine import ATOM_LIKE, I7_2600, Profiler

    # use deepsjeng: its branch streams are history-correlated, so the
    # history-less bimodal predictor clearly loses (on xz's near-random
    # literal bits the two predictors are statistically tied)
    ref = alberta_workloads("531.deepsjeng_r")["deepsjeng.refrate"]
    bench = get_benchmark("531.deepsjeng_r")
    rate_atom = Profiler(ATOM_LIKE).run(bench, ref).report.branch_misprediction_rate
    rate_sandy = Profiler(I7_2600).run(bench, ref).report.branch_misprediction_rate
    print(f"  deepsjeng mispredict rate: atom {rate_atom:.3f} vs i7 {rate_sandy:.3f}")
    assert rate_atom > rate_sandy
    # the newer machine is faster on the same work
    assert sky.refrate_seconds < sandy.refrate_seconds < atom.refrate_seconds


# Representative smoke subset for CI: two memory-heavy FP streams, two
# branchy INT streams, one pointer chaser, one SIMD-ish media stream.
_REPLAY_SMOKE_IDS = (
    "505.mcf_r",
    "519.lbm_r",
    "520.omnetpp_r",
    "525.x264_r",
    "531.deepsjeng_r",
    "557.xz_r",
)
_REPLAY_ROUNDS = 5


def _refrate_workload(workloads):
    return next((w for w in workloads if w.name.endswith(".refrate")), workloads[0])


def test_replay_throughput():
    """Best-of-N vectorized replay vs the frozen scalar reference.

    Writes ``BENCH_machine.json`` with per-benchmark cell seconds and
    events/sec.  Replay timings come from the ``engine.profile.*``
    counters the cost model records around every ``_replay_stream``
    call, so the JSON measures exactly what ``repro --verbose`` reports.

    Set ``REPRO_BENCH_FULL=1`` to sweep every registered benchmark
    (the configuration the >=3x aggregate target is asserted on);
    ``REPRO_BENCH_JSON`` overrides the output path.
    """
    try:
        from tests import _legacy_machine as legacy
    except ImportError:  # running with the repo root off sys.path
        import _legacy_machine as legacy

    from repro.core.suite import alberta_workloads, get_benchmark, registry
    from repro.machine import telemetry
    from repro.machine.cost import CostModel, MachineConfig as Config
    from repro.machine.telemetry import Probe

    full = bool(os.environ.get("REPRO_BENCH_FULL"))
    ids = sorted(registry()) if full else list(_REPLAY_SMOKE_IDS)

    cells = {}
    total_events = total_new_ns = total_legacy_ns = 0
    for bid in ids:
        workload = _refrate_workload(alberta_workloads(bid))
        bench = get_benchmark(bid)

        t0 = time.perf_counter()
        probe = Probe()
        bench.run(workload, probe)
        gen_seconds = time.perf_counter() - t0

        model = CostModel(Config())
        legacy_probe = legacy.LegacyProbe()
        bench.run(workload, legacy_probe)
        # Interleave vectorized and legacy rounds so both best-of
        # samples see the same machine conditions — separate phases let
        # a frequency drift between them land straight in the ratio.
        best_ns = events = legacy_ns = None
        for _ in range(_REPLAY_ROUNDS):
            before = dict(telemetry.counters("engine.profile"))
            model.evaluate(probe)
            after = telemetry.counters("engine.profile")
            ns = after["engine.profile.replay_ns"] - before.get(
                "engine.profile.replay_ns", 0
            )
            events = after["engine.profile.replay_events"] - before.get(
                "engine.profile.replay_events", 0
            )
            best_ns = ns if best_ns is None else min(best_ns, ns)
            t0 = time.perf_counter_ns()
            legacy.legacy_evaluate(legacy_probe, Config())
            ns = time.perf_counter_ns() - t0
            legacy_ns = ns if legacy_ns is None else min(legacy_ns, ns)

        total_events += events
        total_new_ns += best_ns
        total_legacy_ns += legacy_ns
        cells[bid] = {
            "workload": workload.name,
            "events": events,
            "cell_seconds": round(gen_seconds + best_ns / 1e9, 6),
            "replay_seconds": round(best_ns / 1e9, 6),
            "legacy_replay_seconds": round(legacy_ns / 1e9, 6),
            "events_per_sec": round(events / (best_ns / 1e9), 1),
            "speedup": round(legacy_ns / best_ns, 2),
        }

    aggregate = {
        "events": total_events,
        "events_per_sec": round(total_events / (total_new_ns / 1e9), 1),
        "legacy_events_per_sec": round(total_events / (total_legacy_ns / 1e9), 1),
        "speedup": round(total_legacy_ns / total_new_ns, 2),
    }
    out = {
        "schema": 1,
        "mode": "full" if full else "smoke",
        "rounds": _REPLAY_ROUNDS,
        "aggregate": aggregate,
        "benchmarks": cells,
    }
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_machine.json")
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(
        f"\nreplay aggregate: {aggregate['events_per_sec'] / 1e6:.2f}M ev/s "
        f"vs legacy {aggregate['legacy_events_per_sec'] / 1e6:.2f}M ev/s "
        f"(x{aggregate['speedup']:.2f}) -> {path}"
    )
    # The >=3x acceptance target holds on the full refrate sweep; the
    # CI smoke subset deliberately includes the scalar-bound laggards,
    # so it gets a looser floor.
    assert aggregate["speedup"] >= (3.0 if full else 1.5)


_SWEEP_MACHINES = (
    None,
    MachineConfig(predictor="bimodal"),
    MachineConfig(mem_latency=400.0),
    MachineConfig(width=2),
)
_SWEEP_ROUNDS = 3


def test_sweep_capture_reuse():
    """Capture-once/replay-N machine sweep vs N fused characterizations.

    The staged pipeline's sweep guarantee in wall-clock form: sweeping
    one 502.gcc_r refrate workload over four machine configs must
    execute the benchmark exactly once (stage counters prove it) and
    beat four cache-off characterizations by >=2x.  Merges a ``sweep``
    key into ``BENCH_machine.json`` — run after ``test_replay_throughput``,
    which rewrites that file wholesale.
    """
    from repro.core.run import Session
    from repro.core.suite import alberta_workloads
    from repro.core.sweep import MachineGrid, SweepRequest

    bid = "502.gcc_r"
    workloads = [_refrate_workload(list(alberta_workloads(bid)))]
    machines = list(_SWEEP_MACHINES)
    request = SweepRequest(benchmark=bid, grid=MachineGrid.from_machines(machines))

    fused_best = None
    for _ in range(_SWEEP_ROUNDS):
        t0 = time.perf_counter()
        fused_chars = []
        for m in machines:
            with Session(machine=m, cache=None) as s:
                fused_chars.append(s.characterize(bid, workloads).characterizations[0])
        dt = time.perf_counter() - t0
        fused_best = dt if fused_best is None else min(fused_best, dt)

    sweep_best = summary = sweep_chars = None
    for _ in range(_SWEEP_ROUNDS):
        t0 = time.perf_counter()
        with Session(cache=None) as s:
            result = s.characterize_sweep(request, workloads=workloads)
        dt = time.perf_counter() - t0
        if sweep_best is None or dt < sweep_best:
            sweep_best, summary, sweep_chars = dt, s.summary, result.characterizations

    # the sweep's answers match the fused path's, bit for bit
    for fused, swept in zip(fused_chars, sweep_chars):
        assert fused.table2_row() == swept.table2_row()
    # stage counters: one execution, one replay per config
    assert summary.captures == 1
    assert summary.replays == len(machines)

    speedup = fused_best / sweep_best
    sweep_out = {
        "benchmark": bid,
        "workload": workloads[0].name,
        "machines": len(machines),
        "rounds": _SWEEP_ROUNDS,
        "fused_seconds": round(fused_best, 6),
        "sweep_seconds": round(sweep_best, 6),
        "captures": summary.captures,
        "replays": summary.replays,
        "speedup": round(speedup, 2),
    }
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_machine.json")
    try:
        with open(path) as fh:
            out = json.load(fh)
    except (OSError, ValueError):
        out = {"schema": 1}
    out["sweep"] = sweep_out
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(
        f"\nsweep: {len(machines)} configs in {sweep_best:.3f}s vs fused "
        f"{fused_best:.3f}s (x{speedup:.2f}), "
        f"{summary.captures} capture / {summary.replays} replays -> {path}"
    )
    assert speedup >= 2.0


def test_sweep_batched_throughput():
    """One-pass batched multi-config replay vs the per-config loop.

    Replays one 502.gcc_r refrate capture over the standard 8-config
    grid (:func:`repro.core.sweep.default_sweep_grid`) both ways,
    best-of-N, asserts bit-identical simulated seconds, and merges a
    ``sweep_batched`` key into ``BENCH_machine.json`` — the entry
    ``repro watchdog --sweep-baseline`` re-measures.  Run after
    ``test_replay_throughput``, which rewrites that file wholesale.

    The >=3x acceptance target is asserted under ``REPRO_BENCH_FULL=1``;
    the CI smoke run gets a looser floor to absorb shared-runner noise.
    """
    from repro.core.suite import alberta_workloads, get_benchmark
    from repro.core.sweep import default_sweep_grid
    from repro.machine.batch import replay_capture_batched
    from repro.machine.capture import capture_execution, replay_capture

    bid = "502.gcc_r"
    workload = _refrate_workload(list(alberta_workloads(bid)))
    grid = default_sweep_grid()
    machines = list(grid.machines)
    capture = capture_execution(get_benchmark(bid), workload)

    single_best = batched_best = None
    singles = batched = None
    for _ in range(_SWEEP_ROUNDS):
        t0 = time.perf_counter()
        singles = [replay_capture(capture, machine=m) for m in machines]
        dt = time.perf_counter() - t0
        single_best = dt if single_best is None else min(single_best, dt)

        t0 = time.perf_counter()
        batched = replay_capture_batched(capture, machines)
        dt = time.perf_counter() - t0
        batched_best = dt if batched_best is None else min(batched_best, dt)

    for one, many in zip(singles, batched):
        assert one.report.seconds == many.report.seconds
        assert one.report.cycles == many.report.cycles

    full = bool(os.environ.get("REPRO_BENCH_FULL"))
    speedup = single_best / batched_best
    events = capture.n_events * len(machines)
    sweep_out = {
        "benchmark": bid,
        "workload": workload.name,
        "configs": len(machines),
        "rounds": _SWEEP_ROUNDS,
        "events": events,
        "per_config_seconds": round(single_best, 6),
        "batched_seconds": round(batched_best, 6),
        "per_config_events_per_sec": round(events / single_best, 1),
        "batched_events_per_sec": round(events / batched_best, 1),
        "speedup": round(speedup, 2),
    }
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_machine.json")
    try:
        with open(path) as fh:
            out = json.load(fh)
    except (OSError, ValueError):
        out = {"schema": 1}
    out["sweep_batched"] = sweep_out
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    print(
        f"\nbatched sweep: {len(machines)} configs in {batched_best:.3f}s vs "
        f"per-config {single_best:.3f}s (x{speedup:.2f}), "
        f"{events / batched_best / 1e6:.2f}M ev/s -> {path}"
    )
    assert speedup >= (3.0 if full else 1.5)
