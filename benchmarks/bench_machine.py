"""Machine-model ablation benchmarks.

DESIGN.md calls out two modelling choices worth ablating:

* **branch predictor** — gshare vs bimodal: the bad-speculation
  fraction must respond to predictor quality;
* **memory latency / MLP** — the back-end-bound fraction must respond
  to the memory system, which is what separates omnetpp/lbm from
  exchange2 in Table II.
"""

import pytest

from repro.core.characterize import characterize
from repro.machine import MachineConfig


def test_predictor_ablation(benchmark):
    """A weaker predictor raises bad speculation on a branchy benchmark."""

    def run():
        gshare = characterize("557.xz_r", machine=MachineConfig(predictor="gshare"))
        bimodal = characterize("557.xz_r", machine=MachineConfig(predictor="bimodal"))
        return gshare, bimodal

    gshare, bimodal = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    s_g = gshare.topdown.mu_g("bad_speculation")
    s_b = bimodal.topdown.mu_g("bad_speculation")
    print(f"\nxz bad-speculation: gshare={s_g:.4f} bimodal={s_b:.4f}")
    assert s_b > s_g * 0.9  # bimodal is never meaningfully better


def test_memory_latency_ablation(benchmark):
    """Slower memory makes the pointer-chasing benchmark more back-end
    bound and the compute kernel barely budges."""

    def run():
        slow = MachineConfig(mem_latency=400.0)
        fast = MachineConfig(mem_latency=60.0)
        return (
            characterize("520.omnetpp_r", machine=slow),
            characterize("520.omnetpp_r", machine=fast),
            characterize("548.exchange2_r", machine=slow),
            characterize("548.exchange2_r", machine=fast),
        )

    om_slow, om_fast, ex_slow, ex_fast = benchmark.pedantic(
        run, rounds=1, iterations=1, warmup_rounds=0
    )
    om_delta = om_slow.topdown.mu_g("back_end") - om_fast.topdown.mu_g("back_end")
    ex_delta = ex_slow.topdown.mu_g("back_end") - ex_fast.topdown.mu_g("back_end")
    print(f"\nback-end delta (slow-fast mem): omnetpp={om_delta:.4f} exchange2={ex_delta:.4f}")
    assert om_delta > 0.02
    assert om_delta > 1.5 * abs(ex_delta)


@pytest.mark.parametrize("width", [2, 4, 8])
def test_pipeline_width_scaling(benchmark, width):
    """Wider issue lowers simulated time on a retiring-bound benchmark."""
    char = benchmark.pedantic(
        lambda: characterize("548.exchange2_r", machine=MachineConfig(width=width)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print(f"\nwidth={width} refrate={char.refrate_seconds:.6f}s")
    assert char.refrate_seconds > 0


def test_machine_preset_sweep(benchmark):
    """Characterize one benchmark across the named machine presets.

    Section I cites Breughe et al.'s question of how sensitive
    processor customization is to input data; sweeping presets shows
    the per-machine top-down mix while workload sensitivity (mu_g(V))
    stays a property of the benchmark."""
    from repro.machine import PRESETS

    def run():
        return {
            name: characterize("557.xz_r", machine=config)
            for name, config in PRESETS.items()
        }

    by_preset = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for name, char in by_preset.items():
        td = char.topdown
        print(
            f"  {name:<10} f={td.mu_g('front_end') * 100:5.1f} "
            f"b={td.mu_g('back_end') * 100:5.1f} "
            f"s={td.mu_g('bad_speculation') * 100:5.1f} "
            f"r={td.mu_g('retiring') * 100:5.1f} "
            f"mu_gV={char.mu_g_v:5.1f} refrate={char.refrate_seconds:.6f}s"
        )
    atom = by_preset["atom-like"]
    sandy = by_preset["i7-2600"]
    sky = by_preset["i7-6700k"]
    # the weaker predictor mispredicts more often (the bad-speculation
    # *fraction* can still be lower on the narrow core: its wrong-path
    # squash is cheaper and slow memory dominates the denominator)
    from repro.core import alberta_workloads, get_benchmark
    from repro.machine import ATOM_LIKE, I7_2600, Profiler

    # use deepsjeng: its branch streams are history-correlated, so the
    # history-less bimodal predictor clearly loses (on xz's near-random
    # literal bits the two predictors are statistically tied)
    ref = alberta_workloads("531.deepsjeng_r")["deepsjeng.refrate"]
    bench = get_benchmark("531.deepsjeng_r")
    rate_atom = Profiler(ATOM_LIKE).run(bench, ref).report.branch_misprediction_rate
    rate_sandy = Profiler(I7_2600).run(bench, ref).report.branch_misprediction_rate
    print(f"  deepsjeng mispredict rate: atom {rate_atom:.3f} vs i7 {rate_sandy:.3f}")
    assert rate_atom > rate_sandy
    # the newer machine is faster on the same work
    assert sky.refrate_seconds < sandy.refrate_seconds < atom.refrate_seconds
