"""Shared fixtures for the table/figure regeneration benchmarks."""

from __future__ import annotations

import pytest

from repro.core.characterize import characterize

# characterizations are expensive; cache them across bench files
_CACHE: dict[str, object] = {}


@pytest.fixture(scope="session")
def characterized():
    """Characterize-on-demand with session-scoped caching."""

    def _get(benchmark_id: str, keep_profiles: bool = True):
        key = f"{benchmark_id}:{keep_profiles}"
        if key not in _CACHE:
            _CACHE[key] = characterize(benchmark_id, keep_profiles=keep_profiles)
        return _CACHE[key]

    return _get
