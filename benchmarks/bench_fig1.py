"""Regenerate Figure 1: top-down breakdown per workload.

The paper plots 523.xalancbmk_r (left) against 557.xz_r (right) to
show that changing the workload moves xalancbmk's pipeline behaviour
far more.  The bench reproduces both panels and asserts that contrast:
xalancbmk's mu_g(V) exceeds xz's.
"""

from repro.analysis.figures import figure1_series, render_figure1


def test_figure1_xalancbmk(benchmark, characterized):
    char = benchmark.pedantic(
        lambda: characterized("523.xalancbmk_r"), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(render_figure1(char))
    series = figure1_series(char)
    assert len(series["workloads"]) == 8


def test_figure1_xz(benchmark, characterized):
    char = benchmark.pedantic(
        lambda: characterized("557.xz_r"), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(render_figure1(char))
    series = figure1_series(char)
    assert len(series["workloads"]) == 12


def test_figure1_contrast(benchmark, characterized):
    """The figure's visual message: xalancbmk varies more than xz."""
    xalan, xz = benchmark.pedantic(
        lambda: (characterized("523.xalancbmk_r"), characterized("557.xz_r")),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert xalan.mu_g_v > xz.mu_g_v
