"""Resource-attribution overhead and fidelity benchmark.

Two promises from the profiling layer, asserted on the smoke trio and
recorded into ``BENCH_resources.json``:

* **Sampler overhead** — replaying with the opt-in stack sampler
  running at :data:`~repro.core.resources.DEFAULT_HZ` must cost less
  than 5% wall-clock over the unsampled replay (best-of comparison, so
  scheduler noise does not masquerade as overhead).
* **Attribution fidelity** — per-stage CPU totals (user+sys from
  ``getrusage`` deltas) must land within 10% of the stage spans'
  wall-clock on this CPU-bound pipeline; a bigger gap means the laps
  are attributing cost to the wrong stage windows.

``REPRO_BENCH_JSON_RESOURCES`` overrides the output path.
"""

import json
import os
import time

from repro.core.resources import DEFAULT_HZ, StackSampler
from repro.core.suite import alberta_workloads, get_benchmark
from repro.machine.capture import capture_execution, replay_capture

_MAX_OVERHEAD = 0.05
_MAX_ATTRIBUTION_GAP = 0.10
_ROUNDS = 5
_TRIALS = 3

#: Same smoke subset as bench_sampling / the tier-1 golden tests.
_SMOKE_IDS = ("505.mcf_r", "519.lbm_r", "557.xz_r")


def _refrate_workload(workloads):
    return next((w for w in workloads if w.name.endswith(".refrate")), workloads[0])


#: Minimum wall-clock per timing round; single replays finish in a few
#: ms, where scheduler noise would swamp a 5% overhead bound.
_MIN_ROUND_S = 0.2


def _round_s(capture, reps):
    t0 = time.perf_counter()
    for _ in range(reps):
        replay_capture(capture)
    return time.perf_counter() - t0


def _interleaved_best_s(capture, reps, rounds=_ROUNDS):
    """Best plain and sampled per-replay walls, rounds interleaved so a
    machine-load drift mid-benchmark hits both sides equally."""
    plain = sampled = float("inf")
    total_samples = 0
    for _ in range(rounds):
        plain = min(plain, _round_s(capture, reps))
        with StackSampler(hz=DEFAULT_HZ) as sampler:
            sampled = min(sampled, _round_s(capture, reps))
        total_samples += sampler.total_samples
    return plain / reps, sampled / reps, total_samples


def _calibrate_reps(capture):
    t0 = time.perf_counter()
    replay_capture(capture)
    once = max(time.perf_counter() - t0, 1e-6)
    return max(1, int(_MIN_ROUND_S / once))


def test_sampler_overhead_and_attribution():
    """Sampled-vs-plain replay walls + CPU/wall gap -> BENCH_resources.json."""
    captures = {}
    for bid in _SMOKE_IDS:
        workload = _refrate_workload(alberta_workloads(bid))
        capture = capture_execution(get_benchmark(bid), workload)
        replay_capture(capture)  # warm caches/JIT paths out of the measurement
        captures[bid] = (workload, capture, _calibrate_reps(capture))

    # Contention can only inflate a wall-clock overhead measurement, so
    # the minimum across trials converges on the sampler's true cost;
    # the bound is on the trio aggregate, not its noisiest member.
    overhead = float("inf")
    cells = {}
    for _ in range(_TRIALS):
        plain_total = sampled_total = 0.0
        trial_cells = {}
        for bid, (workload, capture, reps) in captures.items():
            plain, sampled, samples = _interleaved_best_s(capture, reps)
            plain_total += plain
            sampled_total += sampled
            trial_cells[bid] = {
                "workload": workload.name,
                "wall_plain_s": round(plain, 6),
                "wall_sampled_s": round(sampled, 6),
                "overhead": round(max(0.0, sampled / plain - 1.0), 4),
                "hz": DEFAULT_HZ,
                "samples": samples,
            }
        trial = max(0.0, sampled_total / plain_total - 1.0)
        if trial < overhead:
            overhead, cells = trial, trial_cells
        if overhead < _MAX_OVERHEAD / 2:
            break

    # Attribution fidelity: one staged run per trio member, comparing the
    # journal's stage wall-clock against the getrusage CPU attribution.
    from pathlib import Path
    from tempfile import TemporaryDirectory

    from repro.core.run import Session
    from repro.core.trace import trace_stages

    gaps = {}
    with TemporaryDirectory() as tmp:
        for bid in _SMOKE_IDS:
            trace = Path(tmp) / f"{bid}.jsonl"
            with Session(workers=1, trace=trace) as s:
                s.characterize(bid)
            stages = list(trace_stages(trace))
            wall = sum(st.duration_s for st in stages)
            cpu = sum(
                (st.resources or {}).get("cpu_user_s", 0.0)
                + (st.resources or {}).get("cpu_sys_s", 0.0)
                for st in stages
            )
            gaps[bid] = abs(cpu - wall) / wall if wall else 0.0
            cells[bid]["stage_wall_s"] = round(wall, 6)
            cells[bid]["stage_cpu_s"] = round(cpu, 6)
            cells[bid]["attribution_gap"] = round(gaps[bid], 4)

    out = {
        "schema": 1,
        "max_overhead_bound": _MAX_OVERHEAD,
        "max_attribution_gap_bound": _MAX_ATTRIBUTION_GAP,
        "trio_overhead": round(overhead, 4),
        "benchmarks": cells,
    }
    path = os.environ.get("REPRO_BENCH_JSON_RESOURCES", "BENCH_resources.json")
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")
    worst_gap = max(gaps.values())
    print(
        f"\nresources: {len(cells)} benchmark(s), trio sampler overhead "
        f"{overhead:.1%}, worst attribution gap {worst_gap:.1%} -> {path}"
    )
    assert overhead < _MAX_OVERHEAD
    assert worst_gap < _MAX_ATTRIBUTION_GAP
