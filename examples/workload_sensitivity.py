"""Workload-sensitivity study: which benchmarks change behaviour?

Reproduces the scientific story of the paper's Section V on a chosen
subset of benchmarks: characterize each over its Alberta workloads,
rank by mu_g(V) and mu_g(M), render the Figure 1/2 panels for the
extreme cases, and flag the small-mean summarization caveat.

Run:  python examples/workload_sensitivity.py [benchmark_id ...]
"""

import sys

from repro import characterize, render_figure1, render_figure2, sensitivity_report
from repro.analysis.tables import render_table2

DEFAULT_SUBSET = (
    "523.xalancbmk_r",  # high variation (Figure 1 left)
    "557.xz_r",         # moderate (Figure 1/2 right)
    "531.deepsjeng_r",  # stable coverage (Figure 2 left)
    "519.lbm_r",        # the mu_g(V) caveat case
    "548.exchange2_r",  # the most stable benchmark
)


def main(benchmark_ids: tuple[str, ...]) -> None:
    chars = []
    for bid in benchmark_ids:
        print(f"characterizing {bid} ...")
        chars.append(characterize(bid, keep_profiles=True))
    print()
    print(render_table2(chars))
    print()
    print(sensitivity_report(chars))
    print()

    by_id = {c.benchmark_id: c for c in chars}
    most = max(chars, key=lambda c: c.mu_g_v)
    least = min(chars, key=lambda c: c.mu_g_v)
    print(render_figure1(most))
    print()
    print(render_figure1(least))
    print()
    if "531.deepsjeng_r" in by_id:
        print(render_figure2(by_id["531.deepsjeng_r"], top_n=4))


if __name__ == "__main__":
    subset = tuple(sys.argv[1:]) or DEFAULT_SUBSET
    main(subset)
