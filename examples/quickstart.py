"""Quickstart: characterize one benchmark over its Alberta workloads.

Runs the 557.xz_r substrate over its twelve workloads (the Table II
count), prints the per-benchmark report the Alberta Workloads
distribute — execution times per workload, the Intel-top-down summary
with mu_g(V), and the method-coverage summary with mu_g(M).

Run:  python examples/quickstart.py
"""

from repro import benchmark_report, characterize


def main() -> None:
    print("Characterizing 557.xz_r over its Alberta workload set...\n")
    char = characterize("557.xz_r", keep_profiles=True)
    print(benchmark_report(char))

    print()
    print("Reading the summary numbers (Section V of the paper):")
    print(f"  mu_g(V) = {char.mu_g_v:.2f} — overall top-down variability across workloads")
    print(f"  mu_g(M) = {char.mu_g_m:.2f} — how much time shifts between methods")
    print()
    ref = char.refrate_seconds
    fastest = min(char.seconds_by_workload.values())
    slowest = max(char.seconds_by_workload.values())
    print(
        f"  simulated time: refrate {ref:.4f}s, range "
        f"[{fastest:.4f}s, {slowest:.4f}s] across workloads"
    )


if __name__ == "__main__":
    main()
