"""Workload generation tour: the paper's Section IV tooling in action.

Demonstrates the generator APIs the Alberta Workloads provide:

* the fully procedural mcf generator — city map, circadian bus
  timetable, consistent vehicle-scheduling MCF instance;
* the OneFile tool merging a multi-file mini-C project for gcc;
* scripted generation for deepsjeng (positions + ply depths) and
  leela (SGF synthesis + end-of-game culling);
* validation of a freshly minted workload set (every workload must
  execute and verify, the paper's hard-won consistency lesson).

Run:  python examples/generate_workloads.py
"""

from repro import run_benchmark, validate_workload_set
from repro.benchmarks.gcc import GccBenchmark
from repro.benchmarks.mcf import McfBenchmark
from repro.core.workload import Workload
from repro.workloads.base import make_rng
from repro.workloads.gcc_gen import PROJECTS, GccWorkloadGenerator, one_file
from repro.workloads.leela_gen import cull_sgf, synthesize_sgf
from repro.workloads.mcf_gen import McfWorkloadGenerator, build_city, build_timetable


def mcf_tour() -> None:
    print("=== 505.mcf_r: procedural city + circadian timetable ===")
    rng = make_rng(2024)
    city = build_city(rng, n_terminals=10, density=0.6, connectivity=0.4)
    trips = build_timetable(rng, city, n_routes=5)
    print(f"  city: {city.n_terminals} terminals, {len(city.roads)} roads")
    print(f"  timetable: {len(trips)} trips over 24h")
    by_hour = [0] * 24
    for t in trips:
        by_hour[t.start_time // 60 % 24] += 1
    print("  trips/hour:", " ".join(f"{n:2d}" for n in by_hour))

    w = McfWorkloadGenerator().generate(2024, n_terminals=10, n_routes=5)
    profile = run_benchmark(McfBenchmark(), w)
    print(f"  solved: cost={profile.output.cost} "
          f"pivots={profile.output.pivots} feasible={profile.output.feasible}\n")


def gcc_tour() -> None:
    print("=== 502.gcc_r: the OneFile tool ===")
    merged = one_file(PROJECTS["johnripper"])
    mangled = [line for line in merged.splitlines() if "__hash" in line]
    print(f"  merged {len(PROJECTS['johnripper'])} files, "
          f"{len(merged.splitlines())} lines")
    print(f"  name-mangled definitions: {len(mangled)} lines mention *__hash")
    w = GccWorkloadGenerator().from_project("johnripper")
    profile = run_benchmark(GccBenchmark(), w)
    out = profile.output
    print(f"  compiled: {out['n_functions']} functions, "
          f"{out['n_instructions']} instructions, "
          f"result {out['result']} == reference {out['reference']}\n")


def leela_tour() -> None:
    print("=== 541.leela_r: SGF synthesis and culling ===")
    sgf = synthesize_sgf(7, size=9, n_moves=24)
    culled = cull_sgf(sgf, 6)
    print(f"  game: {sgf[:60]}...")
    print(f"  culled 6 moves: {len(sgf) - len(culled)} characters removed\n")


def validation_tour() -> None:
    print("=== workload-set validation ===")
    ws = McfWorkloadGenerator().alberta_set(base_seed=99)
    report = validate_workload_set(ws)
    print(f"  {report.summary()}")
    manifest = ws.manifest()
    print(f"  manifest entries: {len(manifest)}; first: {manifest[0]['name']} "
          f"(kind={manifest[0]['kind']}, seed={manifest[0]['seed']})")


def main() -> None:
    mcf_tour()
    gcc_tour()
    leela_tour()
    validation_tour()


if __name__ == "__main__":
    main()
