"""Setup shim.

Mirrors the main repo's shim: environments without ``wheel`` can
install via ``pip install --no-use-pep517`` (classic ``setup.py``
path).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
