"""Example out-of-tree plugin: a Collatz trajectory mini-benchmark.

Demonstrates the full plugin contract of
:mod:`repro.core.registry` without touching any core module:

* a benchmark substrate (``901.collatz_x``) registered with the same
  :func:`~repro.core.registry.register_benchmark` decorator the
  built-ins use;
* a matching workload generator whose ``alberta_set`` includes a
  ``collatz.refrate`` workload, so the staged
  capture -> replay -> summarize pipeline (Table II row, refrate
  seconds, coverage) runs end-to-end;
* a plugin machine preset (``demo-tiny``) resolvable by name in
  ``MachineGrid.from_presets`` / ``repro sweep --machines``;
* a plugin FDO build (``demo-boost``) resolvable by name in
  ``repro.fdo.evaluation.evaluate_pair(..., build="demo-boost")`` —
  its content digest joins replay cache keys and the run ledger's
  ``builds`` map.

Loaded either via the ``repro.plugins`` entry point declared in this
package's ``pyproject.toml`` (importing this module runs the
decorators) or in-process::

    from repro.core.registry import load_plugin
    load_plugin("repro_plugin_demo", name="demo")

The workload payload is a plain dict of ints, so the content-addressed
cache fingerprints it exactly like the built-in payloads and the
plugin's artifacts land under their own keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.cache import payload_digest
from repro.core.registry import (
    REGISTRY,
    register_benchmark,
    register_fdo_build,
    register_generator,
    register_machine_config,
)
from repro.core.workload import Workload, WorkloadKind, WorkloadSet
from repro.fdo.optimizer import FdoCostModel
from repro.fdo.profile_data import FdoProfile
from repro.machine.cost import MachineConfig
from repro.machine.telemetry import Probe
from repro.workloads.base import make_rng, workload

__all__ = ["CollatzBenchmark", "CollatzFdoBuild", "CollatzWorkloadGenerator"]

_MEMO_SLOTS = 4096


def _trajectory_length(n: int) -> int:
    """Reference Collatz step count, memo-free (used by verify)."""
    steps = 0
    while n != 1:
        n = 3 * n + 1 if n & 1 else n // 2
        steps += 1
    return steps


@register_benchmark(in_table2=False)
class CollatzBenchmark:
    """The ``901.collatz_x`` substrate: memoized trajectory lengths.

    The telemetry signature is deliberately branchy (the odd/even test
    is data-dependent and nearly 50/50) with scattered memo-table
    accesses — a small integer benchmark in the deepsjeng/leela mold.
    """

    name = "901.collatz_x"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> dict[str, Any]:
        seeds = workload.payload["seeds"]
        memo: dict[int, int] = {1: 0}
        lengths: list[int] = []
        with probe.method("trajectory", code_bytes=384):
            for n in seeds:
                m = n
                path: list[int] = []
                while m not in memo:
                    path.append(m)
                    odd = bool(m & 1)
                    probe.branch(odd, site=1)
                    probe.ops(2)
                    m = 3 * m + 1 if odd else m // 2
                    probe.load((m % _MEMO_SLOTS) * 8)
                base = memo[m]
                for i, v in enumerate(reversed(path)):
                    memo[v] = base + i + 1
                    probe.store((v % _MEMO_SLOTS) * 8)
                lengths.append(memo[n])
        with probe.method("reduce", code_bytes=128):
            total = 0
            for length in lengths:
                probe.ops(1)
                total += length
            probe.count("trajectories", len(lengths))
        return {"lengths": lengths, "total": total, "max": max(lengths)}

    def verify(self, workload: Workload, output: dict[str, Any]) -> bool:
        seeds = workload.payload["seeds"]
        lengths = output["lengths"]
        if len(lengths) != len(seeds):
            return False
        # spot-check the first and last trajectories against the
        # memo-free reference, and the reduction against the list
        return (
            lengths[0] == _trajectory_length(seeds[0])
            and lengths[-1] == _trajectory_length(seeds[-1])
            and output["total"] == sum(lengths)
            and output["max"] == max(lengths)
        )


@register_generator
class CollatzWorkloadGenerator:
    """Fully procedural Collatz workloads (PROCEDURAL provenance)."""

    benchmark = "901.collatz_x"

    def generate(
        self,
        seed: int,
        *,
        count: int = 96,
        lo: int = 3,
        hi: int = 99_991,
        name: str | None = None,
    ) -> Workload:
        rng = make_rng(seed)
        seeds = [rng.randrange(lo, hi) for _ in range(count)]
        return workload(
            self.benchmark,
            name or f"collatz.s{seed}",
            {"seeds": seeds},
            kind=WorkloadKind.PROCEDURAL,
            seed=seed,
            count=count,
            lo=lo,
            hi=hi,
        )

    def alberta_set(self, base_seed: int = 0) -> WorkloadSet:
        ws = WorkloadSet(self.benchmark)
        ws.add(self.generate(base_seed, count=160, name="collatz.refrate"))
        ws.add(self.generate(base_seed + 1, count=48, name="collatz.train"))
        ws.add(self.generate(base_seed + 2, count=12, name="collatz.test"))
        for i in range(3):
            ws.add(
                self.generate(
                    base_seed + 10 + i,
                    count=64 + 32 * i,
                    name=f"collatz.alberta.{i + 1}",
                )
            )
        return ws


#: A plugin-provided machine preset, resolvable wherever registered
#: preset names are accepted (``MachineGrid.from_presets("demo-tiny")``,
#: ``repro sweep --machines demo-tiny``).
register_machine_config(
    "demo-tiny",
    MachineConfig(width=1, clock_ghz=1.0, predictor="bimodal", mlp=1.5),
)


@dataclass(frozen=True)
class CollatzFdoBuild:
    """A plugin-provided replay build transformation (``demo-boost``).

    Demonstrates the fourth descriptor kind: any object with a ``name``,
    a content ``digest()``, and a ``cost_model(machine)`` factory plugs
    into the replay stage — ``evaluate_pair(..., build="demo-boost")``
    resolves it by name exactly like the built-in ``"fdo"`` build.  The
    digest joins the replay cache key and the run ledger's ``builds``
    map, so profiles replayed under this build never collide with
    baseline or stock-FDO entries.
    """

    profile: FdoProfile
    name: str = "demo-boost"

    def digest(self) -> str:
        ident: dict[str, Any] = {"build": self.name, "profile": self.profile}
        descriptor = REGISTRY.find("fdo_build", self.name)
        token = descriptor.cache_token() if descriptor is not None else None
        if token is not None:
            ident["descriptor"] = token
        return payload_digest(ident)

    def cost_model(self, machine: MachineConfig | None = None) -> FdoCostModel:
        return FdoCostModel(self.profile, machine)


register_fdo_build("demo-boost", CollatzFdoBuild)


def register(registry: Any) -> None:
    """Optional explicit hook: the registry calls this after import.

    The decorators above have already registered everything by the time
    this runs, so the hook is a no-op — it exists to document the
    callable form of the contract (a plugin may do all its registration
    here instead of at import time).
    """
