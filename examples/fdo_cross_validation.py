"""FDO evaluation: the criticized protocol vs. cross-validation.

The paper's core methodological argument (Sections I, II, VII): FDO
results reported from a single train->ref experiment are one draw from
a distribution.  With the Alberta workloads the distribution itself
can be measured.  This example runs both protocols on a benchmark and
prints them side by side, plus Berube-style combined profiling and
workload clustering for profile-set reduction.

Run:  python examples/fdo_cross_validation.py [benchmark_id]
"""

import sys

from repro import Profiler, alberta_workloads, get_benchmark
from repro.fdo import cluster_workloads, cross_validate, single_workload_methodology


def main(benchmark_id: str) -> None:
    print(f"FDO evaluation study for {benchmark_id}\n")

    # 1. the literature's standard protocol
    single = single_workload_methodology(benchmark_id)
    print("Single-workload methodology (train on .train, measure on .refrate):")
    print(f"  reported speedup: {single.speedup:.4f}\n")

    # 2. cross-validation over the Alberta workloads
    cv = cross_validate(benchmark_id, max_workloads=6)
    s = cv.summary()
    print(f"Cross-validated over {s['n']} train/eval pairs:")
    print(f"  mean speedup : {s['mean']:.4f}")
    print(f"  range        : [{s['min']:.4f}, {s['max']:.4f}]")
    print(f"  std deviation: {s['stdev']:.4f}")
    print(f"  regressions  : {s['n_regressions']} pairs slower than baseline")
    verdict = "inside" if s["min"] <= single.speedup <= s["max"] else "OUTSIDE"
    print(f"  -> the single-number result ({single.speedup:.4f}) is {verdict} "
          "this range, and says nothing about its width\n")

    # 3. combined profiling (Berube)
    combined = cross_validate(benchmark_id, max_workloads=6, combined=True)
    cs = combined.summary()
    print("Combined profile from all six training workloads:")
    print(f"  mean {cs['mean']:.4f}, worst case {cs['min']:.4f} "
          f"(leave-one-out worst case: {s['min']:.4f})\n")

    # 4. workload clustering for profile-set reduction
    benchmark = get_benchmark(benchmark_id)
    profiler = Profiler()
    profiles = [profiler.run(benchmark, w) for w in list(alberta_workloads(benchmark_id))[:8]]
    clusters = cluster_workloads(profiles, k=3, seed=1)
    print("Workload clusters (representative <- members):")
    for rep, members in clusters.items():
        print(f"  {rep} <- {', '.join(members)}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "557.xz_r")
