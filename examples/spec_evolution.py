"""SPEC CPU 2006 -> 2017: regenerate the paper's Table I and Section III.

Run:  python examples/spec_evolution.py
"""

from repro import render_table1
from repro.spec.history import (
    FP_AREAS_DROPPED,
    FP_AREAS_NEW,
    carried_over,
    dropped_after_2006,
    evolution_summary,
    new_in_2017,
)


def main() -> None:
    print(render_table1())
    print()
    summary = evolution_summary()
    print("Section III highlights:")
    print(f"  mean official time grew from {summary['mean_time_2006']:.0f}s "
          f"to {summary['mean_time_2017']:.0f}s")
    print(f"  {len(carried_over())} INT application areas carried over")
    print(f"  dropped after 2006: "
          f"{', '.join(r.spec2006 for r in dropped_after_2006())}")
    print(f"  new in 2017: {', '.join(r.spec2017 for r in new_in_2017())}")
    print(f"  FP areas no longer represented: {', '.join(FP_AREAS_DROPPED)}")
    print(f"  FP areas introduced in 2017: {', '.join(FP_AREAS_NEW)}")


if __name__ == "__main__":
    main()
