"""The paper's Section VII research questions, answered with the library.

Three studies the Alberta Workloads were released to enable:

1. **Kernel representativeness** — do benchmark kernels condensed from
   a single reference workload represent the behaviour range across
   workloads?  (Answer below: for exchange2 yes, for xalancbmk no.)
2. **Hidden learning** — how optimistic is an evaluation that tunes
   and measures on the same workloads?
3. **Program similarity** — Phansalkar-style microarchitecture-
   independent similarity across the whole suite.

Run:  python examples/research_studies.py
"""

import numpy as np

from repro import alberta_workloads, characterize
from repro.studies import (
    collect_features,
    hidden_learning_gap,
    kernel_representativeness,
    most_similar_pairs,
    pca,
)


def kernel_study() -> None:
    print("=== 1. Kernel representativeness (SimPoint-style condensation) ===")
    for bid in ("548.exchange2_r", "523.xalancbmk_r"):
        char = characterize(bid, keep_profiles=True)
        rep = kernel_representativeness(char, target_coverage=0.9)
        print(f"  {bid}: kernel = {len(rep.kernel.methods)} methods from "
              f"{rep.kernel.reference_workload} "
              f"({rep.kernel.coverage_on_reference * 100:.0f}% of its time)")
        print(f"    coverage on other workloads: worst {rep.worst_coverage * 100:.0f}%"
              f" | top-down prediction error: worst {rep.worst_error:.3f}")
    print("  -> stable benchmarks condense safely; workload-sensitive ones lose\n"
          "     coverage exactly as Section VII anticipates\n")


def hidden_learning_study() -> None:
    print("=== 2. The hidden-learning problem ===")
    ws = alberta_workloads("557.xz_r")
    report = hidden_learning_gap(ws, n_tuning=4)
    print(f"  tuned xz match-finder effort on 4 workloads -> max_chain = "
          f"{report.tuning.best_value}")
    print(f"  objective on the tuning set   : {report.objective_on_tuning_set:.4f}")
    print(f"  objective on held-out workloads: {report.objective_on_holdout_set:.4f}")
    print(f"  optimism gap: {report.optimism_gap:+.4f} "
          f"(positive = the published number flatters the system)")
    print(f"  regret vs holdout-aware tuning: {report.regret:.4f} "
          f"(holdout would have chosen {report.holdout_best_value})\n")


def similarity_study() -> None:
    print("=== 3. Program similarity (Phansalkar-style) ===")
    ids = (
        "502.gcc_r", "505.mcf_r", "519.lbm_r", "520.omnetpp_r", "521.wrf_r",
        "523.xalancbmk_r", "541.leela_r", "548.exchange2_r", "557.xz_r",
    )
    features = [collect_features(b) for b in ids]
    print("  most similar pairs:")
    for a, b, s in most_similar_pairs(features, top=4):
        print(f"    {a} ~ {b}  (similarity {s:.2f})")
    pts, explained = pca(np.stack([f.vector for f in features]), 2)
    print(f"  PCA: first two components explain "
          f"{explained.sum() * 100:.0f}% of variance")
    for f, (x, y) in zip(features, pts):
        print(f"    {f.benchmark:<18} ({x:+.2f}, {y:+.2f})")


def main() -> None:
    kernel_study()
    hidden_learning_study()
    similarity_study()


if __name__ == "__main__":
    main()
