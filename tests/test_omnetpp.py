"""Tests for the 520.omnetpp_r discrete-event simulator and topologies."""

import pytest

from repro.benchmarks.omnetpp import Network, OmnetInput, OmnetppBenchmark, simulate
from repro.machine import run_benchmark
from repro.workloads.omnetpp_gen import OmnetppWorkloadGenerator, topology_edges


class TestNetwork:
    def test_next_hop_line(self):
        edges = topology_edges("line", 4)
        net = Network(4, edges)
        assert net.next_hop[0][3] == 1
        assert net.next_hop[1][3] == 2
        assert net.next_hop[3][0] == 2

    def test_next_hop_star(self):
        edges = topology_edges("star", 5)
        net = Network(5, edges)
        # leaf to leaf always goes through the hub
        assert net.next_hop[1][2] == 0
        assert net.next_hop[0][4] == 4

    def test_disconnected_rejected(self):
        with pytest.raises(Exception):
            Network(4, ((0, 1),))


class TestTopologies:
    def test_line_edge_count(self):
        assert len(topology_edges("line", 10)) == 9

    def test_ring_edge_count(self):
        assert len(topology_edges("ring", 10)) == 10

    def test_star_edge_count(self):
        assert len(topology_edges("star", 10)) == 9

    def test_tree_is_binary(self):
        edges = topology_edges("tree", 15)
        children = {}
        for a, b in edges:
            parent = min(a, b) if (max(a, b) - 1) // 2 == min(a, b) else None
            assert parent is not None
            children.setdefault(parent, []).append(max(a, b))
        assert all(len(c) <= 2 for c in children.values())

    def test_random_respects_edge_count(self):
        edges = topology_edges("random", 10, n_edges=18, seed=4)
        assert len(edges) == 18

    def test_random_needs_enough_edges(self):
        with pytest.raises(ValueError):
            topology_edges("random", 10, n_edges=3)

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            topology_edges("mesh3d", 10)

    def test_paper_random_sizes(self):
        """The paper's three random topologies have 9, 18, 27 edges."""
        for n_nodes, n_edges in ((8, 9), (12, 18), (14, 27)):
            assert len(topology_edges("random", n_nodes, n_edges=n_edges, seed=1)) == n_edges


class TestSimulation:
    def _config(self, **kw):
        defaults = dict(
            n_nodes=6,
            edges=topology_edges("ring", 6),
            sim_time=500,
            send_interval_ms=20.0,
            packet_bytes=20_000,
            seed=3,
        )
        defaults.update(kw)
        return OmnetInput(**defaults)

    def test_packets_delivered(self):
        out = simulate(self._config())
        assert out["delivered"] > 0
        assert out["events"] > out["delivered"]

    def test_latency_positive(self):
        out = simulate(self._config())
        assert out["avg_latency_ms"] > 0
        assert out["avg_hops"] >= 1.0

    def test_longer_sim_more_events(self):
        short = simulate(self._config(sim_time=300))
        long = simulate(self._config(sim_time=1200))
        assert long["events"] > short["events"] * 2

    def test_determinism(self):
        a = simulate(self._config())
        b = simulate(self._config())
        assert a == b

    def test_line_has_more_hops_than_star(self):
        line = simulate(
            self._config(n_nodes=8, edges=topology_edges("line", 8), sim_time=1000)
        )
        star = simulate(
            self._config(n_nodes=8, edges=topology_edges("star", 8), sim_time=1000)
        )
        assert line["avg_hops"] > star["avg_hops"]

    def test_congestion_queues_packets(self):
        light = simulate(self._config(packet_bytes=1000))
        heavy = simulate(self._config(packet_bytes=100_000, send_interval_ms=10.0))
        assert heavy["queue_peak"] > light["queue_peak"]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            OmnetInput(n_nodes=1, edges=((0, 0),))
        with pytest.raises(ValueError):
            OmnetInput(n_nodes=4, edges=((0, 9),))
        with pytest.raises(ValueError):
            OmnetInput(n_nodes=4, edges=((0, 1),), sim_time=0)


class TestBenchmark:
    def test_run_and_verify(self):
        w = OmnetppWorkloadGenerator().generate(
            1, topology="ring", n_nodes=8, sim_time=600
        )
        prof = run_benchmark(OmnetppBenchmark(), w)
        assert prof.verified
        assert prof.output["delivered"] > 0

    def test_alberta_set_size(self):
        ws = OmnetppWorkloadGenerator().alberta_set()
        assert len(ws) == 10  # Table II count
        names = ws.names()
        # the paper's seven topologies
        for t in ("line", "ring", "star", "tree", "random9", "random18", "random27"):
            assert any(t in n for n in names)


class TestNedFormat:
    """The paper's workloads are .ned files; test the parser/renderer."""

    def test_roundtrip(self):
        from repro.benchmarks.omnetpp import parse_ned, to_ned

        config = OmnetInput(
            n_nodes=6,
            edges=topology_edges("ring", 6),
            sim_time=700,
            send_interval_ms=15.0,
            packet_bytes=2000,
            seed=9,
        )
        assert parse_ned(to_ned(config, "ring6")) == config

    def test_parse_rejects_garbage(self):
        from repro.benchmarks.omnetpp import parse_ned

        with pytest.raises(Exception):
            parse_ned("simple Module {}")
        with pytest.raises(Exception):
            parse_ned("network x { submodules: node[4]: Host; }")  # no edges

    def test_benchmark_accepts_ned_payload(self):
        gen = OmnetppWorkloadGenerator()
        w = gen.generate(2, topology="star", n_nodes=6, sim_time=400, as_ned=True)
        assert isinstance(w.payload, str)
        prof = run_benchmark(OmnetppBenchmark(), w)
        assert prof.verified
        assert prof.coverage.fraction("parseNed") > 0

    def test_ned_and_direct_payload_agree(self):
        from repro.benchmarks.omnetpp import parse_ned

        gen = OmnetppWorkloadGenerator()
        direct = gen.generate(4, topology="tree", n_nodes=7, sim_time=400)
        as_text = gen.generate(4, topology="tree", n_nodes=7, sim_time=400, as_ned=True)
        assert parse_ned(as_text.payload) == direct.payload
        a = simulate(direct.payload)
        b = simulate(parse_ned(as_text.payload))
        assert a == b
