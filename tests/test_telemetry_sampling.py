"""Sampling-accuracy tests for the telemetry event stream.

The probe keeps exact per-method counters but decimates the replayed
event stream once it crosses a cap.  The cost model extrapolates
*rates* from the sampled stream to the exact counts, so the sampled
rates must track the unsampled ones.
"""

import random

import numpy as np
import pytest

from repro.machine.cost import CostModel
from repro.machine.telemetry import Probe


def _fill(probe: Probe, n_events: int, seed: int = 5) -> None:
    rng = random.Random(seed)
    with probe.method("m"):
        probe.ops(n_events)
        probe.branches((rng.random() < 0.7 for _ in range(n_events)), site=1)
        probe.accesses([rng.randrange(1 << 21) for _ in range(n_events)])


class TestDecimation:
    def test_stream_stays_bounded(self):
        probe = Probe(event_cap=4096)
        _fill(probe, 100_000)
        assert len(probe.events) <= 4096
        assert probe.sampling_stride >= 16

    def test_exact_counters_survive_decimation(self):
        probe = Probe(event_cap=4096)
        _fill(probe, 50_000)
        mc = probe.methods()[0]
        assert mc.branches == 50_000
        assert mc.loads == 50_000

    def test_sampled_rates_track_full_rates(self):
        """Mispredict/bad-spec fractions from a heavily decimated stream
        must approximate the undecimated result."""
        full = Probe(event_cap=1 << 20)  # effectively no decimation
        _fill(full, 60_000)
        sampled = Probe(event_cap=4096)
        _fill(sampled, 60_000)

        rep_full = CostModel().evaluate(full)
        rep_sampled = CostModel().evaluate(sampled)

        assert rep_sampled.topdown.bad_speculation == pytest.approx(
            rep_full.topdown.bad_speculation, rel=0.35
        )
        assert rep_sampled.topdown.back_end == pytest.approx(
            rep_full.topdown.back_end, rel=0.35
        )
        # Absolute cycles are NOT preserved: decimation strips temporal
        # locality from the address stream and history correlation from
        # the branch stream, so miss/mispredict rates — and cycles —
        # are conservatively overestimated.  Only the category
        # *fractions* (what Table II reports) are stable.
        assert rep_sampled.cycles >= rep_full.cycles * 0.8

    def test_small_cap_rejected(self):
        with pytest.raises(ValueError):
            Probe(event_cap=64)

    def test_decimation_preserves_event_mix(self):
        """Uniform decimation keeps branch/data event proportions."""
        probe = Probe(event_cap=4096)
        _fill(probe, 80_000)
        kinds = [e[1] for e in probe.events]
        n_branch = sum(1 for k in kinds if k == 0)
        n_data = sum(1 for k in kinds if k == 1)
        # equal numbers were recorded; the sample must stay near 50/50
        assert abs(n_branch - n_data) < 0.2 * (n_branch + n_data)


def _scalar_reference(probe: Probe, branches, addrs) -> None:
    """Record the same events one at a time (the historical path)."""
    with probe.method("m"):
        for t in branches:
            probe.branch(bool(t), site=1)
        for a in addrs:
            probe.load(int(a))


def _streams_equal(a: Probe, b: Probe) -> bool:
    ca, cb = a.events.columns(), b.events.columns()
    return a.sampling_stride == b.sampling_stride and all(
        np.array_equal(x, y) for x, y in zip(ca, cb)
    )


class TestVectorDecimationEdges:
    """The vector append path must be event-for-event identical to the
    scalar one, including when the cap trips mid-call."""

    def test_cap_hit_mid_bulk_call(self):
        # one bulk call large enough to cross the cap several times
        rng = np.random.default_rng(0)
        outcomes = rng.random(9000) < 0.6
        addrs = rng.integers(0, 1 << 20, 9000)
        vec, ref = Probe(event_cap=1024), Probe(event_cap=1024)
        with vec.method("m"):
            vec.branches(outcomes, site=1)
            vec.accesses(addrs)
        _scalar_reference(ref, outcomes.tolist(), addrs.tolist())
        # second bulk: loads recorded after branches in the ref probe too
        assert vec.sampling_stride > 1
        assert _streams_equal(vec, ref)

    def test_stride_doubles_during_vector_append(self):
        probe = Probe(event_cap=1024)
        rng = np.random.default_rng(1)
        with probe.method("m"):
            assert probe.sampling_stride == 1
            probe.accesses(rng.integers(0, 1 << 16, 5000))
            stride_after_first = probe.sampling_stride
            assert stride_after_first >= 4  # doubled repeatedly mid-call
            probe.accesses(rng.integers(0, 1 << 16, 5000))
            assert probe.sampling_stride >= stride_after_first
        assert len(probe.events) < 1024

    def test_scalar_and_vector_paths_interleave_consistently(self):
        # alternate bulk and per-event recording; the composite stream
        # must match an all-scalar probe fed the same event sequence
        rng = np.random.default_rng(2)
        chunks = [rng.integers(0, 1 << 18, int(n)) for n in rng.integers(1, 700, 40)]
        mixed, ref = Probe(event_cap=2048), Probe(event_cap=2048)
        with mixed.method("m"), ref.method("m"):
            for i, chunk in enumerate(chunks):
                if i % 2:
                    mixed.accesses(chunk)
                else:
                    for a in chunk.tolist():
                        mixed.load(a)
                for a in chunk.tolist():
                    ref.load(a)
        assert _streams_equal(mixed, ref)

    def test_bulk_calls_match_scalar_without_decimation(self):
        rng = np.random.default_rng(3)
        outcomes = rng.random(500) < 0.5
        addrs = rng.integers(0, 1 << 20, 500)
        vec, ref = Probe(), Probe()
        with vec.method("m"):
            vec.branches(outcomes, site=1)
            vec.accesses(addrs)
        _scalar_reference(ref, outcomes.tolist(), addrs.tolist())
        assert vec.sampling_stride == 1
        assert _streams_equal(vec, ref)


class TestProbeApi:
    def test_events_view_is_read_only(self):
        probe = Probe()
        with probe.method("m"):
            probe.load(64)
        view = probe.events
        assert not hasattr(view, "append")
        with pytest.raises(AttributeError):
            view.append((0, 1, 128, 0))  # type: ignore[attr-defined]
        with pytest.raises(TypeError):
            view[0] = (0, 1, 128, 0)  # type: ignore[index]

    def test_columns_are_snapshots(self):
        probe = Probe()
        with probe.method("m"):
            probe.load(64)
            _, _, a, _ = probe.events.columns()
            probe.load(128)  # must not raise BufferError, must not alias
        assert a.tolist()[-1] == 64
        assert probe.events[-1][2] == 128

    def test_replace_events_is_the_mutation_path(self):
        probe = Probe()
        with probe.method("m"):
            probe.load(64)
            probe.load(128)
        kept = [e for e in probe.events if e[2] == 64]
        probe.replace_events(kept)
        assert list(probe.events) == kept

    def test_method_by_index(self):
        probe = Probe()
        names = [f"m{i}" for i in range(50)]
        for name in names:
            probe.register(name)
        for i, name in enumerate(names):
            assert probe.method_by_index(i) is probe.methods()[i]
            assert probe.method_by_index(i).name == name
        with pytest.raises(KeyError):
            probe.method_by_index(len(names))


class TestAttribution:
    def test_costs_attributed_to_emitting_method(self):
        rng = random.Random(2)
        probe = Probe()
        with probe.method("mem_hog"):
            probe.ops(100)
            probe.accesses([rng.randrange(1 << 24) for _ in range(20_000)])
        with probe.method("branch_hog"):
            probe.ops(100)
            probe.branches((rng.random() < 0.5 for _ in range(20_000)), site=2)
        rep = CostModel().evaluate(probe)
        mem = rep.per_method["mem_hog"]
        br = rep.per_method["branch_hog"]
        assert mem.backend_cycles > 10 * br.backend_cycles
        assert br.bad_spec_cycles > 10 * mem.bad_spec_cycles

    def test_calls_attributed_to_callee(self):
        probe = Probe()
        for _ in range(400):
            with probe.method("big", code_bytes=8192):
                probe.ops(10)
            with probe.method("tiny", code_bytes=64):
                probe.ops(10)
        rep = CostModel().evaluate(probe)
        assert (
            rep.per_method["big"].frontend_cycles
            > rep.per_method["tiny"].frontend_cycles
        )
