"""Sampling-accuracy tests for the telemetry event stream.

The probe keeps exact per-method counters but decimates the replayed
event stream once it crosses a cap.  The cost model extrapolates
*rates* from the sampled stream to the exact counts, so the sampled
rates must track the unsampled ones.
"""

import random

import pytest

from repro.machine.cost import CostModel
from repro.machine.telemetry import Probe


def _fill(probe: Probe, n_events: int, seed: int = 5) -> None:
    rng = random.Random(seed)
    with probe.method("m"):
        probe.ops(n_events)
        probe.branches((rng.random() < 0.7 for _ in range(n_events)), site=1)
        probe.accesses([rng.randrange(1 << 21) for _ in range(n_events)])


class TestDecimation:
    def test_stream_stays_bounded(self):
        probe = Probe(event_cap=4096)
        _fill(probe, 100_000)
        assert len(probe.events) <= 4096
        assert probe.sampling_stride >= 16

    def test_exact_counters_survive_decimation(self):
        probe = Probe(event_cap=4096)
        _fill(probe, 50_000)
        mc = probe.methods()[0]
        assert mc.branches == 50_000
        assert mc.loads == 50_000

    def test_sampled_rates_track_full_rates(self):
        """Mispredict/bad-spec fractions from a heavily decimated stream
        must approximate the undecimated result."""
        full = Probe(event_cap=1 << 20)  # effectively no decimation
        _fill(full, 60_000)
        sampled = Probe(event_cap=4096)
        _fill(sampled, 60_000)

        rep_full = CostModel().evaluate(full)
        rep_sampled = CostModel().evaluate(sampled)

        assert rep_sampled.topdown.bad_speculation == pytest.approx(
            rep_full.topdown.bad_speculation, rel=0.35
        )
        assert rep_sampled.topdown.back_end == pytest.approx(
            rep_full.topdown.back_end, rel=0.35
        )
        # Absolute cycles are NOT preserved: decimation strips temporal
        # locality from the address stream and history correlation from
        # the branch stream, so miss/mispredict rates — and cycles —
        # are conservatively overestimated.  Only the category
        # *fractions* (what Table II reports) are stable.
        assert rep_sampled.cycles >= rep_full.cycles * 0.8

    def test_small_cap_rejected(self):
        with pytest.raises(ValueError):
            Probe(event_cap=64)

    def test_decimation_preserves_event_mix(self):
        """Uniform decimation keeps branch/data event proportions."""
        probe = Probe(event_cap=4096)
        _fill(probe, 80_000)
        kinds = [e[1] for e in probe.events]
        n_branch = sum(1 for k in kinds if k == 0)
        n_data = sum(1 for k in kinds if k == 1)
        # equal numbers were recorded; the sample must stay near 50/50
        assert abs(n_branch - n_data) < 0.2 * (n_branch + n_data)


class TestAttribution:
    def test_costs_attributed_to_emitting_method(self):
        rng = random.Random(2)
        probe = Probe()
        with probe.method("mem_hog"):
            probe.ops(100)
            probe.accesses([rng.randrange(1 << 24) for _ in range(20_000)])
        with probe.method("branch_hog"):
            probe.ops(100)
            probe.branches((rng.random() < 0.5 for _ in range(20_000)), site=2)
        rep = CostModel().evaluate(probe)
        mem = rep.per_method["mem_hog"]
        br = rep.per_method["branch_hog"]
        assert mem.backend_cycles > 10 * br.backend_cycles
        assert br.bad_spec_cycles > 10 * mem.bad_spec_cycles

    def test_calls_attributed_to_callee(self):
        probe = Probe()
        for _ in range(400):
            with probe.method("big", code_bytes=8192):
                probe.ops(10)
            with probe.method("tiny", code_bytes=64):
                probe.ops(10)
        rep = CostModel().evaluate(probe)
        assert (
            rep.per_method["big"].frontend_cycles
            > rep.per_method["tiny"].frontend_cycles
        )
