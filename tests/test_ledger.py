"""Run-ledger tests: durability, retention, diffing, baselines, CLI.

The durability cases mirror the trace-journal ones (torn tails,
concurrent writers) because the ledger makes the same crash-tolerance
promise across *runs* that the journal makes across *spans*.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.core.ledger import (
    LEDGER_ENV,
    DiffReport,
    LedgerError,
    RunLedger,
    build_record,
    classify_metric,
    derive_throughput,
    diff_records,
    ledger_baseline,
    render_record,
    render_runs_table,
)

# ---------------------------------------------------------------- helpers


def snapshot(bench="505.mcf_r", *, events=1_000_000, eps=5e6, stage_s=None):
    """A minimal but schema-correct MetricsRegistry.to_dict() snapshot."""
    metrics = {
        "repro_replay_events_total": {
            "kind": "counter",
            "labels": ["benchmark"],
            "series": [{"labels": [bench], "value": events}],
        },
        "repro_replay_ns_total": {
            "kind": "counter",
            "labels": ["benchmark"],
            "series": [{"labels": [bench], "value": events / eps * 1e9}],
        },
        # An info-class family the diff must record but never flag.
        "repro_cache_lookups_total": {
            "kind": "counter",
            "labels": ["result"],
            "series": [{"labels": ["miss"], "value": 7}],
        },
    }
    if stage_s is not None:
        metrics["repro_stage_seconds"] = {
            "kind": "histogram",
            "labels": ["benchmark", "stage"],
            "series": [
                {"labels": [bench, "replay"], "sum": stage_s, "count": 1}
            ],
        }
    return {"schema": 1, "metrics": metrics}


def make_record(run_id, started=1_000.0, *, ok=2, failed=0, quarantined=0,
                bench="505.mcf_r", events=1_000_000, eps=5e6, stage_s=None):
    summary = {
        "cells": ok + failed,
        "ok": ok,
        "failed": failed,
        "quarantined": quarantined,
        "captures": ok,
        "replays_sampled": 0,
    }
    return build_record(
        run_id=run_id,
        started_at=started,
        finished_at=started + 1.0,
        summary=summary,
        metrics_snapshot=snapshot(bench, events=events, eps=eps, stage_s=stage_s),
        benchmarks=[bench],
        scenarios={bench: "f" * 12},
    )


# ------------------------------------------------------------- the record


class TestBuildRecord:
    def test_outcome_ok(self):
        assert make_record("r1")["outcome"] == "ok"

    def test_outcome_degraded_on_any_failure(self):
        assert make_record("r1", ok=3, failed=1)["outcome"] == "degraded"
        assert make_record("r1", quarantined=1)["outcome"] == "degraded"

    def test_outcome_failed_when_nothing_succeeded(self):
        assert make_record("r1", ok=0, failed=2)["outcome"] == "failed"

    def test_throughput_derived_per_benchmark(self):
        t = make_record("r1", eps=4e6)["throughput"]["505.mcf_r"]
        assert t["eps"] == pytest.approx(4e6)
        assert t["events"] == 1_000_000

    def test_injected_slowdown_shows_in_recorded_eps(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", "4")
        t = derive_throughput(snapshot(eps=4e6))["505.mcf_r"]
        assert t["eps"] == pytest.approx(1e6)

    def test_schema_enforced_on_append(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        with pytest.raises(LedgerError):
            ledger.append({"schema": 99, "run_id": "r1"})
        with pytest.raises(LedgerError):
            ledger.append({"schema": 1})


# ------------------------------------------------------------ durability


class TestDurability:
    def test_round_trip_and_index(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("r1"))
        ledger.append(make_record("r2", started=2_000.0))
        assert [r["run_id"] for r in ledger.records()] == ["r1", "r2"]
        assert [e["run_id"] for e in ledger.index()] == ["r1", "r2"]
        assert ledger.index()[0]["cells"] == 2

    def test_truncated_tail_is_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("r1"))
        ledger.append(make_record("r2"))
        with ledger.path.open("a", encoding="utf-8") as fh:
            fh.write('{"schema":1,"run_id":"r3","torn')  # crash mid-append
        assert [r["run_id"] for r in ledger.records()] == ["r1", "r2"]

    def test_append_after_torn_tail_survives(self, tmp_path):
        # A torn tail has no newline; the next append must not weld its
        # record onto the garbage.
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("r1"))
        with ledger.path.open("a", encoding="utf-8") as fh:
            fh.write('{"schema":1,"run_id":"r2","torn')
        ledger.append(make_record("r3"))
        assert [r["run_id"] for r in ledger.records()] == ["r1", "r3"]

    def test_index_self_heals_after_damage(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("r1"))
        ledger.append(make_record("r2"))
        ledger.index_path.write_text("not json at all\n", encoding="utf-8")
        assert [e["run_id"] for e in ledger.index()] == ["r1", "r2"]
        # and the rebuild was persisted
        raw = ledger.index_path.read_text(encoding="utf-8").splitlines()
        assert len(raw) == 2

    def test_index_can_simply_be_deleted(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("r1"))
        ledger.index_path.unlink()
        assert [e["run_id"] for e in ledger.index()] == ["r1"]

    def test_concurrent_appends_lose_nothing(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        n_threads, per_thread = 4, 25

        def appender(t):
            for i in range(per_thread):
                ledger.append(make_record(f"t{t}-{i}", started=1_000.0 + i))

        threads = [
            threading.Thread(target=appender, args=(t,)) for t in range(n_threads)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        records = ledger.records()
        assert len(records) == n_threads * per_thread
        assert len({r["run_id"] for r in records}) == n_threads * per_thread

    def test_two_concurrent_sessions_both_record(self, tmp_path):
        from repro.core.run import Session

        led = tmp_path / "led"
        errors = []

        def run_one():
            try:
                with Session(workers=1, ledger=led) as s:
                    s.capture("519.lbm_r", "lbm.test")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=run_one) for _ in range(2)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert errors == []
        records = RunLedger(led).records()
        assert len(records) == 2
        assert len({r["run_id"] for r in records}) == 2
        assert all(r["benchmarks"] == ["519.lbm_r"] for r in records)


# ---------------------------------------------------------------- queries


class TestResolveAndQuery:
    @pytest.fixture
    def ledger(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("abc-1", started=1_000.0))
        ledger.append(make_record("abd-2", started=2_000.0, ok=0, failed=2))
        ledger.append(make_record("xyz-3", started=3_000.0, bench="519.lbm_r"))
        return ledger

    def test_latest_and_prev(self, ledger):
        assert ledger.resolve("latest")["run_id"] == "xyz-3"
        assert ledger.resolve("prev")["run_id"] == "abd-2"

    def test_exact_and_unique_prefix(self, ledger):
        assert ledger.resolve("abc-1")["run_id"] == "abc-1"
        assert ledger.resolve("xy")["run_id"] == "xyz-3"

    def test_ambiguous_prefix_raises(self, ledger):
        with pytest.raises(LedgerError, match="ambiguous"):
            ledger.resolve("ab")

    def test_unknown_ref_raises(self, ledger):
        with pytest.raises(LedgerError, match="not in ledger"):
            ledger.resolve("nope")

    def test_empty_ledger_raises(self, tmp_path):
        with pytest.raises(LedgerError, match="empty"):
            RunLedger(tmp_path / "fresh").resolve("latest")

    def test_query_filters(self, ledger):
        assert [r["run_id"] for r in ledger.query(benchmark="519.lbm_r")] == ["xyz-3"]
        assert [r["run_id"] for r in ledger.query(outcome="failed")] == ["abd-2"]
        assert [r["run_id"] for r in ledger.query(limit=2)] == ["abd-2", "xyz-3"]
        assert [r["run_id"] for r in ledger.query(since=1_500.0, until=2_500.0)] == [
            "abd-2"
        ]


# -------------------------------------------------------------- retention


class TestGC:
    def test_keeps_n_most_recent(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for i in range(5):
            ledger.append(make_record(f"r{i}", started=1_000.0 + i))
        removed = ledger.gc(keep=2)
        assert removed == ["r0", "r1", "r2"]
        assert [r["run_id"] for r in ledger.records()] == ["r3", "r4"]
        assert [e["run_id"] for e in ledger.index()] == ["r3", "r4"]

    def test_pinned_runs_survive_keep_zero(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for i in range(3):
            ledger.append(make_record(f"r{i}", started=1_000.0 + i))
        ledger.pin("r0")
        removed = ledger.gc(keep=0)
        assert removed == ["r1", "r2"]
        assert [r["run_id"] for r in ledger.records()] == ["r0"]

    def test_unpin_releases(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("r0"))
        ledger.append(make_record("r1"))
        ledger.pin("r0")
        ledger.unpin("r0")
        assert ledger.gc(keep=1) == ["r0"]

    def test_max_age_protects_young_runs(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("old", started=1_000.0))
        ledger.append(make_record("new", started=9_000.0))
        removed = ledger.gc(keep=0, max_age_s=5_000.0, now=10_000.0)
        assert removed == ["old"]

    def test_negative_keep_raises(self, tmp_path):
        with pytest.raises(LedgerError):
            RunLedger(tmp_path / "led").gc(keep=-1)


# ---------------------------------------------------------------- diffing


class TestDiff:
    def test_identical_records_are_clean(self):
        rep = diff_records(make_record("a"), make_record("b"))
        assert rep.ok and rep.exit_code == 0
        assert rep.entries  # something was actually compared
        assert rep.ignored >= 1  # the info family was recorded, not diffed

    def test_exact_mismatch_is_flagged(self):
        rep = diff_records(
            make_record("a", events=1_000_000), make_record("b", events=999_999)
        )
        assert not rep.ok and rep.exit_code == 1
        flagged = {e.metric for e in rep.out_of_tolerance}
        assert "repro_replay_events_total" in flagged

    def test_timing_within_tolerance_is_ok(self):
        rep = diff_records(make_record("a", eps=5e6), make_record("b", eps=4.2e6))
        assert all(e.ok for e in rep.entries if e.metric == "throughput.eps")

    def test_timing_out_of_tolerance_is_flagged(self):
        rep = diff_records(make_record("a", eps=5e6), make_record("b", eps=2e6))
        flagged = {e.metric for e in rep.out_of_tolerance}
        assert "throughput.eps" in flagged

    def test_timing_noise_floor_swallows_micro_jitter(self):
        # 0.1ms vs 0.5ms is a 5x relative difference but far below the
        # 10ms absolute floor for stage seconds — never a finding.
        rep = diff_records(
            make_record("a", stage_s=0.0001), make_record("b", stage_s=0.0005)
        )
        assert all(e.ok for e in rep.entries if e.metric == "repro_stage_seconds")

    def test_injected_slowdown_run_is_flagged(self, monkeypatch):
        fast = make_record("a", eps=5e6)
        monkeypatch.setenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", "3")
        slow = make_record("b", eps=5e6)
        rep = diff_records(fast, slow)
        assert not rep.ok
        assert any(
            e.metric == "throughput.eps" and not e.ok for e in rep.entries
        )

    def test_series_on_one_side_only_is_a_finding(self):
        rep = diff_records(
            make_record("a", bench="505.mcf_r"), make_record("b", bench="519.lbm_r")
        )
        assert not rep.ok

    def test_render_and_to_dict(self):
        rep = diff_records(make_record("a", eps=5e6), make_record("b", eps=2e6))
        text = rep.render()
        assert "OUT OF TOLERANCE" in text
        verbose = rep.render(verbose=True)
        assert len(verbose.splitlines()) > len(text.splitlines())
        data = rep.to_dict()
        assert data["ok"] is False
        assert data["compared"] == len(rep.entries)

    def test_bad_tolerance_raises(self):
        with pytest.raises(LedgerError):
            diff_records(make_record("a"), make_record("b"), tolerance=1.5)

    def test_classify_metric(self):
        assert classify_metric("repro_cells_total") == "exact"
        assert classify_metric("repro_stage_seconds") == "timing"
        assert classify_metric("repro_peak_rss_kb") == "info"


# --------------------------------------------------------------- baseline


class TestLedgerBaseline:
    def test_rolling_median(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        for i, eps in enumerate((4e6, 5e6, 6e6)):
            ledger.append(make_record(f"r{i}", started=1_000.0 + i, eps=eps))
        baseline = ledger_baseline(ledger, window=3)
        bench = baseline["benchmarks"]["505.mcf_r"]
        assert bench["events_per_sec"] == pytest.approx(5e6)
        assert bench["runs"] == 3
        assert baseline["schema"] == 1

    def test_window_and_failed_runs_excluded(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("bad", ok=0, failed=2, eps=1e3))
        for i, eps in enumerate((4e6, 6e6)):
            ledger.append(make_record(f"r{i}", started=2_000.0 + i, eps=eps))
        baseline = ledger_baseline(ledger, window=2)
        assert baseline["benchmarks"]["505.mcf_r"]["events_per_sec"] == pytest.approx(
            5e6
        )

    def test_empty_ledger_raises(self, tmp_path):
        with pytest.raises(LedgerError):
            ledger_baseline(RunLedger(tmp_path / "led"))


# ------------------------------------------------------------- rendering


class TestRendering:
    def test_runs_table_accepts_index_entries_and_records(self, tmp_path):
        ledger = RunLedger(tmp_path / "led")
        ledger.append(make_record("r1"))
        by_index = render_runs_table(ledger.index())
        by_record = render_runs_table(ledger.records())
        assert "r1" in by_index and "r1" in by_record
        # full records report cell counts from under ``counts``
        assert by_index.splitlines()[-1] == by_record.splitlines()[-1]

    def test_empty_table(self):
        assert "no recorded runs" in render_runs_table([])

    def test_record_detail_view(self):
        text = render_record(make_record("r1"))
        assert "run r1" in text and "[ok]" in text
        assert "505.mcf_r" in text


# ----------------------------------------------------- session end-to-end


class TestSessionEndToEnd:
    """Two real suite runs into one ledger + the CLI on top of them."""

    @pytest.fixture(scope="class")
    def led(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ledger")
        for _ in range(2):
            rc = main(
                ["suite", "519.lbm_r", "--no-cache", "--workers", "1",
                 "--ledger", str(root / "led")]
            )
            assert rc == 0
        return root / "led"

    def test_session_records_scope_and_outcome(self, led):
        records = RunLedger(led).records()
        assert len(records) == 2
        rec = records[-1]
        assert rec["outcome"] == "ok"
        assert rec["benchmarks"] == ["519.lbm_r"]
        assert rec["scenarios"]["519.lbm_r"]  # registry fingerprint
        assert rec["counts"]["cells"] > 0
        assert rec["throughput"]["519.lbm_r"]["eps"] > 0
        assert rec["metrics"]["metrics"]  # full snapshot rides along

    def test_identical_runs_diff_clean(self, led, capsys):
        # 60% timing tolerance: the signal here is the exact counter
        # families (which must match to the event), not sub-second stage
        # walls, which drift cold-vs-warm under full-suite load.
        rc = main(["runs", "diff", "prev", "latest", "--ledger", str(led),
                   "--tolerance", "0.6"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "all within tolerance" in out

    def test_injected_slowdown_run_is_flagged(self, led, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", "3")
        assert main(
            ["suite", "519.lbm_r", "--no-cache", "--workers", "1",
             "--ledger", str(led)]
        ) == 0
        monkeypatch.delenv("REPRO_WATCHDOG_INJECT_SLOWDOWN")
        capsys.readouterr()
        rc = main(["runs", "diff", "prev", "latest", "--ledger", str(led)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "OUT OF TOLERANCE" in out
        # restore a clean tail for later tests in this class
        RunLedger(led).gc(keep=2)

    def test_runs_list_and_show(self, led, capsys):
        assert main(["runs", "list", "--ledger", str(led)]) == 0
        assert "519.lbm_r" in capsys.readouterr().out
        assert main(["runs", "show", "--ledger", str(led)]) == 0
        assert "[ok]" in capsys.readouterr().out

    def test_runs_show_json_round_trips(self, led, capsys):
        assert main(["runs", "show", "latest", "--ledger", str(led), "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == 1 and record["outcome"] == "ok"

    def test_runs_list_json_omits_heavy_metrics(self, led, capsys):
        assert main(["runs", "list", "--ledger", str(led), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert entries and all("metrics" not in e for e in entries)

    def test_env_var_enables_ledger(self, led, monkeypatch, tmp_path):
        from repro.core.run import Session

        env_led = tmp_path / "env-led"
        monkeypatch.setenv(LEDGER_ENV, str(env_led))
        with Session(workers=1) as s:
            s.capture("519.lbm_r", "lbm.test")
        assert len(RunLedger(env_led).records()) == 1

    def test_missing_ledger_dir_exits_2(self, monkeypatch, capsys):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        assert main(["runs", "list"]) == 2
        assert LEDGER_ENV in capsys.readouterr().err

    def test_diff_needs_two_refs(self, led, capsys):
        assert main(["runs", "diff", "latest", "--ledger", str(led)]) == 2
        assert "two run references" in capsys.readouterr().err
