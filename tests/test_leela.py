"""Tests for the 541.leela_r Go substrate: rules, SGF, generator."""

import pytest

from repro.benchmarks.leela import (
    BLACK,
    EMPTY,
    WHITE,
    GoBoard,
    GoInput,
    LeelaBenchmark,
    parse_sgf,
    sgf_coord,
)
from repro.machine import run_benchmark
from repro.workloads.leela_gen import LeelaWorkloadGenerator, cull_sgf, synthesize_sgf


class TestGoRules:
    def test_single_stone_capture(self):
        b = GoBoard(9)
        # surround a white stone at (1,1) = point 10
        b.play(10, WHITE)
        b.play(1, BLACK)
        b.play(9, BLACK)
        b.play(11, BLACK)
        captured = b.play(19, BLACK)
        assert captured == 1
        assert b.cells[10] == EMPTY

    def test_group_capture(self):
        b = GoBoard(9)
        # two-stone white group on the edge
        b.play(0, WHITE)
        b.play(1, WHITE)
        for p in (9, 10, 2):
            b.play(p, BLACK)
        assert b.cells[0] == EMPTY
        assert b.cells[1] == EMPTY
        assert b.captures[BLACK] == 2

    def test_suicide_rejected(self):
        b = GoBoard(9)
        b.play(1, BLACK)
        b.play(9, BLACK)
        assert not b.is_legal(0, WHITE)

    def test_capture_not_suicide(self):
        b = GoBoard(9)
        # white at 0; black plays to capture it from 1 and 9
        b.play(0, WHITE)
        b.play(1, BLACK)
        # playing 9 captures the white stone, so it is legal even though
        # point 9's own liberties would be shared
        assert b.is_legal(9, BLACK)

    def test_simple_ko_forbidden(self):
        # corner ko: white at 0 has its last liberty at 1; black's
        # capturing stone at 1 ends as a single stone whose only
        # liberty is the emptied point 0 -> ko
        b = GoBoard(9)
        b.play(0, WHITE)
        b.play(2, WHITE)
        b.play(10, WHITE)
        b.play(9, BLACK)
        captured = b.play(1, BLACK)
        assert captured == 1
        assert b.cells[0] == EMPTY
        assert b.ko_point == 0
        assert not b.is_legal(0, WHITE)
        # the ko clears after a move elsewhere
        b.play(40, WHITE)
        assert b.is_legal(0, WHITE)

    def test_eyelike_detection(self):
        b = GoBoard(9)
        for p in (1, 9):
            b.play(p, BLACK)
        assert b.is_eyelike(0, BLACK)
        assert not b.is_eyelike(0, WHITE)

    def test_score_empty_board(self):
        b = GoBoard(9)
        assert b.score() == pytest.approx(-6.5)  # komi only

    def test_score_counts_territory(self):
        b = GoBoard(9)
        # a black wall across row 1 claims row 0 as territory
        for col in range(9):
            b.play(9 + col, BLACK)
        score = b.score()
        # 9 stones + 9 territory + remaining empty bordered only by black
        assert score > 0


class TestSgf:
    def test_coord_parse(self):
        assert sgf_coord("aa", 9) == 0
        assert sgf_coord("ba", 9) == 1
        assert sgf_coord("ab", 9) == 9
        assert sgf_coord("", 9) is None

    def test_coord_out_of_range(self):
        with pytest.raises(Exception):
            sgf_coord("zz", 9)

    def test_parse_game(self):
        size, moves = parse_sgf("(;SZ[9];B[aa];W[ba];B[ab])")
        assert size == 9
        assert moves == [(BLACK, 0), (WHITE, 1), (BLACK, 9)]

    def test_unsupported_size(self):
        with pytest.raises(Exception):
            parse_sgf("(;SZ[7];B[aa])")

    def test_synthesized_sgf_replays(self):
        sgf = synthesize_sgf(3, size=9, n_moves=20)
        size, moves = parse_sgf(sgf)
        board = GoBoard(size)
        for color, point in moves:
            assert board.is_legal(point, color)
            board.play(point, color)

    def test_cull_removes_moves(self):
        sgf = synthesize_sgf(3, size=9, n_moves=20)
        _, full = parse_sgf(sgf)
        _, culled = parse_sgf(cull_sgf(sgf, 6))
        assert len(culled) == len(full) - 6

    def test_cull_zero_is_identity(self):
        sgf = synthesize_sgf(4, size=9, n_moves=10)
        assert parse_sgf(cull_sgf(sgf, 0)) == parse_sgf(sgf)


class TestBenchmark:
    def test_run_and_verify(self):
        w = LeelaWorkloadGenerator().generate(
            2, games_per_workload=1, board_size=9, n_moves=16, n_cull=4,
            playouts_per_move=4, max_moves_to_play=3,
        )
        prof = run_benchmark(LeelaBenchmark(), w)
        assert prof.verified
        assert prof.output["playouts"] > 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            GoInput(games=())
        with pytest.raises(ValueError):
            GoInput(games=("(;SZ[9])",), playouts_per_move=0)

    def test_alberta_set_size(self):
        assert len(LeelaWorkloadGenerator().alberta_set()) == 12  # Table II

    def test_coverage_concentrated_in_playouts(self):
        """The paper reports mu_g(M)=1 for leela: play-out dominated."""
        w = LeelaWorkloadGenerator().generate(
            3, games_per_workload=1, board_size=9, n_moves=16, n_cull=4,
            playouts_per_move=4, max_moves_to_play=3,
        )
        prof = run_benchmark(LeelaBenchmark(), w)
        assert prof.coverage.top(1)[0][0] == "run_playout"
