"""Run-trace journal tests: writer, readers, CLI, telemetry mirror."""

import json

import pytest

from repro.cli import main
from repro.core.trace import (
    CellSpan,
    RunSummary,
    TraceWriter,
    read_trace,
    summarize_trace,
    trace_spans,
)
from repro.machine import telemetry

SPANS = [
    CellSpan("505.mcf_r", "mcf.refrate", "miss", 1, 0.05, "ok"),
    CellSpan("505.mcf_r", "mcf.train", "hit", 0, 0.0, "ok"),
    CellSpan("505.mcf_r", "mcf.test", "miss", 3, 0.21, "failed", "boom"),
    CellSpan("557.xz_r", "xz.refrate", "off", 2, 0.40, "timeout", "cell timed out"),
]


def write_journal(path, spans=SPANS, finish=True):
    writer = TraceWriter(path, mirror_telemetry=False)
    writer.start({"workers": 2, "strict": False})
    for span in spans:
        writer.span(span)
    if finish:
        writer.finish()
    writer.close()
    return writer


class TestWriter:
    def test_journal_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = write_journal(path)

        records = read_trace(path)
        assert [r["type"] for r in records] == ["run_start"] + ["span"] * 4 + ["summary"]
        assert records[0]["workers"] == 2
        assert trace_spans(path) == SPANS

        summary = summarize_trace(path)
        assert summary == writer.summary
        assert summary.cells == 4
        assert summary.ok == 2
        assert summary.failed == 2
        assert summary.cache_hits == 1
        assert summary.cache_misses == 2
        assert summary.retries == (3 - 1) + (2 - 1)  # attempts beyond the first
        assert summary.timeouts == 1
        assert summary.crashes == 0

    def test_finish_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = TraceWriter(path, mirror_telemetry=False)
        writer.start()
        writer.span(SPANS[0])
        first = writer.finish()
        assert writer.finish() is first
        writer.close()
        assert sum(1 for r in read_trace(path) if r["type"] == "summary") == 1

    def test_tally_only_writer_has_no_path(self):
        writer = TraceWriter(None, mirror_telemetry=False)
        writer.start()
        writer.span(SPANS[0])
        summary = writer.finish()
        assert writer.path is None
        assert summary.cells == 1

    def test_quarantine_tally_reaches_summary(self, tmp_path):
        writer = TraceWriter(tmp_path / "run.jsonl", mirror_telemetry=False)
        writer.start()
        writer.quarantine(2)
        assert writer.finish().quarantined == 2
        writer.close()


class TestTruncatedJournal:
    def test_readers_survive_a_killed_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_journal(path, finish=False)  # no summary record
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type":"span","benchmark":"999.trunc')  # torn write

        spans = trace_spans(path)
        assert spans == SPANS  # torn tail skipped
        summary = summarize_trace(path)  # recomputed from spans
        assert summary.cells == 4
        assert summary.failed == 2
        assert summary.timeouts == 1

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("\n" + json.dumps(SPANS[0].to_dict()) + "\n\n")
        assert trace_spans(path) == [SPANS[0]]


class TestTelemetryMirror:
    def test_spans_mirror_into_engine_run_counters(self):
        telemetry.reset_counters("engine.run")
        writer = TraceWriter(None)
        writer.start()
        for span in SPANS:
            writer.span(span)
        writer.finish()

        stats = telemetry.counters("engine.run")
        assert stats["engine.run.cells"] == 4
        assert stats["engine.run.ok"] == 2
        assert stats["engine.run.failed"] == 2
        assert stats["engine.run.retries"] == 3
        assert stats["engine.run.timeouts"] == 1
        assert stats["engine.run.runs"] == 1
        assert "engine.run.crashes" not in stats


class TestTelemetryScope:
    """Per-run windows stop cross-run counter bleed; totals stay global."""

    def test_scope_sees_only_its_own_window(self):
        telemetry.record("engine.run.cells", 5)
        scope = telemetry.Scope("engine.run")
        telemetry.record("engine.run.cells", 2)
        assert scope.counters() == {"engine.run.cells": 2}
        # The process-wide view keeps accumulating across scopes.
        assert telemetry.totals("engine.run")["engine.run.cells"] >= 7

    def test_two_scopes_do_not_bleed(self):
        first = telemetry.Scope("engine.run")
        telemetry.record("engine.run.cells", 3)
        second = telemetry.Scope("engine.run")
        telemetry.record("engine.run.cells", 4)
        assert first.counters()["engine.run.cells"] == 7
        assert second.counters()["engine.run.cells"] == 4

    def test_reset_restarts_the_window(self):
        scope = telemetry.Scope("engine.run")
        telemetry.record("engine.run.cells", 1)
        scope.reset()
        assert scope.counters() == {}

    def test_session_scope_is_per_session(self, tmp_path):
        from repro.core.run import Session

        with Session(workers=1, cache=None) as first:
            first.characterize("505.mcf_r")
        with Session(workers=1, cache=None) as second:
            second.characterize("505.mcf_r")
        # The second session's window starts at its construction, so it
        # reports exactly its own 7 cells; the first session's window is
        # older and also spans the second run.  Process totals cover both.
        assert first.telemetry.counters()["engine.run.cells"] >= 14
        assert second.telemetry.counters()["engine.run.cells"] == 7
        assert (
            telemetry.totals("engine.run")["engine.run.cells"]
            >= second.telemetry.counters()["engine.run.cells"] + 7
        )


class TestConcurrentAppend:
    """Readers must tolerate a journal that is still being appended."""

    def test_reader_mid_torn_write_sees_a_clean_prefix(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_journal(path, spans=SPANS[:2], finish=False)
        # Simulate a writer caught mid-line: no trailing newline yet.
        with path.open("a", encoding="utf-8") as fh:
            line = json.dumps(SPANS[2].to_dict())
            fh.write(line[: len(line) // 2])
            fh.flush()
            assert trace_spans(path) == SPANS[:2]  # torn tail skipped
            fh.write(line[len(line) // 2 :] + "\n")
        assert trace_spans(path) == SPANS[:3]  # completed line now visible

    def test_reader_races_a_writer_thread(self, tmp_path):
        import threading
        import time as _time

        path = tmp_path / "run.jsonl"
        path.touch()
        n = 50
        done = threading.Event()

        def append_spans():
            with path.open("a", encoding="utf-8") as fh:
                for i in range(n):
                    span = CellSpan("505.mcf_r", f"w{i}", "off", 1, 0.01, "ok")
                    fh.write(json.dumps(span.to_dict()) + "\n")
                    fh.flush()
                    _time.sleep(0.001)
            done.set()

        writer = threading.Thread(target=append_spans)
        writer.start()
        counts = []
        try:
            while not done.is_set():
                counts.append(len(trace_spans(path)))  # must never raise
        finally:
            writer.join()
        counts.append(len(trace_spans(path)))
        assert counts[-1] == n
        assert counts == sorted(counts)  # reads only ever grow


class TestSpanTree:
    """Engine runs journal a run -> cell -> stage tree."""

    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        from repro.core.run import Session

        path = tmp_path_factory.mktemp("tree") / "run.jsonl"
        with Session(workers=1, cache=None, trace=path) as session:
            session.characterize("505.mcf_r")
        return path

    def test_cells_parent_on_the_run_root(self, journal):
        from repro.core.trace import RUN_SPAN_ID

        spans = trace_spans(journal)
        assert spans and all(s.parent_id == RUN_SPAN_ID for s in spans)
        assert len({s.span_id for s in spans}) == len(spans)  # unique ids

    def test_stages_parent_on_their_cell(self, journal):
        from repro.core.trace import STAGE_NAMES, trace_stages

        spans = trace_spans(journal)
        stages = trace_stages(journal)
        cell_ids = {s.span_id for s in spans}
        assert stages
        for stage in stages:
            assert stage.name in STAGE_NAMES
            assert stage.parent_id in cell_ids or stage.parent_id == "run"
        # Every fresh cell ran generate/capture/replay.
        by_parent = {}
        for stage in stages:
            by_parent.setdefault(stage.parent_id, set()).add(stage.name)
        for span in spans:
            if span.cache != "hit":
                assert {"generate", "capture", "replay"} <= by_parent[span.span_id]

    def test_chrome_export_nests_stages_inside_cells(self, journal):
        from repro.core.trace import export_chrome_trace

        doc = export_chrome_trace(journal)
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        cells = [e for e in events if e["cat"] == "cell"]
        stages = [e for e in events if e["cat"] == "stage"]
        assert cells and stages
        tids = {e["tid"] for e in cells}
        for stage in stages:
            # Cell stages render on their cell's lane; run-level stages
            # (summarize) render on the run root's track 0.
            assert stage["tid"] in tids or (
                stage["name"] == "summarize" and stage["tid"] == 0
            )
        assert doc["displayTimeUnit"] == "ms"


class TestCli:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "run.jsonl"
        rc = main(["suite", "505.mcf_r", "--no-cache", "--trace", str(path)])
        assert rc == 0
        return path

    def test_suite_writes_a_complete_journal(self, journal):
        summary = summarize_trace(journal)
        assert summary.cells == 7  # the mcf Alberta set
        assert summary.failed == 0

    def test_trace_summary_renders(self, journal, capsys):
        assert main(["trace", "summary", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "cells      : 7  (7 ok, 0 failed)" in out

    def test_trace_show_lists_every_cell(self, journal, capsys):
        assert main(["trace", "show", str(journal)]) == 0
        out = capsys.readouterr().out
        assert out.count("505.mcf_r") == 7
        assert "mcf.alberta.sparse" in out

    def test_trace_summary_names_failed_cells(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_journal(path)
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "failed cells:" in out
        assert "505.mcf_r/mcf.test: failed after 3 attempt(s) — boom" in out

    def test_missing_journal_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # one-line diagnostic
        assert "no journal" in err

    def test_empty_journal_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        for action in ("summary", "show", "chrome"):
            assert main(["trace", action, str(path)]) == 2
            assert "has no records" in capsys.readouterr().err

    def test_trace_chrome_writes_perfetto_json(self, journal, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(["trace", "chrome", str(journal), "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "M"}
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert cats == {"run", "cell", "stage"}

    def test_suite_strict_flag_aborts_on_failure(self, tmp_path, monkeypatch, capsys):
        from repro.core.engine import FAULT_INJECT_ENV

        monkeypatch.setenv(FAULT_INJECT_ENV, "raise:505.mcf_r:mcf.train")
        path = tmp_path / "run.jsonl"
        rc = main(
            ["suite", "505.mcf_r", "--no-cache", "--strict", "--retries", "0",
             "--trace", str(path)]
        )
        assert rc == 1
        assert "aborted (strict)" in capsys.readouterr().err
        # The journal still records every settled cell.
        assert any(not s.ok for s in trace_spans(path))

    def test_suite_degraded_run_reports_and_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.core.engine import FAULT_INJECT_ENV

        monkeypatch.setenv(FAULT_INJECT_ENV, "raise:505.mcf_r:mcf.train")
        rc = main(["suite", "505.mcf_r", "--no-cache", "--retries", "0"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "505.mcf_r" in captured.out  # degraded row still printed
        assert "failed cells:" in captured.err
        assert "mcf.train" in captured.err
