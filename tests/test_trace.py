"""Run-trace journal tests: writer, readers, CLI, telemetry mirror."""

import json

import pytest

from repro.cli import main
from repro.core.trace import (
    CellSpan,
    RunSummary,
    TraceWriter,
    read_trace,
    summarize_trace,
    trace_spans,
)
from repro.machine import telemetry

SPANS = [
    CellSpan("505.mcf_r", "mcf.refrate", "miss", 1, 0.05, "ok"),
    CellSpan("505.mcf_r", "mcf.train", "hit", 0, 0.0, "ok"),
    CellSpan("505.mcf_r", "mcf.test", "miss", 3, 0.21, "failed", "boom"),
    CellSpan("557.xz_r", "xz.refrate", "off", 2, 0.40, "timeout", "cell timed out"),
]


def write_journal(path, spans=SPANS, finish=True):
    writer = TraceWriter(path, mirror_telemetry=False)
    writer.start({"workers": 2, "strict": False})
    for span in spans:
        writer.span(span)
    if finish:
        writer.finish()
    writer.close()
    return writer


class TestWriter:
    def test_journal_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = write_journal(path)

        records = read_trace(path)
        assert [r["type"] for r in records] == ["run_start"] + ["span"] * 4 + ["summary"]
        assert records[0]["workers"] == 2
        assert trace_spans(path) == SPANS

        summary = summarize_trace(path)
        assert summary == writer.summary
        assert summary.cells == 4
        assert summary.ok == 2
        assert summary.failed == 2
        assert summary.cache_hits == 1
        assert summary.cache_misses == 2
        assert summary.retries == (3 - 1) + (2 - 1)  # attempts beyond the first
        assert summary.timeouts == 1
        assert summary.crashes == 0

    def test_finish_is_idempotent(self, tmp_path):
        path = tmp_path / "run.jsonl"
        writer = TraceWriter(path, mirror_telemetry=False)
        writer.start()
        writer.span(SPANS[0])
        first = writer.finish()
        assert writer.finish() is first
        writer.close()
        assert sum(1 for r in read_trace(path) if r["type"] == "summary") == 1

    def test_tally_only_writer_has_no_path(self):
        writer = TraceWriter(None, mirror_telemetry=False)
        writer.start()
        writer.span(SPANS[0])
        summary = writer.finish()
        assert writer.path is None
        assert summary.cells == 1

    def test_quarantine_tally_reaches_summary(self, tmp_path):
        writer = TraceWriter(tmp_path / "run.jsonl", mirror_telemetry=False)
        writer.start()
        writer.quarantine(2)
        assert writer.finish().quarantined == 2
        writer.close()


class TestTruncatedJournal:
    def test_readers_survive_a_killed_run(self, tmp_path):
        path = tmp_path / "run.jsonl"
        write_journal(path, finish=False)  # no summary record
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"type":"span","benchmark":"999.trunc')  # torn write

        spans = trace_spans(path)
        assert spans == SPANS  # torn tail skipped
        summary = summarize_trace(path)  # recomputed from spans
        assert summary.cells == 4
        assert summary.failed == 2
        assert summary.timeouts == 1

    def test_blank_lines_are_ignored(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("\n" + json.dumps(SPANS[0].to_dict()) + "\n\n")
        assert trace_spans(path) == [SPANS[0]]


class TestTelemetryMirror:
    def test_spans_mirror_into_engine_run_counters(self):
        telemetry.reset_counters("engine.run")
        writer = TraceWriter(None)
        writer.start()
        for span in SPANS:
            writer.span(span)
        writer.finish()

        stats = telemetry.counters("engine.run")
        assert stats["engine.run.cells"] == 4
        assert stats["engine.run.ok"] == 2
        assert stats["engine.run.failed"] == 2
        assert stats["engine.run.retries"] == 3
        assert stats["engine.run.timeouts"] == 1
        assert stats["engine.run.runs"] == 1
        assert "engine.run.crashes" not in stats


class TestCli:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "run.jsonl"
        rc = main(["suite", "505.mcf_r", "--no-cache", "--trace", str(path)])
        assert rc == 0
        return path

    def test_suite_writes_a_complete_journal(self, journal):
        summary = summarize_trace(journal)
        assert summary.cells == 7  # the mcf Alberta set
        assert summary.failed == 0

    def test_trace_summary_renders(self, journal, capsys):
        assert main(["trace", "summary", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "cells      : 7  (7 ok, 0 failed)" in out

    def test_trace_show_lists_every_cell(self, journal, capsys):
        assert main(["trace", "show", str(journal)]) == 0
        out = capsys.readouterr().out
        assert out.count("505.mcf_r") == 7
        assert "mcf.alberta.sparse" in out

    def test_trace_summary_names_failed_cells(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        write_journal(path)
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "failed cells:" in out
        assert "505.mcf_r/mcf.test: failed after 3 attempt(s) — boom" in out

    def test_missing_journal_is_an_error(self, tmp_path, capsys):
        assert main(["trace", "summary", str(tmp_path / "nope.jsonl")]) == 1
        assert "no trace journal" in capsys.readouterr().err

    def test_suite_strict_flag_aborts_on_failure(self, tmp_path, monkeypatch, capsys):
        from repro.core.engine import FAULT_INJECT_ENV

        monkeypatch.setenv(FAULT_INJECT_ENV, "raise:505.mcf_r:mcf.train")
        path = tmp_path / "run.jsonl"
        rc = main(
            ["suite", "505.mcf_r", "--no-cache", "--strict", "--retries", "0",
             "--trace", str(path)]
        )
        assert rc == 1
        assert "aborted (strict)" in capsys.readouterr().err
        # The journal still records every settled cell.
        assert any(not s.ok for s in trace_spans(path))

    def test_suite_degraded_run_reports_and_exits_nonzero(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.core.engine import FAULT_INJECT_ENV

        monkeypatch.setenv(FAULT_INJECT_ENV, "raise:505.mcf_r:mcf.train")
        rc = main(["suite", "505.mcf_r", "--no-cache", "--retries", "0"])
        assert rc == 1
        captured = capsys.readouterr()
        assert "505.mcf_r" in captured.out  # degraded row still printed
        assert "failed cells:" in captured.err
        assert "mcf.train" in captured.err
