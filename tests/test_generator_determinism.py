"""Generator determinism across fresh instantiations (engine prerequisite).

The result cache keys workloads by name + seed + payload digest; that
only works if ``alberta_set(seed)`` is a pure function of its seed —
two fresh generator instances must mint byte-identical workload sets,
and a different seed must actually change the payload content.
"""

import pytest

from repro.core.cache import payload_digest
from repro.core.suite import benchmark_ids, get_generator

ALL_IDS = sorted(benchmark_ids())

#: MANUAL-provenance generators (Section IV-B): their payloads are fixed
#: parameter-file enumerations, so the seed lands only in the metadata.
SEED_INDEPENDENT = {"507.cactuBSSN_r", "510.parest_r", "521.wrf_r"}


def _set_digests(benchmark_id: str, base_seed: int) -> list[tuple[str, str]]:
    generator = get_generator(benchmark_id)  # fresh instance every call
    return [
        (w.name, payload_digest(w.payload))
        for w in generator.alberta_set(base_seed)
    ]


@pytest.mark.parametrize("bid", ALL_IDS)
def test_alberta_set_identical_across_instantiations(bid):
    first = _set_digests(bid, 0)
    second = _set_digests(bid, 0)
    assert [name for name, _ in first] == [name for name, _ in second]
    assert first == second


@pytest.mark.parametrize("bid", ALL_IDS)
def test_alberta_set_differs_for_different_seed(bid):
    # Individual workloads may be seed-independent (fixed SPEC-style
    # inputs), but the set as a whole must change content with the seed
    # — except for the MANUAL generators, whose authored parameter
    # files are deliberately seed-independent.
    digests_seed0 = [d for _, d in _set_digests(bid, 0)]
    digests_seed1 = [d for _, d in _set_digests(bid, 1)]
    if bid in SEED_INDEPENDENT:
        assert digests_seed0 == digests_seed1
    else:
        assert digests_seed0 != digests_seed1


@pytest.mark.parametrize("bid", ALL_IDS)
def test_workload_metadata_is_reproducible(bid):
    a = get_generator(bid).alberta_set(0)
    b = get_generator(bid).alberta_set(0)
    assert a.manifest() == b.manifest()
