"""The declarative sweep API and the one-pass batched replay behind it.

Covers the :mod:`repro.core.sweep` request values (validation,
serialization, cache tokens), the deprecation adapters that keep the
legacy ``characterize_sweep(benchmark_id, machines)`` / keyword
``replay`` call forms working, and the golden gate of the batched
path: a batched sweep must be bit-identical to per-config replay —
checked on the tier-1 trio here and on all 16 benchmarks under
``-m slow``.
"""

from __future__ import annotations

import json
import warnings

import pytest

try:
    from tests.test_golden_equivalence import assert_reports_identical
except ImportError:  # running with tests/ itself on sys.path
    from test_golden_equivalence import assert_reports_identical
from repro.core.cache import ResultCache
from repro.core.run import Session
from repro.core.suite import alberta_workloads, benchmark_ids
from repro.core.sweep import (
    MachineGrid,
    ReplayRequest,
    SweepRequest,
    default_sweep_grid,
)
from repro.core.trace import summarize_trace
from repro.machine.cache import CacheGeometry
from repro.machine.capture import capture_execution
from repro.machine.cost import MachineConfig
from repro.machine.sampling import SamplingPlan
from repro.core.suite import get_benchmark

TIER1_TRIO = ["505.mcf_r", "519.lbm_r", "557.xz_r"]

#: Small but adversarial grid: both predictors, one sub-L1 sizing
#: change, and a line-size change (which shares nothing level-wise).
TEST_GRID = MachineGrid(
    names=("default", "bimodal", "small-llc", "wide-lines"),
    machines=(
        None,
        MachineConfig(predictor="bimodal", predictor_table_bits=12),
        MachineConfig(geometry=CacheGeometry(llc_kib=2048)),
        MachineConfig(geometry=CacheGeometry(line_bytes=128)),
    ),
)


def _refrate(bid):
    workloads = alberta_workloads(bid)
    return next((w for w in workloads if w.name.endswith(".refrate")), workloads[0])


class TestMachineGrid:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            MachineGrid(names=(), machines=())
        with pytest.raises(ValueError, match="names for"):
            MachineGrid(names=("a", "b"), machines=(None,))
        with pytest.raises(ValueError, match="duplicate"):
            MachineGrid(names=("a", "a"), machines=(None, None))
        with pytest.raises(ValueError, match="non-empty string"):
            MachineGrid(names=("",), machines=(None,))
        with pytest.raises(ValueError, match="expected a MachineConfig"):
            MachineGrid(names=("a",), machines=({"width": 4},))

    def test_none_normalizes_to_default(self):
        grid = MachineGrid(names=("default",), machines=(None,))
        assert grid["default"] == MachineConfig()

    def test_lookup_and_len(self):
        grid = TEST_GRID
        assert len(grid) == 4
        assert grid["bimodal"].predictor == "bimodal"
        with pytest.raises(KeyError, match="no config named 'nope'"):
            grid["nope"]

    def test_from_presets(self):
        grid = MachineGrid.from_presets("default", "i7-6700k")
        assert grid.names == ("default", "i7-6700k")
        assert grid["default"] == MachineConfig()
        # no names: every preset, sorted, stable
        assert MachineGrid.from_presets().names == (
            "atom-like", "i7-2600", "i7-6700k",
        )

    def test_from_machines_autonames(self):
        grid = MachineGrid.from_machines([None, MachineConfig(width=8)])
        assert grid.names == ("cfg0", "cfg1")
        assert grid["cfg1"].width == 8

    def test_dict_roundtrip_through_json(self):
        grid = TEST_GRID
        back = MachineGrid.from_dict(json.loads(json.dumps(grid.to_dict())))
        assert back == grid
        assert back.cache_token() == grid.cache_token()

    def test_cache_token_is_content_addressed(self):
        a = MachineGrid.from_presets("default", "i7-6700k")
        b = MachineGrid.from_presets("default", "i7-6700k")
        assert a.cache_token() == b.cache_token()
        assert a.cache_token().startswith("grid.2.")
        # renaming or reordering changes the identity
        c = MachineGrid.from_presets("i7-6700k", "default")
        assert c.cache_token() != a.cache_token()

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError, match="non-empty 'configs'"):
            MachineGrid.from_dict({})
        with pytest.raises(ValueError, match="needs a 'name'"):
            MachineGrid.from_dict({"configs": [{"width": 4}]})


class TestSweepRequest:
    def test_validation(self):
        grid = MachineGrid.from_presets("default")
        with pytest.raises(ValueError, match="benchmark"):
            SweepRequest(benchmark="", grid=grid)
        with pytest.raises(ValueError, match="grid must be"):
            SweepRequest(benchmark="505.mcf_r", grid=[None])
        with pytest.raises(ValueError, match="base_seed"):
            SweepRequest(benchmark="505.mcf_r", grid=grid, base_seed="0")
        with pytest.raises(ValueError, match="batched"):
            SweepRequest(benchmark="505.mcf_r", grid=grid, batched="yes")

    def test_dict_roundtrip_with_sampling(self):
        req = SweepRequest(
            benchmark="505.mcf_r",
            grid=TEST_GRID,
            base_seed=7,
            sampling=SamplingPlan(),
            batched=False,
        )
        back = SweepRequest.from_dict(json.loads(json.dumps(req.to_dict())))
        assert back == req
        assert back.cache_token() == req.cache_token()

    def test_cache_token_shape_and_strategy_blindness(self):
        batched = SweepRequest(benchmark="505.mcf_r", grid=TEST_GRID)
        forced = SweepRequest(benchmark="505.mcf_r", grid=TEST_GRID, batched=False)
        token = batched.cache_token()
        assert token.startswith("sweep.505.mcf_r.s0.grid.4.")
        # batched vs per-config is an execution strategy, not an identity
        assert forced.cache_token() == token
        seeded = SweepRequest(benchmark="505.mcf_r", grid=TEST_GRID, base_seed=1)
        assert seeded.cache_token() != token


class TestReplayRequest:
    def test_machine_validation(self):
        with pytest.raises(ValueError, match="machine must be"):
            ReplayRequest(machine="i7-6700k")
        assert ReplayRequest(machine=None).machine is None
        assert ReplayRequest().machine is not None  # the engine sentinel

    def test_sampling_validation(self):
        with pytest.raises(ValueError, match="sampling"):
            ReplayRequest(sampling="1/64")


class TestDefaultSweepGrid:
    def test_shape(self):
        grid = default_sweep_grid()
        assert len(grid) == 8
        assert len(set(grid.names)) == 8
        # the grid must exercise both grouping axes of the batched path
        sigs = {
            (m.predictor, m.predictor_table_bits, m.predictor_history_bits)
            for m in grid.machines
        }
        geos = {m.geometry for m in grid.machines}
        assert len(sigs) > 1
        assert len(geos) > 1


class TestDeprecationAdapters:
    def test_legacy_sweep_call_sites_pass_unmodified(self, tmp_path):
        """The pre-redesign call form must keep working (and warn)."""
        machines = [None, MachineConfig(predictor="bimodal")]
        wl = _refrate("519.lbm_r")
        with Session(cache=tmp_path / "store") as s:
            with pytest.warns(DeprecationWarning, match="SweepRequest"):
                legacy = s.characterize_sweep("519.lbm_r", machines, [wl])
        with Session(cache=tmp_path / "store2") as s:
            new = s.characterize_sweep(
                SweepRequest(
                    benchmark="519.lbm_r",
                    grid=MachineGrid.from_machines(machines),
                ),
                workloads=[wl],
            )
        assert legacy.ok and new.ok
        assert legacy.config_names == new.config_names == ["cfg0", "cfg1"]
        for a, b in zip(legacy.characterizations, new.characterizations):
            assert a.table2_row() == b.table2_row()

    def test_sweep_rejects_mixed_forms(self):
        req = SweepRequest(benchmark="519.lbm_r", grid=TEST_GRID)
        with Session() as s:
            with pytest.raises(TypeError, match="not both"):
                s.characterize_sweep(req, [None])
            with pytest.raises(TypeError, match="on the request itself"):
                s.characterize_sweep(req, base_seed=3)
            with pytest.raises(TypeError, match="needs a machine list"):
                s.characterize_sweep("519.lbm_r")

    def test_legacy_replay_keywords_warn_bare_stays_silent(self):
        wl = _refrate("519.lbm_r")
        cap = capture_execution(get_benchmark("519.lbm_r"), wl)
        with Session() as s:
            with pytest.warns(DeprecationWarning, match="ReplayRequest"):
                legacy = s.replay(cap, machine=MachineConfig(width=8))
            via_request = s.replay(cap, ReplayRequest(machine=MachineConfig(width=8)))
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                bare = s.replay(cap)
        assert legacy is not None and via_request is not None and bare is not None
        assert_reports_identical(legacy.report, via_request.report, "replay adapter")
        with Session() as s:
            with pytest.raises(TypeError, match="on the request itself"):
                s.replay(cap, ReplayRequest(), machine=None)


def _sweep_pair(bid, tmp_path, grid):
    """One batched and one per-config sweep of ``bid`` over ``grid``."""
    results = {}
    for mode, batched in (("batched", None), ("per-config", False)):
        trace = tmp_path / f"{bid}.{mode}.jsonl"
        with Session(
            cache=tmp_path / f"{bid}.{mode}", trace=trace
        ) as s:
            results[mode] = s.characterize_sweep(
                SweepRequest(
                    benchmark=bid,
                    grid=grid,
                    keep_profiles=True,
                    batched=batched,
                )
            )
        results[mode + ".trace"] = summarize_trace(trace)
    return results


class TestGoldenSweepIdentity:
    """Batched multi-config replay == per-config replay, bit for bit."""

    @pytest.mark.parametrize("bid", TIER1_TRIO)
    def test_trio_bit_identical(self, bid, tmp_path):
        res = _sweep_pair(bid, tmp_path, TEST_GRID)
        batched, per_config = res["batched"], res["per-config"]
        assert batched.ok and per_config.ok
        assert batched.config_names == per_config.config_names
        for name in TEST_GRID.names:
            a = batched.profile_for(name)
            b = per_config.profile_for(name)
            assert a.table2_row() == b.table2_row()
            for pa, pb in zip(a.profiles, b.profiles):
                assert_reports_identical(
                    pa.report, pb.report, f"{bid}/{name}/{pa.workload}"
                )
        # the batched run actually batched; the forced run did not
        assert res["batched.trace"].replays_batched == res["batched.trace"].replays
        assert res["per-config.trace"].replays_batched == 0

    @pytest.mark.slow
    @pytest.mark.parametrize("bid", sorted(benchmark_ids()))
    def test_full_suite_bit_identical(self, bid, tmp_path):
        res = _sweep_pair(bid, tmp_path, default_sweep_grid())
        batched, per_config = res["batched"], res["per-config"]
        assert batched.ok and per_config.ok
        for name in default_sweep_grid().names:
            a = batched.profile_for(name)
            b = per_config.profile_for(name)
            for pa, pb in zip(a.profiles, b.profiles):
                assert_reports_identical(
                    pa.report, pb.report, f"{bid}/{name}/{pa.workload}"
                )


class TestSweepResultOrdering:
    def test_profile_for_follows_grid_order(self, tmp_path):
        wl = _refrate("519.lbm_r")
        grid = MachineGrid(
            names=("wide", "default"),
            machines=(MachineConfig(width=8), None),
        )
        with Session(cache=tmp_path / "store") as s:
            result = s.characterize_sweep(
                SweepRequest(benchmark="519.lbm_r", grid=grid)
            )
        assert result.config_names == ["wide", "default"]
        assert result.profile_for("wide") is result.characterizations[0]
        assert result.profile_for("default") is result.characterizations[1]
        with pytest.raises(KeyError, match="no config named 'nope'"):
            result.profile_for("nope")


class TestReplayModeProvenance:
    def test_cache_envelopes_record_replay_mode(self, tmp_path):
        res = _sweep_pair("519.lbm_r", tmp_path, TEST_GRID)
        assert res["batched"].ok and res["per-config"].ok
        n_cells = len(TEST_GRID) * len(alberta_workloads("519.lbm_r"))
        batched_modes = ResultCache(tmp_path / "519.lbm_r.batched").replay_modes()
        assert batched_modes["batched"] == n_cells
        assert batched_modes["per-config"] == 0
        forced_modes = ResultCache(tmp_path / "519.lbm_r.per-config").replay_modes()
        assert forced_modes["batched"] == 0
        assert forced_modes["per-config"] == n_cells

    def test_profiles_round_trip_from_labeled_envelopes(self, tmp_path):
        """A replay_mode-labeled cache entry must still deserialize."""
        wl = _refrate("519.lbm_r")
        with Session(cache=tmp_path / "store", trace=tmp_path / "cold.jsonl") as s:
            cold = s.characterize_sweep(
                SweepRequest(benchmark="519.lbm_r", grid=TEST_GRID)
            )
        with Session(cache=tmp_path / "store", trace=tmp_path / "warm.jsonl") as s:
            warm = s.characterize_sweep(
                SweepRequest(benchmark="519.lbm_r", grid=TEST_GRID)
            )
        assert summarize_trace(tmp_path / "warm.jsonl").replays == 0
        for a, b in zip(cold.characterizations, warm.characterizations):
            assert a.table2_row() == b.table2_row()
