"""Tests for coverage profiles and Equation 5 summarization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.coverage import (
    OTHERS_LABEL,
    CoverageProfile,
    summarize_coverage,
)


class TestCoverageProfile:
    def test_from_times(self):
        p = CoverageProfile.from_times({"a": 30.0, "b": 70.0})
        assert p.fraction("a") == pytest.approx(0.3)
        assert p.fraction("b") == pytest.approx(0.7)

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            CoverageProfile({"a": 0.5, "b": 0.2})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CoverageProfile({"a": 1.2, "b": -0.2})

    def test_empty_profile_allowed(self):
        assert CoverageProfile({}).methods() == []

    def test_from_times_rejects_zero_total(self):
        with pytest.raises(ValueError):
            CoverageProfile.from_times({"a": 0.0})

    def test_missing_method_fraction_zero(self):
        p = CoverageProfile({"a": 1.0})
        assert p.fraction("nope") == 0.0

    def test_top(self):
        p = CoverageProfile({"a": 0.5, "b": 0.3, "c": 0.2})
        assert p.top(2) == [("a", 0.5), ("b", 0.3)]


class TestSummarizeCoverage:
    def test_stable_coverage_gives_one(self):
        p = CoverageProfile({"hot": 0.8, "warm": 0.2})
        summary = summarize_coverage([p, p, p])
        assert summary.mu_g_m == pytest.approx(1.0)
        assert summary.n_workloads == 3

    def test_shifting_coverage_grows(self):
        profiles = [
            CoverageProfile({"a": 0.9, "b": 0.1}),
            CoverageProfile({"a": 0.1, "b": 0.9}),
        ]
        assert summarize_coverage(profiles).mu_g_m > 2.0

    def test_others_bucket(self):
        profiles = [
            CoverageProfile({"hot": 0.9996, "t1": 0.0002, "t2": 0.0002}),
            CoverageProfile({"hot": 0.9996, "t1": 0.0003, "t2": 0.0001}),
        ]
        summary = summarize_coverage(profiles)
        assert OTHERS_LABEL in summary.per_method
        assert "t1" not in summary.per_method
        assert summary.methods == ("hot",)

    def test_appearing_method_drives_variation(self):
        """A method present in only one workload is a large sigma_g —
        the paper's lbm test-input mechanism."""
        stable = [CoverageProfile({"k": 1.0})] * 3
        appearing = [
            CoverageProfile({"k": 1.0}),
            CoverageProfile({"k": 1.0}),
            CoverageProfile({"k": 0.6, "init": 0.4}),
        ]
        assert (
            summarize_coverage(appearing).mu_g_m
            > summarize_coverage(stable).mu_g_m
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_coverage([])

    @given(
        st.lists(
            st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=4),
            min_size=1,
            max_size=6,
        )
    )
    def test_mu_g_m_at_least_one(self, raw):
        profiles = []
        for values in raw:
            total = sum(values)
            profiles.append(
                CoverageProfile(
                    {f"m{i}": v / total for i, v in enumerate(values)}
                )
            )
        assert summarize_coverage(profiles).mu_g_m >= 1.0 - 1e-9
