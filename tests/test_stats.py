"""Unit and property tests for repro.core.stats (Equations 1-5)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stats import (
    COVERAGE_FLOOR,
    RatioSummary,
    geometric_mean,
    geometric_std,
    method_variation,
    mu_g_of_variations,
    proportional_variation,
    summarize_ratio,
)

positive_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestGeometricMean:
    def test_single_value(self):
        assert geometric_mean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_three_values(self):
        assert geometric_mean([2.0, 4.0, 8.0]) == pytest.approx(4.0)

    def test_identical_values(self):
        assert geometric_mean([3.5] * 10) == pytest.approx(3.5)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, float("nan")])

    @given(st.lists(positive_floats, min_size=1, max_size=30))
    def test_bounded_by_min_max(self, values):
        g = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)

    @given(st.lists(positive_floats, min_size=1, max_size=30), positive_floats)
    def test_scale_equivariance(self, values, k):
        """gm(k*x) == k * gm(x)."""
        g1 = geometric_mean(values)
        g2 = geometric_mean([k * v for v in values])
        assert g2 == pytest.approx(k * g1, rel=1e-9)

    @given(st.lists(positive_floats, min_size=2, max_size=30))
    def test_leq_arithmetic_mean(self, values):
        """AM-GM inequality."""
        g = geometric_mean(values)
        a = sum(values) / len(values)
        assert g <= a * (1 + 1e-9)


class TestGeometricStd:
    def test_no_variation_gives_one(self):
        assert geometric_std([5.0] * 7) == pytest.approx(1.0)

    def test_known_value(self):
        # values e and 1/e around mu_g = 1: ln-ratios are +-1, variance 1
        values = [math.e, 1 / math.e]
        assert geometric_std(values) == pytest.approx(math.e)

    def test_always_at_least_one(self):
        assert geometric_std([1.0, 2.0, 3.0]) >= 1.0

    def test_accepts_precomputed_mean(self):
        values = [1.0, 2.0, 4.0]
        mu = geometric_mean(values)
        assert geometric_std(values, mu) == pytest.approx(geometric_std(values))

    @given(st.lists(positive_floats, min_size=1, max_size=30))
    def test_property_at_least_one(self, values):
        assert geometric_std(values) >= 1.0 - 1e-12

    @given(st.lists(positive_floats, min_size=1, max_size=30), positive_floats)
    def test_scale_invariance(self, values, k):
        """Geometric std is invariant under scaling."""
        s1 = geometric_std(values)
        s2 = geometric_std([k * v for v in values])
        assert s2 == pytest.approx(s1, rel=1e-6)


class TestProportionalVariation:
    def test_constant_series(self):
        # sigma_g = 1, mu_g = 0.5 -> V = 2
        assert proportional_variation([0.5, 0.5]) == pytest.approx(2.0)

    def test_small_mean_inflates_v(self):
        """The paper's lbm caveat: tiny means give large V even for
        modest absolute variation."""
        small = [0.004, 0.002, 0.008]
        large = [0.4, 0.2, 0.8]
        assert proportional_variation(small) > proportional_variation(large)

    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=20))
    def test_v_is_sigma_over_mu(self, values):
        v = proportional_variation(values)
        assert v == pytest.approx(geometric_std(values) / geometric_mean(values), rel=1e-9)


class TestRatioSummary:
    def test_fields_consistent(self):
        rs = summarize_ratio([0.1, 0.2, 0.4])
        assert rs.n == 3
        assert rs.mu_g == pytest.approx(0.2)
        assert rs.variation == pytest.approx(rs.sigma_g / rs.mu_g)

    def test_is_ratio_summary(self):
        assert isinstance(summarize_ratio([0.5]), RatioSummary)


class TestMuGOfVariations:
    def test_four_identical(self):
        assert mu_g_of_variations([2.0, 2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_matches_paper_equation4(self):
        vs = [1.2, 1.8, 3.3, 1.1]
        expected = (1.2 * 1.8 * 3.3 * 1.1) ** 0.25
        assert mu_g_of_variations(vs) == pytest.approx(expected)


class TestMethodVariation:
    def test_identical_coverage_gives_one(self):
        """Workload-invariant coverage must yield exactly mu_g(M) = 1,
        matching the published Table II values for mcf, deepsjeng,
        leela, and exchange2."""
        cov = {"a": 0.6, "b": 0.4}
        result = method_variation([cov, dict(cov), dict(cov)])
        assert result == pytest.approx(1.0)

    def test_shifting_coverage_increases_variation(self):
        stable = [{"a": 0.6, "b": 0.4}] * 3
        shifting = [{"a": 0.9, "b": 0.1}, {"a": 0.1, "b": 0.9}, {"a": 0.5, "b": 0.5}]
        assert method_variation(shifting) > method_variation(stable)

    def test_others_bucket_groups_small_methods(self):
        # two methods below the 0.05% threshold in all workloads get
        # grouped; the result must still be computable and >= 1
        cov1 = {"hot": 0.9992, "tiny1": 0.0004, "tiny2": 0.0004}
        cov2 = {"hot": 0.9992, "tiny1": 0.0002, "tiny2": 0.0006}
        v = method_variation([cov1, cov2])
        assert v >= 1.0

    def test_method_missing_in_one_workload(self):
        cov1 = {"a": 1.0}
        cov2 = {"a": 0.5, "b": 0.5}
        v = method_variation([cov1, cov2])
        assert v > 1.0

    def test_floor_prevents_zero_blowup(self):
        # without the floor, a zero fraction would make mu_g undefined
        cov1 = {"a": 1.0, "b": 0.0}
        cov2 = {"a": 0.0, "b": 1.0}
        v = method_variation([cov1, cov2], floor=COVERAGE_FLOOR)
        assert math.isfinite(v)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            method_variation([])

    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["m1", "m2", "m3"]),
                st.floats(min_value=0.0, max_value=1.0),
                min_size=1,
                max_size=3,
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_always_finite_and_geq_close_to_one(self, covs):
        v = method_variation(covs)
        assert math.isfinite(v)
        # V >= 1 would hold exactly for raw ratios; flooring keeps it close
        assert v > 0.9
