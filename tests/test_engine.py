"""Parallel/cached characterization engine: equivalence and cache behaviour.

The engine's whole contract is "same numbers, less time": fan-out over
processes and reuse from the on-disk cache must both reproduce the
serial characterization bit-for-bit.  The fast tests here pin that
contract on a couple of benchmarks; the `slow`-marked test sweeps every
registered benchmark (run with ``pytest -m slow``).
"""

import pytest

from repro.core.cache import (
    ResultCache,
    cache_key,
    payload_digest,
    profile_from_dict,
    profile_to_dict,
)
from repro.core.characterize import characterize, characterize_suite
from repro.core.engine import CharacterizationEngine, default_workers
from repro.core.suite import alberta_workloads, benchmark_ids, get_benchmark
from repro.machine import telemetry
from repro.machine.profiler import Profiler

# Cheap benchmarks exercised by the fast (tier-1) tests.
FAST_IDS = ("505.mcf_r", "557.xz_r")


class TestParallelEquivalence:
    @pytest.mark.parametrize("bid", FAST_IDS)
    def test_workers4_matches_serial(self, bid):
        serial = characterize(bid, workers=1)
        parallel = characterize(bid, workers=4)
        assert parallel.table2_row() == serial.table2_row()
        assert parallel.seconds_by_workload == serial.seconds_by_workload

    def test_workers_none_means_cpu_count(self):
        engine = CharacterizationEngine(workers=None)
        assert engine.workers == default_workers()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            CharacterizationEngine(workers=0)

    @pytest.mark.slow
    def test_suite_parallel_matches_serial(self):
        serial = characterize_suite(suite="int", table2_only=True, workers=1)
        parallel = characterize_suite(suite="int", table2_only=True, workers=2)
        assert [c.table2_row() for c in parallel] == [c.table2_row() for c in serial]


class TestResultCache:
    @pytest.mark.parametrize("bid", FAST_IDS)
    def test_cached_rerun_identical(self, bid, tmp_path):
        cache = ResultCache(tmp_path)
        serial = characterize(bid, workers=1)
        cold = characterize(bid, cache=cache)
        warm = characterize(bid, cache=cache)
        assert cold.table2_row() == serial.table2_row()
        assert warm.table2_row() == serial.table2_row()
        n = serial.n_workloads
        assert cache.stats.misses == n
        assert cache.stats.hits == n
        assert len(cache) == n

    def test_profile_round_trip_exact(self):
        workloads = alberta_workloads("557.xz_r")
        profile = Profiler().run(get_benchmark("557.xz_r"), workloads[0])
        restored = profile_from_dict(profile_to_dict(profile))
        assert restored.report.topdown == profile.report.topdown
        assert dict(restored.report.coverage.fractions) == dict(
            profile.report.coverage.fractions
        )
        assert restored.report.cycles == profile.report.cycles
        assert restored.report.seconds == profile.report.seconds
        assert restored.report.per_method == profile.report.per_method
        assert restored.report.cache_stats == profile.report.cache_stats
        assert restored.report.counters == profile.report.counters
        assert restored.output is None
        assert restored.verified is profile.verified

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        workloads = alberta_workloads("505.mcf_r")
        key = cache_key("505.mcf_r", workloads[0])
        path = cache._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.misses == 1

    def test_wipe(self, tmp_path):
        cache = ResultCache(tmp_path)
        characterize("505.mcf_r", cache=cache)
        assert len(cache) > 0
        removed = cache.wipe()
        assert removed == 7  # mcf's Table II workload count
        assert len(cache) == 0

    def test_key_sensitivity(self, tmp_path):
        """Key changes with workload content and machine config."""
        from repro.machine.cost import MachineConfig

        w0 = alberta_workloads("505.mcf_r", 0)[0]
        w0_again = alberta_workloads("505.mcf_r", 0)[0]
        w1 = alberta_workloads("505.mcf_r", 1)[0]
        assert cache_key("505.mcf_r", w0) == cache_key("505.mcf_r", w0_again)
        assert cache_key("505.mcf_r", w0) != cache_key("505.mcf_r", w1)
        assert cache_key("505.mcf_r", w0) != cache_key(
            "505.mcf_r", w0, MachineConfig(width=2)
        )

    def test_telemetry_counters_surface_cache_traffic(self, tmp_path):
        telemetry.reset_counters("engine.cache")
        characterize("505.mcf_r", cache=ResultCache(tmp_path))
        stats = telemetry.counters("engine.cache")
        assert stats["engine.cache.misses"] == 7
        assert stats["engine.cache.bytes_written"] > 0
        characterize("505.mcf_r", cache=ResultCache(tmp_path))
        stats = telemetry.counters("engine.cache")
        assert stats["engine.cache.hits"] == 7
        assert stats["engine.cache.bytes_read"] > 0


class TestPayloadDigest:
    def test_insertion_order_does_not_leak(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})
        assert payload_digest({1, 2, 3}) == payload_digest({3, 2, 1})

    def test_type_tags_distinguish_values(self):
        assert payload_digest(1) != payload_digest(1.0)
        assert payload_digest("1") != payload_digest(1)
        assert payload_digest(True) != payload_digest(1)

    def test_rejects_identity_reprs(self):
        with pytest.raises(TypeError):
            payload_digest(object())


@pytest.mark.slow
class TestFullSuiteEquivalence:
    def test_every_benchmark_parallel_serial_and_cached_identical(self, tmp_path):
        """ISSUE satellite: every registered benchmark, workers=4 vs 1,
        plus a cache round-trip, all produce identical table2_row dicts."""
        cache = ResultCache(tmp_path)
        for bid in sorted(benchmark_ids()):
            serial = characterize(bid, workers=1)
            parallel = characterize(bid, workers=4)
            cold = characterize(bid, cache=cache)
            warm = characterize(bid, cache=cache)
            assert parallel.table2_row() == serial.table2_row(), bid
            assert cold.table2_row() == serial.table2_row(), bid
            assert warm.table2_row() == serial.table2_row(), bid
