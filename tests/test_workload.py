"""Tests for Workload / WorkloadSet value objects."""

import pytest

from repro.core.workload import Workload, WorkloadKind, WorkloadSet


def wl(name="w1", benchmark="505.mcf_r", **kw):
    return Workload(name=name, benchmark=benchmark, payload=object(), **kw)


class TestWorkload:
    def test_defaults(self):
        w = wl()
        assert w.kind == WorkloadKind.PROCEDURAL
        assert w.seed is None

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            wl(name="")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            wl(kind="downloaded")

    def test_manifest_excludes_payload(self):
        w = wl(seed=42, params={"n": 3})
        m = w.manifest()
        assert m["seed"] == 42
        assert m["params"] == {"n": 3}
        assert "payload" not in m

    def test_all_kinds_accepted(self):
        for kind in WorkloadKind.ALL:
            assert wl(kind=kind).kind == kind


class TestWorkloadSet:
    def test_add_and_lookup(self):
        ws = WorkloadSet("505.mcf_r")
        ws.add(wl("a"))
        ws.add(wl("b"))
        assert len(ws) == 2
        assert ws["a"].name == "a"
        assert ws[1].name == "b"
        assert "a" in ws
        assert "zzz" not in ws

    def test_rejects_duplicate_names(self):
        ws = WorkloadSet("505.mcf_r")
        ws.add(wl("a"))
        with pytest.raises(ValueError):
            ws.add(wl("a"))

    def test_rejects_wrong_benchmark(self):
        ws = WorkloadSet("505.mcf_r")
        with pytest.raises(ValueError):
            ws.add(wl("a", benchmark="557.xz_r"))

    def test_iteration_preserves_order(self):
        ws = WorkloadSet("505.mcf_r", [wl("c"), wl("a"), wl("b")])
        assert ws.names() == ["c", "a", "b"]

    def test_manifest(self):
        ws = WorkloadSet("505.mcf_r", [wl("a", seed=1), wl("b", seed=2)])
        manifest = ws.manifest()
        assert [m["name"] for m in manifest] == ["a", "b"]
        assert all(m["benchmark"] == "505.mcf_r" for m in manifest)
