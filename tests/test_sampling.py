"""Phase-sampled replay: golden accuracy, exactness, and plumbing.

The headline suite for :mod:`repro.machine.sampling` — SimPoint-style
interval clustering over a :class:`~repro.machine.capture.TelemetryCapture`:

* **Golden accuracy** — on refrate streams, the sampled top-down
  fractions must land within 2% (absolute) of the exact replay while
  replaying at most a tenth of the events.  A three-benchmark subset
  runs in tier-1; the full 16-benchmark sweep runs under ``-m slow``
  (the same bound ``benchmarks/bench_sampling.py`` records into
  ``BENCH_sampling.json``).
* **Exactness escape hatch** — ``SamplingPlan(exact=True)`` must be
  bit-identical to ``sampling=None``, which must be bit-identical to
  the pre-sampling replay path.
* **Interval partition** (property-based) — the interval slicing the
  feature extractor and the replay loop share must be a partition of
  the event index space: concatenating the interval views reconstructs
  every column exactly, for arbitrary event counts including a partial
  final interval.
* **Cache separation** — a sampled profile must never be served for an
  exact request or vice versa: the plan's ``cache_token()`` joins the
  profile cache key.
* **Determinism** — :func:`repro.fdo.clustering.kmeans` (the phase
  clusterer) must return identical assignments and centroids for the
  same seed, in-process and across a fresh interpreter (worker
  processes must agree on phases or sampled sweeps would not cache).
"""

import json
import math
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.run import Session
from repro.core.sweep import MachineGrid, ReplayRequest, SweepRequest
from repro.core.suite import alberta_workloads, get_benchmark, registry
from repro.core.topdown import CATEGORIES
from repro.machine.capture import capture_execution, replay_capture
from repro.machine.sampling import (
    SampledProfile,
    SamplingInfo,
    SamplingPlan,
    interval_features,
    sampled_replay,
    slice_intervals,
)

from .test_golden_equivalence import assert_reports_identical

#: Acceptance bounds from the issue: <2% max absolute top-down-fraction
#: error at >=10x fewer replayed events, on every refrate stream.
MAX_TOPDOWN_ERROR = 0.02
MIN_EVENT_RATIO = 10.0

#: Tier-1 subset: a pointer chaser, a dense FP stencil, and a branchy
#: INT stream — the three stress different estimator terms.
TIER1_IDS = ("505.mcf_r", "519.lbm_r", "557.xz_r")


def _refrate(bid):
    workloads = alberta_workloads(bid)
    return next(
        (w for w in workloads if w.name.endswith(".refrate")), workloads[0]
    )


def _capture(bid):
    return capture_execution(get_benchmark(bid), _refrate(bid))


def _max_topdown_error(sampled, exact):
    return max(
        abs(getattr(sampled.topdown, c) - getattr(exact.topdown, c))
        for c in CATEGORIES
    )


def _check_golden(bid):
    capture = _capture(bid)
    exact = replay_capture(capture)
    sampled = replay_capture(capture, sampling=SamplingPlan())
    assert isinstance(sampled, SampledProfile)
    err = _max_topdown_error(sampled.report, exact.report)
    ratio = sampled.sampling.event_ratio
    assert err < MAX_TOPDOWN_ERROR, f"{bid}: topdown error {err:.4f}"
    assert ratio >= MIN_EVENT_RATIO, f"{bid}: event ratio {ratio:.1f}x"
    assert sampled.sampling.events_total == capture.n_events
    assert 0 < sampled.sampling.events_replayed <= capture.n_events
    return err, ratio


class TestGoldenAccuracy:
    @pytest.mark.parametrize("bid", TIER1_IDS)
    def test_refrate_subset(self, bid):
        err, ratio = _check_golden(bid)
        print(f"\n{bid}: err={err:.4f} ratio={ratio:.1f}x")

    @pytest.mark.slow
    @pytest.mark.parametrize("bid", sorted(registry()))
    def test_refrate_full_suite(self, bid):
        err, ratio = _check_golden(bid)
        print(f"\n{bid}: err={err:.4f} ratio={ratio:.1f}x")

    def test_estimated_error_reported_per_metric(self):
        capture = _capture("505.mcf_r")
        sampled = replay_capture(capture, sampling=SamplingPlan())
        est = sampled.sampling.estimated_error
        # exact terms carry a zero error bar; sampled terms a finite one
        assert est["branches"] == 0.0
        assert est["data"] == 0.0
        assert est["calls"] == 0.0
        for field in ("mispredicts", "d_l2", "d_llc"):
            assert math.isfinite(est[field]) and est[field] >= 0.0


class TestExactness:
    """The escape hatch and the default path stay bit-identical."""

    def test_exact_plan_matches_unsampled(self):
        capture = _capture("505.mcf_r")
        base = replay_capture(capture)
        via_plan = replay_capture(capture, sampling=SamplingPlan(exact=True))
        assert not isinstance(via_plan, SampledProfile)
        assert_reports_identical(base.report, via_plan.report, "exact plan")

    def test_exact_plan_matches_direct_cost_model(self):
        # the pre-sampling path: materialize + CostModel.evaluate
        from repro.machine.cost import CostModel

        capture = _capture("557.xz_r")
        direct = CostModel().evaluate(capture.materialize())
        via_plan = replay_capture(capture, sampling=SamplingPlan(exact=True))
        assert_reports_identical(direct, via_plan.report, "pre-sampling path")

    def test_sampled_replay_rejects_exact_plan(self):
        capture = _capture("505.mcf_r")
        with pytest.raises(ValueError):
            sampled_replay(capture, SamplingPlan(exact=True))

    def test_sampled_replay_rejects_mutating_cost_model(self):
        # FdoCostModel (and any other CostModel subclass) mutates the
        # probe it evaluates; the per-method ratio corrections assume
        # the baseline accounting, so the sampled path refuses them.
        from repro.machine.cost import CostModel

        class Mutating(CostModel):
            pass

        capture = _capture("505.mcf_r")
        with pytest.raises(ValueError):
            replay_capture(
                capture, sampling=SamplingPlan(), cost_model=Mutating()
            )

    def test_sampling_is_deterministic(self):
        capture = _capture("519.lbm_r")
        a = replay_capture(capture, sampling=SamplingPlan())
        b = replay_capture(capture, sampling=SamplingPlan())
        assert_reports_identical(a.report, b.report, "repeat sampled replay")
        assert a.sampling == b.sampling


class TestIntervalPartition:
    """Satellite: interval slicing is a partition of the event space."""

    @given(
        n_events=st.integers(min_value=0, max_value=5000),
        intervals=st.integers(min_value=1, max_value=64),
        min_events=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_bounds_partition_the_index_space(self, n_events, intervals, min_events):
        bounds = slice_intervals(n_events, intervals, min_events)
        # contiguous, ordered, non-empty, covering exactly [0, n_events)
        assert all(s < e for s, e in bounds)
        if n_events == 0:
            assert bounds == ()
        else:
            assert [s for s, _ in bounds] == [0] + [e for _, e in bounds[:-1]]
            assert bounds[0][0] == 0 and bounds[-1][1] == n_events

    @given(
        n_events=st.integers(min_value=1, max_value=2000),
        intervals=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_concatenated_views_reconstruct_columns(self, n_events, intervals):
        rng = np.random.default_rng(n_events * 33 + intervals)
        columns = tuple(
            rng.integers(0, 1000, size=n_events, dtype=np.int64) for _ in range(4)
        )
        bounds = slice_intervals(n_events, intervals)
        for col in columns:
            rebuilt = np.concatenate([col[s:e] for s, e in bounds])
            assert np.array_equal(rebuilt, col)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            slice_intervals(-1, 4)
        with pytest.raises(ValueError):
            slice_intervals(100, 0)

    def test_features_align_with_bounds(self):
        capture = _capture("505.mcf_r")
        bounds = slice_intervals(capture.n_events, 64)
        feats = interval_features(capture.columns, bounds, len(capture.methods))
        assert feats.shape[0] == len(bounds)
        assert np.isfinite(feats).all()


class TestPlanAndSerialization:
    def test_plan_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan(intervals=0)
        with pytest.raises(ValueError):
            SamplingPlan(phases=-1)
        with pytest.raises(ValueError):
            SamplingPlan(rate=0)

    def test_cache_token_distinguishes_plans(self):
        a, b = SamplingPlan(), SamplingPlan(intervals=640)
        assert a.cache_token() != b.cache_token()
        assert SamplingPlan(exact=True).cache_token() is None

    def test_plan_round_trip(self):
        plan = SamplingPlan(intervals=640, phases=8, rate=10, seed=3)
        assert SamplingPlan.from_dict(plan.to_dict()) == plan

    def test_profile_round_trip_keeps_sampling(self):
        from repro.core.cache import profile_from_dict, profile_to_dict

        capture = _capture("505.mcf_r")
        sampled = replay_capture(capture, sampling=SamplingPlan())
        back = profile_from_dict(json.loads(json.dumps(profile_to_dict(sampled))))
        assert isinstance(back, SampledProfile)
        assert back.sampling == sampled.sampling
        assert_reports_identical(sampled.report, back.report, "round trip")

    def test_exact_profile_round_trip_has_no_sampling(self):
        from repro.core.cache import profile_from_dict, profile_to_dict

        capture = _capture("505.mcf_r")
        exact = replay_capture(capture)
        back = profile_from_dict(json.loads(json.dumps(profile_to_dict(exact))))
        assert not isinstance(back, SampledProfile)


class TestCacheSeparation:
    """Sampled and exact replays never share a profile-cache entry."""

    def test_cache_key_extends_with_sampling(self):
        from repro.core.cache import cache_key

        wl = _refrate("505.mcf_r")
        exact_key = cache_key("505.mcf_r", wl, None)
        token = SamplingPlan().cache_token()
        assert cache_key("505.mcf_r", wl, None, sampling=token) != exact_key
        # exact plans tokenize to None and share the exact entry
        assert cache_key("505.mcf_r", wl, None, sampling=None) == exact_key

    def test_warm_store_keeps_paths_apart(self, tmp_path):
        bid, plan = "505.mcf_r", SamplingPlan()
        wl = _refrate(bid)
        with Session(cache=tmp_path / "store") as s:
            cap = s.capture(bid, wl)
            first_sampled = s.replay(cap, ReplayRequest(workload=wl, sampling=plan))
            first_exact = s.replay(cap, ReplayRequest(workload=wl))
        with Session(cache=tmp_path / "store") as s:
            cap = s.capture(bid, wl)
            warm_sampled = s.replay(cap, ReplayRequest(workload=wl, sampling=plan))
            warm_exact = s.replay(cap, ReplayRequest(workload=wl))
        assert isinstance(first_sampled, SampledProfile)
        assert isinstance(warm_sampled, SampledProfile)
        assert not isinstance(warm_exact, SampledProfile)
        assert warm_sampled.sampling == first_sampled.sampling
        assert_reports_identical(warm_exact.report, first_exact.report, "warm exact")
        # the warm session answered every replay from the store
        assert s.summary.replay_hits == 2
        assert s.summary.replays == 0


class TestPipelineVisibility:
    """Satellite: sweeps and traces distinguish sampled from exact."""

    def test_sweep_counts_sampled_replays(self, tmp_path):
        with Session(trace=tmp_path / "t.jsonl") as s:
            result = s.characterize_sweep(
                SweepRequest(
                    benchmark="519.lbm_r",
                    grid=MachineGrid.from_machines([None]),
                    sampling=SamplingPlan(),
                ),
                workloads=[_refrate("519.lbm_r")],
            )
        assert result.ok
        assert s.summary.replays == 1
        assert s.summary.replays_sampled == 1

    def test_exact_sweep_reports_zero_sampled(self):
        with Session() as s:
            s.characterize_sweep(
                SweepRequest(
                    benchmark="519.lbm_r", grid=MachineGrid.from_machines([None])
                ),
                workloads=[_refrate("519.lbm_r")],
            )
        assert s.summary.replays == 1
        assert s.summary.replays_sampled == 0

    def test_sampled_stage_span_and_journal_round_trip(self, tmp_path):
        from repro.core.trace import summarize_trace, trace_spans, trace_stages

        path = tmp_path / "t.jsonl"
        with Session(trace=path) as s:
            s.characterize_sweep(
                SweepRequest(
                    benchmark="505.mcf_r",
                    grid=MachineGrid.from_machines([None]),
                    sampling=SamplingPlan(),
                ),
                workloads=[_refrate("505.mcf_r")],
            )
        spans = trace_spans(path)
        assert [sp.sampled for sp in spans] == [True]
        assert any(st.name == "sample" for st in trace_stages(path))
        assert not any(st.name == "replay" for st in trace_stages(path))
        assert summarize_trace(path).replays_sampled == 1

    def test_sampled_journal_renders_distinctly(self, tmp_path):
        # Satellite: the human listing and the Chrome export must make a
        # phase-sampled replay visually distinct from an exact one.
        from repro.core.trace import export_chrome_trace, render_trace_spans

        path = tmp_path / "t.jsonl"
        with Session(trace=path) as s:
            s.characterize_sweep(
                SweepRequest(
                    benchmark="505.mcf_r",
                    grid=MachineGrid.from_machines([None]),
                    sampling=SamplingPlan(),
                ),
                workloads=[_refrate("505.mcf_r")],
            )
        listing = render_trace_spans(path)
        assert "[sampled]" in listing
        assert "sample*" in listing  # the stage label keeps its * suffix
        assert "replay " not in listing.split("└─")[1]

        chrome = export_chrome_trace(path)
        cells = [e for e in chrome["traceEvents"] if e.get("cat") == "cell"]
        assert cells and all(e["args"]["sampled"] for e in cells)
        assert all(e["name"].endswith("[sampled]") for e in cells)
        sample_stages = [
            e for e in chrome["traceEvents"] if e.get("cat") == "stage.sample"
        ]
        assert sample_stages
        for e in sample_stages:
            assert e["name"] == "sample*"
            assert e["cname"] == "yellow"
        assert not any(
            e["name"] == "replay" for e in chrome["traceEvents"]
            if e.get("cat", "").startswith("stage")
        )

    def test_old_journals_decode_without_sampled_field(self):
        from repro.core.trace import CellSpan, RunSummary

        span = CellSpan.from_dict(
            {"benchmark": "b", "workload": "w", "cache": "off",
             "attempts": 1, "duration_s": 0.1, "outcome": "ok"}
        )
        assert span.sampled is False
        assert RunSummary(cells=1).replays_sampled == 0

    def test_telemetry_mirrors_sampled_replays(self):
        from repro.machine import telemetry

        before = telemetry.counters("engine.run").get(
            "engine.run.replays_sampled", 0
        )
        with Session() as s:
            cap = s.capture("505.mcf_r", "mcf.refrate")
            s.replay(cap, ReplayRequest(sampling=SamplingPlan()))
        after = telemetry.counters("engine.run")["engine.run.replays_sampled"]
        assert after == before + 1


class TestKmeansDeterminism:
    """Satellite: same seed -> identical clustering, everywhere."""

    @staticmethod
    def _digest(assignments, centroids):
        import hashlib

        h = hashlib.sha256()
        h.update(np.ascontiguousarray(assignments).tobytes())
        h.update(np.ascontiguousarray(centroids).tobytes())
        return h.hexdigest()

    def test_same_seed_same_clusters_in_process(self):
        from repro.fdo.clustering import kmeans

        rng = np.random.default_rng(7)
        vectors = rng.normal(size=(200, 9))
        a1, c1 = kmeans(vectors, 12, seed=0)
        a2, c2 = kmeans(vectors, 12, seed=0)
        assert np.array_equal(a1, a2)
        assert np.array_equal(c1, c2)
        a3, _ = kmeans(vectors, 12, seed=1)
        assert not np.array_equal(a1, a3)  # the seed is actually consulted

    def test_same_seed_same_clusters_across_interpreters(self):
        """A worker process must derive the same phases as the parent."""
        import os
        from pathlib import Path

        import repro
        from repro.fdo.clustering import kmeans

        rng = np.random.default_rng(11)
        vectors = rng.normal(size=(150, 7))
        assignments, centroids = kmeans(vectors, 8, seed=0)
        local = self._digest(assignments, centroids)
        script = (
            "import hashlib\n"
            "import numpy as np\n"
            "from repro.fdo.clustering import kmeans\n"
            "rng = np.random.default_rng(11)\n"
            "vectors = rng.normal(size=(150, 7))\n"
            "assignments, centroids = kmeans(vectors, 8, seed=0)\n"
            "h = hashlib.sha256()\n"
            "h.update(np.ascontiguousarray(assignments).tobytes())\n"
            "h.update(np.ascontiguousarray(centroids).tobytes())\n"
            "print(h.hexdigest())\n"
        )
        pkg_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [pkg_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert proc.stdout.strip() == local

    def test_sampled_replay_phase_choice_is_seeded(self):
        capture = _capture("505.mcf_r")
        _, info_a = sampled_replay(capture, SamplingPlan(seed=0))
        _, info_b = sampled_replay(capture, SamplingPlan(seed=0))
        assert info_a.representatives == info_b.representatives
