"""Tests for the top-down category model and its summarization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.topdown import CATEGORIES, TopDownVector, summarize_topdown


def vec(f, b, s, r):
    return TopDownVector(front_end=f, back_end=b, bad_speculation=s, retiring=r)


class TestTopDownVector:
    def test_valid_vector(self):
        v = vec(0.1, 0.4, 0.2, 0.3)
        assert v.front_end == 0.1

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            vec(0.5, 0.5, 0.5, 0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            vec(-0.1, 0.5, 0.3, 0.3)

    def test_from_cycles_normalizes(self):
        v = TopDownVector.from_cycles(10, 40, 20, 30)
        assert v.back_end == pytest.approx(0.4)
        assert sum(v.as_tuple()) == pytest.approx(1.0, abs=1e-4)

    def test_from_cycles_rejects_zero_total(self):
        with pytest.raises(ValueError):
            TopDownVector.from_cycles(0, 0, 0, 0)

    def test_zero_clamped_in_as_tuple(self):
        v = vec(0.0, 0.5, 0.0, 0.5)
        f, b, s, r = v.as_tuple()
        assert f > 0 and s > 0

    def test_category_accessor(self):
        v = vec(0.1, 0.4, 0.2, 0.3)
        assert v.category("retiring") == pytest.approx(0.3)
        with pytest.raises(KeyError):
            v.category("nope")

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4)
    )
    def test_from_cycles_always_valid(self, cycles):
        v = TopDownVector.from_cycles(*cycles)
        assert abs(sum((v.front_end, v.back_end, v.bad_speculation, v.retiring)) - 1.0) < 1e-9


class TestSummarizeTopdown:
    def test_identical_vectors_no_variation(self):
        vs = [vec(0.1, 0.4, 0.2, 0.3)] * 5
        summary = summarize_topdown(vs)
        assert summary.n_workloads == 5
        for c in CATEGORIES:
            assert summary.sigma_g(c) == pytest.approx(1.0)
        # V = sigma/mu = 1/mu per category; mu_g(V) = gm of those
        expected = (
            (1 / 0.1) * (1 / 0.4) * (1 / 0.2) * (1 / 0.3)
        ) ** 0.25
        assert summary.mu_g_v == pytest.approx(expected)

    def test_variation_increases_mu_g_v(self):
        stable = [vec(0.25, 0.25, 0.25, 0.25)] * 4
        varying = [
            vec(0.1, 0.4, 0.2, 0.3),
            vec(0.4, 0.1, 0.3, 0.2),
            vec(0.2, 0.3, 0.1, 0.4),
            vec(0.3, 0.2, 0.4, 0.1),
        ]
        assert summarize_topdown(varying).mu_g_v > summarize_topdown(stable).mu_g_v

    def test_small_mean_caveat(self):
        """Reproduce the paper's lbm/cactuBSSN caveat: a category with a
        tiny mean and large spread inflates mu_g(V)."""
        lbm_like = [
            vec(0.019, 0.612, 0.001, 0.368),
            vec(0.019, 0.612, 0.012, 0.357),
            vec(0.019, 0.612, 0.002, 0.367),
        ]
        steady = [
            vec(0.15, 0.45, 0.15, 0.25),
            vec(0.16, 0.44, 0.14, 0.26),
            vec(0.14, 0.46, 0.16, 0.24),
        ]
        assert summarize_topdown(lbm_like).mu_g_v > summarize_topdown(steady).mu_g_v

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_topdown([])

    def test_mu_g_matches_paper_table_semantics(self):
        """mu_g per category is the geometric mean of per-workload fractions."""
        vs = [vec(0.1, 0.4, 0.2, 0.3), vec(0.4, 0.1, 0.3, 0.2)]
        summary = summarize_topdown(vs)
        assert summary.mu_g("front_end") == pytest.approx((0.1 * 0.4) ** 0.5)
