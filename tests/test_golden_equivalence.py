"""Golden equivalence: vectorized replay == frozen scalar reference.

The columnar telemetry / vectorized replay rewrite is gated on bit
identity: for every benchmark, one fixed workload replayed through the
new pipeline must produce *exactly* the report the frozen pre-rewrite
implementation (``tests/_legacy_machine.py``) produces — same sampled
stream, same predictions, same hit/miss sequences, same floating-point
accumulation order.  Checked at the default event cap and at a forced
small cap (which exercises decimation and the scalar dispatch paths).
"""

from __future__ import annotations

import pytest

try:
    from tests import _legacy_machine as legacy
except ImportError:  # running with tests/ itself on sys.path
    import _legacy_machine as legacy
from repro.core.suite import alberta_workloads, get_benchmark, registry
from repro.machine.cost import CostModel, MachineConfig
from repro.machine.telemetry import Probe

CACHE_FIELDS = (
    "l1d_accesses",
    "l1d_misses",
    "l1i_accesses",
    "l1i_misses",
    "l2_accesses",
    "l2_misses",
    "llc_accesses",
    "llc_misses",
    "dtlb_misses",
)
METHOD_FIELDS = (
    "uops",
    "retiring_cycles",
    "bad_spec_cycles",
    "frontend_cycles",
    "backend_cycles",
    "est_mispredicts",
    "est_data_misses",
)


def assert_reports_identical(a, b, tag):
    assert a.cycles == b.cycles, f"{tag}: cycles {a.cycles} != {b.cycles}"
    assert a.seconds == b.seconds, f"{tag}: seconds"
    assert (
        a.branch_misprediction_rate == b.branch_misprediction_rate
    ), f"{tag}: misprediction rate"
    for f in ("front_end", "back_end", "bad_speculation", "retiring"):
        assert getattr(a.topdown, f) == getattr(b.topdown, f), f"{tag}: topdown.{f}"
    for f in CACHE_FIELDS:
        assert getattr(a.cache_stats, f) == getattr(
            b.cache_stats, f
        ), f"{tag}: cache_stats.{f}"
    assert set(a.per_method) == set(b.per_method), f"{tag}: method set"
    for name in a.per_method:
        for f in METHOD_FIELDS:
            assert getattr(a.per_method[name], f) == getattr(
                b.per_method[name], f
            ), f"{tag}: {name}.{f}"
    assert dict(a.coverage.fractions) == dict(b.coverage.fractions), f"{tag}: coverage"


def fixed_workload(benchmark_id):
    workloads = alberta_workloads(benchmark_id)
    return next((w for w in workloads if w.name.endswith(".test")), workloads[0])


def run_pair(benchmark_id, cap, predictor):
    workload = fixed_workload(benchmark_id)
    benchmark = get_benchmark(benchmark_id)
    probe = Probe(event_cap=cap)
    benchmark.run(workload, probe)
    legacy_probe = legacy.LegacyProbe(event_cap=cap)
    benchmark.run(workload, legacy_probe)
    config = MachineConfig(predictor=predictor)
    return (
        CostModel(config).evaluate(probe),
        legacy.legacy_evaluate(legacy_probe, MachineConfig(predictor=predictor)),
    )


@pytest.mark.parametrize("benchmark_id", sorted(registry()))
def test_default_cap_bit_identical(benchmark_id):
    got, want = run_pair(benchmark_id, 262144, "gshare")
    assert_reports_identical(got, want, f"{benchmark_id}/gshare/default-cap")


@pytest.mark.parametrize("benchmark_id", sorted(registry()))
def test_small_cap_bit_identical(benchmark_id):
    """A forced-small cap decimates aggressively and drives short
    streams through the scalar dispatch paths."""
    got, want = run_pair(benchmark_id, 1024, "gshare")
    assert_reports_identical(got, want, f"{benchmark_id}/gshare/cap=1024")


@pytest.mark.parametrize("benchmark_id", ["531.deepsjeng_r", "557.xz_r", "519.lbm_r"])
def test_bimodal_bit_identical(benchmark_id):
    got, want = run_pair(benchmark_id, 1024, "bimodal")
    assert_reports_identical(got, want, f"{benchmark_id}/bimodal/cap=1024")
