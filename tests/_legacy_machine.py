"""Frozen pre-columnar machine model, kept verbatim as the golden reference.

This module is a snapshot of ``repro.machine.telemetry.Probe`` (list-of-
tuples event stream), the dict-backed branch predictors, and the scalar
``CostModel.evaluate`` replay loop exactly as they existed before the
columnar/vectorized rewrite.  ``tests/test_golden_equivalence.py`` runs
every benchmark through both implementations and asserts bit-identical
results; do not "improve" this code — its only job is to stay the same.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence

from repro.core.coverage import CoverageProfile
from repro.core.topdown import TopDownVector
from repro.machine.cache import CacheHierarchy
from repro.machine.cost import MachineConfig, MachineReport, MethodCost
from repro.machine.telemetry import EV_BRANCH, EV_CALL, EV_DATA, MethodCounters

__all__ = ["LegacyProbe", "legacy_evaluate"]

_CODE_REGION_BASE = 1 << 40
_DEFAULT_EVENT_CAP = 262_144
_MAX_FETCH_BLOCKS = 256


class LegacyProbe:
    """The pre-columnar probe: events are a list of 4-tuples."""

    def __init__(self, event_cap: int = _DEFAULT_EVENT_CAP):
        if event_cap < 1024:
            raise ValueError("event_cap too small to be representative")
        self._methods: dict[str, MethodCounters] = {}
        self._stack: list[MethodCounters] = []
        self._events: list[tuple[int, int, int, int]] = []
        self._event_cap = event_cap
        self._keep_every = 1
        self._tick = 0

    def register(self, name: str, code_bytes: int = 512) -> MethodCounters:
        mc = self._methods.get(name)
        if mc is None:
            code_base = _CODE_REGION_BASE + (zlib.crc32(name.encode()) << 12)
            mc = MethodCounters(
                name=name,
                index=len(self._methods),
                code_base=code_base,
                code_bytes=code_bytes,
            )
            self._methods[name] = mc
        return mc

    def method(self, name: str, code_bytes: int = 512) -> "_LegacyScope":
        return _LegacyScope(self, self.register(name, code_bytes))

    @property
    def current(self) -> MethodCounters:
        if not self._stack:
            raise RuntimeError("no active method scope; wrap work in probe.method(...)")
        return self._stack[-1]

    def methods(self) -> list[MethodCounters]:
        return list(self._methods.values())

    def _push_event(self, kind: int, a: int, b: int) -> None:
        self._tick += 1
        if self._tick % self._keep_every:
            return
        events = self._events
        events.append((self._stack[-1].index, kind, a, b))
        if len(events) >= self._event_cap:
            self._events = events[::2]
            self._keep_every *= 2

    def ops(self, n: int = 1, kind: str = "int") -> None:
        mc = self.current
        if kind == "int":
            mc.int_ops += n
        elif kind == "fp":
            mc.fp_ops += n
        elif kind == "fpdiv":
            mc.fpdiv_ops += n
        else:
            raise ValueError(f"unknown op kind {kind!r}")

    def branch(self, taken: bool, site: int = 0) -> None:
        mc = self.current
        mc.branches += 1
        if taken:
            mc.branches_taken += 1
        self._push_event(EV_BRANCH, mc.code_base + site * 16, 1 if taken else 0)

    def branches(self, outcomes: Iterable[bool], site: int = 0) -> None:
        mc = self.current
        pc = mc.code_base + site * 16
        taken = 0
        count = 0
        for t in outcomes:
            count += 1
            if t:
                taken += 1
            self._push_event(EV_BRANCH, pc, 1 if t else 0)
        mc.branches += count
        mc.branches_taken += taken

    def load(self, addr: int) -> None:
        mc = self.current
        mc.loads += 1
        self._push_event(EV_DATA, addr, 0)

    def store(self, addr: int) -> None:
        mc = self.current
        mc.stores += 1
        self._push_event(EV_DATA, addr, 1)

    def accesses(self, addrs: Sequence[int], store: bool = False) -> None:
        mc = self.current
        flag = 1 if store else 0
        for addr in addrs:
            self._push_event(EV_DATA, addr, flag)
        if store:
            mc.stores += len(addrs)
        else:
            mc.loads += len(addrs)

    def count(self, key: str, n: int = 1) -> None:
        extra = self.current.extra
        extra[key] = extra.get(key, 0) + n

    @property
    def events(self) -> list[tuple[int, int, int, int]]:
        return self._events

    @property
    def sampling_stride(self) -> int:
        return self._keep_every

    def total_branches(self) -> int:
        return sum(mc.branches for mc in self._methods.values())

    def total_data_accesses(self) -> int:
        return sum(mc.data_accesses for mc in self._methods.values())

    def total_ops(self) -> int:
        return sum(mc.total_ops for mc in self._methods.values())


class _LegacyScope:
    __slots__ = ("_probe", "_mc")

    def __init__(self, probe: LegacyProbe, mc: MethodCounters):
        self._probe = probe
        self._mc = mc

    def __enter__(self) -> MethodCounters:
        mc = self._mc
        mc.calls += 1
        probe = self._probe
        probe._stack.append(mc)
        probe._push_event(EV_CALL, mc.index, 0)
        return mc

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._probe._stack.pop()


class _LegacyBimodal:
    """Dict-backed 2-bit bimodal predictor (pre-bytearray)."""

    def __init__(self, table_bits: int = 12):
        self._mask = (1 << table_bits) - 1
        self._counters: dict[int, int] = {}

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        idx = pc & self._mask
        counter = self._counters.get(idx, 1)
        prediction = counter >= 2
        correct = prediction == taken
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        return correct


class _LegacyGshare:
    """Dict-backed gshare predictor (pre-bytearray)."""

    def __init__(self, table_bits: int = 14, history_bits: int = 12):
        self._mask = (1 << table_bits) - 1
        self._history = 0
        self._history_mask = (1 << history_bits) - 1
        self._counters: dict[int, int] = {}

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        idx = (pc ^ self._history) & self._mask
        counter = self._counters.get(idx, 1)
        prediction = counter >= 2
        correct = prediction == taken
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._history_mask
        return correct


class _Replay:
    __slots__ = (
        "branches", "mispredicts",
        "data", "d_l2", "d_llc", "d_mem", "d_tlb",
        "calls", "c_l2", "c_llc", "c_mem",
    )

    def __init__(self) -> None:
        self.branches = 0
        self.mispredicts = 0
        self.data = 0
        self.d_l2 = 0
        self.d_llc = 0
        self.d_mem = 0
        self.d_tlb = 0
        self.calls = 0
        self.c_l2 = 0
        self.c_llc = 0
        self.c_mem = 0


def legacy_evaluate(probe, config: MachineConfig | None = None) -> MachineReport:
    """The pre-columnar scalar replay loop, verbatim.

    Accepts either a :class:`LegacyProbe` or the current columnar probe
    (both expose iterable ``events`` yielding 4-tuples).
    """
    cfg = config or MachineConfig()
    if cfg.predictor == "gshare":
        predictor = _LegacyGshare(cfg.predictor_table_bits, cfg.predictor_history_bits)
    else:
        predictor = _LegacyBimodal(cfg.predictor_table_bits)
    hierarchy = CacheHierarchy()

    methods = probe.methods()
    replays: dict[int, _Replay] = {mc.index: _Replay() for mc in methods}
    by_index = {mc.index: mc for mc in methods}

    for method_idx, kind, a, b in probe.events:
        rep = replays[method_idx]
        if kind == EV_BRANCH:
            rep.branches += 1
            if not predictor.predict_and_update(a, bool(b)):
                rep.mispredicts += 1
        elif kind == EV_DATA:
            rep.data += 1
            tlb_hit = hierarchy.dtlb.hits
            level = hierarchy.access_data(a)
            if hierarchy.dtlb.hits == tlb_hit:
                rep.d_tlb += 1
            if level == 2:
                rep.d_l2 += 1
            elif level == 3:
                rep.d_llc += 1
            elif level == 4:
                rep.d_mem += 1
        else:  # EV_CALL
            target = by_index[a]
            rep = replays[a]
            rep.calls += 1
            blocks = min(max(1, target.code_bytes // 64), _MAX_FETCH_BLOCKS)
            base = target.code_base
            for i in range(blocks):
                level = hierarchy.access_code(base + i * 64)
                if level == 2:
                    rep.c_l2 += 1
                elif level == 3:
                    rep.c_llc += 1
                elif level == 4:
                    rep.c_mem += 1

    per_method: dict[str, MethodCost] = {}
    for mc in methods:
        rep = replays[mc.index]
        cost = MethodCost(name=mc.name)

        cost.uops = (
            mc.int_ops
            + mc.fp_ops
            + mc.fpdiv_ops
            + mc.branches
            + mc.loads
            + mc.stores
            + mc.calls * cfg.call_overhead_uops
        )
        cost.retiring_cycles = cost.uops / cfg.width

        if rep.branches:
            miss_rate = rep.mispredicts / rep.branches
            cost.est_mispredicts = mc.branches * miss_rate
        cost.bad_spec_cycles = cost.est_mispredicts * cfg.wrongpath_uops / cfg.width

        frontend = cost.est_mispredicts * cfg.refill_cycles
        if rep.calls:
            scale = mc.calls / rep.calls
            frontend += (
                scale
                * (
                    rep.c_l2 * cfg.l2_latency
                    + rep.c_llc * cfg.llc_latency
                    + rep.c_mem * cfg.mem_latency
                )
                / cfg.fetch_overlap
            )
        cost.frontend_cycles = frontend

        backend = (
            mc.fp_ops * cfg.fp_backend_stall
            + mc.fpdiv_ops * cfg.fpdiv_backend_stall
        )
        if rep.data:
            scale = mc.data_accesses / rep.data
            cost.est_data_misses = scale * (rep.d_l2 + rep.d_llc + rep.d_mem)
            backend += (
                scale
                * (
                    rep.d_l2 * cfg.l2_latency
                    + rep.d_llc * cfg.llc_latency
                    + rep.d_mem * cfg.mem_latency
                    + rep.d_tlb * cfg.tlb_walk_cycles
                )
                / cfg.mlp
            )
        cost.backend_cycles = backend

        per_method[mc.name] = cost

    total_ret = sum(c.retiring_cycles for c in per_method.values())
    total_bad = sum(c.bad_spec_cycles for c in per_method.values())
    total_fe = sum(c.frontend_cycles for c in per_method.values())
    total_be = sum(c.backend_cycles for c in per_method.values())
    total = total_ret + total_bad + total_fe + total_be
    if total <= 0:
        raise ValueError("cost model: benchmark recorded no work")

    topdown = TopDownVector.from_cycles(total_fe, total_be, total_bad, total_ret)
    coverage = CoverageProfile.from_times(
        {name: c.total_cycles for name, c in per_method.items() if c.total_cycles > 0}
    )
    seconds = total / (cfg.clock_ghz * 1e9)

    total_sampled_branches = sum(r.branches for r in replays.values())
    total_sampled_miss = sum(r.mispredicts for r in replays.values())
    mispred_rate = (
        total_sampled_miss / total_sampled_branches if total_sampled_branches else 0.0
    )

    return MachineReport(
        topdown=topdown,
        coverage=coverage,
        cycles=total,
        seconds=seconds,
        per_method=per_method,
        cache_stats=hierarchy.stats(),
        branch_misprediction_rate=mispred_rate,
        sampling_stride=probe.sampling_stride,
        counters={
            "uops": sum(c.uops for c in per_method.values()),
            "branches": float(probe.total_branches()),
            "data_accesses": float(probe.total_data_accesses()),
            "est_mispredicts": sum(c.est_mispredicts for c in per_method.values()),
            "est_data_misses": sum(c.est_data_misses for c in per_method.values()),
        },
    )
