"""Fault-tolerance tests: the engine must degrade, not detonate.

Faults are injected through the engine's ``REPRO_FAULT_INJECT``
environment hook (see :mod:`repro.core.engine`): ``raise`` makes the
worker raise, ``exit`` kills the worker process (breaking the pool),
``hang`` sleeps past the per-cell timeout.  Worker processes inherit
the environment, so the hook works across the process boundary, and
the ``max_attempt`` field makes retry-recovery deterministic.
"""

import pytest

from repro.core.cache import ResultCache, cache_key
from repro.core.engine import FAULT_INJECT_ENV
from repro.core.errors import CellFailure
from repro.core.run import Run
from repro.core.suite import alberta_workloads
from repro.core.trace import trace_spans
from repro.machine import telemetry

MCF = "505.mcf_r"
XZ = "557.xz_r"


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    monkeypatch.delenv(FAULT_INJECT_ENV, raising=False)


@pytest.fixture(scope="module")
def clean_mcf():
    return Run().characterize(MCF).characterization


class TestInjectedException:
    def test_strict_raises_cell_failure(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, f"raise:{MCF}:mcf.train")
        with pytest.raises(CellFailure) as excinfo:
            Run(workers=2, backoff=0.0).characterize(MCF)
        failure = excinfo.value
        assert failure.benchmark == MCF
        assert failure.workload == "mcf.train"
        assert failure.attempts == 2  # 1 + the default retry
        assert failure.outcome == "failed"
        assert "injected fault" in failure.error

    def test_cell_failure_is_a_value_error_for_now(self):
        # One deprecation cycle of ValueError compatibility.
        assert issubclass(CellFailure, ValueError)

    def test_non_strict_completes_with_failure_reported(self, monkeypatch, clean_mcf):
        monkeypatch.setenv(FAULT_INJECT_ENV, f"raise:{MCF}:mcf.train")
        result = Run(workers=2, backoff=0.0, strict=False).characterize(MCF)
        assert result.failed_cells == [(MCF, "mcf.train")]
        assert result.partial_benchmarks == {MCF}
        char = result.characterization
        assert char.n_workloads == clean_mcf.n_workloads - 1
        # Every surviving cell is bit-identical to the clean run.
        for name, seconds in char.seconds_by_workload.items():
            assert seconds == clean_mcf.seconds_by_workload[name]

    def test_inline_serial_path_also_degrades(self, monkeypatch, clean_mcf):
        monkeypatch.setenv(FAULT_INJECT_ENV, f"raise:{MCF}:mcf.train")
        result = Run(workers=1, backoff=0.0, strict=False).characterize(MCF)
        assert result.failed_cells == [(MCF, "mcf.train")]
        assert result.characterization.n_workloads == clean_mcf.n_workloads - 1


class TestRetry:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_transient_failure_recovers_and_matches_clean_run(
        self, monkeypatch, clean_mcf, workers
    ):
        # Fail only the first attempt; the bounded retry must recover.
        monkeypatch.setenv(FAULT_INJECT_ENV, f"raise:{MCF}:mcf.train:1")
        result = Run(workers=workers, backoff=0.0, retries=1).characterize(MCF)
        assert result.ok
        assert result.summary.retries >= 1
        assert result.characterization.table2_row() == clean_mcf.table2_row()

    def test_retries_zero_means_single_attempt(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, f"raise:{MCF}:mcf.train:1")
        with pytest.raises(CellFailure) as excinfo:
            Run(workers=2, backoff=0.0, retries=0).characterize(MCF)
        assert excinfo.value.attempts == 1


class TestTimeout:
    def test_hung_cell_times_out_and_rest_complete(self, monkeypatch, clean_mcf):
        monkeypatch.setenv(FAULT_INJECT_ENV, f"hang(5):{MCF}:mcf.train")
        result = Run(
            workers=2, backoff=0.0, retries=0, timeout=1.0, strict=False
        ).characterize(MCF)
        assert result.failed_cells == [(MCF, "mcf.train")]
        assert result.summary.timeouts == 1
        assert result.characterization.n_workloads == clean_mcf.n_workloads - 1

    def test_timeout_with_single_worker_uses_pool_to_enforce(self, monkeypatch):
        # workers=1 + timeout must still preempt: inline execution cannot.
        monkeypatch.setenv(FAULT_INJECT_ENV, f"hang(5):{MCF}:mcf.train")
        result = Run(
            workers=1, backoff=0.0, retries=0, timeout=1.0, strict=False
        ).characterize(MCF)
        assert result.failed_cells == [(MCF, "mcf.train")]

    def test_timeout_must_be_positive(self):
        from repro.core.engine import CharacterizationEngine

        with pytest.raises(ValueError):
            CharacterizationEngine(timeout=0.0)


class TestWorkerCrash:
    def test_broken_pool_recovers_surviving_cells(self, monkeypatch, clean_mcf):
        monkeypatch.setenv(FAULT_INJECT_ENV, f"exit:{MCF}:mcf.train")
        result = Run(workers=2, backoff=0.0, retries=1, strict=False).characterize(MCF)
        assert result.failed_cells == [(MCF, "mcf.train")]
        assert result.summary.crashes >= 1
        char = result.characterization
        assert char.n_workloads == clean_mcf.n_workloads - 1
        for name, seconds in char.seconds_by_workload.items():
            assert seconds == clean_mcf.seconds_by_workload[name]

    def test_strict_crash_raises_cell_failure(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, f"exit:{MCF}:mcf.train")
        with pytest.raises(CellFailure) as excinfo:
            Run(workers=2, backoff=0.0, retries=0).characterize(MCF)
        assert excinfo.value.workload == "mcf.train"
        assert excinfo.value.outcome == "crashed"


class TestCorruptCache:
    def test_corrupt_entry_quarantined_and_reprofiled(self, tmp_path, clean_mcf):
        telemetry.reset_counters("engine.cache.quarantined")
        cache = ResultCache(tmp_path)
        Run(cache=cache).characterize(MCF)
        key = cache_key(MCF, alberta_workloads(MCF)[0])
        path = cache._path(key)
        path.write_text("{truncated json")

        result = Run(cache=cache).characterize(MCF)
        assert result.ok
        assert result.characterization.table2_row() == clean_mcf.table2_row()
        # Entry moved aside, counted, and re-created by the re-profile.
        assert path.with_name(path.name + ".corrupt").exists()
        assert cache.stats.quarantined == 1
        assert cache.quarantined_entries() == 1
        assert result.summary.quarantined == 1
        assert telemetry.counters("engine.cache")["engine.cache.quarantined"] == 1
        assert path.exists()

    def test_wipe_removes_quarantined_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        Run(cache=cache).characterize(MCF)
        key = cache_key(MCF, alberta_workloads(MCF)[0])
        cache._path(key).write_text("not json")
        assert cache.get(key) is None  # quarantines
        assert cache.quarantined_entries() == 1
        cache.wipe()
        assert cache.quarantined_entries() == 0
        assert len(cache) == 0


class TestDegradedSuite:
    """The ISSUE acceptance scenario, on a cheap two-benchmark subset."""

    def test_crash_plus_corrupt_cache_degrades_exactly(self, tmp_path, monkeypatch):
        ids = [MCF, XZ]
        reference = {
            c.benchmark_id: c.table2_row()
            for c in Run().characterize_suite(ids=ids).characterizations
        }

        # Warm the cache for xz, then corrupt one of its entries.
        cache = ResultCache(tmp_path / "cache")
        Run(cache=cache).characterize(XZ)
        corrupt_key = cache_key(XZ, alberta_workloads(XZ)[0])
        cache._path(corrupt_key).write_text("{truncated")

        monkeypatch.setenv(FAULT_INJECT_ENV, f"exit:{MCF}:mcf.train")
        trace_path = tmp_path / "run.jsonl"
        result = Run(
            workers=2,
            cache=cache,
            strict=False,
            backoff=0.0,
            retries=1,
            trace=trace_path,
        ).characterize_suite(ids=ids)

        # Exactly the crashed cell is reported failed...
        assert result.failed_cells == [(MCF, "mcf.train")]
        assert result.partial_benchmarks == {MCF}
        by_id = {c.benchmark_id: c for c in result.characterizations}
        # ...the unaffected benchmark is bit-identical to a clean serial
        # run (including the quarantined-and-reprofiled cell)...
        assert by_id[XZ].table2_row() == reference[XZ]
        # ...and the affected benchmark carries every surviving cell.
        assert by_id[MCF].n_workloads == reference[MCF]["n_workloads"] - 1

        # The trace journal tells the same story.
        failed_spans = [s for s in trace_spans(trace_path) if not s.ok]
        assert [(s.benchmark, s.workload) for s in failed_spans] == [(MCF, "mcf.train")]
        assert result.summary.quarantined == 1
        assert result.summary.failed == 1
        assert result.summary.cache_hits == len(alberta_workloads(XZ)) - 1
