"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_accepts_ids(self):
        args = build_parser().parse_args(["table2", "557.xz_r", "505.mcf_r"])
        assert args.benchmarks == ["557.xz_r", "505.mcf_r"]

    def test_generate_seed(self):
        args = build_parser().parse_args(["generate", "505.mcf_r", "--seed", "9"])
        assert args.seed == 9


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out
        assert "no Table II row" in out  # x264

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Arithmetic Average" in out

    def test_generate(self, capsys):
        assert main(["generate", "548.exchange2_r", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "verified : yes" in out
        assert "exchange2" in out

    def test_report(self, capsys):
        assert main(["report", "548.exchange2_r"]) == 0
        out = capsys.readouterr().out
        assert "mu_g(V)" in out

    def test_validate(self, capsys):
        assert main(["validate", "505.mcf_r"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_table2_single(self, capsys):
        assert main(["table2", "548.exchange2_r"]) == 0
        out = capsys.readouterr().out
        assert "548.exchange2_r" in out
        assert "mu_g(V)" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "548.exchange2_r"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2", "548.exchange2_r"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    @pytest.mark.slow
    def test_export_bundle(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        assert main(["export", str(out), "548.exchange2_r", "557.xz_r", "541.leela_r"]) == 0
        assert (out / "table1.txt").exists()
        assert (out / "table2.txt").exists()
        assert (out / "table2.json").exists()
        assert (out / "sensitivity.txt").exists()
        assert (out / "comparison.json").exists()
        assert (out / "reports" / "548.exchange2_r.txt").exists()
        assert (out / "figures" / "557.xz_r.fig1.txt").exists()
        assert (out / "figures" / "557.xz_r.fig2.txt").exists()
