"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table2_accepts_ids(self):
        args = build_parser().parse_args(["table2", "557.xz_r", "505.mcf_r"])
        assert args.benchmarks == ["557.xz_r", "505.mcf_r"]

    def test_generate_seed(self):
        args = build_parser().parse_args(["generate", "505.mcf_r", "--seed", "9"])
        assert args.seed == 9


class TestObservability:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs")
        paths = {
            "metrics": root / "metrics.json",
            "prom": root / "metrics.prom",
            "chrome": root / "trace.chrome.json",
            "trace": root / "trace.jsonl",
        }
        rc = main(
            ["suite", "505.mcf_r", "--no-cache",
             "--metrics", str(paths["metrics"]),
             "--prom", str(paths["prom"]),
             "--chrome-trace", str(paths["chrome"]),
             "--trace", str(paths["trace"])]
        )
        assert rc == 0
        return paths

    def test_suite_writes_all_three_artifacts(self, artifacts):
        for path in artifacts.values():
            assert path.exists() and path.stat().st_size > 0

    def test_prom_snapshot_is_text_exposition(self, artifacts):
        text = artifacts["prom"].read_text()
        assert "# TYPE repro_stage_seconds histogram" in text
        assert "repro_cells_total" in text

    def test_chrome_trace_loads_as_trace_event_json(self, artifacts):
        import json

        doc = json.loads(artifacts["chrome"].read_text())
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert cats == {"run", "cell", "stage"}

    def test_metrics_show_renders_stage_percentiles(self, artifacts, capsys):
        assert main(["metrics", "show", str(artifacts["metrics"])]) == 0
        out = capsys.readouterr().out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "repro_stage_seconds" in out

    def test_metrics_prom_matches_suite_export(self, artifacts, capsys):
        assert main(["metrics", "prom", str(artifacts["metrics"])]) == 0
        assert capsys.readouterr().out.strip() == artifacts["prom"].read_text().strip()

    def test_metrics_show_json(self, artifacts, capsys):
        import json

        assert main(["metrics", "show", str(artifacts["metrics"]), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        hist = {h["metric"] for h in data["histograms"]}
        assert "repro_stage_seconds" in hist
        for h in data["histograms"]:
            assert {"metric", "labels", "count", "p50", "p95", "p99"} <= set(h)
        assert any(s["metric"] == "repro_cells_total" for s in data["scalars"])

    def test_trace_summary_json(self, artifacts, capsys):
        import json

        assert main(["trace", "summary", str(artifacts["trace"]), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["cells"] > 0 and data["failed"] == 0
        assert data["captures"] > 0 and data["replays"] > 0
        assert data["failed_cells"] == []

    def test_trace_summary_json_lists_failed_cells(self, tmp_path, capsys):
        import json

        from repro.core.trace import CellSpan, TraceWriter

        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path, mirror_telemetry=False)
        writer.start()
        writer.span(CellSpan("505.mcf_r", "mcf.test", "off", 2, 0.1,
                             "failed", "boom"))
        writer.finish()
        writer.close()
        assert main(["trace", "summary", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        cell, = data["failed_cells"]
        assert cell["workload"] == "mcf.test" and cell["error"] == "boom"

    def test_metrics_missing_snapshot_exits_2(self, tmp_path, capsys):
        assert main(["metrics", "show", str(tmp_path / "nope.json")]) == 2
        assert "no snapshot" in capsys.readouterr().err

    def test_metrics_garbage_snapshot_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        assert main(["metrics", "show", str(path)]) == 2
        assert "unreadable snapshot" in capsys.readouterr().err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "505.mcf_r" in out
        assert "no Table II row" in out  # x264

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Arithmetic Average" in out

    def test_generate(self, capsys):
        assert main(["generate", "548.exchange2_r", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "verified : yes" in out
        assert "exchange2" in out

    def test_report(self, capsys):
        assert main(["report", "548.exchange2_r"]) == 0
        out = capsys.readouterr().out
        assert "mu_g(V)" in out

    def test_validate(self, capsys):
        assert main(["validate", "505.mcf_r"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out

    def test_table2_single(self, capsys):
        assert main(["table2", "548.exchange2_r"]) == 0
        out = capsys.readouterr().out
        assert "548.exchange2_r" in out
        assert "mu_g(V)" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "548.exchange2_r"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig2", "548.exchange2_r"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    @pytest.mark.slow
    def test_export_bundle(self, tmp_path, capsys):
        out = tmp_path / "bundle"
        assert main(["export", str(out), "548.exchange2_r", "557.xz_r", "541.leela_r"]) == 0
        assert (out / "table1.txt").exists()
        assert (out / "table2.txt").exists()
        assert (out / "table2.json").exists()
        assert (out / "sensitivity.txt").exists()
        assert (out / "comparison.json").exists()
        assert (out / "reports" / "548.exchange2_r.txt").exists()
        assert (out / "figures" / "557.xz_r.fig1.txt").exists()
        assert (out / "figures" / "557.xz_r.fig2.txt").exists()
