"""Tests for workload-manifest persistence and rebuild."""

import json

import pytest

from repro.core import alberta_workloads
from repro.workloads.manifest import (
    load_manifest,
    rebuild_set,
    rebuild_workload,
    save_manifest,
)
from repro.workloads.mcf_gen import McfWorkloadGenerator
from repro.workloads.xz_gen import XzWorkloadGenerator


class TestSaveLoad:
    def test_roundtrip_document(self, tmp_path):
        ws = McfWorkloadGenerator().alberta_set()
        path = tmp_path / "mcf.json"
        save_manifest(ws, path)
        doc = load_manifest(path)
        assert doc["benchmark"] == "505.mcf_r"
        assert len(doc["workloads"]) == len(ws)

    def test_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError):
            load_manifest(path)

    def test_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 1}))
        with pytest.raises(ValueError):
            load_manifest(path)


class TestRebuild:
    def test_mcf_rebuild_is_bit_identical(self):
        original = McfWorkloadGenerator().generate(77, n_terminals=10, n_routes=5)
        rebuilt = rebuild_workload(original.manifest())
        assert rebuilt.payload.supplies == original.payload.supplies
        assert rebuilt.payload.arcs == original.payload.arcs

    def test_xz_rebuild_is_bit_identical(self):
        original = XzWorkloadGenerator().generate(13, style="mixed", size=2048)
        rebuilt = rebuild_workload(original.manifest())
        assert rebuilt.payload.content == original.payload.content

    def test_rebuild_preserves_name_and_kind(self):
        original = XzWorkloadGenerator().generate(13, style="text", size=2048)
        rebuilt = rebuild_workload(original.manifest())
        assert rebuilt.name == original.name
        assert rebuilt.kind == original.kind

    def test_seedless_entry_rejected(self):
        entry = {"name": "x", "benchmark": "557.xz_r", "seed": None, "params": {}}
        with pytest.raises(ValueError):
            rebuild_workload(entry)

    def test_full_set_roundtrip(self, tmp_path):
        ws = alberta_workloads("548.exchange2_r")
        path = tmp_path / "ex2.json"
        save_manifest(ws, path)
        rebuilt = rebuild_set(load_manifest(path))
        assert rebuilt.names() == ws.names()
        for name in ws.names():
            assert rebuilt[name].payload.seeds == ws[name].payload.seeds

    def test_derived_params_ignored(self):
        """mcf manifests record n_trips (an output, not an input); the
        rebuild must filter it out instead of crashing."""
        original = McfWorkloadGenerator().generate(5)
        entry = original.manifest()
        assert "n_trips" in entry["params"]
        rebuilt = rebuild_workload(entry)  # must not raise
        assert rebuilt.payload.n_nodes == original.payload.n_nodes
