"""Resource attribution + stack sampler tests, and the flame/top CLI."""

import time

import pytest

from repro.cli import main
from repro.core.resources import (
    DEFAULT_HZ,
    SAMPLE_ENV,
    StackSampler,
    StageResourceTracker,
    merge_stacks,
    render_collapsed,
    sampler_from_env,
    top_frames,
)


def _busy(seconds):
    """Burn CPU (not sleep) so getrusage and the sampler both see work."""
    deadline = time.perf_counter() + seconds
    x = 0
    while time.perf_counter() < deadline:
        x += 1
    return x


# ------------------------------------------------------------ the tracker


class TestStageResourceTracker:
    def test_lap_reports_cpu_and_rss(self):
        tracker = StageResourceTracker()
        _busy(0.05)
        res = tracker.lap()
        assert set(res) == {"cpu_user_s", "cpu_sys_s", "max_rss_kb"}
        assert res["cpu_user_s"] + res["cpu_sys_s"] > 0.0
        assert res["max_rss_kb"] > 0

    def test_laps_are_deltas(self):
        tracker = StageResourceTracker()
        _busy(0.05)
        first = tracker.lap()
        second = tracker.lap()  # immediately after: near-zero new CPU
        assert second["cpu_user_s"] + second["cpu_sys_s"] < (
            first["cpu_user_s"] + first["cpu_sys_s"] + 0.02
        )

    def test_samples_key_only_when_nonzero(self):
        tracker = StageResourceTracker()
        assert "samples" not in tracker.lap()
        assert tracker.lap(samples=3)["samples"] == 3


# ------------------------------------------------------------ the sampler


class TestStackSampler:
    def test_samples_a_busy_region(self):
        with StackSampler(hz=500) as sampler:
            _busy(0.1)
        assert sampler.total_samples > 0
        assert sampler.stacks
        # this test function is on every captured stack
        assert any("_busy" in key for key in sampler.stacks)

    def test_samples_between_windows(self):
        t0 = time.perf_counter()
        with StackSampler(hz=500) as sampler:
            _busy(0.08)
            t1 = time.perf_counter()
            _busy(0.08)
        t2 = time.perf_counter()
        n_first = sampler.samples_between(t0, t1)
        n_second = sampler.samples_between(t1, t2)
        assert n_first + n_second == sampler.total_samples
        assert n_first > 0 and n_second > 0

    def test_stop_is_idempotent_and_halts_sampling(self):
        sampler = StackSampler(hz=500).start()
        _busy(0.03)
        sampler.stop()
        sampler.stop()
        n = sampler.total_samples
        _busy(0.05)
        assert sampler.total_samples == n

    def test_bad_hz_rejected(self):
        with pytest.raises(ValueError):
            StackSampler(hz=0)

    def test_sampler_from_env(self):
        assert sampler_from_env({}) is None
        for off in ("0", "false", "off", "no", ""):
            assert sampler_from_env({SAMPLE_ENV: off}) is None
        on = sampler_from_env({SAMPLE_ENV: "1"})
        assert on is not None and on.interval == pytest.approx(1.0 / DEFAULT_HZ)
        fast = sampler_from_env({SAMPLE_ENV: "250"})
        assert fast is not None and fast.interval == pytest.approx(1.0 / 250.0)
        assert sampler_from_env({SAMPLE_ENV: "-5"}) is None


# ----------------------------------------------------- collapsed stacks


class TestCollapsedStacks:
    STACKS = {"a.py:main;b.py:work": 3, "a.py:main;c.py:idle": 1}

    def test_merge_accumulates(self):
        acc = {}
        merge_stacks(acc, self.STACKS)
        merge_stacks(acc, {"a.py:main;b.py:work": 2})
        assert acc["a.py:main;b.py:work"] == 5
        assert acc["a.py:main;c.py:idle"] == 1

    def test_render_collapsed_format(self):
        text = render_collapsed(self.STACKS)
        assert "a.py:main;b.py:work 3" in text.splitlines()
        assert text.endswith("\n")
        assert render_collapsed({}) == ""

    def test_top_frames_ranks_leaves(self):
        top = top_frames(self.STACKS)
        assert top[0] == ("b.py:work", 3)
        assert top_frames(self.STACKS, limit=1) == [("b.py:work", 3)]


# ------------------------------------------- pipeline stage attribution


class TestPipelineAttribution:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("res") / "t.jsonl"
        rc = main(
            ["suite", "519.lbm_r", "--no-cache", "--workers", "1",
             "--trace", str(path)]
        )
        assert rc == 0
        return path

    def test_stage_spans_carry_resources(self, journal):
        from repro.core.trace import trace_stages

        stages = [st for st in trace_stages(journal) if st.resources]
        assert stages, "no stage carried resource attribution"
        for st in stages:
            assert st.resources["cpu_user_s"] >= 0.0
            assert st.resources["max_rss_kb"] > 0

    def test_replay_stages_carry_event_counts(self, journal):
        from repro.core.trace import trace_stages

        replays = [
            st for st in trace_stages(journal)
            if st.name == "replay" and st.resources
        ]
        assert replays
        assert any(st.resources.get("replay_events", 0) > 0 for st in replays)

    def test_cpu_metrics_families_populated(self, tmp_path):
        from repro.core import metrics
        from repro.core.run import Session

        with Session(workers=1) as s:
            cap = s.capture("519.lbm_r", "lbm.test")
            s.replay(cap)
            snap = s.metrics.to_dict()
        fams = snap["metrics"]
        assert "repro_stage_cpu_seconds" in fams
        assert "repro_peak_rss_kb" in fams
        labels = fams["repro_stage_cpu_seconds"]["labels"]
        assert list(labels) == ["benchmark", "stage", "cpu"]

    def test_sampling_env_folds_stacks_into_session(self, monkeypatch):
        from repro.core.run import Session

        monkeypatch.setenv(SAMPLE_ENV, "2000")
        with Session(workers=1) as s:
            cap = s.capture("519.lbm_r", "lbm.refrate")
            s.replay(cap)
            counts = dict(s.stack_counts)
        assert counts, "sampler enabled but no stacks were folded"
        assert all(isinstance(n, int) and n > 0 for n in counts.values())

    def test_sampling_off_by_default(self, monkeypatch):
        from repro.core.run import Session

        monkeypatch.delenv(SAMPLE_ENV, raising=False)
        with Session(workers=1) as s:
            cap = s.capture("519.lbm_r", "lbm.test")
            s.replay(cap)
            assert s.stack_counts == {}


# ---------------------------------------------------------------- the CLI


class TestFlameCli:
    def test_flame_writes_collapsed_stacks(self, tmp_path, capsys):
        out = tmp_path / "lbm.folded"
        rc = main(
            ["flame", "519.lbm_r", "--hz", "2000", "--seconds", "0.05",
             "--out", str(out)]
        )
        assert rc == 0
        text = out.read_text()
        assert text, "flame wrote an empty profile"
        for line in text.splitlines():
            frames, count = line.rsplit(" ", 1)
            assert ";" in frames and int(count) > 0
        assert "%" in capsys.readouterr().out  # top-frames summary printed

    def test_flame_unknown_benchmark_exits_2(self, capsys):
        assert main(["flame", "999.nope_r"]) == 2
        assert "flame" in capsys.readouterr().err

    def test_flame_unknown_workload_exits_2(self, capsys):
        assert main(["flame", "519.lbm_r", "--workload", "nope"]) == 2
        assert "no workload" in capsys.readouterr().err

    def test_suite_flame_flag_reports_sample_count(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(SAMPLE_ENV, "2000")
        out = tmp_path / "suite.folded"
        rc = main(
            ["suite", "519.lbm_r", "--no-cache", "--workers", "1",
             "--flame", str(out)]
        )
        assert rc == 0
        assert out.exists()
        assert "flamegraph:" in capsys.readouterr().err


class TestTopCli:
    @pytest.fixture(scope="class")
    def journal(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("top") / "t.jsonl"
        assert main(
            ["suite", "519.lbm_r", "--no-cache", "--workers", "1",
             "--trace", str(path)]
        ) == 0
        return path

    def test_top_once_renders_cells(self, journal, capsys):
        assert main(["top", str(journal), "--once"]) == 0
        out = capsys.readouterr().out
        assert "519.lbm_r" in out
        assert "run" in out

    def test_top_once_missing_journal_exits_2(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope.jsonl"), "--once"]) == 2
        assert "no records" in capsys.readouterr().err

    def test_top_tail_limits_rows(self, journal, capsys):
        assert main(["top", str(journal), "--once", "--tail", "3"]) == 0
        out = capsys.readouterr().out
        cells = [ln for ln in out.splitlines() if "519.lbm_r/" in ln]
        assert len(cells) <= 3
