"""Tests for the machine model: caches, predictors, cost model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.branch import BimodalPredictor, GsharePredictor
from repro.machine.cache import Cache, CacheConfig, CacheHierarchy, Tlb
from repro.machine.cost import CostModel, MachineConfig
from repro.machine.telemetry import Probe


class TestCacheConfig:
    def test_n_sets(self):
        cfg = CacheConfig(32 * 1024, 64, 8)
        assert cfg.n_sets == 64

    def test_rejects_nonmultiple_size(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 64, 2)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            CacheConfig(0, 64, 2)


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache(CacheConfig(1024, 64, 2))
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True  # same line
        assert c.access(64) is False  # next line

    def test_lru_eviction(self):
        # 2-way set: third distinct line mapping to the same set evicts LRU
        c = Cache(CacheConfig(1024, 64, 2))
        n_sets = c.config.n_sets
        stride = n_sets * 64  # same set index, different tags
        c.access(0)
        c.access(stride)
        c.access(2 * stride)  # evicts line 0
        assert c.access(0) is False

    def test_lru_refresh_on_hit(self):
        c = Cache(CacheConfig(1024, 64, 2))
        stride = c.config.n_sets * 64
        c.access(0)
        c.access(stride)
        c.access(0)  # refresh 0: now `stride` is LRU
        c.access(2 * stride)  # evicts `stride`
        assert c.access(0) is True
        assert c.access(stride) is False

    def test_sequential_within_working_set_all_hits_second_pass(self):
        c = Cache(CacheConfig(4096, 64, 4))
        addrs = list(range(0, 4096, 64))
        for a in addrs:
            c.access(a)
        c.reset_stats()
        for a in addrs:
            assert c.access(a) is True
        assert c.miss_rate() == 0.0

    def test_streaming_larger_than_cache_always_misses(self):
        c = Cache(CacheConfig(1024, 64, 2))
        for _ in range(3):
            for a in range(0, 64 * 1024, 64):
                c.access(a)
        # every pass evicts everything before reuse
        assert c.miss_rate() > 0.99

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=500))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        c = Cache(CacheConfig(2048, 64, 4))
        for a in addrs:
            c.access(a)
        for s in c._sets:
            assert len(s) <= 4


class TestTlb:
    def test_page_granularity(self):
        t = Tlb(entries=4, page_bytes=4096)
        assert t.access(0) is False
        assert t.access(4095) is True
        assert t.access(4096) is False

    def test_capacity_eviction(self):
        t = Tlb(entries=2, page_bytes=4096)
        t.access(0)
        t.access(4096)
        t.access(8192)  # evicts page 0
        assert t.access(0) is False


class TestHierarchy:
    def test_levels(self):
        h = CacheHierarchy()
        assert h.access_data(0) == 4  # cold: memory
        assert h.access_data(0) == 1  # L1 hit

    def test_l2_serves_l1_victim(self):
        h = CacheHierarchy()
        # fill L1D (32KiB) with a 64KiB stream: early lines fall out of
        # L1 but stay in L2 (256KiB)
        for a in range(0, 64 * 1024, 64):
            h.access_data(a)
        assert h.access_data(0) == 2

    def test_code_and_data_separate_l1(self):
        h = CacheHierarchy()
        h.access_data(0)
        # same address via code path misses L1I (separate array)
        assert h.access_code(0) in (2, 3)  # but hits unified L2


class TestPredictors:
    def test_bimodal_learns_bias(self):
        p = BimodalPredictor()
        for _ in range(100):
            p.predict_and_update(0x400, True)
        assert p.stats.misprediction_rate() < 0.05

    def test_bimodal_alternating_is_hard(self):
        p = BimodalPredictor()
        for i in range(200):
            p.predict_and_update(0x400, i % 2 == 0)
        assert p.stats.misprediction_rate() > 0.3

    def test_gshare_learns_pattern(self):
        """Gshare captures a repeating pattern bimodal cannot."""
        pattern = [True, True, False, True, False, False]
        g = GsharePredictor()
        b = BimodalPredictor()
        for i in range(3000):
            outcome = pattern[i % len(pattern)]
            g.predict_and_update(0x400, outcome)
            b.predict_and_update(0x400, outcome)
        assert g.stats.misprediction_rate() < b.stats.misprediction_rate()
        assert g.stats.misprediction_rate() < 0.05

    def test_random_branches_mispredict_heavily(self):
        rng = random.Random(7)
        g = GsharePredictor()
        for _ in range(5000):
            g.predict_and_update(0x400, rng.random() < 0.5)
        assert g.stats.misprediction_rate() > 0.3

    def test_invalid_table_bits(self):
        with pytest.raises(ValueError):
            BimodalPredictor(table_bits=0)
        with pytest.raises(ValueError):
            GsharePredictor(table_bits=10, history_bits=20)


class TestProbe:
    def test_requires_method_scope(self):
        p = Probe()
        with pytest.raises(RuntimeError):
            p.ops(1)

    def test_counters_exact(self):
        p = Probe()
        with p.method("m"):
            p.ops(10)
            p.ops(5, kind="fp")
            p.branch(True)
            p.branch(False)
            p.load(0)
            p.store(8)
        mc = p.methods()[0]
        assert mc.int_ops == 10
        assert mc.fp_ops == 5
        assert mc.branches == 2
        assert mc.branches_taken == 1
        assert mc.loads == 1
        assert mc.stores == 1
        assert mc.calls == 1

    def test_nested_scopes_attribute_to_innermost(self):
        p = Probe()
        with p.method("outer"):
            p.ops(1)
            with p.method("inner"):
                p.ops(100)
        by_name = {m.name: m for m in p.methods()}
        assert by_name["outer"].int_ops == 1
        assert by_name["inner"].int_ops == 100

    def test_unknown_op_kind(self):
        p = Probe()
        with p.method("m"):
            with pytest.raises(ValueError):
                p.ops(1, kind="simd")

    def test_event_decimation_keeps_cap(self):
        p = Probe(event_cap=2048)
        with p.method("m"):
            for i in range(10_000):
                p.load(i * 64)
        assert len(p.events) <= 2048
        assert p.sampling_stride > 1
        # exact counters unaffected by sampling
        assert p.methods()[0].loads == 10_000

    def test_registration_idempotent(self):
        p = Probe()
        with p.method("m"):
            pass
        with p.method("m"):
            pass
        assert len(p.methods()) == 1
        assert p.methods()[0].calls == 2

    def test_deterministic_code_base(self):
        p1, p2 = Probe(), Probe()
        a = p1.register("alpha").code_base
        b = p2.register("alpha").code_base
        assert a == b


class TestCostModel:
    def _profile(self, fill):
        p = Probe()
        fill(p)
        return CostModel().evaluate(p)

    def test_pure_compute_is_retiring_dominated(self):
        def fill(p):
            with p.method("kernel"):
                p.ops(100_000)

        rep = self._profile(fill)
        assert rep.topdown.retiring > 0.9

    def test_random_memory_is_backend_bound(self):
        rng = random.Random(3)

        def fill(p):
            with p.method("chase"):
                p.ops(10_000)
                p.accesses([rng.randrange(0, 1 << 26) & ~7 for _ in range(30_000)])

        rep = self._profile(fill)
        assert rep.topdown.back_end > 0.5

    def test_random_branches_raise_bad_speculation(self):
        rng = random.Random(4)

        def fill(p):
            with p.method("branchy"):
                p.ops(10_000)
                p.branches([rng.random() < 0.5 for _ in range(30_000)])

        rep = self._profile(fill)
        assert rep.topdown.bad_speculation > 0.2

    def test_big_code_footprint_is_frontend_bound(self):
        def fill(p):
            # many large methods called round-robin: L1I thrashing
            for rounds in range(30):
                for m in range(40):
                    with p.method(f"huge_{m}", code_bytes=4096):
                        p.ops(50)

        rep = self._profile(fill)
        assert rep.topdown.front_end > 0.2

    def test_coverage_fractions_sum_to_one(self):
        def fill(p):
            with p.method("a"):
                p.ops(1000)
            with p.method("b"):
                p.ops(3000)

        rep = self._profile(fill)
        assert sum(rep.coverage.fractions.values()) == pytest.approx(1.0)
        assert rep.coverage.fraction("b") > rep.coverage.fraction("a")

    def test_empty_probe_raises(self):
        p = Probe()
        with pytest.raises(ValueError):
            CostModel().evaluate(p)

    def test_seconds_scale_with_clock(self):
        def fill(p):
            with p.method("k"):
                p.ops(50_000)

        p = Probe()
        fill(p)
        slow = CostModel(MachineConfig(clock_ghz=1.0)).evaluate(p)
        p2 = Probe()
        fill(p2)
        fast = CostModel(MachineConfig(clock_ghz=4.0)).evaluate(p2)
        assert slow.seconds == pytest.approx(4 * fast.seconds)

    def test_determinism(self):
        def fill(p):
            rng = random.Random(11)
            with p.method("m"):
                p.ops(5000)
                p.branches([rng.random() < 0.6 for _ in range(5000)])
                p.accesses([rng.randrange(1 << 20) for _ in range(5000)])

        p1, p2 = Probe(), Probe()
        fill(p1)
        fill(p2)
        r1 = CostModel().evaluate(p1)
        r2 = CostModel().evaluate(p2)
        assert r1.cycles == r2.cycles
        assert r1.topdown == r2.topdown

    def test_machine_config_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(width=0)
        with pytest.raises(ValueError):
            MachineConfig(predictor="tage")
        with pytest.raises(ValueError):
            MachineConfig(mlp=0.5)


class TestPresets:
    def test_lookup(self):
        from repro.machine import I7_2600, preset

        assert preset("i7-2600") is I7_2600
        assert preset("I7-2600") is I7_2600

    def test_unknown(self):
        from repro.machine import preset

        with pytest.raises(KeyError):
            preset("threadripper")

    def test_skylake_is_faster(self):
        from repro.machine import I7_2600, I7_6700K

        def fill(p):
            rng = random.Random(8)
            with p.method("k"):
                p.ops(40_000)
                p.accesses([rng.randrange(1 << 22) for _ in range(10_000)])
                p.branches((rng.random() < 0.6 for _ in range(10_000)))

        p1, p2 = Probe(), Probe()
        fill(p1)
        fill(p2)
        sandy = CostModel(I7_2600).evaluate(p1)
        sky = CostModel(I7_6700K).evaluate(p2)
        assert sky.seconds < sandy.seconds

    def test_atom_is_slowest(self):
        from repro.machine import ATOM_LIKE, I7_2600

        def fill(p):
            with p.method("k"):
                p.ops(50_000)

        p1, p2 = Probe(), Probe()
        fill(p1)
        fill(p2)
        atom = CostModel(ATOM_LIKE).evaluate(p1)
        sandy = CostModel(I7_2600).evaluate(p2)
        assert atom.seconds > 2 * sandy.seconds
