"""Property-based invariants for the Section V statistics.

Hypothesis drives :mod:`repro.core.stats` and :mod:`repro.core.topdown`
with arbitrary (bounded, strictly positive) inputs and checks the
mathematical facts the pipeline relies on:

* ``min <= mu_g <= max`` — the geometric mean is bounded by the data;
* ``sigma_g >= 1`` — geometric dispersion has 1 as its floor;
* top-down fractions sum to ~1 and survive normalization;
* ``mu_g(V)`` is invariant under workload-order permutation (Table II
  must not depend on the order workloads happen to run in — the exact
  property the parallel engine leans on).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    RatioSummary,
    geometric_mean,
    geometric_std,
    mu_g_of_variations,
    proportional_variation,
)
from repro.core.topdown import CATEGORIES, TopDownVector, summarize_topdown

# Strictly positive, sane-magnitude ratios: wide enough to stress the
# log-space math, narrow enough to avoid overflow artifacts.
positive_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)
value_lists = st.lists(positive_floats, min_size=1, max_size=40)

# Raw cycle counts for top-down vectors (at least one must be nonzero).
cycle_quads = st.tuples(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    st.floats(min_value=1e-3, max_value=1e9, allow_nan=False),
)


class TestGeometricMean:
    @given(value_lists)
    def test_bounded_by_min_and_max(self, values):
        mu = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= mu <= max(values) * (1 + 1e-9)

    @given(positive_floats)
    def test_constant_series_is_identity(self, v):
        assert geometric_mean([v, v, v]) == pytest.approx(v)

    @given(value_lists, positive_floats)
    def test_scale_equivariance(self, values, k):
        scaled = geometric_mean([v * k for v in values])
        assert scaled == pytest.approx(geometric_mean(values) * k, rel=1e-6)


class TestGeometricStd:
    @given(value_lists)
    def test_at_least_one(self, values):
        assert geometric_std(values) >= 1.0

    @given(positive_floats)
    def test_no_variation_is_exactly_floor(self, v):
        assert geometric_std([v, v, v, v]) == pytest.approx(1.0)

    @given(value_lists)
    def test_ratio_summary_consistent(self, values):
        rs = RatioSummary(values)
        assert rs.mu_g == pytest.approx(geometric_mean(values))
        assert rs.sigma_g == pytest.approx(geometric_std(values))
        assert rs.variation == pytest.approx(rs.sigma_g / rs.mu_g)
        assert rs.variation > 0.0

    @given(value_lists)
    def test_proportional_variation_matches_definition(self, values):
        v = proportional_variation(values)
        assert v == pytest.approx(geometric_std(values) / geometric_mean(values))


class TestTopDownVector:
    @given(cycle_quads)
    def test_from_cycles_sums_to_one(self, quad):
        vec = TopDownVector.from_cycles(*quad)
        total = vec.front_end + vec.back_end + vec.bad_speculation + vec.retiring
        assert math.isclose(total, 1.0, abs_tol=1e-6)
        for name in CATEGORIES:
            assert 0.0 <= getattr(vec, name) <= 1.0
            assert vec.category(name) > 0.0  # epsilon-clamped

    def test_rejects_non_unit_sum(self):
        with pytest.raises(ValueError):
            TopDownVector(0.5, 0.5, 0.5, 0.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TopDownVector(-0.1, 0.6, 0.2, 0.3)


@st.composite
def topdown_vectors(draw):
    quad = draw(cycle_quads)
    return TopDownVector.from_cycles(*quad)


class TestSummaryPermutationInvariance:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(topdown_vectors(), min_size=2, max_size=12), st.randoms())
    def test_mu_g_v_order_invariant(self, vectors, rng):
        """Workload order must not affect Table II — the property the
        parallel engine relies on when it reorders nothing but could."""
        base = summarize_topdown(vectors)
        shuffled = list(vectors)
        rng.shuffle(shuffled)
        permuted = summarize_topdown(shuffled)
        assert permuted.mu_g_v == pytest.approx(base.mu_g_v, rel=1e-12)
        for cat in CATEGORIES:
            assert permuted.mu_g(cat) == pytest.approx(base.mu_g(cat), rel=1e-12)
            assert permuted.sigma_g(cat) == pytest.approx(base.sigma_g(cat), rel=1e-12)
            assert permuted.sigma_g(cat) >= 1.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(topdown_vectors(), min_size=1, max_size=12))
    def test_summary_category_bounds(self, vectors):
        summary = summarize_topdown(vectors)
        for cat in CATEGORIES:
            series = [v.category(cat) for v in vectors]
            assert min(series) * (1 - 1e-9) <= summary.mu_g(cat) <= max(series) * (1 + 1e-9)
        assert summary.mu_g_v == pytest.approx(
            mu_g_of_variations(summary.variation(c) for c in CATEGORIES)
        )
