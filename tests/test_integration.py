"""Integration tests: registry, characterization pipeline, validation,
reports, determinism across the whole stack."""

import pytest

from repro.core import (
    alberta_workloads,
    benchmark_ids,
    benchmark_report,
    characterize,
    get_benchmark,
    get_generator,
    validate_workload_set,
)
from repro.core.suite import registry
from repro.machine import MachineConfig, run_benchmark

#: Paper Table II workload counts per benchmark.
TABLE2_COUNTS = {
    "502.gcc_r": 19,
    "505.mcf_r": 7,
    "507.cactuBSSN_r": 11,
    "510.parest_r": 8,
    "511.povray_r": 10,
    "519.lbm_r": 30,
    "520.omnetpp_r": 10,
    "521.wrf_r": 16,
    "523.xalancbmk_r": 8,
    "526.blender_r": 16,
    "531.deepsjeng_r": 12,
    "541.leela_r": 12,
    "544.nab_r": 11,
    "548.exchange2_r": 13,
    "557.xz_r": 12,
}


class TestRegistry:
    def test_sixteen_benchmarks(self):
        assert len(benchmark_ids()) == 16

    def test_fifteen_in_table2(self):
        assert len(benchmark_ids(table2_only=True)) == 15
        assert "525.x264_r" not in benchmark_ids(table2_only=True)

    def test_int_fp_split(self):
        assert len(benchmark_ids("int")) == 9
        assert len(benchmark_ids("fp")) == 7

    def test_benchmark_names_match_registry(self):
        for bid, entry in registry().items():
            assert entry.make_benchmark().name == bid
            assert entry.make_generator().benchmark == bid

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_benchmark("999.zzz")
        with pytest.raises(KeyError):
            get_generator("999.zzz")


class TestWorkloadCounts:
    @pytest.mark.parametrize("bid", sorted(TABLE2_COUNTS))
    def test_alberta_set_matches_paper_count(self, bid):
        """Every default workload set has exactly the Table II count."""
        assert len(alberta_workloads(bid)) == TABLE2_COUNTS[bid]

    @pytest.mark.parametrize("bid", sorted(TABLE2_COUNTS))
    def test_every_set_has_spec_trio(self, bid):
        names = alberta_workloads(bid).names()
        assert any(n.endswith(".refrate") for n in names)
        assert any(n.endswith(".train") for n in names)
        assert any(n.endswith(".test") for n in names)


class TestCharacterization:
    def test_characterize_produces_table_row(self):
        char = characterize("557.xz_r")
        row = char.table2_row()
        assert row["benchmark"] == "557.xz_r"
        assert row["n_workloads"] == 12
        assert row["refrate_seconds"] > 0

    def test_deterministic(self):
        a = characterize("548.exchange2_r")
        b = characterize("548.exchange2_r")
        assert a.mu_g_v == b.mu_g_v
        assert a.mu_g_m == b.mu_g_m
        assert a.seconds_by_workload == b.seconds_by_workload

    def test_machine_config_changes_results(self):
        fast_mem = characterize(
            "520.omnetpp_r", machine=MachineConfig(mem_latency=60.0)
        )
        slow_mem = characterize(
            "520.omnetpp_r", machine=MachineConfig(mem_latency=400.0)
        )
        # omnetpp is memory bound: slower memory -> more back-end bound
        assert slow_mem.topdown.mu_g("back_end") > fast_mem.topdown.mu_g("back_end")

    def test_report_renders(self):
        char = characterize("557.xz_r")
        text = benchmark_report(char)
        assert "557.xz_r" in text
        assert "mu_g(V)" in text
        assert "lzma_encode" in text


class TestValidation:
    def test_all_mcf_workloads_valid(self):
        report = validate_workload_set(alberta_workloads("505.mcf_r"))
        assert report.ok, report.summary()

    def test_all_xz_workloads_valid(self):
        report = validate_workload_set(alberta_workloads("557.xz_r"))
        assert report.ok, report.summary()


@pytest.mark.slow
class TestPaperShape:
    """Coarse shape assertions against the paper's Table II."""

    def test_exchange2_is_most_stable(self):
        """exchange2 has sigma_g ~= 1.0 in every category (paper)."""
        char = characterize("548.exchange2_r")
        for cat in ("front_end", "back_end", "bad_speculation", "retiring"):
            assert char.topdown.sigma_g(cat) < 2.0

    def test_leela_bad_speculation_is_large(self):
        """leela has the suite's highest bad-speculation fraction."""
        leela = characterize("541.leela_r")
        lbm = characterize("519.lbm_r")
        assert leela.topdown.mu_g("bad_speculation") > 0.15
        assert lbm.topdown.mu_g("bad_speculation") < 0.01

    def test_omnetpp_is_backend_bound(self):
        char = characterize("520.omnetpp_r")
        assert char.topdown.mu_g("back_end") > 0.5

    def test_xalancbmk_most_method_variation(self):
        """xalancbmk has the largest mu_g(M) in the paper (108)."""
        xalan = characterize("523.xalancbmk_r")
        deepsjeng = characterize("531.deepsjeng_r")
        assert xalan.mu_g_m > 3 * deepsjeng.mu_g_m

    def test_kernel_benchmarks_have_low_mu_g_m(self):
        """mcf/deepsjeng/leela report mu_g(M) = 1 in the paper."""
        for bid in ("505.mcf_r", "531.deepsjeng_r", "541.leela_r"):
            assert characterize(bid).mu_g_m < 2.5, bid

    def test_lbm_mu_g_v_inflated(self):
        """lbm's mu_g(V) is inflated by its tiny bad-speculation mean —
        the paper's central caveat about the summarization."""
        lbm = characterize("519.lbm_r")
        xz = characterize("557.xz_r")
        assert lbm.mu_g_v > 2 * xz.mu_g_v
