"""Tests for the table/figure renderers and sensitivity analysis."""

import pytest

from repro.analysis.figures import (
    figure1_series,
    figure2_series,
    render_figure1,
    render_figure2,
)
from repro.analysis.sensitivity import (
    detect_caveats,
    rank_by_mu_g_m,
    rank_by_mu_g_v,
    sensitivity_report,
)
from repro.analysis.tables import render_table1, render_table2, table1_rows, table2_rows
from repro.core.characterize import characterize


@pytest.fixture(scope="module")
def xz_char():
    return characterize("557.xz_r", keep_profiles=True)


@pytest.fixture(scope="module")
def lbm_char():
    return characterize("519.lbm_r", keep_profiles=True)


class TestTable1:
    def test_rows_include_footer(self):
        rows = table1_rows()
        assert rows[-1]["area"] == "Arithmetic Average of Times"
        assert rows[-1]["time2017"] == 517
        assert rows[-1]["time2006"] == 405

    def test_render_contains_benchmarks(self):
        text = render_table1()
        assert "505.mcf_r" in text
        assert "429.mcf" in text
        assert "633" in text


class TestTable2:
    def test_rows_sorted_and_complete(self, xz_char, lbm_char):
        rows = table2_rows([xz_char, lbm_char])
        assert [r["benchmark"] for r in rows] == ["519.lbm_r", "557.xz_r"]
        for row in rows:
            for key in ("f_mu_g", "b_sigma_g", "s_mu_g", "r_sigma_g", "mu_g_v", "mu_g_m"):
                assert key in row

    def test_mu_g_percentages_sum_to_about_100(self, xz_char):
        row = xz_char.table2_row()
        total = row["f_mu_g"] + row["b_mu_g"] + row["s_mu_g"] + row["r_mu_g"]
        # geometric means of the four categories need not sum exactly,
        # but must be in the right ballpark
        assert 60 < total < 110

    def test_render(self, xz_char):
        text = render_table2([xz_char])
        assert "557.xz_r" in text
        assert "mu_g(V)" in text


class TestFigures:
    def test_figure1_series_shape(self, xz_char):
        series = figure1_series(xz_char)
        n = len(series["workloads"])
        assert n == xz_char.n_workloads
        for cat, values in series["categories"].items():
            assert len(values) == n

    def test_figure1_requires_profiles(self):
        char = characterize("557.xz_r", keep_profiles=False)
        with pytest.raises(ValueError):
            figure1_series(char)

    def test_figure1_render(self, xz_char):
        text = render_figure1(xz_char)
        assert "557.xz_r" in text
        assert "xz.refrate" in text

    def test_figure2_series_top_methods(self, xz_char):
        series = figure2_series(xz_char, top_n=3)
        assert len(series["methods"]) == 4  # 3 + others
        assert "others" in series["methods"]

    def test_figure2_render(self, xz_char):
        text = render_figure2(xz_char)
        assert "lzma_encode" in text


class TestSensitivity:
    def test_lbm_caveat_detected(self, lbm_char):
        """The paper's Section V-B caveat: lbm's tiny bad-speculation
        mean with a large sigma_g must be flagged."""
        caveats = detect_caveats([lbm_char])
        assert any(
            c.category == "bad_speculation" and c.benchmark_id == "519.lbm_r"
            for c in caveats
        )

    def test_xz_not_flagged(self, xz_char):
        assert not any(
            c.benchmark_id == "557.xz_r" for c in detect_caveats([xz_char])
        )

    def test_rankings(self, xz_char, lbm_char):
        by_v = rank_by_mu_g_v([xz_char, lbm_char])
        assert by_v[0][1] >= by_v[1][1]
        by_m = rank_by_mu_g_m([xz_char, lbm_char])
        assert by_m[0][1] >= by_m[1][1]

    def test_report_text(self, xz_char, lbm_char):
        text = sensitivity_report([lbm_char, xz_char])
        assert "519.lbm_r" in text
        assert "*" in text  # the caveat marker
