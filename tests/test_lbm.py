"""Tests for the 519.lbm_r lattice Boltzmann substrate and generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.lbm import LbmBenchmark, LbmInput, run_lbm
from repro.machine import run_benchmark
from repro.workloads.lbm_gen import OBSTACLE_SHAPES, LbmWorkloadGenerator, make_obstacles


def _channel(seed=1, **kw):
    mask = make_obstacles(seed, height=20, width=30, shape=kw.pop("shape", "circle"))
    defaults = dict(obstacles=mask, steps=8)
    defaults.update(kw)
    return LbmInput(**defaults)


class TestSimulation:
    def test_runs_and_stays_finite(self):
        out = run_lbm(_channel())
        assert np.isfinite(out["final_momentum"])
        assert out["final_momentum"] >= 0

    def test_mass_approximately_conserved(self):
        config = _channel()
        out = run_lbm(config)
        free = config.obstacles.size - int(config.obstacles.sum())
        assert out["total_mass"] / free == pytest.approx(1.0, rel=0.2)

    def test_flow_develops_from_inflow(self):
        out = run_lbm(_channel(steps=12))
        assert out["momentum_trace"][-1] > 0.001

    def test_lid_driven_differs_from_channel(self):
        a = run_lbm(_channel(step_kind="channel"))
        b = run_lbm(_channel(step_kind="lid"))
        assert a["final_momentum"] != b["final_momentum"]

    def test_determinism(self):
        assert run_lbm(_channel()) == run_lbm(_channel())

    @given(st.floats(min_value=0.5, max_value=1.8))
    @settings(max_examples=8, deadline=None)
    def test_stable_for_valid_omega(self, omega):
        out = run_lbm(_channel(omega=omega, steps=6))
        assert np.isfinite(out["final_momentum"])

    def test_validation(self):
        mask = make_obstacles(1, height=20, width=30)
        with pytest.raises(ValueError):
            LbmInput(obstacles=mask, steps=0)
        with pytest.raises(ValueError):
            LbmInput(obstacles=mask, omega=2.5)
        with pytest.raises(ValueError):
            LbmInput(obstacles=np.ones((10, 10), dtype=bool))
        with pytest.raises(ValueError):
            LbmInput(obstacles=mask.astype(int))


class TestObstacles:
    def test_shapes(self):
        for shape in OBSTACLE_SHAPES:
            mask = make_obstacles(2, shape=shape)
            assert mask.dtype == np.bool_
            assert mask[0].all() and mask[-1].all()  # walls

    def test_size_grows_obstacle(self):
        small = make_obstacles(3, shape="circle", size=0.10)
        large = make_obstacles(3, shape="circle", size=0.30)
        assert large.sum() > small.sum()

    def test_density_adds_blobs(self):
        sparse = make_obstacles(4, shape="blobs", density=0.5)
        dense = make_obstacles(4, shape="blobs", density=2.5)
        assert dense.sum() >= sparse.sum()

    def test_channel_never_fully_blocked(self):
        for seed in range(6):
            mask = make_obstacles(seed, shape="blobs", size=0.3, density=3.0)
            assert not mask.all(axis=0).any() or not mask[mask.shape[0] // 2].all()

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            make_obstacles(1, shape="torus")


class TestBenchmarkAndGenerator:
    def test_run_and_verify(self):
        w = LbmWorkloadGenerator().generate(1, steps=6)
        prof = run_benchmark(LbmBenchmark(), w)
        assert prof.verified

    def test_alberta_set_size(self):
        assert len(LbmWorkloadGenerator().alberta_set()) == 30  # Table II

    def test_backend_bound_profile(self):
        """lbm is the FP suite's most back-end-bound benchmark."""
        w = LbmWorkloadGenerator().generate(2, steps=10)
        prof = run_benchmark(LbmBenchmark(), w)
        td = prof.topdown
        assert td.back_end > td.front_end
        assert td.back_end > td.bad_speculation
        assert td.bad_speculation < 0.02  # the paper's tiny-s caveat

    def test_test_input_profile_differs(self):
        """The SPEC test input has a distinct init-heavy profile."""
        ws = LbmWorkloadGenerator().alberta_set()
        bm = LbmBenchmark()
        ref = run_benchmark(bm, ws["lbm.refrate"]).coverage
        test = run_benchmark(bm, ws["lbm.test"]).coverage
        assert test.fraction("init_grid") > ref.fraction("init_grid") * 3
