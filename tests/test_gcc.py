"""Tests for the 502.gcc_r mini-C compiler, OneFile, and the generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.gcc import (
    CSource,
    GccBenchmark,
    Parser,
    codegen,
    interpret,
    lex,
    optimize,
    peephole,
    resolve,
    run_vm,
)
from repro.machine import run_benchmark
from repro.workloads.gcc_gen import (
    CORPUS,
    PROJECTS,
    GccWorkloadGenerator,
    OneFileError,
    generate_program,
    one_file,
)


def compile_and_run(source: str, opt: bool = True) -> int:
    tokens = lex(source)
    funcs = Parser(tokens).parse_program()
    table = resolve(funcs)
    if opt:
        funcs = optimize(funcs)
        table = {f[1]: f for f in funcs}
    code = peephole(codegen(funcs))
    return run_vm(code, table, "main", [])


class TestLexer:
    def test_tokens(self):
        toks = lex("int x = 42; // comment\nx == 7;")
        values = [t.value for t in toks]
        assert values == ["int", "x", "=", "42", ";", "x", "==", "7", ";"]

    def test_block_comment(self):
        toks = lex("int /* hi */ y;")
        assert [t.value for t in toks] == ["int", "y", ";"]

    def test_unterminated_comment(self):
        with pytest.raises(Exception):
            lex("int /* oops")

    def test_bad_character(self):
        with pytest.raises(Exception):
            lex("int $x;")


class TestParserAndInterp:
    def test_arithmetic(self):
        assert compile_and_run("int main() { return 2 + 3 * 4; }") == 14

    def test_precedence_and_parens(self):
        assert compile_and_run("int main() { return (2 + 3) * 4; }") == 20

    def test_unary(self):
        assert compile_and_run("int main() { return -5 + 10; }") == 5
        assert compile_and_run("int main() { return !0; }") == 1

    def test_variables_and_assignment(self):
        src = "int main() { int x = 3; x = x + 4; return x; }"
        assert compile_and_run(src) == 7

    def test_if_else(self):
        src = "int main() { int x = 5; if (x > 3) { return 1; } else { return 2; } }"
        assert compile_and_run(src) == 1

    def test_while_loop(self):
        src = "int main() { int s = 0; int i = 0; while (i < 5) { s = s + i; i = i + 1; } return s; }"
        assert compile_and_run(src) == 10

    def test_function_calls(self):
        src = "int double_it(int x) { return x * 2; } int main() { return double_it(21); }"
        assert compile_and_run(src) == 42

    def test_recursion(self):
        src = "int f(int n) { if (n < 2) { return n; } return f(n-1) + f(n-2); } int main() { return f(10); }"
        assert compile_and_run(src) == 55

    def test_undefined_variable_rejected(self):
        with pytest.raises(Exception):
            compile_and_run("int main() { return y; }")

    def test_undefined_function_rejected(self):
        with pytest.raises(Exception):
            compile_and_run("int main() { return g(1); }")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(Exception):
            compile_and_run("int f(int a) { return a; } int main() { return f(1, 2); }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(Exception):
            compile_and_run("int f() { return 1; } int f() { return 2; } int main() { return f(); }")


class TestOptimizer:
    def test_constant_folding(self):
        stats = {}
        funcs = Parser(lex("int main() { return 2 * 3 + 4; }")).parse_program()
        optimize(funcs, stats)
        assert stats["folded"] >= 2

    def test_dead_branch_elimination(self):
        stats = {}
        src = "int main() { if (0) { return 1; } return 2; }"
        funcs = Parser(lex(src)).parse_program()
        out = optimize(funcs, stats)
        assert stats["dead_branches"] == 1
        # the if is gone entirely
        body = out[0][3][1]
        assert all(s[0] != "if" for s in body)

    def test_dead_code_after_return(self):
        stats = {}
        src = "int main() { return 1; int x = 2; x = 3; return x; }"
        funcs = Parser(lex(src)).parse_program()
        optimize(funcs, stats)
        assert stats["dead_code"] >= 1

    def test_algebraic_identities(self):
        stats = {}
        src = "int main() { int x = 5; return x * 1 + 0; }"
        funcs = Parser(lex(src)).parse_program()
        optimize(funcs, stats)
        assert stats["identities"] >= 1

    def test_optimization_preserves_semantics_on_corpus(self):
        for name, source in CORPUS.items():
            assert compile_and_run(source, opt=True) == compile_and_run(
                source, opt=False
            ), name

    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=20, deadline=None)
    def test_optimization_preserves_semantics_property(self, seed):
        """O2 and O0 must agree on every generated program."""
        source = generate_program(seed, n_functions=4, expr_depth=3)
        assert compile_and_run(source, opt=True) == compile_and_run(source, opt=False)

    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=20, deadline=None)
    def test_vm_matches_interpreter_property(self, seed):
        """Compiled stack code and direct AST interpretation must agree."""
        source = generate_program(seed, n_functions=3, expr_depth=3)
        funcs = Parser(lex(source)).parse_program()
        table = resolve(funcs)
        code = peephole(codegen(funcs))
        assert run_vm(code, table, "main", []) == interpret(table, "main", [])


class TestOneFile:
    def test_merges_and_mangles(self):
        merged = one_file(PROJECTS["mcf"])
        # the colliding `cost` is mangled per file, `main` survives
        assert "graph__cost" in merged
        assert "simplex__cost" in merged
        assert "int main()" in merged

    def test_merged_projects_compile_and_match(self):
        for key in PROJECTS:
            merged = one_file(PROJECTS[key])
            assert compile_and_run(merged, opt=True) == compile_and_run(
                merged, opt=False
            ), key

    def test_missing_entry_rejected(self):
        with pytest.raises(OneFileError):
            one_file({"a.c": "int helper() { return 1; }"})

    def test_duplicate_entry_rejected(self):
        files = {
            "a.c": "int main() { return 1; }",
            "b.c": "int main() { return 2; }",
        }
        with pytest.raises(OneFileError):
            one_file(files)

    def test_empty_project_rejected(self):
        with pytest.raises(OneFileError):
            one_file({})

    def test_non_colliding_functions_untouched(self):
        files = {
            "a.c": "int helper(int x) { return x + 1; }",
            "b.c": "int main() { return helper(41); }",
        }
        merged = one_file(files)
        assert "a__helper" not in merged
        assert compile_and_run(merged) == 42


class TestGenerator:
    def test_generated_programs_terminate(self):
        for seed in range(5):
            source = generate_program(seed, n_functions=5)
            result = compile_and_run(source)
            assert isinstance(result, int)

    def test_determinism(self):
        assert generate_program(9) == generate_program(9)

    def test_alberta_set_size(self):
        assert len(GccWorkloadGenerator().alberta_set()) == 19  # Table II

    def test_benchmark_run_and_verify(self):
        w = GccWorkloadGenerator().generate(4, n_functions=5)
        prof = run_benchmark(GccBenchmark(), w)
        assert prof.verified
        assert prof.output["result"] == prof.output["reference"]

    def test_opt_level_validation(self):
        with pytest.raises(ValueError):
            CSource(text="int main() { return 0; }", opt_level=1)


class TestCse:
    """Local common-subexpression elimination (value numbering)."""

    def _compile(self, src, with_cse=True):
        from repro.benchmarks.gcc import cse

        funcs = Parser(lex(src)).parse_program()
        resolve(funcs)
        stats = {}
        opt = optimize(funcs, stats)
        if with_cse:
            opt = cse(opt, stats)
        table = {f[1]: f for f in opt}
        code = peephole(codegen(opt))
        return run_vm(code, table, "main", []), stats

    def test_repeated_subexpression_eliminated(self):
        src = """
        int main() {
          int a = 5; int b = 7;
          int x = (a + b) * (a + b);
          return x + (a + b);
        }
        """
        result, stats = self._compile(src)
        assert stats["cse_hits"] >= 2
        baseline, _ = self._compile(src, with_cse=False)
        assert result == baseline == 144 + 12

    def test_reassignment_invalidates(self):
        """After `a = ...`, the cached (a + b) must not be reused."""
        src = """
        int main() {
          int a = 5; int b = 7;
          int x = a + b;
          a = 100;
          int y = a + b;
          return y - x;
        }
        """
        result, _ = self._compile(src)
        assert result == 95  # 107 - 12: reuse would give 0

    def test_no_hoist_across_branches(self):
        src = """
        int main() {
          int a = 2; int b = 3;
          int x = a * b;
          if (x > 5) { a = 9; }
          return a * b;
        }
        """
        result, _ = self._compile(src)
        assert result == 27  # a*b recomputed after the branch

    def test_calls_not_eliminated(self):
        """Call-containing expressions stay put (conservative pass)."""
        src = """
        int bump(int v) { return v + 1; }
        int main() { return bump(1) + bump(1); }
        """
        result, stats = self._compile(src)
        assert result == 4

    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=15, deadline=None)
    def test_cse_preserves_semantics_property(self, seed):
        source = generate_program(seed, n_functions=4, expr_depth=4)
        with_cse, _ = self._compile(source, with_cse=True)
        without, _ = self._compile(source, with_cse=False)
        assert with_cse == without


class TestPreprocessor:
    """OneFile's mini-preprocessor: the paper names preprocessing logic
    as one of the tool's main challenges."""

    def _pp(self, src, **kw):
        from repro.workloads.gcc_gen import preprocess

        return preprocess(src, **kw)

    def test_define_substitution(self):
        out = self._pp("#define N 7\nint main() { return N; }")
        assert "return 7;" in out

    def test_define_does_not_touch_substrings(self):
        out = self._pp("#define N 7\nint main() { int NN = 2; return NN; }")
        assert "NN" in out

    def test_ifdef_selects_arm(self):
        src = "#ifdef FAST\nint a;\n#else\nint b;\n#endif"
        assert "int b;" in self._pp(src)
        assert "int a;" not in self._pp(src)
        fast = self._pp(src, defines={"FAST": "1"})
        assert "int a;" in fast and "int b;" not in fast

    def test_ifndef(self):
        src = "#ifndef X\nint yes;\n#endif"
        assert "int yes;" in self._pp(src)
        assert "int yes;" not in self._pp(src, defines={"X": "1"})

    def test_nested_conditionals(self):
        src = "#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#endif"
        both = self._pp(src, defines={"A": "1", "B": "1"})
        assert "int ab;" in both and "int a;" in both
        only_a = self._pp(src, defines={"A": "1"})
        assert "int ab;" not in only_a and "int a;" in only_a

    def test_undef(self):
        src = "#define N 5\n#undef N\nint main() { return N; }"
        assert "return N;" in self._pp(src)

    def test_include_splices_header(self):
        out = self._pp('#include "h.h"\nint main() { return f(); }',
                       includes={"h.h": "int f() { return 3; }"})
        assert "int f()" in out

    def test_include_cycle_rejected(self):
        from repro.workloads.gcc_gen import PreprocessorError

        with pytest.raises(PreprocessorError):
            self._pp('#include "a.h"', includes={"a.h": '#include "a.h"'})

    def test_missing_include_rejected(self):
        from repro.workloads.gcc_gen import PreprocessorError

        with pytest.raises(PreprocessorError):
            self._pp('#include "nope.h"')

    def test_unterminated_ifdef_rejected(self):
        from repro.workloads.gcc_gen import PreprocessorError

        with pytest.raises(PreprocessorError):
            self._pp("#ifdef X\nint a;")

    def test_unknown_directive_rejected(self):
        from repro.workloads.gcc_gen import PreprocessorError

        with pytest.raises(PreprocessorError):
            self._pp("#pragma once")

    def test_onefile_with_headers_compiles(self):
        src = (
            "#define LIMIT 6\n"
            '#include "util.h"\n'
            "int main() { return helper(LIMIT); }"
        )
        merged = one_file(
            {"main.c": src},
            headers={"util.h": "int helper(int n) { return n * n; }"},
        )
        assert compile_and_run(merged) == 36
