"""Registry invariants: identity, enumeration, plugins, cache separation.

Four layers of guarantees for :mod:`repro.core.registry`:

* descriptors are value objects — serialization round-trips exactly
  (hypothesis), fingerprints are cross-process stable, and malformed
  or colliding registrations are rejected at load time;
* every built-in benchmark / generator module actually registers
  (the lint test fails when a new module skips the decorator), and no
  consumer imports the legacy ``core.suite`` tables (grep gate);
* a descriptor version bump invalidates exactly its own cache
  artifacts — bumped keys miss, untouched keys stay warm;
* plugins load through ``importlib.metadata`` entry points, can be
  disabled via the environment, and unknown scenario ids surface
  typed errors with near-miss suggestions (CLI exit code 2).
"""

from __future__ import annotations

import dataclasses
import os
import pkgutil
import re
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.errors import RegistrationError, UnknownScenarioError, WorkloadError
from repro.core.registry import (
    CAP_CAPTURE_ONLY,
    CAP_IN_TABLE2,
    CAP_SWEEPABLE,
    DISABLE_PLUGINS_ENV,
    KINDS,
    REGISTRY,
    Descriptor,
    alberta_workloads,
    benchmark_ids,
)
from repro.core.run import Session
from repro.core.sweep import MachineGrid, SweepRequest
from repro.core.trace import summarize_trace

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
PLUGIN_SRC = REPO / "examples" / "repro-plugin-demo" / "src"


# --------------------------------------------------------------------------
# descriptor identity
# --------------------------------------------------------------------------

_ident = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=24,
)

_descriptors = st.builds(
    Descriptor,
    kind=st.sampled_from(KINDS),
    id=_ident,
    version=st.integers(min_value=1, max_value=10_000),
    suite=st.none() | st.sampled_from(["int", "fp"]) | _ident,
    capabilities=st.frozensets(_ident, max_size=6),
    origin=_ident,
)


class TestDescriptorIdentity:
    @settings(max_examples=200, deadline=None)
    @given(_descriptors)
    def test_serialization_round_trips(self, d: Descriptor) -> None:
        again = Descriptor.from_dict(d.to_dict())
        assert again == d  # factory is excluded from equality by design
        assert again.to_dict() == d.to_dict()
        assert again.fingerprint() == d.fingerprint()
        assert again.cache_token() == d.cache_token()

    @settings(max_examples=100, deadline=None)
    @given(_descriptors)
    def test_cache_token_only_after_bump(self, d: Descriptor) -> None:
        token = d.cache_token()
        if d.version == 1:
            assert token is None  # v1 keys match the pre-registry era
        else:
            assert token == f"{d.id}@v{d.version}:{d.fingerprint()[:12]}"

    def test_fingerprint_ignores_origin_and_factory(self) -> None:
        a = Descriptor(kind="benchmark", id="x", suite="int")
        b = dataclasses.replace(a, origin="plugin:demo", factory=object)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_tracks_declared_identity(self) -> None:
        a = Descriptor(kind="benchmark", id="x", suite="int")
        assert a.fingerprint() != dataclasses.replace(a, version=2).fingerprint()
        assert (
            a.fingerprint()
            != dataclasses.replace(a, capabilities=frozenset({"z"})).fingerprint()
        )

    def test_fingerprint_is_cross_process_stable(self) -> None:
        d = Descriptor(
            kind="generator",
            id="505.mcf_r",
            version=3,
            suite="int",
            capabilities=frozenset({"refrate", "sweepable"}),
        )
        code = (
            "from repro.core.registry import Descriptor\n"
            "d = Descriptor(kind='generator', id='505.mcf_r', version=3,"
            " suite='int', capabilities=frozenset({'refrate', 'sweepable'}))\n"
            "print(d.fingerprint())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, "PYTHONPATH": str(SRC)},
        )
        assert out.stdout.strip() == d.fingerprint()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "nonsense", "id": "x"},
            {"kind": "benchmark", "id": ""},
            {"kind": "benchmark", "id": "x", "version": 0},
            {"kind": "benchmark", "id": "x", "version": True},
            {"kind": "benchmark", "id": "x", "suite": ""},
            {"kind": "benchmark", "id": "x", "capabilities": frozenset({""})},
            {"kind": "benchmark", "id": "x", "origin": ""},
        ],
    )
    def test_malformed_descriptors_rejected(self, kwargs: dict) -> None:
        with pytest.raises(RegistrationError):
            Descriptor(**kwargs)

    def test_from_dict_rejects_garbage(self) -> None:
        with pytest.raises(RegistrationError):
            Descriptor.from_dict({"id": "x"})  # no kind

    def test_deserialized_descriptor_has_no_factory(self) -> None:
        d = Descriptor.from_dict(
            Descriptor(kind="benchmark", id="x", suite="int").to_dict()
        )
        with pytest.raises(RegistrationError, match="no factory"):
            d.create()


# --------------------------------------------------------------------------
# registration rules
# --------------------------------------------------------------------------


class TestRegistrationRules:
    def test_identical_reregistration_is_noop(self) -> None:
        existing = REGISTRY.get("benchmark", "505.mcf_r")
        again = REGISTRY.register(dataclasses.replace(existing))
        assert again == existing
        assert REGISTRY.get("benchmark", "505.mcf_r") == existing

    def test_conflicting_reregistration_collides(self) -> None:
        existing = REGISTRY.get("benchmark", "505.mcf_r")
        with pytest.raises(RegistrationError, match="already registered"):
            REGISTRY.register(dataclasses.replace(existing, version=99))
        # the collision must not have clobbered the original
        assert REGISTRY.get("benchmark", "505.mcf_r") == existing

    def test_get_unknown_raises_typed_error_with_suggestion(self) -> None:
        with pytest.raises(UnknownScenarioError) as exc:
            REGISTRY.get("benchmark", "505.mfc_r")
        assert "505.mcf_r" in exc.value.suggestions
        assert "did you mean" in str(exc.value)
        assert exc.value.kind == "benchmark"
        assert exc.value.scenario_id == "505.mfc_r"

    def test_alberta_workloads_unknown_names_benchmark(self) -> None:
        with pytest.raises(UnknownScenarioError, match="unknown benchmark"):
            alberta_workloads("999.nope_r")

    def test_override_restores_previous_descriptor(self) -> None:
        before = REGISTRY.get("benchmark", "505.mcf_r")
        with REGISTRY.override(dataclasses.replace(before, version=2)):
            assert REGISTRY.get("benchmark", "505.mcf_r").version == 2
        assert REGISTRY.get("benchmark", "505.mcf_r") == before


# --------------------------------------------------------------------------
# built-in coverage lint + grep gate
# --------------------------------------------------------------------------

_BENCH_SKIP = {"__init__", "base"}
_GEN_SKIP = {"__init__", "base", "manifest"}


class TestBuiltinCoverage:
    """Fail when a module is added without registering a descriptor."""

    def _registered_modules(self, kind: str) -> set[str]:
        return {
            d.factory.__module__
            for d in REGISTRY.descriptors(kind)
            if d.origin == "builtin" and d.factory is not None
        }

    def test_every_benchmark_module_registers(self) -> None:
        import repro.benchmarks

        modules = self._registered_modules("benchmark")
        for info in pkgutil.iter_modules(repro.benchmarks.__path__):
            if info.name in _BENCH_SKIP:
                continue
            assert f"repro.benchmarks.{info.name}" in modules, (
                f"repro/benchmarks/{info.name}.py defines no registered "
                "benchmark — add @register_benchmark"
            )

    def test_every_generator_module_registers(self) -> None:
        import repro.workloads

        modules = self._registered_modules("generator")
        for info in pkgutil.iter_modules(repro.workloads.__path__):
            if info.name in _GEN_SKIP:
                continue
            assert f"repro.workloads.{info.name}" in modules, (
                f"repro/workloads/{info.name}.py defines no registered "
                "generator — add @register_generator"
            )

    def test_benchmark_and_generator_ids_pair_up(self) -> None:
        assert REGISTRY.ids("benchmark") == REGISTRY.ids("generator")

    def test_expected_population(self) -> None:
        ids = benchmark_ids()
        assert len(ids) >= 16
        assert "505.mcf_r" in ids
        assert "525.x264_r" not in benchmark_ids(table2_only=True)
        assert set(benchmark_ids(suite="int")) | set(benchmark_ids(suite="fp")) == set(
            ids
        )
        in_table2 = REGISTRY.ids("benchmark", capability=CAP_IN_TABLE2)
        assert "505.mcf_r" in in_table2 and "525.x264_r" not in in_table2

    def test_no_consumer_imports_legacy_suite_tables(self) -> None:
        """Grep gate: ``core/suite.py`` is a shim, nothing imports it."""
        pattern = re.compile(
            r"^\s*(?:from\s+(?:repro\.core\.suite|\.suite|\.core\.suite)\s+import"
            r"|import\s+repro\.core\.suite)\b"
        )
        offenders = []
        for path in sorted((SRC / "repro").rglob("*.py")):
            if path.relative_to(SRC / "repro").as_posix() == "core/suite.py":
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if pattern.match(line):
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
        assert not offenders, "\n".join(offenders)


# --------------------------------------------------------------------------
# cache separation
# --------------------------------------------------------------------------


class TestCacheSeparation:
    """A version bump misses exactly its own artifacts."""

    def _sweep(self, tmp_path: Path, trace: str) -> object:
        wl = next(
            w for w in alberta_workloads("505.mcf_r") if w.name == "mcf.test"
        )
        request = SweepRequest(
            benchmark="505.mcf_r", grid=MachineGrid.from_machines([None])
        )
        with Session(
            cache=tmp_path / "store", trace=tmp_path / trace
        ) as s:
            s.characterize_sweep(request, workloads=[wl])
        return summarize_trace(tmp_path / trace)

    def test_version_bump_misses_then_warm_again(self, tmp_path: Path) -> None:
        cold = self._sweep(tmp_path, "cold.jsonl")
        assert cold.captures == 1 and cold.replays == 1

        warm = self._sweep(tmp_path, "warm.jsonl")
        assert warm.captures == 0 and warm.replays == 0

        bumped = REGISTRY.get("benchmark", "505.mcf_r")
        with REGISTRY.override(dataclasses.replace(bumped, version=2)):
            missed = self._sweep(tmp_path, "bumped.jsonl")
            # the bump changed the keys: a clean miss, full re-run
            assert missed.captures == 1 and missed.replays == 1
            # ... and the bumped keys are themselves cached now
            rewarm = self._sweep(tmp_path, "bumped-warm.jsonl")
            assert rewarm.captures == 0 and rewarm.replays == 0

        # untouched (v1) artifacts survived the bump: instantly warm
        after = self._sweep(tmp_path, "after.jsonl")
        assert after.captures == 0 and after.replays == 0


# --------------------------------------------------------------------------
# capability enforcement
# --------------------------------------------------------------------------


class TestCapabilityEnforcement:
    def test_capture_only_benchmark_rejected_by_sweep(self) -> None:
        existing = REGISTRY.get("benchmark", "505.mcf_r")
        capture_only = dataclasses.replace(
            existing,
            version=2,
            capabilities=frozenset({CAP_CAPTURE_ONLY}),
        )
        request = SweepRequest(
            benchmark="505.mcf_r", grid=MachineGrid.from_machines([None])
        )
        with REGISTRY.override(capture_only):
            with Session() as s:
                with pytest.raises(WorkloadError, match="capture-only"):
                    s.characterize_sweep(request)

    def test_unregistered_benchmarks_are_unconstrained(self) -> None:
        from repro.core.engine import _require_capability

        _require_capability("999.adhoc_x", CAP_SWEEPABLE, stage="test")

    def test_builtins_are_sweepable(self) -> None:
        for bid in benchmark_ids():
            assert CAP_SWEEPABLE in REGISTRY.get("benchmark", bid).capabilities


# --------------------------------------------------------------------------
# plugins
# --------------------------------------------------------------------------


def _fake_install(tmp_path: Path) -> str:
    """Materialize entry-point metadata for the example plugin.

    Writes a ``.dist-info`` next to nothing on ``sys.path`` — adding the
    directory to ``PYTHONPATH`` makes ``importlib.metadata`` discover the
    distribution exactly as a real ``pip install`` would, without pip.
    """
    dist = tmp_path / "repro_plugin_demo-1.0.0.dist-info"
    dist.mkdir()
    (dist / "METADATA").write_text(
        "Metadata-Version: 2.1\nName: repro-plugin-demo\nVersion: 1.0.0\n"
    )
    (dist / "entry_points.txt").write_text(
        "[repro.plugins]\ndemo = repro_plugin_demo\n"
    )
    return os.pathsep.join([str(SRC), str(PLUGIN_SRC), str(tmp_path)])


class TestPlugins:
    def _run(self, code: str, pythonpath: str, **env: str) -> str:
        # strip the disable knob from the inherited environment so each
        # subprocess controls plugin loading explicitly (the CI plugin
        # job runs tier-1 under REPRO_DISABLE_PLUGINS=1)
        base = {k: v for k, v in os.environ.items() if k != DISABLE_PLUGINS_ENV}
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={**base, "PYTHONPATH": pythonpath, **env},
        )
        return out.stdout

    def test_entry_point_plugin_loads(self, tmp_path: Path) -> None:
        pythonpath = _fake_install(tmp_path)
        out = self._run(
            "from repro.core.registry import REGISTRY\n"
            "d = REGISTRY.get('benchmark', '901.collatz_x')\n"
            "print(d.origin)\n"
            "print(REGISTRY.get('machine', 'demo-tiny').origin)\n"
            "p, = REGISTRY.plugins()\n"
            "print(p.name, sorted(p.descriptors))\n",
            pythonpath,
        )
        lines = out.splitlines()
        assert lines[0] == "plugin:demo"
        assert lines[1] == "plugin:demo"
        assert lines[2] == (
            "demo ['benchmark:901.collatz_x', 'fdo_build:demo-boost',"
            " 'generator:901.collatz_x', 'machine:demo-tiny']"
        )

    def test_disable_env_skips_entry_points(self, tmp_path: Path) -> None:
        pythonpath = _fake_install(tmp_path)
        out = self._run(
            "from repro.core.registry import REGISTRY\n"
            "print(len(REGISTRY.plugins()))\n"
            "print(REGISTRY.find('benchmark', '901.collatz_x'))\n",
            pythonpath,
            **{DISABLE_PLUGINS_ENV: "1"},
        )
        assert out.splitlines() == ["0", "None"]

    def test_plugin_benchmark_runs_pipeline_with_own_cache_keys(
        self, tmp_path: Path
    ) -> None:
        pythonpath = _fake_install(tmp_path)
        code = (
            "from pathlib import Path\n"
            "from repro.core.run import Session\n"
            "from repro.core.sweep import MachineGrid, SweepRequest\n"
            "from repro.core.trace import summarize_trace\n"
            "from repro.core.registry import alberta_workloads\n"
            "wl = [w for w in alberta_workloads('901.collatz_x')"
            " if w.name == 'collatz.test']\n"
            "req = SweepRequest(benchmark='901.collatz_x',"
            " grid=MachineGrid.from_presets('default', 'demo-tiny'))\n"
            f"base = Path({str(tmp_path)!r})\n"
            "with Session(cache=base / 'store', trace=base / 't.jsonl') as s:\n"
            "    result = s.characterize_sweep(req, workloads=wl)\n"
            "summary = summarize_trace(base / 't.jsonl')\n"
            "print(summary.captures, summary.replays)\n"
            "print(len(list((base / 'store').rglob('*.json*'))) > 0)\n"
        )
        out = self._run(code, pythonpath)
        captures_replays, has_artifacts = out.splitlines()
        assert captures_replays == "1 2"  # capture once, replay per config
        assert has_artifacts == "True"

    def test_plugin_fdo_build_end_to_end(self, tmp_path: Path) -> None:
        # The ROADMAP follow-up from the plugin registry PR: a
        # plugin-registered fdo_build resolves by name through
        # evaluate_pair, its digest changes the replay cache key, and
        # the digest lands in the run ledger's builds map.
        pythonpath = _fake_install(tmp_path)
        code = (
            "from pathlib import Path\n"
            "from repro.core.cache import cache_key\n"
            "from repro.core.ledger import RunLedger\n"
            "from repro.core.registry import REGISTRY, alberta_workloads\n"
            "from repro.core.run import Session\n"
            "from repro.fdo.evaluation import evaluate_pair\n"
            "from repro_plugin_demo import CollatzFdoBuild\n"
            f"base = Path({str(tmp_path)!r})\n"
            "wl = {w.name: w for w in alberta_workloads('901.collatz_x')}\n"
            "with Session(cache=base / 'store', ledger=base / 'led') as s:\n"
            "    r = evaluate_pair('901.collatz_x', wl['collatz.train'],\n"
            "                      wl['collatz.test'], build='demo-boost',\n"
            "                      session=s)\n"
            "    digest = s.engine.builds_used.get('demo-boost')\n"
            "print(r.speedup > 0)\n"
            "print(digest is not None and len(digest) > 0)\n"
            "m = s.engine.machine\n"
            "key = cache_key('901.collatz_x', wl['collatz.test'], m,"
            " build=digest)\n"
            "bare = cache_key('901.collatz_x', wl['collatz.test'], m)\n"
            "print(key != bare)\n"
            "print((base / 'store' / key[:2] / (key + '.json')).exists())\n"
            "record = RunLedger(base / 'led').resolve('latest')\n"
            "print(record['builds'].get('demo-boost') == digest)\n"
        )
        out = self._run(code, pythonpath)
        assert out.splitlines() == ["True"] * 5

    def test_in_process_load_plugin(self) -> None:
        # no .dist-info here: the module reaches the registry through the
        # explicit load_plugin() API, not entry-point discovery.  Runs in
        # a subprocess because the decorators target the process-global
        # REGISTRY singleton.
        pythonpath = os.pathsep.join([str(SRC), str(PLUGIN_SRC)])
        out = self._run(
            "from repro.core.registry import REGISTRY, load_plugin\n"
            "assert REGISTRY.plugins() == []\n"
            "info = load_plugin('repro_plugin_demo', name='demo')\n"
            "print(info.name, info.source, sorted(info.descriptors))\n"
            "print(REGISTRY.get('benchmark', '901.collatz_x').origin)\n",
            pythonpath,
        )
        lines = out.splitlines()
        assert lines[0] == (
            "demo repro_plugin_demo ['benchmark:901.collatz_x',"
            " 'fdo_build:demo-boost', 'generator:901.collatz_x',"
            " 'machine:demo-tiny']"
        )
        assert lines[1] == "plugin:demo"


# --------------------------------------------------------------------------
# CLI integration
# --------------------------------------------------------------------------


class TestCliIntegration:
    def test_unknown_benchmark_exits_2_with_suggestion(self, capsys) -> None:
        assert main(["report", "505.mfc_r"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err and "505.mcf_r" in err

    def test_unknown_preset_exits_2(self, capsys) -> None:
        assert main(["sweep", "505.mcf_r", "--machines", "i7-260"]) == 2
        err = capsys.readouterr().err
        assert "unknown machine preset" in err
        assert "i7-2600" in err  # near-miss suggestion

    def test_list_plugins_flag(self, capsys) -> None:
        assert main(["list", "--plugins"]) == 0
        assert "no plugins loaded" in capsys.readouterr().out
