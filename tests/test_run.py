"""Run/Session facade tests.

The load-bearing property: the engine is now the *only* execution path
(``characterize()`` delegates to :class:`Run`), and its
``workers=1, cache=None`` serial special case is bit-identical to the
historical serial loop — reconstructed here directly from
:class:`~repro.machine.profiler.Profiler`.
"""

from dataclasses import replace

import pytest

from repro.core.cache import ResultCache, profile_from_dict
from repro.core.characterize import assemble_characterization, characterize
from repro.core.errors import (
    CacheCorruption,
    CellFailure,
    ReproError,
    WorkloadError,
)
from repro.core.run import Run, RunResult, Session
from repro.core.suite import alberta_workloads, get_benchmark
from repro.machine.profiler import Profiler

MCF = "505.mcf_r"


class TestSerialBitIdentity:
    def test_facade_matches_the_historical_serial_loop(self):
        # The pre-facade characterize(): a Profiler, a plain loop, one
        # assemble_characterization call.  output=None mirrors what the
        # engine strips before crossing process/cache boundaries and
        # does not feed any summary.
        workloads = list(alberta_workloads(MCF))
        benchmark = get_benchmark(MCF)
        profiler = Profiler(None)
        profiles = [
            replace(profiler.run(benchmark, w), output=None) for w in workloads
        ]
        legacy = assemble_characterization(MCF, workloads, profiles)

        via_facade = characterize(MCF)  # workers=1, cache=None

        assert via_facade.table2_row() == legacy.table2_row()
        assert via_facade.seconds_by_workload == legacy.seconds_by_workload
        assert via_facade.topdown.mu_g_v == legacy.topdown.mu_g_v
        assert via_facade.coverage.mu_g_m == legacy.coverage.mu_g_m


class TestRunFacade:
    def test_one_shot_populates_summary_and_result(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        result = Run(trace=trace).characterize(MCF)
        assert isinstance(result, RunResult)
        assert result.ok
        assert result.failed_cells == []
        assert result.partial_benchmarks == set()
        assert result.characterization.benchmark_id == MCF
        assert result.trace_path == trace
        assert result.summary is not None
        assert result.summary.cells == len(alberta_workloads(MCF))
        assert result.summary.ok == result.summary.cells

    def test_run_is_reusable_one_shot_per_call(self, tmp_path):
        run = Run(cache=ResultCache(tmp_path))
        first = run.characterize(MCF)
        second = run.characterize(MCF)
        assert first.summary.cache_misses == len(alberta_workloads(MCF))
        assert second.summary.cache_hits == len(alberta_workloads(MCF))
        assert (
            first.characterization.table2_row()
            == second.characterization.table2_row()
        )

    def test_legacy_wrappers_return_plain_characterizations(self):
        from repro.core.characterize import characterize_suite

        chars = characterize_suite(suite="int")
        direct = Run().characterize_suite(suite="int").characterizations
        assert [c.benchmark_id for c in chars] == [c.benchmark_id for c in direct]
        assert [c.table2_row() for c in chars] == [c.table2_row() for c in direct]


class TestSession:
    def test_session_shares_one_journal_across_calls(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        with Session(trace=trace) as session:
            a = session.characterize(MCF)
            b = session.characterize("557.xz_r")
            assert a.summary is None  # journal still open mid-session
            assert b.summary is None
        summary = session.summary
        assert summary.cells == len(alberta_workloads(MCF)) + len(
            alberta_workloads("557.xz_r")
        )
        from repro.core.trace import summarize_trace

        assert summarize_trace(trace).cells == summary.cells

    def test_close_is_idempotent(self):
        session = Session()
        session.characterize(MCF)
        first = session.close()
        assert session.close() == first

    def test_engine_configuration_is_validated_eagerly(self):
        with pytest.raises(ValueError):
            Session(workers=0)
        with pytest.raises(ValueError):
            Session(timeout=-1.0)


class TestTypedErrors:
    def test_hierarchy_is_value_error_for_one_cycle(self):
        for exc in (ReproError, WorkloadError, CellFailure, CacheCorruption):
            assert issubclass(exc, ValueError)
        assert issubclass(WorkloadError, ReproError)
        assert issubclass(CellFailure, ReproError)
        assert issubclass(CacheCorruption, ReproError)

    def test_empty_workload_set_raises_workload_error(self):
        with pytest.raises(WorkloadError):
            Session().characterize(MCF, workloads=[])
        with pytest.raises(ValueError):  # old callers still catch this
            characterize(MCF, workloads=[])

    def test_cell_failure_carries_structured_fields(self):
        failure = CellFailure(
            MCF, "mcf.train", attempts=3, outcome="timeout", error="cell timed out"
        )
        assert failure.benchmark == MCF
        assert failure.workload == "mcf.train"
        assert failure.attempts == 3
        assert failure.as_dict()["outcome"] == "timeout"
        assert "mcf.train" in str(failure)
        assert "3 attempt" in str(failure)

    def test_foreign_cache_layout_raises_cache_corruption(self):
        with pytest.raises(CacheCorruption):
            profile_from_dict({"format": 999})
        with pytest.raises(ValueError):
            profile_from_dict({})
