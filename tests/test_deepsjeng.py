"""Tests for the 531.deepsjeng_r chess substrate and generator."""

import pytest

from repro.benchmarks.deepsjeng import (
    START_FEN,
    ChessInput,
    DeepsjengBenchmark,
    Position,
    evaluate,
    perft,
)
from repro.machine import run_benchmark
from repro.workloads.deepsjeng_gen import DeepsjengWorkloadGenerator, synthesize_corpus


class TestPosition:
    def test_perft_initial(self):
        """Standard perft values from the initial position."""
        pos = Position.from_fen(START_FEN)
        assert perft(pos, 1) == 20
        assert perft(pos, 2) == 400
        assert perft(pos, 3) == 8902

    def test_fen_roundtrip(self):
        pos = Position.from_fen(START_FEN)
        again = Position.from_fen(pos.to_fen())
        assert again.board == pos.board
        assert again.white_to_move == pos.white_to_move

    def test_bad_fen(self):
        with pytest.raises(Exception):
            Position.from_fen("not a fen")

    def test_en_passant_capture(self):
        # white pawn e5, black plays d7-d5, white exd6 e.p.
        pos = Position.from_fen("k7/3p4/8/4P3/8/8/8/K7 b - - 0 1")
        # black double push d7-d5
        d7 = 6 * 16 + 3
        d5 = 4 * 16 + 3
        pos = pos.make_move((d7, d5, 0))
        assert pos.ep_square == 5 * 16 + 3
        moves = pos.legal_moves()
        ep = [m for m in moves if m[1] == pos.ep_square]
        assert len(ep) == 1
        after = pos.make_move(ep[0])
        assert after.board[d5] == 0  # captured pawn removed

    def test_promotion(self):
        pos = Position.from_fen("k7/7P/8/8/8/8/8/K7 w - - 0 1")
        h7 = 6 * 16 + 7
        h8 = 7 * 16 + 7
        after = pos.make_move((h7, h8, 0))
        assert after.board[h8] == 5  # QUEEN

    def test_check_detection(self):
        pos = Position.from_fen("k7/8/8/8/8/8/8/K6r w - - 0 1")
        assert pos.in_check()

    def test_checkmate_no_moves(self):
        # back-rank mate
        pos = Position.from_fen("k7/8/8/8/8/8/R7/1R5K b - - 0 1")
        assert pos.legal_moves() == []
        assert pos.in_check()

    def test_stalemate_no_moves_no_check(self):
        pos = Position.from_fen("k7/8/1Q6/8/8/8/8/K7 b - - 0 1")
        assert pos.legal_moves() == []
        assert not pos.in_check()

    def test_zobrist_changes_with_move(self):
        pos = Position.from_fen(START_FEN)
        child = pos.make_move(pos.legal_moves()[0])
        assert child.hash_ != pos.hash_

    def test_evaluate_material(self):
        up_queen = Position.from_fen("k7/8/8/8/8/8/8/KQ6 w - - 0 1")
        assert evaluate(up_queen) > 800


class TestBenchmark:
    def test_search_returns_scores(self):
        w = DeepsjengWorkloadGenerator().generate(
            1, positions_per_workload=2, min_depth=2, max_depth=2
        )
        prof = run_benchmark(DeepsjengBenchmark(), w)
        assert prof.verified
        assert len(prof.output["scores"]) == 2
        assert prof.output["nodes"] > 0

    def test_deeper_search_visits_more_nodes(self):
        gen = DeepsjengWorkloadGenerator()
        bm = DeepsjengBenchmark()
        shallow = gen.generate(2, positions_per_workload=2, min_depth=2, max_depth=2)
        deep = gen.generate(2, positions_per_workload=2, min_depth=3, max_depth=3)
        n1 = run_benchmark(bm, shallow).output["nodes"]
        n2 = run_benchmark(bm, deep).output["nodes"]
        assert n2 > n1 * 2

    def test_input_validation(self):
        with pytest.raises(ValueError):
            ChessInput(positions=())
        with pytest.raises(ValueError):
            ChessInput(positions=(("k7/8/8/8/8/8/8/K7 w - -", 0),))


class TestGenerator:
    def test_corpus_positions_are_valid(self):
        corpus = synthesize_corpus(n_positions=6, seed=11)
        assert len(corpus) == 6
        for fen in corpus:
            pos = Position.from_fen(fen)
            assert pos.legal_moves()  # playable mid-game positions

    def test_determinism(self):
        a = synthesize_corpus(n_positions=4, seed=5)
        b = synthesize_corpus(n_positions=4, seed=5)
        assert a == b

    def test_alberta_set_size(self):
        ws = DeepsjengWorkloadGenerator().alberta_set()
        assert len(ws) == 12  # Table II count

    def test_depth_range_respected(self):
        w = DeepsjengWorkloadGenerator().generate(
            3, positions_per_workload=6, min_depth=2, max_depth=3
        )
        assert all(2 <= d <= 3 for _, d in w.payload.positions)
