"""Tests for the Section VII studies: kernels, hidden learning, similarity."""

import numpy as np
import pytest

from repro.core import alberta_workloads
from repro.core.characterize import characterize
from repro.studies import (
    collect_features,
    evaluate_objective,
    extract_kernel,
    hidden_learning_gap,
    kernel_prediction,
    kernel_representativeness,
    most_similar_pairs,
    pca,
    similarity_matrix,
    tune_parameter,
)


@pytest.fixture(scope="module")
def xz_char():
    return characterize("557.xz_r", keep_profiles=True)


@pytest.fixture(scope="module")
def exchange2_char():
    return characterize("548.exchange2_r", keep_profiles=True)


class TestKernels:
    def test_extract_covers_target(self, xz_char):
        kernel = extract_kernel(xz_char.profiles[0], target_coverage=0.8)
        assert kernel.coverage_on_reference >= 0.8
        assert kernel.methods

    def test_full_coverage_takes_all_methods(self, xz_char):
        profile = xz_char.profiles[0]
        kernel = extract_kernel(profile, target_coverage=1.0)
        assert set(kernel.methods) == set(profile.coverage.fractions)

    def test_invalid_target(self, xz_char):
        with pytest.raises(ValueError):
            extract_kernel(xz_char.profiles[0], target_coverage=0.0)

    def test_prediction_is_valid_topdown(self, xz_char):
        kernel = extract_kernel(xz_char.profiles[0])
        vec = kernel_prediction(kernel, xz_char.profiles[1])
        assert abs(sum(vec.as_tuple()) - 1.0) < 1e-4

    def test_representativeness_reference_is_exactly_covered(self, xz_char):
        rep = kernel_representativeness(xz_char, target_coverage=0.9)
        ref = rep.kernel.reference_workload
        assert rep.coverage_by_workload[ref] >= 0.9

    def test_stable_benchmark_kernels_generalize(self, exchange2_char):
        """For a workload-stable benchmark, a single-reference kernel
        stays representative — the paper's expectation for 'some
        benchmarks'."""
        rep = kernel_representativeness(exchange2_char)
        assert rep.worst_coverage > 0.75
        assert rep.worst_error < 0.15

    def test_sensitive_benchmark_kernels_degrade(self):
        """For xalancbmk, single-reference kernels lose coverage on
        other workloads — the §VII failure mode."""
        char = characterize("523.xalancbmk_r", keep_profiles=True)
        rep = kernel_representativeness(char)
        assert rep.worst_coverage < rep.kernel.coverage_on_reference

    def test_requires_profiles(self):
        char = characterize("557.xz_r", keep_profiles=False)
        with pytest.raises(ValueError):
            kernel_representativeness(char)


class TestHiddenLearning:
    def test_objective_positive_and_effort_sensitive(self):
        ws = list(alberta_workloads("557.xz_r"))[:2]
        low = evaluate_objective(ws, 2)
        high = evaluate_objective(ws, 64)
        assert low > 0 and high > 0
        assert low != high

    def test_tuning_picks_grid_minimum(self):
        ws = list(alberta_workloads("557.xz_r"))[:2]
        result = tune_parameter(ws, candidates=(2, 16, 64))
        assert result.best_value in (2, 16, 64)
        assert result.best_objective == min(result.objective_by_value.values())

    @pytest.mark.slow
    def test_gap_report_structure(self):
        ws = alberta_workloads("557.xz_r")
        report = hidden_learning_gap(ws, n_tuning=3, candidates=(4, 32))
        # regret is non-negative by construction
        assert report.regret >= -1e-9
        assert report.tuning.best_value in (4, 32)

    def test_needs_holdout(self):
        ws = alberta_workloads("557.xz_r")
        with pytest.raises(ValueError):
            hidden_learning_gap(ws, n_tuning=len(ws))


class TestSimilarity:
    @pytest.fixture(scope="class")
    def features(self):
        return [
            collect_features(b)
            for b in ("557.xz_r", "519.lbm_r", "521.wrf_r", "541.leela_r")
        ]

    def test_feature_vector_shape(self, features):
        from repro.studies.similarity import FEATURE_NAMES

        for f in features:
            assert f.vector.shape == (len(FEATURE_NAMES),)
            assert np.isfinite(f.vector).all()

    def test_machine_independence(self):
        """Features must not depend on the machine configuration —
        they are derived from raw telemetry counts only."""
        a = collect_features("557.xz_r")
        b = collect_features("557.xz_r")
        assert np.allclose(a.vector, b.vector)

    def test_fp_codes_have_fp_ops(self, features):
        by_name = {f.benchmark: f.as_dict() for f in features}
        assert by_name["519.lbm_r"]["fp_op_share"] > 0.5
        assert by_name["557.xz_r"]["fp_op_share"] < 0.1

    def test_similarity_matrix_properties(self, features):
        sim = similarity_matrix(features)
        assert np.allclose(np.diag(sim), 1.0)
        assert np.allclose(sim, sim.T)
        assert (sim >= -1e-9).all() and (sim <= 1.0 + 1e-9).all()

    def test_stencil_codes_are_similar(self, features):
        """lbm and wrf (both grid-sweep FP codes) should be more
        similar to each other than either is to the Go engine."""
        pairs = {
            (a, b): s for a, b, s in most_similar_pairs(features, top=10)
        }
        lbm_wrf = pairs[("519.lbm_r", "521.wrf_r")]
        assert lbm_wrf > pairs.get(("519.lbm_r", "541.leela_r"), 0.0)

    def test_pca(self, features):
        pts, explained = pca(np.stack([f.vector for f in features]), 2)
        assert pts.shape == (4, 2)
        assert 0 < explained.sum() <= 1.0 + 1e-9

    def test_pca_validation(self):
        with pytest.raises(ValueError):
            pca(np.zeros(3))


class TestCompilerVariation:
    @pytest.fixture(scope="class")
    def observations(self):
        from repro.studies import compiler_variation

        return compiler_variation("557.xz_r", max_workloads=3)

    def test_two_builds_per_workload(self, observations):
        builds = {}
        for obs in observations:
            builds.setdefault(obs.workload, set()).add(obs.build)
        assert all(b == {"baseline", "fdo-train"} for b in builds.values())

    def test_counters_in_range(self, observations):
        for obs in observations:
            assert 0.0 <= obs.branch_misprediction_rate <= 1.0
            assert 0.0 <= obs.l1d_miss_rate <= 1.0
            assert 0.0 <= obs.l2_miss_rate <= 1.0
            assert obs.seconds > 0

    def test_fdo_build_faster_on_training_workload(self, observations):
        by_key = {(o.workload, o.build): o for o in observations}
        base = by_key[("xz.train", "baseline")]
        fdo = by_key[("xz.train", "fdo-train")]
        assert fdo.seconds <= base.seconds * 1.02

    def test_workloads_disagree_on_counters(self, observations):
        """The point of the distributed study: counters vary by workload."""
        rates = {o.l1d_miss_rate for o in observations if o.build == "baseline"}
        assert len(rates) == 3

    def test_render(self, observations):
        from repro.studies import variation_table

        text = variation_table(observations)
        assert "br-miss" in text
        assert "xz.refrate" in text
