"""Tests for the Profiler harness, reports, and validation layer."""

import pytest

from repro.core import alberta_workloads
from repro.core.reports import benchmark_report, execution_time_report
from repro.core.characterize import characterize
from repro.core.validation import ValidationReport, validate_workload_set
from repro.core.workload import Workload, WorkloadSet
from repro.benchmarks.xz import XzBenchmark, XzInput
from repro.machine import MachineConfig, Profiler, run_benchmark
from repro.machine.telemetry import Probe


class _BrokenBenchmark:
    """A benchmark whose output never verifies."""

    name = "557.xz_r"
    suite = "int"

    def run(self, workload, probe):
        with probe.method("work"):
            probe.ops(100)
        return {"ok": False}

    def verify(self, workload, output):
        return False


class _CrashingBenchmark:
    name = "557.xz_r"
    suite = "int"

    def run(self, workload, probe):
        raise RuntimeError("boom")

    def verify(self, workload, output):  # pragma: no cover
        return True


def _xz_workload(name="w1"):
    return Workload(
        name=name,
        benchmark="557.xz_r",
        payload=XzInput(content=b"hello world " * 200),
    )


class TestProfiler:
    def test_rejects_mismatched_workload(self):
        wl = Workload(name="w", benchmark="505.mcf_r", payload=None)
        with pytest.raises(ValueError):
            Profiler().run(XzBenchmark(), wl)

    def test_verification_failure_raises(self):
        with pytest.raises(ValueError, match="verification failed"):
            Profiler().run(_BrokenBenchmark(), _xz_workload())

    def test_verification_can_be_skipped(self):
        profile = Profiler().run(_BrokenBenchmark(), _xz_workload(), verify=False)
        assert profile.verified is True  # not checked

    def test_profile_fields(self):
        profile = run_benchmark(XzBenchmark(), _xz_workload())
        assert profile.benchmark == "557.xz_r"
        assert profile.workload == "w1"
        assert profile.cycles > 0
        assert profile.seconds > 0
        assert abs(sum(profile.topdown.as_tuple()) - 1.0) < 1e-4

    def test_custom_machine_config(self):
        fast = run_benchmark(XzBenchmark(), _xz_workload(), MachineConfig(clock_ghz=8.0))
        slow = run_benchmark(XzBenchmark(), _xz_workload(), MachineConfig(clock_ghz=1.0))
        assert fast.seconds < slow.seconds
        assert fast.cycles == slow.cycles  # clock only scales time


class TestValidation:
    def test_crash_is_reported_not_raised(self):
        ws = WorkloadSet("557.xz_r", [_xz_workload("a"), _xz_workload("b")])
        # monkey-style: run validation with a crashing substrate by
        # swapping the registry entry is invasive; instead check the
        # report mechanics directly
        report = ValidationReport(benchmark_id="557.xz_r")
        report.passed.append("a")
        report.failed["b"] = "RuntimeError: boom"
        assert not report.ok
        assert "FAIL b" in report.summary()

    def test_good_set_passes(self):
        ws = WorkloadSet("557.xz_r", [_xz_workload("a")])
        report = validate_workload_set(ws)
        assert report.ok
        assert report.passed == ["a"]


class TestReports:
    @pytest.fixture(scope="class")
    def char(self):
        return characterize("548.exchange2_r")

    def test_execution_time_report_has_all_workloads(self, char):
        text = execution_time_report(char)
        for name in char.seconds_by_workload:
            assert name in text

    def test_benchmark_report_sections(self, char):
        text = benchmark_report(char)
        assert "Top-down summary" in text
        assert "Method coverage summary" in text
        assert f"workloads: {char.n_workloads}" in text

    def test_report_shows_all_methods(self, char):
        text = benchmark_report(char)
        for method in char.coverage.per_method:
            assert method in text


class TestCharacterizeOptions:
    def test_custom_workload_subset(self):
        ws_full = alberta_workloads("557.xz_r")
        subset = WorkloadSet("557.xz_r")
        for w in list(ws_full)[:3]:
            subset.add(w)
        char = characterize("557.xz_r", subset)
        assert char.n_workloads == 3

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            characterize("557.xz_r", WorkloadSet("557.xz_r"))

    def test_no_refrate_means_none(self):
        ws_full = alberta_workloads("557.xz_r")
        subset = WorkloadSet("557.xz_r")
        subset.add(ws_full["xz.train"])
        char = characterize("557.xz_r", subset)
        assert char.refrate_seconds is None

    def test_profiles_kept_on_request(self):
        ws_full = alberta_workloads("557.xz_r")
        subset = WorkloadSet("557.xz_r")
        for w in list(ws_full)[:2]:
            subset.add(w)
        with_p = characterize("557.xz_r", subset, keep_profiles=True)
        without = characterize("557.xz_r", subset)
        assert len(with_p.profiles) == 2
        assert without.profiles == []
