"""Metrics registry tests: instruments, merges, exporters, catalog lint."""

import re
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics
from repro.core.metrics import (
    CACHE_EVENTS_TOTAL,
    CELLS_TOTAL,
    EVENTS_EMITTED_TOTAL,
    REPLAY_EPS,
    REPLAY_EVENTS_TOTAL,
    RUNS_TOTAL,
    SAMPLING_STRIDE_MAX,
    SECONDS_BUCKETS,
    STAGE_SECONDS,
    WORKER_CELLS_TOTAL,
    Histogram,
    MetricsRegistry,
    log_buckets,
    render_metrics_table,
    render_prometheus,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestBuckets:
    def test_one_two_five_series(self):
        assert log_buckets(0, 1) == (1.0, 2.0, 5.0, 10.0, 20.0, 50.0)

    def test_boundaries_are_exact_decimals(self):
        # 5 * 10**-6 is 4.999...e-06 in floats; the series must snap it.
        assert 5e-06 in log_buckets(-6, -6)

    def test_boundaries_are_data_independent(self):
        a, b = Histogram(SECONDS_BUCKETS), Histogram(SECONDS_BUCKETS)
        a.observe(1e-9)
        b.observe(1e9)
        assert a.buckets == b.buckets  # merges can never misalign


class TestInstruments:
    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter(RUNS_TOTAL).inc(-1)

    def test_gauge_merge_is_max(self):
        reg = MetricsRegistry()
        g = reg.gauge(SAMPLING_STRIDE_MAX, benchmark="b")
        g.set_max(4)
        g.set_max(2)
        assert g.value == 4

    def test_histogram_percentiles_interpolate(self):
        h = Histogram(SECONDS_BUCKETS)
        for _ in range(100):
            h.observe(0.015)  # lands in the (0.01, 0.02] bucket
        assert 0.01 <= h.percentile(0.5) <= 0.02
        assert h.percentile(0.99) <= 0.02

    def test_label_set_is_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="labels"):
            reg.histogram(STAGE_SECONDS, benchmark="b")  # missing `stage`
        with pytest.raises(ValueError, match="labels"):
            reg.counter(RUNS_TOTAL, benchmark="b")  # extra label

    def test_kind_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="not a counter"):
            reg.counter(STAGE_SECONDS, benchmark="b", stage="replay")


class TestChildRegistries:
    def test_empty_parent_still_receives_writes(self):
        # Regression: MetricsRegistry.__len__ makes an *empty* parent
        # falsy; the write-through link must use an explicit None check.
        parent = MetricsRegistry()
        child = parent.child()
        child.counter(RUNS_TOTAL).inc(3)
        assert parent.value(RUNS_TOTAL) == 3

    def test_histograms_forward_observations(self):
        parent = MetricsRegistry()
        child = parent.child()
        child.histogram(STAGE_SECONDS, benchmark="b", stage="replay").observe(0.5)
        h = parent.histogram(STAGE_SECONDS, benchmark="b", stage="replay")
        assert h.count == 1
        assert h.sum == 0.5

    def test_merge_into_child_reaches_parent(self):
        # The pool path: worker snapshots merge into the active child
        # collector and must propagate to the session aggregate.
        worker = MetricsRegistry()
        worker.counter(CELLS_TOTAL, benchmark="b", outcome="ok", cache="off").inc(7)
        parent = MetricsRegistry()
        child = parent.child()
        child.merge(worker.to_dict())
        assert parent.value(CELLS_TOTAL, benchmark="b", outcome="ok", cache="off") == 7


class TestSnapshots:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter(EVENTS_EMITTED_TOTAL, benchmark="505.mcf_r").inc(1000)
        reg.gauge(SAMPLING_STRIDE_MAX, benchmark="505.mcf_r").set_max(8)
        h = reg.histogram(STAGE_SECONDS, benchmark="505.mcf_r", stage="capture")
        for v in (0.001, 0.03, 0.5):
            h.observe(v)
        return reg

    def test_round_trip_is_lossless(self):
        reg = self._populated()
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()

    def test_merge_adds_counts(self):
        a, b = self._populated(), self._populated()
        a.merge(b)
        assert a.value(EVENTS_EMITTED_TOTAL, benchmark="505.mcf_r") == 2000
        h = a.histogram(STAGE_SECONDS, benchmark="505.mcf_r", stage="capture")
        assert h.count == 6
        assert a.value(SAMPLING_STRIDE_MAX, benchmark="505.mcf_r") == 8  # max


class TestExactMergeProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        a=st.lists(st.floats(min_value=1e-9, max_value=100.0), max_size=50),
        b=st.lists(st.floats(min_value=1e-9, max_value=100.0), max_size=50),
    )
    def test_merge_equals_concatenated_observation(self, a, b):
        """merge(A, B) bucket counts == observing A + B into one histogram."""
        ha, hb, hc = (Histogram(SECONDS_BUCKETS) for _ in range(3))
        for v in a:
            ha.observe(v)
        for v in b:
            hb.observe(v)
        for v in a + b:
            hc.observe(v)
        ha.merge_counts(hb.counts, hb.sum, hb.count)
        assert ha.counts == hc.counts  # exact, integer-for-integer
        assert ha.count == hc.count
        assert ha.sum == pytest.approx(hc.sum)


class TestCollectors:
    @pytest.fixture(autouse=True)
    def fresh_global(self):
        metrics.reset_global_registry()
        yield
        metrics.reset_global_registry()

    def test_helpers_hit_global_and_active(self):
        reg = MetricsRegistry()
        with metrics.collector(reg):
            metrics.inc(RUNS_TOTAL)
            metrics.observe(STAGE_SECONDS, 0.1, benchmark="b", stage="replay")
        assert reg.value(RUNS_TOTAL) == 1
        assert metrics.global_registry().value(RUNS_TOTAL) == 1
        metrics.inc(RUNS_TOTAL)  # outside the context: global only
        assert reg.value(RUNS_TOTAL) == 1
        assert metrics.global_registry().value(RUNS_TOTAL) == 2

    def test_merge_snapshot_fans_out(self):
        worker = MetricsRegistry()
        worker.counter(WORKER_CELLS_TOTAL, worker="123").inc(5)
        reg = MetricsRegistry()
        with metrics.collector(reg):
            metrics.merge_snapshot(worker.to_dict())
        assert reg.value(WORKER_CELLS_TOTAL, worker="123") == 5
        assert metrics.global_registry().value(WORKER_CELLS_TOTAL, worker="123") == 5


class TestPoolBoundary:
    """Worker-side metrics must merge exactly across the process pool."""

    @pytest.fixture(scope="class")
    def sessions(self, tmp_path_factory):
        from repro.core.run import Session

        results = {}
        for workers in (1, 2):
            with Session(workers=workers, cache=None) as session:
                session.characterize("505.mcf_r")
            results[workers] = session.metrics
        return results

    def test_replay_histogram_counts_match_cells(self, sessions):
        for reg in sessions.values():
            h = reg.histogram(REPLAY_EPS, benchmark="505.mcf_r")
            assert h.count == 7  # one replay per Alberta mcf cell
            assert sum(h.counts) == h.count  # bucket counts are exact

    def test_pool_run_matches_inline_run(self, sessions):
        inline, pooled = sessions[1], sessions[2]
        for reg in (inline, pooled):
            assert reg.value(EVENTS_EMITTED_TOTAL, benchmark="505.mcf_r") > 0
        assert pooled.value(
            EVENTS_EMITTED_TOTAL, benchmark="505.mcf_r"
        ) == inline.value(EVENTS_EMITTED_TOTAL, benchmark="505.mcf_r")
        assert pooled.value(
            REPLAY_EVENTS_TOTAL, benchmark="505.mcf_r"
        ) == inline.value(REPLAY_EVENTS_TOTAL, benchmark="505.mcf_r")

    def test_worker_cells_total_accounts_for_every_cell(self, sessions):
        pooled = sessions[2]
        total = sum(
            inst.value
            for spec, _key, inst in pooled.collect()
            if spec.name == WORKER_CELLS_TOTAL.name
        )
        assert total == 7


class TestExporters:
    def _reg(self):
        reg = MetricsRegistry()
        reg.counter(CACHE_EVENTS_TOTAL, store="profile", event="hit").inc(3)
        h = reg.histogram(STAGE_SECONDS, benchmark="505.mcf_r", stage="replay")
        for v in (0.002, 0.004, 0.03):
            h.observe(v)
        return reg

    def test_prometheus_structure(self):
        text = render_prometheus(self._reg())
        assert "# HELP repro_cache_events_total" in text
        assert "# TYPE repro_cache_events_total counter" in text
        assert 'repro_cache_events_total{store="profile",event="hit"} 3' in text
        assert "# TYPE repro_stage_seconds histogram" in text
        assert 'le="+Inf"} 3' in text  # cumulative series terminates at +Inf
        assert "repro_stage_seconds_count" in text
        assert "repro_stage_seconds_sum" in text

    def test_prometheus_buckets_are_cumulative(self):
        text = render_prometheus(self._reg())
        values = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_stage_seconds_bucket")
        ]
        assert values == sorted(values)
        assert values[-1] == 3

    def test_table_shows_stage_percentiles(self):
        table = render_metrics_table(self._reg())
        assert "p50" in table and "p95" in table and "p99" in table
        (row,) = [l for l in table.splitlines() if "repro_stage_seconds" in l]
        assert "stage=replay" in row


class TestCatalogLint:
    """Call sites must pass CATALOG specs, never ad-hoc name strings."""

    PATTERNS = (
        re.compile(r"\.(counter|gauge|histogram)\(\s*[\"']"),
        re.compile(r"\bmetrics\.(inc|observe|gauge_set)\(\s*[\"']"),
        re.compile(r"\bmetrics\.(inc|observe|gauge_set)\(\s*f[\"']"),
    )

    def test_no_string_literal_metric_names(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path.name == "metrics.py":
                continue  # the catalog module itself (docs mention the rule)
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                for pattern in self.PATTERNS:
                    if pattern.search(line):
                        offenders.append(f"{path.relative_to(SRC)}:{lineno}: {line.strip()}")
        assert not offenders, (
            "metric names must come from repro.core.metrics CATALOG specs, "
            "not string literals:\n" + "\n".join(offenders)
        )

    def test_catalog_names_are_unique_and_prefixed(self):
        names = [spec.name for spec in metrics.CATALOG.values()]
        assert len(names) == len(set(names))
        assert all(name.startswith("repro_") for name in names)
