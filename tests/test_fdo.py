"""Tests for the FDO framework: profiles, optimizer, evaluation, clustering."""

import pytest

from repro.core import alberta_workloads, get_benchmark
from repro.fdo import (
    FdoCostModel,
    FdoProfile,
    MethodProfile,
    cluster_workloads,
    cross_validate,
    evaluate_pair,
    kmeans,
    merge_profiles,
    single_workload_methodology,
    train_profile,
)
from repro.machine import CostModel, Probe, Profiler


def _xz_workloads():
    return alberta_workloads("557.xz_r")


class TestProfileCollection:
    def test_train_profile_has_methods(self):
        ws = _xz_workloads()
        profile = train_profile("557.xz_r", ws["xz.train"])
        assert profile.benchmark == "557.xz_r"
        assert "lzma_encode" in profile.methods
        assert profile.training_workloads == ("xz.train",)

    def test_weights_sum_to_one(self):
        ws = _xz_workloads()
        profile = train_profile("557.xz_r", ws["xz.train"])
        assert sum(p.weight for p in profile.methods.values()) == pytest.approx(1.0)

    def test_hot_methods_ranked(self):
        ws = _xz_workloads()
        profile = train_profile("557.xz_r", ws["xz.train"])
        hot = profile.hot_methods(threshold=0.05)
        weights = [profile.methods[m].weight for m in hot]
        assert weights == sorted(weights, reverse=True)


class TestBranchHints:
    def _profile(self, ratio, branches=1000):
        return FdoProfile(
            benchmark="x",
            methods={
                "m": MethodProfile(
                    weight=0.5, branch_taken_ratio=ratio, calls=10, branches=branches
                )
            },
        )

    def test_confident_taken(self):
        assert self._profile(0.95).branch_hint("m") is True

    def test_confident_not_taken(self):
        assert self._profile(0.05).branch_hint("m") is False

    def test_unbiased_no_hint(self):
        assert self._profile(0.5).branch_hint("m") is None

    def test_too_few_branches_no_hint(self):
        assert self._profile(0.99, branches=4).branch_hint("m") is None

    def test_unknown_method_no_hint(self):
        assert self._profile(0.99).branch_hint("other") is None


class TestMergeProfiles:
    def test_opposing_biases_cancel(self):
        a = FdoProfile(
            "x",
            {"m": MethodProfile(weight=0.5, branch_taken_ratio=0.95, calls=1, branches=1000)},
        )
        b = FdoProfile(
            "x",
            {"m": MethodProfile(weight=0.5, branch_taken_ratio=0.05, calls=1, branches=1000)},
        )
        merged = merge_profiles([a, b])
        assert merged.branch_hint("m") is None  # pooled ratio ~0.5

    def test_weights_averaged(self):
        a = FdoProfile("x", {"m": MethodProfile(0.8, None, 1, 0)})
        b = FdoProfile("x", {"m": MethodProfile(0.2, None, 1, 0)})
        assert merge_profiles([a, b]).methods["m"].weight == pytest.approx(0.5)

    def test_mismatched_benchmarks_rejected(self):
        a = FdoProfile("x", {})
        b = FdoProfile("y", {})
        with pytest.raises(ValueError):
            merge_profiles([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_profiles([])


class TestFdoCostModel:
    def test_fdo_speeds_up_matching_workload(self):
        """Training and evaluating on the same workload must not slow
        it down — the overfitting the paper warns about."""
        ws = _xz_workloads()
        target = ws["xz.refrate"]
        profile = train_profile("557.xz_r", target)
        result = evaluate_pair("557.xz_r", target, target, profile=profile)
        assert result.speedup >= 1.0

    def test_layout_shrinks_hot_code(self):
        ws = _xz_workloads()
        profile = train_profile("557.xz_r", ws["xz.train"])
        benchmark = get_benchmark("557.xz_r")
        probe = Probe()
        benchmark.run(ws["xz.train"], probe)
        sizes_before = {m.name: m.code_bytes for m in probe.methods()}
        FdoCostModel(profile).evaluate(probe)
        for hot in profile.hot_methods():
            if hot in sizes_before:
                mc = next(m for m in probe.methods() if m.name == hot)
                assert mc.code_bytes < sizes_before[hot]

    def test_report_still_consistent(self):
        ws = _xz_workloads()
        profile = train_profile("557.xz_r", ws["xz.train"])
        benchmark = get_benchmark("557.xz_r")
        probe = Probe()
        benchmark.run(ws["xz.refrate"], probe)
        report = FdoCostModel(profile).evaluate(probe)
        total = sum(report.topdown.as_tuple())
        assert total == pytest.approx(1.0, abs=1e-4)
        assert sum(report.coverage.fractions.values()) == pytest.approx(1.0)


class TestEvaluationProtocols:
    def test_single_workload_methodology(self):
        result = single_workload_methodology("557.xz_r")
        assert result.train_workload == "xz.train"
        assert result.eval_workload == "xz.refrate"
        assert result.speedup > 0.5

    @pytest.mark.slow
    def test_cross_validation_spread(self):
        """Cross-validation over diverse workloads shows a speedup
        *distribution*, which single-point evaluation hides."""
        cv = cross_validate("557.xz_r", max_workloads=4)
        summary = cv.summary()
        assert summary["n"] == 12  # 4 x 3
        assert summary["min"] <= summary["mean"] <= summary["max"]

    def test_combined_profile_protocol(self):
        cv = cross_validate("557.xz_r", max_workloads=3, combined=True)
        assert cv.summary()["n"] == 3
        # combined profiles list every training workload
        assert all("," in r.train_workload for r in cv.results)

    def test_too_few_workloads_rejected(self):
        with pytest.raises(ValueError):
            cross_validate("557.xz_r", max_workloads=1)


class TestClustering:
    def test_kmeans_separates_obvious_clusters(self):
        import numpy as np

        pts = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels, centers = kmeans(pts, 2, seed=1)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_kmeans_k_validation(self):
        import numpy as np

        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 5)

    def test_cluster_workloads_end_to_end(self):
        ws = _xz_workloads()
        benchmark = get_benchmark("557.xz_r")
        profiler = Profiler()
        profiles = [profiler.run(benchmark, w) for w in list(ws)[:6]]
        clusters = cluster_workloads(profiles, k=2, seed=3)
        members = [m for ms in clusters.values() for m in ms]
        assert sorted(members) == sorted(p.workload for p in profiles)
        # representatives belong to their own clusters
        for rep, ms in clusters.items():
            assert rep in ms
