"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path, monkeypatch):
    """Keep CLI-default result caches out of the real ``~/.cache``.

    The CLI enables the characterization result cache by default;
    pointing it at a per-test temp dir keeps tests hermetic (no state
    shared between runs, nothing written to the user's home).
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
