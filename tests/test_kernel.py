"""Fuzz the vectorized replay kernels against scalar brute force.

Every function in :mod:`repro.machine.kernel` claims bit-exactness
against the reference dict/bytearray implementations; these tests hold
it to that over randomized streams, including the degenerate shapes
(empty, single element, one set, fully associative, saturated counters)
that the closed-form derivations quietly depend on.
"""

from __future__ import annotations

import numpy as np
import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import Cache, CacheConfig
from repro.machine.cost import _ORDER_STRIDE, _replay_code_bursts
from repro.machine.kernel import (
    _lru_scalar,
    counter_scan,
    counter_scan_batched,
    gshare_history,
    left_rank,
    lru_filter,
    lru_filter_batched,
    lru_hits,
    lru_hits_batched,
)


def brute_left_rank(values):
    v = list(values)
    return np.array(
        [sum(1 for p in range(q) if v[p] < v[q]) for q in range(len(v))],
        dtype=np.int64,
    )


def brute_counters(idx, taken, table):
    miss = np.empty(idx.size, dtype=np.uint8)
    for i, (j, t) in enumerate(zip(idx.tolist(), taken.tolist())):
        c = table[j]
        miss[i] = (c >= 2) != bool(t)
        if t:
            if c < 3:
                table[j] = c + 1
        elif c > 0:
            table[j] = c - 1
    return miss


class TestLeftRank:
    def test_empty_and_single(self):
        assert left_rank(np.zeros(0, dtype=np.int64)).size == 0
        assert left_rank(np.array([7], dtype=np.int64)).tolist() == [0]

    def test_sorted_and_reversed(self):
        up = np.arange(100, dtype=np.int64)
        assert np.array_equal(left_rank(up), up)
        assert np.array_equal(left_rank(up[::-1].copy()), np.zeros(100, dtype=np.int64))

    def test_fuzz(self):
        rng = np.random.default_rng(1)
        for _ in range(60):
            n = int(rng.integers(1, 300))
            v = rng.permutation(10 * n)[:n].astype(np.int64) - 5 * n
            assert np.array_equal(left_rank(v), brute_left_rank(v))


class TestLruKernels:
    @pytest.mark.parametrize("kernel", [lru_hits, lru_filter])
    def test_fuzz_against_dict_walk(self, kernel):
        rng = np.random.default_rng(2)
        for trial in range(80):
            n = int(rng.integers(1, 500))
            set_bits = int(rng.integers(0, 4))
            set_mask = (1 << set_bits) - 1 if rng.random() < 0.8 else 0
            assoc = int(rng.integers(1, 9))
            span = int(rng.integers(2, 40))
            tags = rng.integers(0, span, n).astype(np.int64)
            want = _lru_scalar(tags.tolist(), set_mask, assoc)
            got = kernel(tags, set_mask, assoc)
            assert np.array_equal(got, want), f"{kernel.__name__} trial {trial}"

    def test_filter_vector_path_no_eviction(self):
        # large stream, every set's distinct count <= assoc: pure
        # first-touch rule must run (and agree with the dict walk)
        rng = np.random.default_rng(3)
        tags = rng.integers(0, 64, 5000).astype(np.int64)  # 64 lines, 8 sets
        got = lru_filter(tags, 7, 8)
        assert np.array_equal(got, _lru_scalar(tags.tolist(), 7, 8))

    def test_filter_vector_path_with_conflict_sets(self):
        # force one conflicting set among quiet ones, above the scalar cutoff
        rng = np.random.default_rng(4)
        quiet = rng.integers(0, 32, 4000) * 4 + rng.integers(1, 4, 4000)
        noisy = rng.integers(0, 64, 4000) * 4  # set 0: 64 distinct lines
        tags = np.empty(8000, dtype=np.int64)
        tags[0::2] = quiet
        tags[1::2] = noisy
        got = lru_filter(tags, 3, 4)
        assert np.array_equal(got, _lru_scalar(tags.tolist(), 3, 4))

    def test_empty(self):
        assert lru_hits(np.zeros(0, dtype=np.int64), 0, 4).size == 0
        assert lru_filter(np.zeros(0, dtype=np.int64), 0, 4).size == 0


class TestCounterScan:
    def test_fuzz_against_bytearray_walk(self):
        rng = np.random.default_rng(5)
        for trial in range(120):
            n = int(rng.integers(1, 400))
            nslots = int(rng.integers(1, 12))
            idx = rng.integers(0, nslots, n).astype(np.int64)
            bias = (0.9, 0.5, float(rng.random()))[trial % 3]
            taken = (rng.random(n) < bias).astype(np.int64)
            t0 = rng.integers(0, 4, nslots).astype(np.uint8)
            ta, tb = t0.copy(), t0.copy()
            assert np.array_equal(
                counter_scan(idx, taken, ta), brute_counters(idx, taken, tb)
            ), f"miss flags trial {trial}"
            assert np.array_equal(ta, tb), f"table trial {trial}"

    def test_long_biased_stream(self):
        # long same-direction runs exercise the run-compression path
        rng = np.random.default_rng(6)
        n = 50_000
        idx = rng.integers(0, 256, n).astype(np.int64)
        taken = (rng.random(n) < 0.95).astype(np.int64)
        ta = np.ones(256, dtype=np.uint8)
        tb = ta.copy()
        assert np.array_equal(
            counter_scan(idx, taken, ta), brute_counters(idx, taken, tb)
        )
        assert np.array_equal(ta, tb)

    def test_empty(self):
        table = np.ones(4, dtype=np.uint8)
        assert counter_scan(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), table
        ).size == 0
        assert np.array_equal(table, np.ones(4, dtype=np.uint8))


class TestGshareHistory:
    def test_matches_scalar_shift_register(self):
        rng = np.random.default_rng(7)
        for _ in range(40):
            n = int(rng.integers(1, 200))
            bits = int(rng.integers(0, 13))
            h0 = int(rng.integers(0, 1 << bits)) if bits else 0
            taken = rng.integers(0, 2, n).astype(np.int64)
            got = gshare_history(taken, h0, bits)
            mask = (1 << bits) - 1
            h = h0
            for i in range(n):
                assert got[i] == h, f"event {i}"
                h = ((h << 1) | int(taken[i])) & mask


class TestCodeBursts:
    def test_fuzz_against_per_line_walk(self):
        rng = np.random.default_rng(8)
        exact = 0
        for trial in range(60):
            n_m = int(rng.integers(1, 9))
            assoc = int(rng.integers(1, 9))
            code_base = (rng.integers(0, 1 << 20, n_m) << 6).astype(np.int64)
            code_blocks = rng.integers(1, 200, n_m).astype(np.int64)
            k = int(rng.integers(1, 100))
            c_midx = rng.integers(0, n_m, k).astype(np.int64)
            c_key = np.arange(k, dtype=np.int64) * _ORDER_STRIDE
            l1i = Cache(
                CacheConfig(
                    size_bytes=64 * assoc * 64,
                    line_bytes=64,
                    associativity=assoc,
                    name="L1I",
                )
            )
            n_sets = len(l1i._sets)
            res = _replay_code_bursts(c_midx, c_key, code_base, code_blocks, l1i)

            sets: dict = {}
            hits = misses = 0
            b_addr, b_attr, b_key = [], [], []
            for bi in range(k):
                m = int(c_midx[bi])
                for w in range(int(code_blocks[m])):
                    line = (int(code_base[m]) >> 6) + w
                    lset = sets.setdefault(line & (n_sets - 1), {})
                    if line in lset:
                        del lset[line]
                        lset[line] = None
                        hits += 1
                    else:
                        misses += 1
                        if len(lset) >= assoc:
                            lset.pop(next(iter(lset)))
                        lset[line] = None
                        b_addr.append(line << 6)
                        b_attr.append(m)
                        b_key.append(int(c_key[bi]) + 1 + w)
            if res is None:
                continue  # legitimate fallback (shared lines)
            exact += 1
            n_hits, n_misses, miss_addr, miss_attr, miss_key = res
            assert (n_hits, n_misses) == (hits, misses), f"counts trial {trial}"
            o1 = np.argsort(miss_key)
            o2 = np.argsort(np.asarray(b_key, dtype=np.int64))
            assert np.array_equal(miss_key[o1], np.asarray(b_key, dtype=np.int64)[o2])
            assert np.array_equal(miss_addr[o1], np.asarray(b_addr, dtype=np.int64)[o2])
            assert np.array_equal(miss_attr[o1], np.asarray(b_attr, dtype=np.int64)[o2])
        assert exact >= 40  # the fast path must actually engage


class TestBatchedKernels:
    """Property: an N-config batched kernel call == N single-config calls.

    Hypothesis drives the config count, per-config geometry/table
    shapes, and stream character; a dedicated flag forces
    conflict-heavy streams (distinct lines per set well above the
    associativity) so the eviction/carve-out paths are exercised, not
    just the first-touch fast path.
    """

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_lru_batched_match_single_config_runs(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        n_cfg = data.draw(st.integers(1, 5))
        conflict_heavy = data.draw(st.booleans())
        rows, masks, assocs = [], [], []
        for _ in range(n_cfg):
            n = data.draw(st.integers(0, 700))
            set_bits = data.draw(st.integers(0, 3))
            assoc = data.draw(st.integers(1, 8))
            capacity = (1 << set_bits) * assoc
            if conflict_heavy:
                span = data.draw(st.integers(capacity + 1, 4 * capacity + 4))
            else:
                span = data.draw(st.integers(1, 4 * capacity + 4))
            rows.append(rng.integers(0, span, n).astype(np.int64))
            masks.append((1 << set_bits) - 1)
            assocs.append(assoc)
        for batched, single in (
            (lru_hits_batched, lru_hits),
            (lru_filter_batched, lru_filter),
        ):
            got = batched([r.copy() for r in rows], masks, assocs)
            assert len(got) == n_cfg
            for i in range(n_cfg):
                want = single(rows[i], masks[i], assocs[i])
                assert np.array_equal(got[i], want), f"{single.__name__} cfg {i}"

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_counter_scan_batched_matches_single_config_runs(self, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
        n_cfg = data.draw(st.integers(1, 4))
        n = data.draw(st.integers(0, 500))
        bias = data.draw(st.sampled_from([0.5, 0.9, 0.98]))
        taken = (rng.random(n) < bias).astype(np.int64)
        idx_rows, tables_batched, tables_single = [], [], []
        for _ in range(n_cfg):
            bits = data.draw(st.integers(0, 6))
            t0 = rng.integers(0, 4, 1 << bits).astype(np.uint8)
            idx_rows.append(rng.integers(0, 1 << bits, n).astype(np.int64))
            tables_batched.append(t0.copy())
            tables_single.append(t0.copy())
        miss = counter_scan_batched(idx_rows, taken, tables_batched)
        assert miss.shape == (n_cfg, n)
        for i in range(n_cfg):
            want = counter_scan(idx_rows[i], taken, tables_single[i])
            assert np.array_equal(miss[i], want), f"miss row {i}"
            assert np.array_equal(tables_batched[i], tables_single[i]), f"table {i}"

    def test_lru_batched_overflow_guard_falls_back(self):
        # composite line ids would overflow int64: the per-config
        # fallback must produce the same (correct) answers
        huge = np.array([1 << 61, (1 << 61) + 1, 1 << 61], dtype=np.int64)
        small = np.array([0, 1, 0, 1, 2], dtype=np.int64)
        got = lru_hits_batched([huge, small], [0, 1], [1, 1])
        assert np.array_equal(got[0], lru_hits(huge, 0, 1))
        assert np.array_equal(got[1], lru_hits(small, 1, 1))
        got = lru_filter_batched([huge, small], [0, 1], [1, 1])
        assert np.array_equal(got[0], lru_filter(huge, 0, 1))
        assert np.array_equal(got[1], lru_filter(small, 1, 1))

    def test_lru_batched_conflict_heavy_large_stream(self):
        # above _FILTER_SCALAR_MAX with guaranteed evictions in every
        # config: the batched carve-out path must engage and agree
        rng = np.random.default_rng(11)
        rows = [
            (rng.integers(0, 64, 3000) * 4).astype(np.int64),  # set 0 thrashes
            rng.integers(0, 24, 2500).astype(np.int64),  # 8 sets, 3 lines each
        ]
        masks = [3, 7]
        assocs = [4, 2]
        got = lru_filter_batched(rows, masks, assocs)
        for i in range(2):
            assert np.array_equal(got[i], lru_filter(rows[i], masks[i], assocs[i]))
