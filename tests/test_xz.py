"""Tests for the 557.xz_r substrate and its workload generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.xz import XzBenchmark, XzInput, compress, decompress
from repro.machine import run_benchmark
from repro.workloads.xz_gen import CONTENT_STYLES, XzWorkloadGenerator


def params(content: bytes, **kw) -> XzInput:
    return XzInput(content=content, **kw)


class TestRoundTrip:
    def test_simple_text(self):
        data = b"the quick brown fox jumps over the lazy dog " * 40
        blob = compress(data, params(data))
        assert decompress(blob, len(data)) == data

    def test_single_byte(self):
        data = b"x"
        blob = compress(data, params(data))
        assert decompress(blob, len(data)) == data

    def test_all_zero(self):
        data = b"\x00" * 5000
        blob = compress(data, params(data))
        assert decompress(blob, len(data)) == data
        assert len(blob) < len(data) // 10  # trivially compressible

    def test_incompressible(self):
        import random

        rng = random.Random(9)
        data = bytes(rng.randrange(256) for _ in range(4096))
        blob = compress(data, params(data))
        assert decompress(blob, len(data)) == data
        assert len(blob) > len(data) * 0.9  # random data barely shrinks

    @given(st.binary(min_size=1, max_size=3000))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        blob = compress(data, params(data))
        assert decompress(blob, len(data)) == data

    def test_compressible_beats_incompressible(self):
        rep = b"abcdef" * 800
        import random

        rng = random.Random(1)
        rand = bytes(rng.randrange(256) for _ in range(4800))
        ratio_rep = len(compress(rep, params(rep))) / len(rep)
        ratio_rand = len(compress(rand, params(rand))) / len(rand)
        assert ratio_rep < ratio_rand / 3


class TestXzInputValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            XzInput(content=b"")

    def test_rejects_non_pow2_dict(self):
        with pytest.raises(ValueError):
            XzInput(content=b"x", dict_size=1000)

    def test_rejects_tiny_match(self):
        with pytest.raises(ValueError):
            XzInput(content=b"x", max_match=1)


class TestBenchmark:
    def test_run_and_verify(self):
        gen = XzWorkloadGenerator()
        w = gen.generate(3, style="text", size=2048)
        prof = run_benchmark(XzBenchmark(), w)
        assert prof.verified
        assert prof.output["ok"]
        assert prof.output["ratio"] > 0

    def test_precompressed_payload_used(self):
        gen = XzWorkloadGenerator()
        w = gen.generate(3, style="text", size=2048, precompress=True)
        assert w.payload.stored is not None
        # the stored blob must itself decode back to the content
        assert decompress(w.payload.stored, len(w.payload.content)) == w.payload.content

    def test_memoization_effect(self):
        """The paper's discovery: repeated content below the dictionary
        size degenerates into dictionary lookups — visible as a far
        better compression ratio than mixed content."""
        gen = XzWorkloadGenerator()
        repeated = gen.generate(5, style="repeated", size=4096)
        mixed = gen.generate(5, style="mixed", size=4096)
        bm = XzBenchmark()
        r1 = run_benchmark(bm, repeated).output["ratio"]
        r2 = run_benchmark(bm, mixed).output["ratio"]
        assert r1 < r2 / 2


class TestGenerator:
    def test_styles(self):
        gen = XzWorkloadGenerator()
        for style in CONTENT_STYLES:
            w = gen.generate(1, style=style, size=1024, precompress=False)
            assert len(w.payload.content) == 1024

    def test_determinism(self):
        gen = XzWorkloadGenerator()
        a = gen.generate(7, style="text", size=2048, precompress=False)
        b = gen.generate(7, style="text", size=2048, precompress=False)
        assert a.payload.content == b.payload.content

    def test_seeds_differ(self):
        gen = XzWorkloadGenerator()
        a = gen.generate(7, style="text", size=2048, precompress=False)
        b = gen.generate(8, style="text", size=2048, precompress=False)
        assert a.payload.content != b.payload.content

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            XzWorkloadGenerator().generate(1, style="video")

    def test_alberta_set_size(self):
        ws = XzWorkloadGenerator().alberta_set()
        assert len(ws) == 12  # Table II count
        assert "xz.refrate" in ws


class TestLazyMatching:
    """The LZMA lazy-match heuristic: defer a short match when a longer
    one starts at the next byte."""

    CRAFTED = b"abcZZZZbcdefghQQQQabcdefgh"

    def test_lazy_round_trips(self):
        p = params(self.CRAFTED, lazy=True)
        assert decompress(compress(self.CRAFTED, p), len(self.CRAFTED)) == self.CRAFTED

    def test_lazy_beats_greedy_on_crafted_input(self):
        greedy = compress(self.CRAFTED, params(self.CRAFTED, lazy=False))
        lazy = compress(self.CRAFTED, params(self.CRAFTED, lazy=True))
        assert len(lazy) < len(greedy)

    def test_lazy_never_worse_on_text(self):
        import random

        rng = random.Random(6)
        from repro.workloads.xz_gen import _text_content

        data = _text_content(rng, 4096)
        greedy = compress(data, params(data, lazy=False))
        lazy = compress(data, params(data, lazy=True))
        assert len(lazy) <= len(greedy) * 1.02

    def test_lazy_defers_exactly_one_match(self):
        from repro.machine.telemetry import Probe

        counts = {}
        for lazy in (False, True):
            p = Probe()
            with p.method("m"):
                compress(self.CRAFTED, params(self.CRAFTED, lazy=lazy), p)
            mc = p.methods()[0]
            counts[lazy] = (mc.extra["matches"], mc.extra["literals"])
        assert counts[True][0] == counts[False][0] - 1  # one match deferred
        assert counts[True][1] == counts[False][1] + 1  # into one literal
