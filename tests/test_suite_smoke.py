"""Suite-wide smoke test: every benchmark runs and verifies one
workload of every provenance kind present in its Alberta set."""

import pytest

from repro.core import alberta_workloads, benchmark_ids, get_benchmark
from repro.core.workload import WorkloadKind
from repro.machine import Profiler


@pytest.mark.parametrize("bid", sorted(benchmark_ids()))
def test_one_workload_per_kind(bid):
    ws = alberta_workloads(bid)
    benchmark = get_benchmark(bid)
    profiler = Profiler()
    seen_kinds = set()
    for workload in ws:
        if workload.kind in seen_kinds:
            continue
        seen_kinds.add(workload.kind)
        profile = profiler.run(benchmark, workload)
        assert profile.verified
        assert profile.cycles > 0
        # the profile is structurally sound
        assert abs(sum(profile.topdown.as_tuple()) - 1.0) < 1e-4
        assert abs(sum(profile.coverage.fractions.values()) - 1.0) < 1e-6
    assert WorkloadKind.SPEC in seen_kinds  # every set ships a SPEC trio


@pytest.mark.parametrize("bid", sorted(benchmark_ids()))
def test_fresh_seed_generates_valid_workload(bid):
    """The paper's headline: 'researchers can generate as many
    workloads as they wish' — a previously unused seed must work."""
    from repro.core import get_generator

    generator = get_generator(bid)
    workload = generator.generate(987_654)
    profile = Profiler().run(get_benchmark(bid), workload)
    assert profile.verified
