"""Property-based invariant tests for the game-engine substrates.

Random legal play must never violate the rules' structural invariants
— the kind of deep correctness the fixed-example tests cannot cover.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.deepsjeng import KING, START_FEN, Position
from repro.benchmarks.leela import BLACK, EMPTY, WHITE, GoBoard, _legal_moves


class TestChessInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_play_preserves_kings(self, seed):
        """Kings are never captured: every legal move sequence keeps
        both kings on the board."""
        rng = random.Random(seed)
        pos = Position.from_fen(START_FEN)
        for _ in range(rng.randint(5, 30)):
            moves = pos.legal_moves()
            if not moves:
                break
            pos = pos.make_move(rng.choice(moves))
            board_pieces = [p for p in pos.board if p != 0]
            assert board_pieces.count(KING) == 1
            assert board_pieces.count(-KING) == 1

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_moves_never_leave_mover_in_check(self, seed):
        rng = random.Random(seed)
        pos = Position.from_fen(START_FEN)
        for _ in range(rng.randint(3, 20)):
            moves = pos.legal_moves()
            if not moves:
                break
            mover_is_white = pos.white_to_move
            pos = pos.make_move(rng.choice(moves))
            king = pos.find_king(mover_is_white)
            assert king >= 0
            assert not pos.attacked_by(king, not mover_is_white)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_piece_count_never_increases(self, seed):
        rng = random.Random(seed)
        pos = Position.from_fen(START_FEN)
        count = sum(1 for p in pos.board if p != 0)
        for _ in range(rng.randint(3, 25)):
            moves = pos.legal_moves()
            if not moves:
                break
            pos = pos.make_move(rng.choice(moves))
            new_count = sum(1 for p in pos.board if p != 0)
            assert new_count <= count
            count = new_count

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_hash_consistency(self, seed):
        """Incremental Zobrist hashing equals recomputation from scratch."""
        rng = random.Random(seed)
        pos = Position.from_fen(START_FEN)
        for _ in range(rng.randint(2, 15)):
            moves = pos.legal_moves()
            if not moves:
                break
            pos = pos.make_move(rng.choice(moves))
        fresh = Position.from_fen(pos.to_fen())
        assert fresh.hash_ == pos.hash_


class TestGoInvariants:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_no_zero_liberty_groups_after_play(self, seed):
        """After any legal move, no group on the board has zero
        liberties (captures resolve atomically)."""
        rng = random.Random(seed)
        board = GoBoard(9)
        color = BLACK
        for _ in range(rng.randint(5, 40)):
            legal = _legal_moves(board, color)
            if not legal:
                break
            board.play(rng.choice(legal), color)
            for p in range(81):
                if board.cells[p] != EMPTY:
                    _, libs = board._group_and_liberties(p)
                    assert libs > 0
            color = BLACK + WHITE - color

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_captures_counter_matches_board(self, seed):
        """Stones placed minus stones on board equals stones captured."""
        rng = random.Random(seed)
        board = GoBoard(9)
        color = BLACK
        placed = 0
        for _ in range(rng.randint(5, 50)):
            legal = _legal_moves(board, color)
            if not legal:
                break
            board.play(rng.choice(legal), color)
            placed += 1
            color = BLACK + WHITE - color
        on_board = sum(1 for c in board.cells if c != EMPTY)
        captured = board.captures[BLACK] + board.captures[WHITE]
        assert placed == on_board + captured

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_score_bounded_by_board_area(self, seed):
        rng = random.Random(seed)
        board = GoBoard(9)
        color = BLACK
        for _ in range(rng.randint(5, 30)):
            legal = _legal_moves(board, color)
            if not legal:
                break
            board.play(rng.choice(legal), color)
            color = BLACK + WHITE - color
        score = board.score()
        assert -(81 + 7) <= score <= 81 + 7

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_copy_is_independent(self, seed):
        rng = random.Random(seed)
        board = GoBoard(9)
        board.play(40, BLACK)
        clone = board.copy()
        legal = _legal_moves(clone, WHITE)
        clone.play(rng.choice(legal), WHITE)
        assert board.cells.count(EMPTY) == 80  # original untouched
