"""Tests for cactuBSSN, parest, nab, povray, wrf, blender substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.blender import BlendScene, BlenderBenchmark, MeshObject, make_mesh
from repro.benchmarks.cactubssn import CactusInput, CactuBssnBenchmark, run_wave
from repro.benchmarks.nab import NabBenchmark, NabInput, compute_forces
from repro.benchmarks.parest import (
    ParestBenchmark,
    ParestInput,
    assemble_poisson,
    conjugate_gradient,
)
from repro.benchmarks.povray import (
    Light,
    PlaneFloor,
    PovrayBenchmark,
    SceneInput,
    Sphere,
    render,
)
from repro.benchmarks.wrf import WrfBenchmark, WrfInput, run_forecast
from repro.machine import run_benchmark
from repro.workloads.blender_gen import (
    BlenderWorkloadGenerator,
    check_scene,
    make_scene_library,
)
from repro.workloads.cactubssn_gen import CactuBssnWorkloadGenerator
from repro.workloads.nab_gen import NabWorkloadGenerator, synthesize_protein
from repro.workloads.parest_gen import ParestWorkloadGenerator
from repro.workloads.povray_gen import PovrayWorkloadGenerator
from repro.workloads.wrf_gen import WrfWorkloadGenerator, synthesize_event


class TestCactuBssn:
    def test_energy_bounded(self):
        out = run_wave(CactusInput(grid=10, steps=8, n_fields=2))
        assert out["final_energy"] <= out["initial_energy"] * 4.0

    def test_dissipation_reduces_energy(self):
        lo = run_wave(CactusInput(grid=10, steps=10, dissipation=0.0, n_fields=1))
        hi = run_wave(CactusInput(grid=10, steps=10, dissipation=0.1, n_fields=1))
        assert hi["final_energy"] < lo["final_energy"]

    def test_validation(self):
        with pytest.raises(ValueError):
            CactusInput(grid=4)
        with pytest.raises(ValueError):
            CactusInput(courant=0.9)  # violates the CFL bound

    def test_alberta_set_size(self):
        assert len(CactuBssnWorkloadGenerator().alberta_set()) == 11

    def test_run_and_verify(self):
        w = CactuBssnWorkloadGenerator().generate(1, grid=10, steps=6, n_fields=2)
        assert run_benchmark(CactuBssnBenchmark(), w).verified


class TestParest:
    def test_cg_matches_dense_solve(self):
        csr, rhs = assemble_poisson(8, "smooth")
        x, iterations = conjugate_gradient(csr, rhs, 1e-10, 2000)
        # rebuild the dense matrix and compare against numpy
        n = csr["n"]
        dense = np.zeros((n, n))
        for r in range(n):
            for k in range(csr["indptr"][r], csr["indptr"][r + 1]):
                dense[r, csr["indices"][k]] = csr["data"][k]
        expected = np.linalg.solve(dense, rhs)
        assert np.allclose(x, expected, atol=1e-6)
        assert iterations > 0

    def test_matrix_symmetric(self):
        csr, _ = assemble_poisson(6, "checker")
        n = csr["n"]
        dense = np.zeros((n, n))
        for r in range(n):
            for k in range(csr["indptr"][r], csr["indptr"][r + 1]):
                dense[r, csr["indices"][k]] = csr["data"][k]
        assert np.allclose(dense, dense.T)

    def test_tighter_tolerance_needs_more_iterations(self):
        csr, rhs = assemble_poisson(12, "checker")
        _, it_loose = conjugate_gradient(csr, rhs, 1e-3, 4000)
        _, it_tight = conjugate_gradient(csr, rhs, 1e-11, 4000)
        assert it_tight > it_loose

    def test_all_coefficient_kinds_converge(self):
        for kind in ("smooth", "checker", "spike"):
            csr, rhs = assemble_poisson(10, kind)
            _, iterations = conjugate_gradient(csr, rhs, 1e-9, 4000)
            assert 0 < iterations < 4000

    def test_validation(self):
        with pytest.raises(ValueError):
            ParestInput(mesh=2)
        with pytest.raises(ValueError):
            ParestInput(coefficient_kind="random")

    def test_alberta_set_size(self):
        assert len(ParestWorkloadGenerator().alberta_set()) == 8

    def test_run_and_verify(self):
        w = ParestWorkloadGenerator().generate(1, mesh=10)
        prof = run_benchmark(ParestBenchmark(), w)
        assert prof.verified
        assert prof.output["relative_residual"] < 1e-5


class TestNab:
    def test_newtons_third_law(self):
        """Internal forces must sum to ~zero (action = reaction)."""
        positions, charges, bonds = synthesize_protein(3, n_residues=12)
        forces, _ = compute_forces(positions, charges, bonds, cutoff=6.0)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-6)

    def test_energy_terms_present(self):
        positions, charges, bonds = synthesize_protein(4, n_residues=16)
        _, energies = compute_forces(positions, charges, bonds, cutoff=6.0)
        assert energies["bond"] >= 0.0
        assert energies["pairs"] > 0

    def test_compactness_increases_pairs(self):
        ext_p, ext_q, ext_b = synthesize_protein(5, n_residues=24, compact=0.1)
        glb_p, glb_q, glb_b = synthesize_protein(5, n_residues=24, compact=0.95)
        _, e_ext = compute_forces(ext_p, ext_q, ext_b, cutoff=6.0)
        _, e_glb = compute_forces(glb_p, glb_q, glb_b, cutoff=6.0)
        assert e_glb["pairs"] > e_ext["pairs"]

    def test_validation(self):
        pos, q, bonds = synthesize_protein(1, n_residues=6)
        with pytest.raises(ValueError):
            NabInput(positions=pos, charges=q[:-1], bonds=bonds)
        with pytest.raises(ValueError):
            NabInput(positions=pos, charges=q, bonds=((0, 99),))

    def test_alberta_set_size(self):
        assert len(NabWorkloadGenerator().alberta_set()) == 11

    def test_run_and_verify(self):
        w = NabWorkloadGenerator().generate(1, n_residues=16, minimize_steps=2)
        assert run_benchmark(NabBenchmark(), w).verified


class TestPovray:
    def _scene(self, **kw):
        defaults = dict(
            spheres=(Sphere(center=(0.0, 1.0, 1.0), radius=1.0),),
            floor=PlaneFloor(),
            lights=(Light(position=(4.0, 6.0, -3.0)),),
            width=16,
            height=12,
        )
        defaults.update(kw)
        return SceneInput(**defaults)

    def test_renders_nonzero_image(self):
        out = render(self._scene())
        assert out["mean_luminance"] > 0
        assert out["rays"] >= out["pixels"]

    def test_reflection_spawns_rays(self):
        plain = render(self._scene())
        shiny = render(
            self._scene(
                spheres=(Sphere(center=(0.0, 1.0, 1.0), radius=1.0, reflect=0.8),),
                max_depth=3,
            )
        )
        assert shiny["reflect_rays"] > plain["reflect_rays"]

    def test_refraction_spawns_rays(self):
        glassy = render(
            self._scene(
                spheres=(Sphere(center=(0.0, 1.0, 1.0), radius=1.0, refract=0.8),),
                max_depth=3,
            )
        )
        assert glassy["refract_rays"] > 0

    def test_aperture_multiplies_rays(self):
        one = render(self._scene(aperture_samples=1))
        four = render(self._scene(aperture_samples=4))
        assert four["rays"] > one["rays"] * 3

    def test_shadows_darken(self):
        """A light below the floor leaves the scene in ambient darkness."""
        lit = render(self._scene())
        dark = render(self._scene(lights=(Light(position=(0.0, -5.0, 1.0)),)))
        assert dark["mean_luminance"] < lit["mean_luminance"]

    def test_validation(self):
        with pytest.raises(ValueError):
            self._scene(lights=())
        with pytest.raises(ValueError):
            Sphere(center=(0, 0, 0), radius=-1)

    def test_alberta_set_size(self):
        assert len(PovrayWorkloadGenerator().alberta_set()) == 10

    def test_families_shift_coverage(self):
        gen = PovrayWorkloadGenerator()
        bm = PovrayBenchmark()
        lumpy = run_benchmark(bm, gen.generate(1, family="lumpy")).coverage
        primitive = run_benchmark(bm, gen.generate(1, family="primitive")).coverage
        assert primitive.fraction("reflect_refract") > lumpy.fraction("reflect_refract")


class TestWrf:
    def _input(self, **kw):
        h, u, v, q = synthesize_event("katrina", grid=(16, 16))
        defaults = dict(height=h, u=u, v=v, moisture=q, steps=8)
        defaults.update(kw)
        return WrfInput(**defaults)

    def test_forecast_stable(self):
        out = run_forecast(self._input())
        assert out["max_wind"] < 500.0
        assert out["final_mass"] > 0

    def test_mass_drift_bounded(self):
        out = run_forecast(self._input(microphysics=False))
        drift = abs(out["final_mass"] - out["initial_mass"]) / out["initial_mass"]
        assert drift < 0.05

    def test_microphysics_rains(self):
        wet = run_forecast(self._input(microphysics=True))
        dry = run_forecast(self._input(microphysics=False))
        assert wet["rain_total"] > 0
        assert dry["rain_total"] == 0

    def test_surface_drag_slows_wind(self):
        dragged = run_forecast(self._input(surface_layer=True))
        free = run_forecast(self._input(surface_layer=False))
        assert dragged["max_wind"] < free["max_wind"]

    def test_events_differ(self):
        k = synthesize_event("katrina")
        r = synthesize_event("rusa")
        assert not np.array_equal(k[0], r[0])

    def test_validation(self):
        h, u, v, q = synthesize_event("katrina", grid=(16, 16))
        with pytest.raises(ValueError):
            WrfInput(height=-h, u=u, v=v, moisture=q)
        with pytest.raises(ValueError):
            WrfInput(height=h, u=u[:8], v=v, moisture=q)
        with pytest.raises(ValueError):
            synthesize_event("sandy")

    def test_alberta_set_size(self):
        assert len(WrfWorkloadGenerator().alberta_set()) == 16

    def test_run_and_verify(self):
        w = WrfWorkloadGenerator().generate(1, steps=6)
        assert run_benchmark(WrfBenchmark(), w).verified


class TestBlender:
    def test_mesh_primitives(self):
        for kind, n_tris in (("cube", 12), ("sphere", 96), ("plane", 32)):
            verts, tris = make_mesh(MeshObject(kind=kind))
            assert len(tris) == n_tris
            assert all(0 <= i < len(verts) for t in tris for i in t)

    def test_subdivision_quadruples_triangles(self):
        _, base = make_mesh(MeshObject(kind="cube"))
        _, sub = make_mesh(MeshObject(kind="cube", subdivisions=2))
        assert len(sub) == len(base) * 16

    def test_displacement_moves_vertices(self):
        flat, _ = make_mesh(MeshObject(kind="sphere"))
        bumpy, _ = make_mesh(MeshObject(kind="sphere", displace=0.3))
        assert flat != bumpy

    def test_scene_suitability_checker(self):
        good = BlendScene(objects=(MeshObject(kind="cube"),))
        resource = BlendScene(objects=(MeshObject(kind="cube"),), renderable=False)
        heavy = BlendScene(objects=(MeshObject(kind="cube", subdivisions=4),))
        assert check_scene(good)
        assert not check_scene(resource)
        assert not check_scene(heavy)

    def test_library_contains_resource_files(self):
        library = make_scene_library(seed=5)
        assert any(not s.renderable for s in library)
        assert any(check_scene(s) for s in library)

    def test_selector_only_picks_suitable(self):
        gen = BlenderWorkloadGenerator()
        for seed in range(6):
            assert check_scene(gen.select(seed)) or gen.select(seed).renderable

    def test_validation(self):
        with pytest.raises(ValueError):
            BlendScene(objects=())
        with pytest.raises(ValueError):
            MeshObject(kind="torus")
        with pytest.raises(ValueError):
            MeshObject(kind="cube", subdivisions=9)

    def test_alberta_set_size(self):
        assert len(BlenderWorkloadGenerator().alberta_set()) == 16

    def test_run_and_verify(self):
        w = BlenderWorkloadGenerator().generate(3, n_frames=1)
        prof = run_benchmark(BlenderBenchmark(), w)
        assert prof.verified
        assert prof.output["total_tris"] > 0


@given(st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_protein_synthesis_always_valid(seed):
    positions, charges, bonds = synthesize_protein(seed, n_residues=10)
    NabInput(positions=positions, charges=charges, bonds=bonds)  # validates


class TestParestEstimation:
    """The inverse problem that gives parest its name."""

    def test_recovers_true_scale(self):
        from repro.workloads.parest_gen import ParestWorkloadGenerator

        w = ParestWorkloadGenerator().generate(
            3, mesh=10, tolerance=1e-8, estimate=True
        )
        prof = run_benchmark(ParestBenchmark(), w)
        assert prof.verified
        assert prof.output["estimated_scale"] == 1.0
        assert prof.output["misfit"] < 1e-6

    def test_estimation_runs_candidate_solves(self):
        from repro.machine.telemetry import Probe
        from repro.core.workload import Workload

        payload = ParestInput(mesh=8, estimate=True, candidate_scales=(0.5, 1.0, 2.0))
        w = Workload(name="est", benchmark="510.parest_r", payload=payload)
        probe = Probe()
        out = ParestBenchmark().run(w, probe)
        assert out["estimated_scale"] == 1.0
        by_name = {m.name: m for m in probe.methods()}
        # one reference + three candidate assemblies
        assert by_name["assemble_system"].calls == 4
        assert by_name["compute_misfit"].calls == 3

    def test_estimation_validation(self):
        with pytest.raises(ValueError):
            ParestInput(mesh=8, estimate=True, candidate_scales=(1.0,))

    def test_wrong_scale_has_larger_misfit(self):
        from repro.benchmarks.parest import assemble_poisson, conjugate_gradient
        import numpy as np

        csr1, rhs1 = assemble_poisson(10, "smooth", scale=1.0)
        x1, _ = conjugate_gradient(csr1, rhs1, 1e-10, 2000)
        csr2, rhs2 = assemble_poisson(10, "smooth", scale=2.0)
        x2, _ = conjugate_gradient(csr2, rhs2, 1e-10, 2000)
        # doubled coefficient halves the solution: clearly distinguishable
        assert np.linalg.norm(x2 - x1) > 0.1 * np.linalg.norm(x1)
