"""Tests for the published-Table-II baseline and rank comparison."""

import pytest

from repro.analysis.paper_baseline import PAPER_TABLE2, compare_to_paper, spearman
from repro.core.characterize import characterize


class TestPaperData:
    def test_fifteen_rows(self):
        assert len(PAPER_TABLE2) == 15

    def test_workload_counts_match_table(self):
        counts = {r.benchmark: r.n_workloads for r in PAPER_TABLE2}
        assert counts["519.lbm_r"] == 30
        assert counts["505.mcf_r"] == 7
        assert counts["502.gcc_r"] == 19

    def test_known_values(self):
        leela = next(r for r in PAPER_TABLE2 if r.benchmark == "541.leela_r")
        assert leela.s_mu == 27.6
        xalan = next(r for r in PAPER_TABLE2 if r.benchmark == "523.xalancbmk_r")
        assert xalan.mu_g_m == 108

    def test_paper_category_means_roughly_sum(self):
        """Each row's four mu_g percentages sum near 100 (geometric
        means of fractions need not sum exactly)."""
        for row in PAPER_TABLE2:
            total = row.f_mu + row.b_mu + row.s_mu + row.r_mu
            assert 85 < total < 110, row.benchmark


class TestSpearman:
    def test_perfect_correlation(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert spearman([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        r = spearman([1, 1, 2], [1, 2, 3])
        assert -1.0 <= r <= 1.0

    def test_constant_series_is_zero(self):
        assert spearman([5, 5, 5], [1, 2, 3]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])

    def test_monotone_transform_invariance(self):
        a = [3.0, 1.0, 4.0, 1.5, 9.0]
        b = [x**3 for x in a]
        assert spearman(a, b) == pytest.approx(1.0)


@pytest.mark.slow
class TestCompareToPaper:
    def test_subset_comparison(self):
        chars = [
            characterize(bid)
            for bid in ("541.leela_r", "548.exchange2_r", "557.xz_r", "519.lbm_r")
        ]
        result = compare_to_paper(chars)
        for key in ("spearman_f_mu", "spearman_b_mu", "spearman_s_mu", "spearman_r_mu"):
            assert -1.0 <= result[key] <= 1.0
        assert "leaders" in result

    def test_needs_enough_benchmarks(self):
        chars = [characterize("557.xz_r")]
        with pytest.raises(ValueError):
            compare_to_paper(chars)

    def test_bad_speculation_ranking_matches_paper(self):
        """On this subset the bad-spec ranking (leela >> xz >> lbm,
        exchange2 in between) is paper-identical -> correlation 1.0."""
        chars = [
            characterize(bid)
            for bid in ("541.leela_r", "557.xz_r", "548.exchange2_r", "519.lbm_r")
        ]
        result = compare_to_paper(chars)
        assert result["spearman_s_mu"] == pytest.approx(1.0)
