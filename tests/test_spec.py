"""Tests for SPEC metadata and the Section III evolution analysis."""

import pytest

from repro.spec.history import (
    carried_over,
    dropped_after_2006,
    evolution_summary,
    mean_time_2006,
    mean_time_2017,
    new_in_2017,
)
from repro.spec.spec2017 import FP_2017, INT_2017, TABLE1_ROWS, info


class TestTable1Data:
    def test_mean_2017_matches_paper(self):
        """Table I reports an arithmetic average of 517 s for 2017."""
        assert round(mean_time_2017()) == 517

    def test_mean_2006_matches_paper(self):
        """Table I reports an arithmetic average of 405 s for 2006."""
        assert round(mean_time_2006()) == 405

    def test_row_count(self):
        assert len(TABLE1_ROWS) == 13

    def test_known_row(self):
        mcf = next(r for r in TABLE1_ROWS if r.spec2017 == "505.mcf_r")
        assert mcf.spec2006 == "429.mcf"
        assert mcf.time2017 == 633
        assert mcf.time2006 == 333

    def test_2017_only_rows(self):
        new = new_in_2017()
        assert len(new) == 1  # exchange (Sudoku) is the only new INT entry

    def test_2006_only_rows(self):
        dropped = {r.spec2006 for r in dropped_after_2006()}
        assert dropped == {"456.hmmer", "462.libquantum", "473.astar"}

    def test_carried_over_count(self):
        assert len(carried_over()) == 9


class TestSuiteInfo:
    def test_info_lookup(self):
        entry = info("502.gcc_r")
        assert entry.area == "Compiler"
        assert entry.predecessor_2006 == "403.gcc"

    def test_info_unknown(self):
        with pytest.raises(KeyError):
            info("999.nope_r")

    def test_int_suite_has_ten_benchmarks(self):
        assert len(INT_2017) == 10

    def test_fp_entries_are_fp(self):
        assert all(b.suite == "fp" for b in FP_2017)

    def test_evolution_summary_keys(self):
        s = evolution_summary()
        assert s["mean_time_2017"] > s["mean_time_2006"]
        assert len(s["fp_areas_new"]) == 5
        assert len(s["fp_areas_dropped"]) == 5
