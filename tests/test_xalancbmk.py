"""Tests for the 523.xalancbmk_r XML/XSLT substrate and generator."""

import pytest

from repro.benchmarks.xalancbmk import (
    TransformOp,
    XalanInput,
    XalancbmkBenchmark,
    parse_xml,
    select,
)
from repro.machine import run_benchmark
from repro.workloads.xalancbmk_gen import (
    XMARK_QUERIES,
    XalancbmkWorkloadGenerator,
    make_auction_xml,
    make_records_xml,
)
from repro.workloads.base import make_rng


class TestXmlParser:
    def test_simple_tree(self):
        root = parse_xml("<a><b>hi</b><c x=\"1\"/></a>")
        assert root.tag == "a"
        assert len(root.children) == 2
        assert root.children[0].text == "hi"
        assert root.children[1].attrs == {"x": "1"}

    def test_nested_depth(self):
        root = parse_xml("<a><b><c><d>deep</d></c></b></a>")
        assert root.children[0].children[0].children[0].text == "deep"

    def test_mismatched_tags_rejected(self):
        with pytest.raises(Exception):
            parse_xml("<a><b></a></b>")

    def test_stray_close_rejected(self):
        with pytest.raises(Exception):
            parse_xml("</a>")

    def test_multiple_roots_rejected(self):
        with pytest.raises(Exception):
            parse_xml("<a/><b/>")

    def test_prolog_and_comments_skipped(self):
        root = parse_xml('<?xml version="1.0"?><!-- note --><a>x</a>')
        assert root.tag == "a"


class TestSelect:
    def _tree(self):
        return parse_xml(
            "<site><items>"
            '<item id="1" hot="yes"><price>5</price></item>'
            '<item id="2" hot="no"><price>9</price></item>'
            "</items><people><person/></people></site>"
        )

    def test_child_path(self):
        assert len(select(self._tree(), "items/item")) == 2

    def test_wildcard(self):
        assert len(select(self._tree(), "*/item")) == 2

    def test_attr_predicate(self):
        nodes = select(self._tree(), "items/item[hot=yes]")
        assert len(nodes) == 1
        assert nodes[0].attrs["id"] == "1"

    def test_child_predicate(self):
        assert len(select(self._tree(), "items/item[price]")) == 2

    def test_descendant(self):
        tags = {n.tag for n in select(self._tree(), "**")}
        assert {"items", "item", "price", "people", "person"} <= tags

    def test_no_match(self):
        assert select(self._tree(), "items/order") == []


class TestTransforms:
    def test_aggregate(self):
        xml = make_records_xml(make_rng(1), 20)
        w = XalanInput(
            xml=xml,
            ops=(TransformOp("aggregate", "record", key="score"),),
            repeats=1,
        )
        from repro.core.workload import Workload

        wl = Workload(name="t", benchmark="523.xalancbmk_r", payload=w)
        out = XalancbmkBenchmark().run(wl, _probe())
        total, count = out["output"].split("/")
        assert int(count) == 20
        assert float(total) > 0

    def test_sort_orders_output(self):
        xml = "<r><x><k>b</k></x><x><k>a</k></x><x><k>c</k></x></r>"
        w = XalanInput(xml=xml, ops=(TransformOp("sort", "x", key="k"),), repeats=1)
        from repro.core.workload import Workload

        out = XalancbmkBenchmark().run(
            Workload(name="t", benchmark="523.xalancbmk_r", payload=w), _probe()
        )
        assert out["output"].splitlines() == ["a", "b", "c"]

    def test_op_validation(self):
        with pytest.raises(ValueError):
            TransformOp("rename", "a/b")
        with pytest.raises(ValueError):
            TransformOp("extract", "")

    def test_input_validation(self):
        with pytest.raises(ValueError):
            XalanInput(xml=" ", ops=(TransformOp("extract", "a"),))
        with pytest.raises(ValueError):
            XalanInput(xml="<a/>", ops=())


def _probe():
    from repro.machine.telemetry import Probe

    return Probe()


class TestGenerators:
    def test_records_xml_parses(self):
        xml = make_records_xml(make_rng(2), 30)
        root = parse_xml(xml)
        assert len(root.children) == 30

    def test_auction_xml_parses(self):
        xml = make_auction_xml(make_rng(2), n_items=12, n_people=6)
        root = parse_xml(xml)
        assert root.tag == "site"
        people = select(root, "people/person")
        assert len(people) == 6

    def test_xmark_has_eighteen_queries(self):
        """The paper combined XMark's eighteen XSLT-1.0 queries."""
        assert len(XMARK_QUERIES) == 18

    def test_alberta_set_size(self):
        ws = XalancbmkWorkloadGenerator().alberta_set()
        assert len(ws) == 8  # Table II count

    def test_workloads_run(self):
        gen = XalancbmkWorkloadGenerator()
        bm = XalancbmkBenchmark()
        w = gen.generate(5, family="records", stylesheet="compute", size=50)
        prof = run_benchmark(bm, w)
        assert prof.verified
        assert prof.output["lines"] > 0

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            XalancbmkWorkloadGenerator().generate(1, family="wiki")
