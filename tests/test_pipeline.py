"""Staged-pipeline tests: codec, capture/replay identity, golden ports.

Three layers of guarantees:

* the telemetry codec round-trips captures exactly (decimation state
  included) and quarantines corrupt artifacts instead of crashing;
* capture -> materialize -> replay is bit-identical to the historical
  fused ``Profiler.run`` path;
* the ported studies (compiler variation, similarity, FDO
  cross-validation) produce byte-identical results to the frozen
  pre-port implementations in ``tests/_legacy_studies.py``, and sweeps
  actually reuse captured telemetry (zero re-executions when warm).
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.artifacts import ArtifactStore, CaptureStore, decode_capture, encode_capture
from repro.core.cache import capture_key, profile_to_dict
from repro.core.errors import CacheCorruption, MachineMismatch, StudyError
from repro.core.run import Session
from repro.core.suite import alberta_workloads, get_benchmark
from repro.core.sweep import MachineGrid, SweepRequest
from repro.core.trace import summarize_trace
from repro.fdo.evaluation import cross_validate, evaluate_pair, train_profile
from repro.machine.capture import TelemetryCapture, capture_execution, replay_capture
from repro.machine.cost import MachineConfig
from repro.machine.profiler import Profiler
from repro.machine.telemetry import Probe
from repro.studies.compiler_variation import compiler_variation
from repro.studies.similarity import collect_features

try:
    from tests._legacy_studies import (
        legacy_collect_features,
        legacy_compiler_variation,
        legacy_cross_validate,
    )
except ImportError:  # pragma: no cover - direct invocation from tests/
    from _legacy_studies import (
        legacy_collect_features,
        legacy_compiler_variation,
        legacy_cross_validate,
    )


def _workload(benchmark_id: str, suffix: str):
    return next(
        w for w in alberta_workloads(benchmark_id) if w.name.endswith(suffix)
    )


def _capture(benchmark_id: str = "505.mcf_r", suffix: str = ".refrate"):
    wl = _workload(benchmark_id, suffix)
    return capture_execution(get_benchmark(benchmark_id), wl), wl


class TestCaptureCodec:
    def test_round_trip_exact(self):
        cap, _ = _capture()
        blob = encode_capture(cap)
        back = decode_capture(blob)
        assert back.benchmark == cap.benchmark
        assert back.workload == cap.workload
        assert back.verified == cap.verified
        assert back.sampling_stride == cap.sampling_stride
        assert back.event_cap == cap.event_cap
        assert back.tick == cap.tick
        assert back.methods == cap.methods
        for a, b in zip(back.columns, cap.columns):
            assert a.dtype == np.int64
            assert np.array_equal(a, b)

    def test_round_trip_under_decimation(self):
        # A tiny event cap forces the probe to decimate its event
        # stream; the codec must preserve the resulting sampling state.
        bench = get_benchmark("505.mcf_r")
        wl = _workload("505.mcf_r", ".refrate")
        probe = Probe(event_cap=1024)
        bench.run(wl, probe)
        cap = TelemetryCapture.from_probe(bench.name, wl.name, probe)
        assert cap.sampling_stride > 1  # decimation actually happened
        back = decode_capture(encode_capture(cap))
        assert back.sampling_stride == cap.sampling_stride
        assert back.event_cap == cap.event_cap
        assert back.tick == cap.tick
        for a, b in zip(back.columns, cap.columns):
            assert np.array_equal(a, b)

    def test_decode_rejects_damage(self):
        cap, _ = _capture()
        blob = encode_capture(cap)
        with pytest.raises(CacheCorruption):
            decode_capture(blob[:40])  # truncated
        with pytest.raises(CacheCorruption):
            decode_capture(b"XXXX" + blob[4:])  # wrong magic
        flipped = bytearray(blob)
        flipped[-1] ^= 0xFF  # payload damage -> zlib/crc failure
        with pytest.raises(CacheCorruption):
            decode_capture(bytes(flipped))

    def test_store_quarantines_corrupt_artifact(self, tmp_path):
        store = CaptureStore(tmp_path)
        cap, wl = _capture()
        key = capture_key(cap.benchmark, wl)
        store.put(key, cap)
        assert len(store) == 1
        path = next(Path(tmp_path).glob("*/*.bin"))
        path.write_bytes(b"garbage")
        assert store.get(key) is None
        assert store.quarantined_entries() == 1
        assert len(store) == 0  # quarantined entry no longer served


class TestCaptureReplayIdentity:
    @pytest.mark.parametrize("bid", ["505.mcf_r", "557.xz_r", "519.lbm_r"])
    def test_replay_matches_fused_profiler(self, bid):
        wl = _workload(bid, ".refrate")
        machine = MachineConfig(predictor="bimodal", width=2)
        direct = Profiler(machine).run(get_benchmark(bid), wl)
        cap = capture_execution(get_benchmark(bid), wl)
        replayed = replay_capture(cap, machine=machine)
        direct_d = profile_to_dict(direct)
        replayed_d = profile_to_dict(replayed)
        assert direct_d == replayed_d

    def test_replay_is_repeatable(self):
        # Replays must not perturb the capture: N replays, one answer.
        cap, _ = _capture("557.xz_r")
        first = profile_to_dict(replay_capture(cap))
        for _ in range(3):
            assert profile_to_dict(replay_capture(cap)) == first


class TestGoldenPorts:
    def test_compiler_variation_equivalent(self):
        new = compiler_variation("557.xz_r", max_workloads=2)
        old = legacy_compiler_variation("557.xz_r", max_workloads=2)
        assert new == old

    def test_similarity_features_equivalent(self):
        new = collect_features("505.mcf_r")
        old = legacy_collect_features("505.mcf_r")
        assert new.benchmark == old.benchmark
        assert new.workload == old.workload
        assert np.array_equal(new.vector, old.vector)

    def test_cross_validate_equivalent(self):
        new = cross_validate("505.mcf_r", max_workloads=2)
        old = legacy_cross_validate("505.mcf_r", max_workloads=2)
        assert new.benchmark == old.benchmark
        assert new.results == old.results

    def test_cross_validate_combined_equivalent(self):
        new = cross_validate("505.mcf_r", max_workloads=3, combined=True)
        old = legacy_cross_validate("505.mcf_r", max_workloads=3, combined=True)
        assert new.results == old.results

    def test_cross_validate_needs_two_workloads(self):
        with pytest.raises(StudyError):
            cross_validate("505.mcf_r", max_workloads=1)


class TestMachineMismatch:
    def test_mismatched_profile_rejected(self):
        wl_train = _workload("557.xz_r", ".train")
        wl_ref = _workload("557.xz_r", ".refrate")
        profile = train_profile("557.xz_r", wl_train, MachineConfig(width=2))
        with pytest.raises(MachineMismatch):
            evaluate_pair(
                "557.xz_r",
                wl_train,
                wl_ref,
                machine=MachineConfig(width=8),
                profile=profile,
            )

    def test_default_config_normalized(self):
        # machine=None and an explicit default config are the same
        # machine: normalized, not rejected.
        wl_train = _workload("557.xz_r", ".train")
        wl_ref = _workload("557.xz_r", ".refrate")
        profile = train_profile("557.xz_r", wl_train, MachineConfig())
        result = evaluate_pair(
            "557.xz_r", wl_train, wl_ref, machine=None, profile=profile
        )
        assert result.fdo_seconds > 0

    def test_unstamped_profile_accepted_anywhere(self):
        # Legacy profiles (machine=None) predate the stamp; they replay
        # under any config without complaint.
        wl_train = _workload("557.xz_r", ".train")
        wl_ref = _workload("557.xz_r", ".refrate")
        profile = train_profile("557.xz_r", wl_train, MachineConfig(width=2))
        profile = type(profile)(
            benchmark=profile.benchmark,
            methods=profile.methods,
            training_workloads=profile.training_workloads,
            machine=None,
        )
        result = evaluate_pair(
            "557.xz_r",
            wl_train,
            wl_ref,
            machine=MachineConfig(width=8),
            profile=profile,
        )
        assert result.fdo_seconds > 0


class TestSweepReuse:
    MACHINES = [None, MachineConfig(predictor="bimodal")]

    @classmethod
    def _request(cls) -> SweepRequest:
        return SweepRequest(
            benchmark="505.mcf_r", grid=MachineGrid.from_machines(cls.MACHINES)
        )

    def test_sweep_executes_each_workload_once(self, tmp_path):
        with Session(cache=tmp_path / "store", trace=tmp_path / "cold.jsonl") as s:
            result = s.characterize_sweep(self._request())
        assert result.ok
        summary = summarize_trace(tmp_path / "cold.jsonl")
        n_workloads = len(alberta_workloads("505.mcf_r"))
        assert summary.cells == n_workloads * len(self.MACHINES)
        assert summary.captures == n_workloads  # one execution per workload
        assert summary.replays == summary.cells

    def test_warm_sweep_executes_nothing(self, tmp_path):
        with Session(cache=tmp_path / "store") as s:
            cold = s.characterize_sweep(self._request())
        with Session(cache=tmp_path / "store", trace=tmp_path / "warm.jsonl") as s:
            warm = s.characterize_sweep(self._request())
        summary = summarize_trace(tmp_path / "warm.jsonl")
        assert summary.captures == 0  # zero benchmark re-executions
        assert summary.replays == 0  # every cell is a profile-cache hit
        assert summary.cache_hits == summary.cells
        for a, b in zip(cold.characterizations, warm.characterizations):
            assert a.table2_row() == b.table2_row()

    def test_capture_store_shared_across_machines(self, tmp_path):
        # A new config added to a warm store replays without executing.
        with Session(cache=tmp_path / "store") as s:
            s.characterize("505.mcf_r")
        with Session(
            machine=MachineConfig(width=2),
            cache=tmp_path / "store",
            trace=tmp_path / "new.jsonl",
        ) as s:
            s.characterize("505.mcf_r")
        summary = summarize_trace(tmp_path / "new.jsonl")
        assert summary.captures == 0
        assert summary.capture_hits == summary.cells
        assert summary.replays == summary.cells

    def test_artifact_store_wipe_covers_both_stages(self, tmp_path):
        with Session(cache=tmp_path / "store") as s:
            s.characterize("505.mcf_r")
        store = ArtifactStore(tmp_path / "store")
        assert len(store.profiles) > 0
        assert len(store.captures) > 0
        removed = store.wipe()
        assert removed > 0
        assert len(store.profiles) == 0
        assert len(store.captures) == 0


GATE_PATTERN = re.compile(r"(?<![\w.])(Probe|CostModel)\s*\(")
GATE_EXEMPT = ("machine/", "fdo/optimizer.py")


def test_no_private_execution_loops_outside_pipeline():
    """Grep gate: only machine/ and the FDO cost model may construct
    Probe or CostModel — everything else must go through the staged
    pipeline (Session/engine)."""
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    offenders = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(src).as_posix()
        if rel.startswith(GATE_EXEMPT[0]) or rel == GATE_EXEMPT[1]:
            continue
        for i, line in enumerate(path.read_text().splitlines(), 1):
            if GATE_PATTERN.search(line):
                offenders.append(f"{rel}:{i}: {line.strip()}")
    assert not offenders, "direct Probe/CostModel construction:\n" + "\n".join(offenders)
