"""Tests for the 505.mcf_r network simplex solver and city generator."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.mcf import McfBenchmark, McfInstance, NetworkSimplex
from repro.machine import run_benchmark
from repro.workloads.mcf_gen import (
    CIRCADIAN,
    McfWorkloadGenerator,
    build_city,
    build_timetable,
    timetable_to_mcf,
)
from repro.workloads.base import make_rng


def random_feasible_instance(rng, n=10, extra_arcs=25):
    """A random instance guaranteed feasible via a bidirectional backbone."""
    supplies = [0] * n
    srcs = rng.sample(range(n), 2)
    dsts = [x for x in range(n) if x not in srcs][:2]
    total = 0
    for s in srcs:
        amt = rng.randint(1, 8)
        supplies[s] += amt
        total += amt
    first = rng.randint(0, total)
    supplies[dsts[0]] = -first
    supplies[dsts[1]] = -(total - first)
    arcs = []
    perm = list(range(n))
    rng.shuffle(perm)
    for i in range(n - 1):
        arcs.append((perm[i], perm[i + 1], total + 5, rng.randint(1, 40)))
        arcs.append((perm[i + 1], perm[i], total + 5, rng.randint(1, 40)))
    for _ in range(extra_arcs):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            arcs.append((u, v, rng.randint(1, 15), rng.randint(1, 40)))
    return McfInstance(n_nodes=n, supplies=tuple(supplies), arcs=tuple(arcs))


class TestNetworkSimplex:
    def test_trivial_single_arc(self):
        inst = McfInstance(2, (5, -5), (((0, 1, 10, 3)),))
        res = NetworkSimplex(inst).solve()
        assert res.feasible
        assert res.cost == 15
        assert res.flows == [5]

    def test_prefers_cheap_path(self):
        inst = McfInstance(
            3,
            (4, 0, -4),
            ((0, 2, 10, 10), (0, 1, 10, 2), (1, 2, 10, 3)),
        )
        res = NetworkSimplex(inst).solve()
        assert res.cost == 4 * 5  # via the 2+3 path

    def test_capacity_forces_split(self):
        inst = McfInstance(
            3,
            (6, 0, -6),
            ((0, 2, 3, 10), (0, 1, 10, 2), (1, 2, 3, 3)),
        )
        res = NetworkSimplex(inst).solve()
        # 3 units on each route
        assert res.cost == 3 * 10 + 3 * 5

    def test_infeasible_detected(self):
        # demand node unreachable
        inst = McfInstance(3, (2, 0, -2), ((0, 1, 5, 1),))
        res = NetworkSimplex(inst).solve()
        assert not res.feasible

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_optimum(self, seed):
        rng = random.Random(seed)
        inst = random_feasible_instance(rng)
        res = NetworkSimplex(inst).solve()
        assert res.feasible
        g = nx.MultiDiGraph()
        for i, b in enumerate(inst.supplies):
            g.add_node(i, demand=-b)
        for tail, head, cap, cost in inst.arcs:
            g.add_edge(tail, head, capacity=cap, weight=cost)
        assert res.cost == nx.min_cost_flow_cost(g)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=15, deadline=None)
    def test_flow_conservation_property(self, seed):
        rng = random.Random(seed)
        inst = random_feasible_instance(rng, n=8, extra_arcs=12)
        res = NetworkSimplex(inst).solve()
        balance = list(inst.supplies)
        for (tail, head, cap, _), flow in zip(inst.arcs, res.flows):
            assert 0 <= flow <= cap
            balance[tail] -= flow
            balance[head] += flow
        if res.feasible:
            assert all(b == 0 for b in balance)

    def test_validation(self):
        with pytest.raises(ValueError):
            McfInstance(2, (1, 1), ())  # supplies don't sum to zero
        with pytest.raises(ValueError):
            McfInstance(2, (1, -1), ((0, 5, 1, 1),))  # bad endpoint
        with pytest.raises(ValueError):
            McfInstance(2, (1, -1), ((0, 1, -1, 1),))  # bad capacity


class TestCityGenerator:
    def test_city_connected(self):
        rng = make_rng(3)
        city = build_city(rng, n_terminals=10)
        # all travel times finite
        assert all(t < 10**9 for row in city.travel_time for t in row)

    def test_density_shrinks_map(self):
        rng1, rng2 = make_rng(3), make_rng(3)
        sparse = build_city(rng1, density=0.25)
        dense = build_city(rng2, density=1.0)
        span_sparse = max(max(p) for p in sparse.positions)
        span_dense = max(max(p) for p in dense.positions)
        assert span_dense <= span_sparse

    def test_connectivity_adds_roads(self):
        low = build_city(make_rng(4), connectivity=0.0)
        high = build_city(make_rng(4), connectivity=1.0)
        assert len(high.roads) > len(low.roads)

    def test_circadian_peaks(self):
        """The circadian cycle has morning and evening commute peaks."""
        assert CIRCADIAN[7] > CIRCADIAN[3]
        assert CIRCADIAN[17] > CIRCADIAN[13]
        assert len(CIRCADIAN) == 24

    def test_timetable_follows_circadian(self):
        rng = make_rng(5)
        city = build_city(rng)
        trips = build_timetable(rng, city, n_routes=8, service_level=1.5)
        by_hour = [0] * 24
        for t in trips:
            by_hour[t.start_time // 60 % 24] += 1
        # rush hours should out-schedule the small hours
        assert sum(by_hour[6:9]) > sum(by_hour[0:3])

    def test_timetable_times_consistent(self):
        rng = make_rng(6)
        city = build_city(rng)
        for trip in build_timetable(rng, city):
            assert trip.end_time > trip.start_time

    def test_mcf_encoding_feasible_by_construction(self):
        rng = make_rng(7)
        city = build_city(rng)
        trips = build_timetable(rng, city, n_routes=5)
        inst = timetable_to_mcf(city, trips)
        res = NetworkSimplex(inst).solve()
        assert res.feasible

    def test_deadhead_arcs_time_feasible(self):
        rng = make_rng(8)
        city = build_city(rng)
        trips = build_timetable(rng, city, n_routes=5)
        inst = timetable_to_mcf(city, trips)
        depot = 2 * len(trips)
        for tail, head, _cap, _cost in inst.arcs:
            if tail == depot or head == depot:
                continue
            j, k = tail // 2, head // 2
            gap = trips[k].start_time - trips[j].end_time
            deadhead = city.travel_time[trips[j].end_terminal][trips[k].start_terminal]
            assert deadhead <= gap


class TestBenchmark:
    def test_run_and_verify(self):
        w = McfWorkloadGenerator().generate(1, n_terminals=8, n_routes=4)
        prof = run_benchmark(McfBenchmark(), w)
        assert prof.verified
        assert prof.output.feasible
        assert prof.output.cost > 0

    def test_alberta_set_size(self):
        assert len(McfWorkloadGenerator().alberta_set()) == 7  # Table II
