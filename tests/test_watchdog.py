"""Watchdog tests: baseline parsing, gate semantics, CLI exit codes."""

import json

import pytest

from repro.cli import main
from repro.core.watchdog import (
    EXIT_OK,
    EXIT_REGRESSION,
    EXIT_USAGE,
    WatchdogError,
    load_baseline,
    load_sampling_baseline,
    measure_replay,
    measure_sampling,
    run_watchdog,
)

BID = "519.lbm_r"


@pytest.fixture(scope="module")
def measured():
    """One real capture+replay measurement, shared by every test."""
    workload, events, best_ns, eps = measure_replay(BID, rounds=2)
    return {"workload": workload, "events": events, "ns": best_ns, "eps": eps}


def _write_baseline(path, measured, eps_scale):
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "benchmarks": {
                    BID: {
                        "workload": measured["workload"],
                        "events_per_sec": measured["eps"] * eps_scale,
                        "replay_seconds": measured["ns"] / 1e9,
                    }
                },
            }
        )
    )
    return path


@pytest.fixture()
def baseline(tmp_path, measured):
    """A baseline this machine comfortably meets (30% headroom)."""
    return _write_baseline(tmp_path / "BENCH_machine.json", measured, 0.7)


@pytest.fixture()
def strict_baseline(tmp_path, measured):
    """A baseline at exactly the measured throughput — a 2x injected
    slowdown lands at ~0.5x, safely below any reasonable tolerance."""
    return _write_baseline(tmp_path / "BENCH_machine.json", measured, 1.0)


class TestBaselineParsing:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WatchdogError, match="baseline"):
            load_baseline(tmp_path / "nope.json")

    def test_not_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WatchdogError, match="not valid JSON"):
            load_baseline(path)

    def test_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "benchmarks": {"x": {}}}')
        with pytest.raises(WatchdogError, match="unsupported schema"):
            load_baseline(path)

    def test_no_rows(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1, "benchmarks": {}}')
        with pytest.raises(WatchdogError, match="no per-benchmark rows"):
            load_baseline(path)


class TestGate:
    def test_healthy_run_passes(self, baseline, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", raising=False)
        report = run_watchdog(baseline, tolerance=0.5, rounds=2)
        assert report.ok
        assert report.exit_code == EXIT_OK
        assert "within tolerance" in report.render()

    def test_injected_2x_regression_fails(self, strict_baseline, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", "2.0")
        report = run_watchdog(strict_baseline, tolerance=0.25, rounds=2)
        assert not report.ok
        assert report.exit_code == EXIT_REGRESSION
        rendered = report.render()
        assert "REGRESSED" in rendered
        assert "injected slowdown x2" in rendered

    def test_unknown_benchmarks_are_skipped_not_failed(self, baseline, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", raising=False)
        report = run_watchdog(baseline, [BID, "999.nope_r"], tolerance=0.5, rounds=1)
        assert report.skipped == ["999.nope_r"]
        assert report.ok

    def test_all_unknown_is_a_usage_error(self, baseline):
        with pytest.raises(WatchdogError, match="none of"):
            run_watchdog(baseline, ["999.nope_r"], rounds=1)

    def test_bad_tolerance_is_a_usage_error(self, baseline):
        with pytest.raises(WatchdogError, match="tolerance"):
            run_watchdog(baseline, tolerance=1.5)

    def test_bad_injection_value_is_a_usage_error(self, baseline, monkeypatch):
        monkeypatch.setenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", "banana")
        with pytest.raises(WatchdogError, match="not a number"):
            run_watchdog(baseline, rounds=1)


class TestCli:
    def test_healthy_exit_0(self, baseline, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", raising=False)
        rc = main(
            ["watchdog", "--baseline", str(baseline), "--tolerance", "0.5",
             "--rounds", "2"]
        )
        assert rc == EXIT_OK
        assert "within tolerance" in capsys.readouterr().out

    def test_regression_exit_1(self, strict_baseline, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", "2.0")
        rc = main(["watchdog", "--baseline", str(strict_baseline), "--rounds", "2"])
        assert rc == EXIT_REGRESSION
        assert "REGRESSED" in capsys.readouterr().out

    def test_missing_baseline_exit_2(self, tmp_path, capsys):
        rc = main(["watchdog", "--baseline", str(tmp_path / "nope.json")])
        assert rc == EXIT_USAGE
        err = capsys.readouterr().err
        assert err.startswith("watchdog:")
        assert err.count("\n") == 1  # one-line diagnostic

    def test_json_output(self, baseline, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", raising=False)
        rc = main(
            ["watchdog", "--baseline", str(baseline), "--tolerance", "0.5",
             "--rounds", "2", "--json"]
        )
        assert rc == EXIT_OK
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["exit_code"] == EXIT_OK
        check, = [c for c in report["checks"] if c["benchmark"] == BID]
        assert check["regressed"] is False
        assert check["eps_ratio"] > 0

    def test_ledger_baseline_mode(self, tmp_path, measured, capsys):
        from repro.core.ledger import RunLedger
        from tests.test_ledger import make_record

        led = tmp_path / "led"
        ledger = RunLedger(led)
        # two recorded runs at 70% of this machine's throughput
        for i in range(2):
            ledger.append(
                make_record(
                    f"r{i}", started=1_000.0 + i, bench=BID,
                    events=measured["events"],
                    eps=measured["eps"] * 0.7,
                )
            )
        rc = main(
            ["watchdog", BID, "--ledger-baseline", str(led),
             "--tolerance", "0.5", "--rounds", "2"]
        )
        assert rc == EXIT_OK
        assert "within tolerance" in capsys.readouterr().out

    def test_ledger_and_file_baseline_are_exclusive(self, baseline, tmp_path, capsys):
        rc = main(
            ["watchdog", "--baseline", str(baseline),
             "--ledger-baseline", str(tmp_path / "led")]
        )
        assert rc == EXIT_USAGE
        assert "exactly one" in capsys.readouterr().err

    def test_bare_watchdog_defaults_to_baseline_file(self, tmp_path, capsys,
                                                     monkeypatch):
        monkeypatch.chdir(tmp_path)  # no BENCH_machine.json here
        assert main(["watchdog"]) == EXIT_USAGE
        assert "BENCH_machine.json" in capsys.readouterr().err

    def test_api_requires_exactly_one_baseline_source(self):
        with pytest.raises(WatchdogError, match="exactly one"):
            run_watchdog(None, ledger=None)

    def test_empty_ledger_is_usage_error(self, tmp_path, capsys):
        rc = main(["watchdog", "--ledger-baseline", str(tmp_path / "led")])
        assert rc == EXIT_USAGE
        assert "watchdog:" in capsys.readouterr().err


def _write_sampling_baseline(path, *, error, ratio, workload=None):
    from repro.machine.sampling import SamplingPlan

    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "plan": SamplingPlan().to_dict(),
                "benchmarks": {
                    BID: {
                        "workload": workload,
                        "max_topdown_error": error,
                        "event_ratio": ratio,
                    }
                },
            }
        )
    )
    return path


class TestSamplingChecks:
    """--sampling-baseline is warn-only: it never flips the exit code."""

    @pytest.fixture(scope="class")
    def sampled(self):
        """One real exact-vs-sampled measurement, shared by the class."""
        workload, error, ratio = measure_sampling(BID)
        return {"workload": workload, "error": error, "ratio": ratio}

    def test_stable_numbers_report_ok(self, baseline, sampled, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", raising=False)
        spath = _write_sampling_baseline(
            tmp_path / "BENCH_sampling.json",
            error=sampled["error"],
            ratio=sampled["ratio"],
            workload=sampled["workload"],
        )
        report = run_watchdog(
            baseline, tolerance=0.5, rounds=1, sampling_baseline=spath
        )
        assert report.exit_code == EXIT_OK
        rendered = report.render()
        assert "warn-only" in rendered
        assert "stable" in rendered

    def test_drift_warns_but_never_gates(self, baseline, sampled, tmp_path, monkeypatch):
        # a baseline claiming better accuracy and a higher ratio than
        # measured: both drift warnings fire, the exit code does not
        monkeypatch.delenv("REPRO_WATCHDOG_INJECT_SLOWDOWN", raising=False)
        spath = _write_sampling_baseline(
            tmp_path / "BENCH_sampling.json",
            error=sampled["error"] / 4,
            ratio=sampled["ratio"] * 2,
            workload=sampled["workload"],
        )
        report = run_watchdog(
            baseline, tolerance=0.5, rounds=1, sampling_baseline=spath
        )
        assert report.exit_code == EXIT_OK
        assert report.sampling_checks[0].warnings
        assert "drifted" in report.render()

    def test_unusable_sampling_baseline_is_usage_error(self, baseline, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 1, "benchmarks": {}}')
        with pytest.raises(WatchdogError, match="sampling baseline"):
            run_watchdog(baseline, rounds=1, sampling_baseline=path)

    def test_missing_plan_is_usage_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"schema": 1, "benchmarks": {BID: {
                "max_topdown_error": 0.01, "event_ratio": 12.0}}})
        )
        with pytest.raises(WatchdogError, match="no sampling plan"):
            load_sampling_baseline(path)

    def test_missing_row_fields_are_usage_errors(self, tmp_path):
        from repro.machine.sampling import SamplingPlan

        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps({"schema": 1, "plan": SamplingPlan().to_dict(),
                        "benchmarks": {BID: {"event_ratio": 12.0}}})
        )
        with pytest.raises(WatchdogError, match="max_topdown_error"):
            load_sampling_baseline(path)
