"""Tests for the 525.x264_r video-encoder substrate and generator."""

import numpy as np
import pytest

from repro.benchmarks.x264 import VideoInput, X264Benchmark, encode_video, psnr
from repro.machine import run_benchmark
from repro.workloads.x264_gen import VIDEO_STYLES, X264WorkloadGenerator, synthesize_video


class TestPsnr:
    def test_identical_images(self):
        img = np.full((16, 16), 128, dtype=np.uint8)
        assert psnr(img, img) == 99.0

    def test_noise_lowers_psnr(self):
        rng = np.random.default_rng(1)
        img = rng.integers(0, 255, size=(32, 32)).astype(np.uint8)
        slightly = np.clip(img.astype(int) + rng.integers(-2, 3, img.shape), 0, 255).astype(np.uint8)
        very = np.clip(img.astype(int) + rng.integers(-40, 41, img.shape), 0, 255).astype(np.uint8)
        assert psnr(img, slightly) > psnr(img, very)


class TestEncoder:
    def _frames(self, style="objects", n=4):
        return synthesize_video(3, n_frames=n, height=24, width=32, style=style)

    def test_reconstruction_quality(self):
        frames = self._frames()
        recon, stats = encode_video(frames, qp=4)
        for i in range(frames.shape[0]):
            assert psnr(frames[i], recon[i]) > 28.0
        assert stats["bits"] > 0

    def test_higher_qp_fewer_bits_lower_quality(self):
        frames = self._frames()
        recon_lo, stats_lo = encode_video(frames, qp=2)
        recon_hi, stats_hi = encode_video(frames, qp=24)
        assert stats_hi["bits"] < stats_lo["bits"]
        assert psnr(frames[-1], recon_hi[-1]) <= psnr(frames[-1], recon_lo[-1])

    def test_static_video_mostly_skips(self):
        frames = self._frames(style="static")
        _, stats = encode_video(frames, qp=8)
        assert stats["skip_blocks"] > stats["coded_blocks"]

    def test_first_frame_is_intra(self):
        frames = self._frames(n=2)
        _, stats = encode_video(frames, qp=8)
        n_blocks = (24 // 8) * (32 // 8)
        assert stats["intra_blocks"] == n_blocks

    def test_motion_search_counts(self):
        frames = self._frames(n=3)
        _, stats = encode_video(frames, qp=8)
        assert stats["sad_evals"] > 0


class TestVideoInput:
    def test_validation(self):
        good = synthesize_video(1, n_frames=3, height=16, width=16)
        with pytest.raises(ValueError):
            VideoInput(frames=good[:1])  # too few frames
        with pytest.raises(ValueError):
            VideoInput(frames=good, start_frame=99)
        with pytest.raises(ValueError):
            VideoInput(frames=good, qp=0)
        with pytest.raises(ValueError):
            VideoInput(frames=np.zeros((4, 10, 16), dtype=np.uint8))  # h % 8


class TestBenchmark:
    def test_pipeline_runs(self):
        w = X264WorkloadGenerator().generate(2, style="objects", n_frames=4)
        prof = run_benchmark(X264Benchmark(), w)
        assert prof.verified
        assert prof.output["psnr_min"] >= X264Benchmark.PSNR_THRESHOLD

    def test_two_pass(self):
        w = X264WorkloadGenerator().generate(2, style="objects", n_frames=4, two_pass=True)
        prof = run_benchmark(X264Benchmark(), w)
        assert prof.verified

    def test_frame_window(self):
        w = X264WorkloadGenerator().generate(
            2, style="objects", n_frames=8, start_frame=2, encode_frames=4
        )
        prof = run_benchmark(X264Benchmark(), w)
        assert prof.output["frames"] == 4

    def test_content_drives_bits(self):
        gen = X264WorkloadGenerator()
        bm = X264Benchmark()
        noisy = run_benchmark(bm, gen.generate(4, style="noisy", n_frames=4)).output
        static = run_benchmark(bm, gen.generate(4, style="static", n_frames=4)).output
        assert noisy["bits"] > static["bits"] * 3


class TestGenerator:
    def test_styles(self):
        for style in VIDEO_STYLES:
            frames = synthesize_video(1, n_frames=3, style=style)
            assert frames.shape == (3, 48, 64)
            assert frames.dtype == np.uint8

    def test_determinism(self):
        a = synthesize_video(5, n_frames=3)
        b = synthesize_video(5, n_frames=3)
        assert np.array_equal(a, b)

    def test_alberta_set_size(self):
        assert len(X264WorkloadGenerator().alberta_set()) == 10

    def test_unknown_style(self):
        with pytest.raises(ValueError):
            synthesize_video(1, style="imax")


class TestDiamondSearch:
    """The fast motion-estimation mode real encoders default to."""

    def _frames(self):
        return synthesize_video(7, n_frames=4, height=24, width=32, style="objects")

    def test_diamond_round_trips(self):
        frames = self._frames()
        recon, stats = encode_video(frames, qp=4, me_method="diamond")
        assert psnr(frames[-1], recon[-1]) > 26.0

    def test_diamond_needs_fewer_sad_evals(self):
        frames = self._frames()
        _, full = encode_video(frames, qp=8, me_method="full")
        _, diamond = encode_video(frames, qp=8, me_method="diamond")
        assert diamond["sad_evals"] < full["sad_evals"] / 3

    def test_diamond_quality_close_to_full(self):
        frames = self._frames()
        recon_f, _ = encode_video(frames, qp=8, me_method="full")
        recon_d, _ = encode_video(frames, qp=8, me_method="diamond")
        assert psnr(frames[-1], recon_d[-1]) > psnr(frames[-1], recon_f[-1]) - 4.0

    def test_me_method_validation(self):
        frames = self._frames()
        with pytest.raises(ValueError):
            VideoInput(frames=frames, me_method="hexagon")

    def test_benchmark_accepts_diamond(self):
        gen = X264WorkloadGenerator()
        w = gen.generate(2, style="objects", n_frames=4)
        payload = VideoInput(
            frames=w.payload.frames, qp=w.payload.qp, me_method="diamond"
        )
        from repro.core.workload import Workload

        w2 = Workload(name="diamond", benchmark="525.x264_r", payload=payload)
        prof = run_benchmark(X264Benchmark(), w2)
        assert prof.verified
