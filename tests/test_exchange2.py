"""Tests for the 548.exchange2_r Sudoku substrate and generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmarks.exchange2 import (
    BASE_SOLUTION,
    Exchange2Benchmark,
    SudokuInput,
    _canonical_solution,
    _transform_solution,
    count_solutions,
    solve,
)
from repro.machine import run_benchmark
from repro.workloads.base import make_rng
from repro.workloads.exchange2_gen import (
    SPEC_SEEDS,
    Exchange2WorkloadGenerator,
    make_seed_collection,
)

# a classic puzzle with a unique solution
_KNOWN_PUZZLE = (
    "530070000"
    "600195000"
    "098000060"
    "800060003"
    "400803001"
    "700020006"
    "060000280"
    "000419005"
    "000080079"
)
_KNOWN_SOLUTION = (
    "534678912"
    "672195348"
    "198342567"
    "859761423"
    "426853791"
    "713924856"
    "961537284"
    "287419635"
    "345286179"
)


def _grid_valid(solution: str) -> bool:
    digits = [int(c) for c in solution]
    for i in range(9):
        row = digits[i * 9 : (i + 1) * 9]
        col = digits[i::9]
        band, stack = (i // 3) * 3, (i % 3) * 3
        box = [
            digits[(band + r) * 9 + stack + c] for r in range(3) for c in range(3)
        ]
        if sorted(row) != list(range(1, 10)):
            return False
        if sorted(col) != list(range(1, 10)):
            return False
        if sorted(box) != list(range(1, 10)):
            return False
    return True


class TestSolver:
    def test_known_puzzle(self):
        assert solve(_KNOWN_PUZZLE) == _KNOWN_SOLUTION

    def test_known_puzzle_unique(self):
        assert count_solutions(_KNOWN_PUZZLE, limit=2) == 1

    def test_unsolvable(self):
        # two 5s in the first row
        bad = "55" + "0" * 79
        assert solve(bad) is None

    def test_empty_grid_solvable(self):
        solution = solve("0" * 81)
        assert solution is not None
        assert _grid_valid(solution)

    def test_empty_grid_many_solutions(self):
        assert count_solutions("0" * 81, limit=2) == 2

    def test_base_solution_valid(self):
        assert _grid_valid(BASE_SOLUTION)

    def test_solution_respects_clues(self):
        solution = solve(_KNOWN_PUZZLE)
        for i, ch in enumerate(_KNOWN_PUZZLE):
            if ch != "0":
                assert solution[i] == ch


class TestTransforms:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_transform_preserves_validity(self, seed):
        rng = make_rng(seed)
        transformed = _transform_solution(_canonical_solution(), rng)
        assert _grid_valid("".join(map(str, transformed)))

    def test_transform_changes_grid(self):
        rng = make_rng(123)
        transformed = _transform_solution(_canonical_solution(), rng)
        assert transformed != _canonical_solution()


class TestSeedCollection:
    def test_twenty_seven_seeds(self):
        """The benchmark distributes 27 seed puzzles."""
        assert len(SPEC_SEEDS) == 27

    def test_all_seeds_solvable(self):
        for seed in SPEC_SEEDS[:8]:
            assert solve(seed) is not None

    def test_collection_deterministic(self):
        assert make_seed_collection(5, base_seed=1) == make_seed_collection(5, base_seed=1)


class TestBenchmark:
    def test_run_and_verify(self):
        w = Exchange2WorkloadGenerator().generate(1, n_seeds=2, puzzles_per_seed=2)
        prof = run_benchmark(Exchange2Benchmark(), w)
        assert prof.verified
        assert prof.output["n_generated"] >= 2

    def test_generated_puzzles_share_clue_pattern(self):
        w = Exchange2WorkloadGenerator().generate(2, n_seeds=1, puzzles_per_seed=3)
        prof = run_benchmark(Exchange2Benchmark(), w)
        seed_puzzle = w.payload.seeds[0]
        pattern = {i for i, ch in enumerate(seed_puzzle) if ch != "0"}
        for puzzle in prof.output["generated"]:
            assert {i for i, ch in enumerate(puzzle) if ch != "0"} == pattern

    def test_input_validation(self):
        with pytest.raises(ValueError):
            SudokuInput(seeds=())
        with pytest.raises(ValueError):
            SudokuInput(seeds=("12",))
        with pytest.raises(ValueError):
            SudokuInput(seeds=(SPEC_SEEDS[0],), puzzles_per_seed=0)

    def test_alberta_set_size(self):
        assert len(Exchange2WorkloadGenerator().alberta_set()) == 13  # Table II
