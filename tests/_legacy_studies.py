"""Frozen pre-port study implementations, for golden-equivalence tests.

These are verbatim copies of the private execution loops that
``studies/compiler_variation.py``, ``studies/similarity.py`` and
``fdo/evaluation.py`` used before they were ported onto the staged
``Session`` pipeline.  They run benchmarks directly through ``Probe``
and ``CostModel`` — exactly what the ported code must reproduce
byte-for-byte (serial, cache off).  Do not "improve" this module: its
whole value is that it does not change.
"""

from __future__ import annotations

import numpy as np

from repro.core.suite import alberta_workloads, get_benchmark
from repro.fdo.optimizer import FdoCostModel
from repro.fdo.profile_data import collect_profile, merge_profiles
from repro.machine.cost import CostModel
from repro.machine.profiler import ExecutionProfile
from repro.machine.telemetry import Probe
from repro.fdo.evaluation import CrossValidationResult, FdoResult
from repro.studies.compiler_variation import BuildObservation
from repro.studies.similarity import ProgramFeatures

# ----------------------------------------------------------- fdo/evaluation


def _legacy_run(benchmark, workload, cost_model):
    probe = Probe()
    output = benchmark.run(workload, probe)
    if not benchmark.verify(workload, output):
        raise ValueError(f"FDO evaluation: {workload.name} failed verification")
    report = cost_model.evaluate(probe)
    return report.seconds, probe


def legacy_train_profile(benchmark_id, workload, machine=None):
    benchmark = get_benchmark(benchmark_id)
    probe = Probe()
    output = benchmark.run(workload, probe)
    if not benchmark.verify(workload, output):
        raise ValueError(f"training run failed verification on {workload.name}")
    report = CostModel(machine).evaluate(probe)
    execution = ExecutionProfile(
        benchmark=benchmark_id,
        workload=workload.name,
        report=report,
        output=output,
        verified=True,
    )
    return collect_profile(execution, probe.methods())


def legacy_evaluate_pair(
    benchmark_id, train_workload, eval_workload, *, machine=None, profile=None
):
    benchmark = get_benchmark(benchmark_id)
    if profile is None:
        profile = legacy_train_profile(benchmark_id, train_workload, machine)
    baseline_seconds, _ = _legacy_run(benchmark, eval_workload, CostModel(machine))
    fdo_seconds, _ = _legacy_run(
        benchmark, eval_workload, FdoCostModel(profile, machine)
    )
    return FdoResult(
        benchmark=benchmark_id,
        train_workload=",".join(profile.training_workloads),
        eval_workload=eval_workload.name,
        baseline_seconds=baseline_seconds,
        fdo_seconds=fdo_seconds,
    )


def legacy_cross_validate(
    benchmark_id, workloads=None, *, machine=None, combined=False, max_workloads=None
):
    if workloads is None:
        workloads = alberta_workloads(benchmark_id)
    wl = list(workloads)
    if max_workloads is not None:
        wl = wl[:max_workloads]
    if len(wl) < 2:
        raise ValueError("cross_validate: need at least two workloads")

    result = CrossValidationResult(benchmark=benchmark_id)
    if combined:
        profiles = [legacy_train_profile(benchmark_id, w, machine) for w in wl]
        profile = merge_profiles(profiles)
        for target in wl:
            result.results.append(
                legacy_evaluate_pair(
                    benchmark_id, target, target, machine=machine, profile=profile
                )
            )
        return result

    for train in wl:
        profile = legacy_train_profile(benchmark_id, train, machine)
        for target in wl:
            if target.name == train.name:
                continue
            result.results.append(
                legacy_evaluate_pair(
                    benchmark_id, train, target, machine=machine, profile=profile
                )
            )
    return result


# ------------------------------------------------------ studies/similarity


def legacy_collect_features(benchmark_id, workload=None):
    benchmark = get_benchmark(benchmark_id)
    if workload is None:
        workloads = alberta_workloads(benchmark_id)
        workload = next(w for w in workloads if w.name.endswith(".refrate"))
    probe = Probe()
    benchmark.run(workload, probe)

    methods = probe.methods()
    int_ops = sum(m.int_ops for m in methods)
    fp_ops = sum(m.fp_ops for m in methods)
    fpdiv = sum(m.fpdiv_ops for m in methods)
    total_ops = max(1, int_ops + fp_ops + fpdiv)
    branches = sum(m.branches for m in methods)
    taken = sum(m.branches_taken for m in methods)
    loads = sum(m.loads for m in methods)
    stores = sum(m.stores for m in methods)
    accesses = max(1, loads + stores)
    calls = sum(m.calls for m in methods)

    _, ev_kind, ev_a, _ = probe.events.columns()
    n_lines = len(np.unique(ev_a[ev_kind == 1] >> 6))
    footprint = max(64, n_lines * 64)

    vector = np.array(
        [
            int_ops / total_ops,
            fp_ops / total_ops,
            fpdiv / total_ops,
            branches / max(1, total_ops + branches),
            taken / max(1, branches),
            loads / accesses,
            stores / accesses,
            float(np.log10(footprint)),
            accesses / total_ops,
            float(np.log10(max(2, len(methods)))),
            calls / max(1, total_ops) * 1000.0,
        ]
    )
    return ProgramFeatures(
        benchmark=benchmark_id, workload=workload.name, vector=vector
    )


# ---------------------------------------------- studies/compiler_variation


def _legacy_observe(benchmark, workload, cost_model, build):
    probe = Probe()
    output = benchmark.run(workload, probe)
    if not benchmark.verify(workload, output):
        raise ValueError(f"{workload.name} failed verification under build {build!r}")
    report = cost_model.evaluate(probe)
    stats = report.cache_stats
    l1d = stats.l1d_misses / stats.l1d_accesses if stats.l1d_accesses else 0.0
    l2 = stats.l2_misses / stats.l2_accesses if stats.l2_accesses else 0.0
    dtlb = stats.dtlb_misses / max(1, stats.l1d_accesses)
    return BuildObservation(
        workload=workload.name,
        build=build,
        branch_misprediction_rate=report.branch_misprediction_rate,
        l1d_miss_rate=l1d,
        l2_miss_rate=l2,
        dtlb_miss_rate=dtlb,
        seconds=report.seconds,
    )


def legacy_compiler_variation(
    benchmark_id, *, workloads=None, machine=None, max_workloads=6
):
    benchmark = get_benchmark(benchmark_id)
    if workloads is None:
        workloads = alberta_workloads(benchmark_id)
    wl = list(workloads)
    if max_workloads is not None:
        wl = wl[:max_workloads]

    train = next((w for w in wl if w.name.endswith(".train")), wl[0])
    profile = legacy_train_profile(benchmark_id, train, machine)

    observations = []
    for workload in wl:
        observations.append(
            _legacy_observe(benchmark, workload, CostModel(machine), "baseline")
        )
        observations.append(
            _legacy_observe(
                benchmark, workload, FdoCostModel(profile, machine), "fdo-train"
            )
        )
    return observations
