"""Setup shim.

The execution environment has no network access and no ``wheel``
package, so PEP 517 editable installs (which need ``bdist_wheel``)
fail.  This shim lets ``pip install -e . --no-use-pep517`` fall back to
the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
