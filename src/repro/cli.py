"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deliverables:

* ``table1``                       — print Table I;
* ``table2 [IDS...]``              — characterize and print Table II rows;
* ``suite``                        — fault-tolerant full-suite run with
  an optional ``--trace`` JSONL journal;
* ``sweep BENCH --machines ...``   — machine-config sweep that captures
  telemetry once and replays it per config;
* ``trace summary|show|chrome PATH`` — inspect a run-trace journal, or
  export it as Chrome ``trace_event`` JSON (load in Perfetto);
* ``metrics show|prom PATH``       — render a ``--metrics`` snapshot as
  a latency table or Prometheus text;
* ``watchdog [IDS...]``            — replay-throughput regression gate
  against a ``BENCH_machine.json`` baseline or, with
  ``--ledger-baseline DIR``, a rolling median of recent recorded runs;
* ``runs list|show|diff|gc|pin``   — query the persistent run ledger
  (``suite/sweep --ledger DIR`` or ``REPRO_LEDGER_DIR`` record runs);
* ``flame BENCH``                  — stack-sample one capture+replay and
  write collapsed stacks (flamegraph.pl / speedscope format);
* ``top PATH``                     — live tail of an in-flight trace
  journal (per-cell stage states, replay eps, cache-hit rates);
* ``fig1 BENCH`` / ``fig2 BENCH``  — render a figure panel;
* ``report BENCH``                 — the per-benchmark Alberta report;
* ``generate BENCH --seed N``      — mint one workload and validate it;
* ``validate BENCH``               — run the whole Alberta set;
* ``fdo BENCH``                    — single-workload vs cross-validated FDO;
* ``list``                         — registered benchmarks.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

__all__ = ["main", "build_parser", "default_cache_dir"]


def default_cache_dir() -> Path:
    """Where the CLI keeps its characterization result cache."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every command that runs characterizations."""
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="process-pool size for characterization (default: all CPUs)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print a replay-throughput summary after the run (needs --workers 1)",
    )


def _engine_kwargs(args: argparse.Namespace) -> dict:
    """Translate the engine flags into characterize() keyword arguments."""
    cache = None if args.no_cache else (args.cache_dir or default_cache_dir())
    return {"workers": args.workers, "cache": cache}


def _write_observability(session, args: argparse.Namespace) -> None:
    """Write the ``--metrics`` / ``--prom`` / ``--chrome-trace`` outputs.

    Called on failed runs too — a degraded suite's metrics are exactly
    when you want the snapshot.
    """
    import json

    if args.metrics:
        args.metrics.write_text(
            json.dumps(session.metrics.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"metrics snapshot: {args.metrics}", file=sys.stderr)
    if args.prom:
        args.prom.write_text(session.prometheus(), encoding="utf-8")
        print(f"prometheus snapshot: {args.prom}", file=sys.stderr)
    if args.chrome_trace:
        args.chrome_trace.write_text(
            json.dumps(session.chrome_trace()) + "\n", encoding="utf-8"
        )
        print(
            f"chrome trace: {args.chrome_trace} (load at https://ui.perfetto.dev)",
            file=sys.stderr,
        )
    if getattr(args, "flame", None):
        session.write_flamegraph(args.flame)
        n = sum(session.stack_counts.values())
        hint = "" if n else " (empty; set REPRO_STACK_SAMPLE=1 to profile)"
        print(f"flamegraph: {args.flame} ({n} samples){hint}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="The Alberta Workloads for SPEC CPU 2017 — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I (2006 -> 2017 evolution)")

    p = sub.add_parser("table2", help="characterize benchmarks, print Table II")
    p.add_argument("benchmarks", nargs="*", help="benchmark ids (default: all Table II rows)")
    _add_engine_options(p)

    for name in ("fig1", "fig2"):
        p = sub.add_parser(name, help=f"render Figure {name[-1]} for one benchmark")
        p.add_argument("benchmark")
        _add_engine_options(p)

    p = sub.add_parser("report", help="per-benchmark Alberta report")
    p.add_argument("benchmark")
    _add_engine_options(p)

    p = sub.add_parser(
        "suite",
        help="characterize the whole suite, tolerating failed cells",
    )
    p.add_argument(
        "benchmarks", nargs="*", help="benchmark ids (default: all Table II rows)"
    )
    p.add_argument("--suite", choices=("int", "fp"), default=None, help="restrict to one suite")
    p.add_argument(
        "--all-benchmarks",
        action="store_true",
        help="include benchmarks without a Table II row",
    )
    _add_engine_options(p)
    p.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSONL run-trace journal (see `repro trace`)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget (needs a worker pool to enforce)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="extra attempts per failed cell (default: 1)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="abort on the first failed cell instead of completing degraded",
    )
    p.add_argument(
        "--metrics",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run's metrics registry as a JSON snapshot "
        "(render later with `repro metrics show`)",
    )
    p.add_argument(
        "--prom",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run's metrics in Prometheus text exposition format",
    )
    p.add_argument(
        "--chrome-trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run's span tree as Chrome trace_event JSON "
        "(load at https://ui.perfetto.dev)",
    )
    p.add_argument(
        "--flame",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the run's collapsed profiler stacks "
        "(needs REPRO_STACK_SAMPLE=1; see `repro flame`)",
    )
    p.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="DIR",
        help="record the run in a persistent ledger directory "
        "(default: $REPRO_LEDGER_DIR when set; see `repro runs`)",
    )

    p = sub.add_parser(
        "sweep",
        help="characterize one benchmark across machine configs, "
        "capturing telemetry once and replaying it per config",
    )
    p.add_argument("benchmark")
    p.add_argument(
        "--machines",
        default="i7-2600,i7-6700k,atom-like",
        metavar="PRESETS",
        help="comma-separated machine presets, or 'default' for the "
        "baseline config (default: i7-2600,i7-6700k,atom-like)",
    )
    p.add_argument(
        "--config",
        action="append",
        dest="configs",
        default=None,
        metavar="NAME",
        help="add one named preset to the grid (repeatable; 'default' "
        "for the baseline config; overrides --machines)",
    )
    p.add_argument(
        "--grid",
        type=Path,
        default=None,
        metavar="FILE",
        help="JSON MachineGrid file ({\"configs\": [{\"name\": ..., "
        "<MachineConfig fields>}, ...]}); overrides --machines/--config",
    )
    p.add_argument(
        "--per-config",
        action="store_true",
        help="force per-config replay instead of the one-pass batched "
        "kernel (results are bit-identical; for troubleshooting)",
    )
    _add_engine_options(p)
    p.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSONL run-trace journal (see `repro trace`)",
    )
    p.add_argument(
        "--sample-intervals",
        type=int,
        default=None,
        metavar="N",
        help="enable phase-sampled replay: slice each capture into N "
        "fixed-size intervals and replay only phase representatives",
    )
    p.add_argument(
        "--sample-phases",
        type=int,
        default=None,
        metavar="K",
        help="phase (cluster) count for --sample-intervals "
        "(default: the SamplingPlan default)",
    )
    p.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="DIR",
        help="record the run in a persistent ledger directory "
        "(default: $REPRO_LEDGER_DIR when set; see `repro runs`)",
    )

    p = sub.add_parser("trace", help="inspect a run-trace JSONL journal")
    p.add_argument("action", choices=("summary", "show", "chrome"))
    p.add_argument("path", type=Path)
    p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="for `chrome`: write the trace_event JSON here instead of stdout",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="for `summary`: print machine-readable JSON instead of the table",
    )

    p = sub.add_parser(
        "metrics", help="render a --metrics JSON snapshot from a run"
    )
    p.add_argument("action", choices=("show", "prom"))
    p.add_argument("path", type=Path, help="snapshot written by `suite --metrics`")
    p.add_argument(
        "--json",
        action="store_true",
        help="for `show`: print machine-readable JSON instead of the table",
    )

    p = sub.add_parser(
        "watchdog",
        help="gate fresh replay throughput on a BENCH_machine.json baseline",
    )
    p.add_argument(
        "benchmarks",
        nargs="*",
        help="benchmark ids to check (default: every id in the baseline)",
    )
    p.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="baseline JSON written by benchmarks/bench_machine.py "
        "(default: ./BENCH_machine.json unless --ledger-baseline is given)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="allowed relative throughput drop before failing (default: 0.25)",
    )
    p.add_argument(
        "--rounds",
        type=int,
        default=3,
        metavar="N",
        help="replay rounds per benchmark, best-of (default: 3)",
    )
    p.add_argument(
        "--sampling-baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="also check sampled-replay accuracy/ratio against a "
        "BENCH_sampling.json baseline (warn-only, never fails the run)",
    )
    p.add_argument(
        "--sweep-baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="also check batched-sweep speedup against the sweep_batched "
        "entry of a BENCH_machine.json baseline (warn-only, never fails "
        "the run)",
    )
    p.add_argument(
        "--ledger-baseline",
        type=Path,
        default=None,
        metavar="DIR",
        help="compare against a rolling median of recent runs recorded "
        "in this ledger directory instead of a baseline file",
    )
    p.add_argument(
        "--ledger-window",
        type=int,
        default=5,
        metavar="N",
        help="how many recent ledger runs the rolling median covers "
        "(default: 5)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report instead of the table",
    )

    p = sub.add_parser(
        "runs", help="query the persistent run ledger (see suite --ledger)"
    )
    p.add_argument(
        "action", choices=("list", "show", "diff", "gc", "pin", "unpin")
    )
    p.add_argument(
        "refs",
        nargs="*",
        help="run references: an id, a unique id prefix, 'latest', or "
        "'prev' (`diff` takes two; `show`/`pin`/`unpin` take one, "
        "default latest)",
    )
    p.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="DIR",
        help="ledger directory (default: $REPRO_LEDGER_DIR)",
    )
    p.add_argument(
        "--benchmark", default=None, help="for `list`: filter by benchmark id"
    )
    p.add_argument(
        "--outcome",
        choices=("ok", "degraded", "failed"),
        default=None,
        help="for `list`: filter by run outcome",
    )
    p.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="for `list`: show the newest N runs (default: 20)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        metavar="FRACTION",
        help="for `diff`: relative tolerance for timing-class metrics "
        "(default: 0.25)",
    )
    p.add_argument(
        "--all",
        action="store_true",
        help="for `diff`: list every compared series, not just findings",
    )
    p.add_argument(
        "--keep", type=int, default=10, metavar="N",
        help="for `gc`: never delete the N most recent runs (default: 10)",
    )
    p.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="for `gc`: only delete runs older than this many days",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p = sub.add_parser(
        "flame",
        help="stack-sample one capture+replay, write collapsed stacks",
    )
    p.add_argument("benchmark")
    p.add_argument(
        "--workload", default=None, help="workload name (default: the refrate one)"
    )
    p.add_argument(
        "--hz", type=float, default=1000.0, metavar="N",
        help="sampling rate (default: 1000)",
    )
    p.add_argument(
        "--seconds", type=float, default=1.0, metavar="S",
        help="keep replaying until this much wall time is profiled "
        "(default: 1.0)",
    )
    p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="collapsed-stack output (default: BENCH.folded); feed to "
        "flamegraph.pl or speedscope",
    )

    p = sub.add_parser(
        "top", help="live tail of an in-flight run-trace journal"
    )
    p.add_argument("path", type=Path, help="journal written by suite/sweep --trace")
    p.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh period in seconds (default: 1.0)",
    )
    p.add_argument(
        "--tail", type=int, default=12, metavar="N",
        help="how many recent cells to show (default: 12)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (no screen clearing)",
    )

    p = sub.add_parser("cache", help="inspect or wipe the result cache")
    p.add_argument("action", choices=("info", "wipe"))
    p.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=f"result cache directory (default: {default_cache_dir()})",
    )

    p = sub.add_parser("generate", help="mint and validate one workload")
    p.add_argument("benchmark")
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("validate", help="run every workload in the Alberta set")
    p.add_argument("benchmark")

    p = sub.add_parser("fdo", help="FDO evaluation study")
    p.add_argument("benchmark")
    p.add_argument("--max-workloads", type=int, default=5)

    p = sub.add_parser("export", help="write the full result bundle to a directory")
    p.add_argument("out_dir")
    p.add_argument("benchmarks", nargs="*", help="benchmark ids (default: all Table II rows)")
    _add_engine_options(p)

    p = sub.add_parser("list", help="list registered benchmarks")
    p.add_argument(
        "--plugins",
        action="store_true",
        help="list loaded plugins and the descriptors they registered",
    )
    return parser


def _replay_counters() -> dict:
    from .machine import telemetry

    return dict(telemetry.counters("engine.profile"))


def _print_replay_summary(args: argparse.Namespace, before: dict) -> None:
    """One-line replay-throughput summary from ``engine.profile.*`` deltas.

    Counters are process-wide, so the numbers are only meaningful when
    the characterizations ran in this process (``--workers 1``).
    """
    if args.workers != 1:
        print(
            "verbose: replay summary needs --workers 1 "
            "(worker processes keep their own counters)",
            file=sys.stderr,
        )
        return
    after = _replay_counters()

    def delta(name: str) -> int:
        key = f"engine.profile.{name}"
        return after.get(key, 0) - before.get(key, 0)

    events = delta("replay_events")
    ns = delta("replay_ns")
    evals = delta("evaluations")
    stride = after.get("engine.profile.replay_stride_max", 0)
    rate = events / (ns / 1e9) if ns else 0.0
    print(
        f"replay: {events} events over {evals} evaluations, "
        f"stride<={stride}, {rate / 1e6:.2f}M events/s",
        file=sys.stderr,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    from .core.errors import UnknownScenarioError

    try:
        if getattr(args, "verbose", False):
            before = _replay_counters()
            status = _dispatch(args)
            _print_replay_summary(args, before)
            return status
        return _dispatch(args)
    except UnknownScenarioError as exc:
        # Usage error, not a pipeline failure: unknown benchmark /
        # workload / machine id anywhere in the command.
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "table1":
        from .analysis.tables import render_table1

        print(render_table1())
        return 0

    if args.command == "table2":
        from .analysis.sensitivity import sensitivity_report
        from .analysis.tables import render_table2
        from .core.characterize import characterize
        from .core.registry import benchmark_ids
        from .machine import telemetry

        kwargs = _engine_kwargs(args)
        ids = args.benchmarks or sorted(benchmark_ids(table2_only=True))
        chars = []
        for bid in ids:
            print(f"characterizing {bid} ...", file=sys.stderr)
            chars.append(characterize(bid, **kwargs))
        print(render_table2(chars))
        print()
        print(sensitivity_report(chars))
        stats = telemetry.counters("engine.cache")
        if stats:
            print(
                f"cache: {stats.get('engine.cache.hits', 0)} hits, "
                f"{stats.get('engine.cache.misses', 0)} misses, "
                f"{stats.get('engine.cache.bytes_read', 0)} B read, "
                f"{stats.get('engine.cache.bytes_written', 0)} B written",
                file=sys.stderr,
            )
        return 0

    if args.command == "suite":
        from .analysis.tables import render_table2
        from .core.errors import CellFailure
        from .core.run import Session

        kwargs = _engine_kwargs(args)
        session = Session(
            workers=kwargs["workers"],
            cache=kwargs["cache"],
            timeout=args.timeout,
            retries=args.retries,
            strict=args.strict,
            trace=args.trace,
            ledger=args.ledger,
        )
        try:
            with session:
                result = session.characterize_suite(
                    suite=args.suite,
                    table2_only=not args.all_benchmarks,
                    ids=args.benchmarks or None,
                )
        except CellFailure as failure:
            print(f"aborted (strict): {failure}", file=sys.stderr)
            if args.trace:
                print(f"trace journal: {args.trace}", file=sys.stderr)
            _write_observability(session, args)
            return 1
        print(render_table2(result.characterizations))
        summary = session.summary
        print(
            f"cells: {summary.cells} ({summary.ok} ok, {summary.failed} failed, "
            f"{summary.cache_hits} cached) captures={summary.captures} "
            f"replays={summary.replays} retries={summary.retries} "
            f"timeouts={summary.timeouts} crashes={summary.crashes} "
            f"quarantined={summary.quarantined} in {summary.duration_s:.2f}s",
            file=sys.stderr,
        )
        if result.failures:
            print("failed cells:", file=sys.stderr)
            for failure in result.failures:
                print(f"  {failure}", file=sys.stderr)
        if args.trace:
            print(f"trace journal: {args.trace}", file=sys.stderr)
        _write_observability(session, args)
        return 1 if result.failures else 0

    if args.command == "sweep":
        import json

        from .core.errors import CellFailure
        from .core.run import Session
        from .core.sweep import MachineGrid, SweepRequest

        kwargs = _engine_kwargs(args)
        if args.grid is not None and args.configs:
            print("sweep: pass --grid or --config, not both", file=sys.stderr)
            return 2
        if args.grid is not None:
            if not args.grid.exists():
                print(f"sweep: no grid file at {args.grid}", file=sys.stderr)
                return 2
            try:
                grid = MachineGrid.from_dict(
                    json.loads(args.grid.read_text(encoding="utf-8"))
                )
            except (ValueError, TypeError, KeyError) as exc:
                print(f"sweep: {args.grid}: bad grid ({exc})", file=sys.stderr)
                return 2
        else:
            names = args.configs or [
                n.strip() for n in args.machines.split(",") if n.strip()
            ]
            try:
                grid = MachineGrid.from_presets(*names)
            except (ValueError, KeyError) as exc:
                print(f"sweep: {exc}", file=sys.stderr)
                return 2
        sampling = None
        if args.sample_intervals is not None:
            from .machine.sampling import SamplingPlan

            plan_kwargs = {"intervals": args.sample_intervals}
            if args.sample_phases is not None:
                plan_kwargs["phases"] = args.sample_phases
            sampling = SamplingPlan(**plan_kwargs)
        elif args.sample_phases is not None:
            print(
                "sweep: --sample-phases requires --sample-intervals",
                file=sys.stderr,
            )
            return 2
        session = Session(
            workers=kwargs["workers"], cache=kwargs["cache"], trace=args.trace,
            ledger=args.ledger,
        )
        request = SweepRequest(
            benchmark=args.benchmark,
            grid=grid,
            sampling=sampling,
            batched=False if args.per_config else None,
        )
        try:
            with session:
                result = session.characterize_sweep(request)
        except CellFailure as failure:
            print(f"sweep failed: {failure}", file=sys.stderr)
            return 1
        for name, char in zip(result.config_names, result.characterizations):
            if char is None:
                print(f"{name:<12} (all cells failed)")
                continue
            td = char.topdown
            print(
                f"{name:<12} f={td.mu_g('front_end') * 100:5.1f}% "
                f"b={td.mu_g('back_end') * 100:5.1f}% "
                f"s={td.mu_g('bad_speculation') * 100:5.1f}% "
                f"r={td.mu_g('retiring') * 100:5.1f}% "
                f"refrate={char.refrate_seconds if char.refrate_seconds is not None else float('nan'):.6f}s"
            )
        summary = session.summary
        if summary is not None:
            print(
                f"stages: {summary.captures} captures "
                f"({summary.capture_hits} reused), {summary.replays} replays "
                f"({summary.replay_hits} cached, "
                f"{summary.replays_sampled} sampled, "
                f"{summary.replays_batched} batched) for {summary.cells} cells "
                f"in {summary.duration_s:.2f}s",
                file=sys.stderr,
            )
        if args.trace:
            print(f"trace journal: {args.trace}", file=sys.stderr)
        return 1 if result.failures else 0

    if args.command == "trace":
        import json

        from .core.trace import (
            export_chrome_trace,
            read_trace,
            render_trace_spans,
            render_trace_summary,
        )

        if not args.path.exists():
            print(f"trace: no journal at {args.path}", file=sys.stderr)
            return 2
        records = read_trace(args.path)
        if not records:
            print(f"trace: journal {args.path} has no records", file=sys.stderr)
            return 2
        if args.action == "chrome":
            text = json.dumps(export_chrome_trace(records))
            if args.out:
                args.out.write_text(text + "\n", encoding="utf-8")
                print(
                    f"chrome trace: {args.out} (load at https://ui.perfetto.dev)",
                    file=sys.stderr,
                )
            else:
                print(text)
            return 0
        if args.action == "summary" and args.json:
            import json
            from dataclasses import asdict

            from .core.trace import summarize_trace, trace_spans

            data = asdict(summarize_trace(args.path))
            data["failed_cells"] = [
                {
                    "benchmark": sp.benchmark,
                    "workload": sp.workload,
                    "outcome": sp.outcome,
                    "attempts": sp.attempts,
                    "error": sp.error,
                }
                for sp in trace_spans(args.path)
                if not sp.ok
            ]
            print(json.dumps(data, indent=2))
            return 0
        render = render_trace_summary if args.action == "summary" else render_trace_spans
        print(render(args.path))
        return 0

    if args.command == "metrics":
        import json

        from .core.metrics import (
            load_snapshot,
            metrics_table_data,
            render_metrics_table,
            render_prometheus,
        )

        if not args.path.exists():
            print(f"metrics: no snapshot at {args.path}", file=sys.stderr)
            return 2
        try:
            reg = load_snapshot(args.path)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"metrics: {args.path}: unreadable snapshot ({exc})", file=sys.stderr)
            return 2
        if args.action == "show" and args.json:
            print(json.dumps(metrics_table_data(reg), indent=2))
            return 0
        print(
            render_metrics_table(reg)
            if args.action == "show"
            else render_prometheus(reg)
        )
        return 0

    if args.command == "watchdog":
        import json

        from .core.watchdog import EXIT_USAGE, WatchdogError, run_watchdog

        if args.baseline is not None and args.ledger_baseline is not None:
            print(
                "watchdog: needs exactly one of --baseline and --ledger-baseline",
                file=sys.stderr,
            )
            return EXIT_USAGE
        baseline = args.baseline
        if baseline is None and args.ledger_baseline is None:
            baseline = Path("BENCH_machine.json")
        try:
            report = run_watchdog(
                baseline,
                args.benchmarks or None,
                tolerance=args.tolerance,
                rounds=args.rounds,
                sampling_baseline=args.sampling_baseline,
                sweep_baseline=args.sweep_baseline,
                ledger=args.ledger_baseline,
                ledger_window=args.ledger_window,
            )
        except WatchdogError as exc:
            print(f"watchdog: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return report.exit_code

    if args.command == "runs":
        import json

        from .core.ledger import (
            LEDGER_ENV,
            LedgerError,
            RunLedger,
            diff_records,
            render_record,
            render_runs_table,
        )

        root = args.ledger or os.environ.get(LEDGER_ENV, "").strip() or None
        if root is None:
            print(
                f"runs: no ledger directory (pass --ledger or set {LEDGER_ENV})",
                file=sys.stderr,
            )
            return 2
        ledger = RunLedger(root)
        try:
            if args.action == "list":
                records = ledger.query(
                    benchmark=args.benchmark,
                    outcome=args.outcome,
                    limit=args.limit,
                )
                if args.json:
                    print(
                        json.dumps(
                            [
                                {k: v for k, v in r.items() if k != "metrics"}
                                for r in records
                            ],
                            indent=2,
                        )
                    )
                else:
                    print(render_runs_table(records))
                return 0
            if args.action == "show":
                record = ledger.resolve(args.refs[0] if args.refs else "latest")
                print(
                    json.dumps(record, indent=2)
                    if args.json
                    else render_record(record)
                )
                return 0
            if args.action == "diff":
                if len(args.refs) != 2:
                    print(
                        "runs diff: needs exactly two run references "
                        "(e.g. `repro runs diff prev latest`)",
                        file=sys.stderr,
                    )
                    return 2
                report = diff_records(
                    ledger.resolve(args.refs[0]),
                    ledger.resolve(args.refs[1]),
                    tolerance=args.tolerance,
                )
                if args.json:
                    print(json.dumps(report.to_dict(), indent=2))
                else:
                    print(report.render(verbose=args.all))
                return report.exit_code
            if args.action == "gc":
                removed = ledger.gc(
                    keep=args.keep,
                    max_age_s=(
                        args.max_age_days * 86400.0
                        if args.max_age_days is not None
                        else None
                    ),
                )
                if args.json:
                    print(json.dumps({"removed": removed}))
                else:
                    print(
                        f"runs gc: removed {len(removed)} run(s)"
                        + (": " + ", ".join(removed) if removed else "")
                    )
                return 0
            # pin / unpin
            ref = args.refs[0] if args.refs else "latest"
            run_id = (
                ledger.pin(ref) if args.action == "pin" else ledger.unpin(ref)
            )
            print(f"runs: {args.action}ned {run_id}")
            return 0
        except LedgerError as exc:
            print(f"runs: {exc}", file=sys.stderr)
            return 2

    if args.command == "flame":
        import time as time_mod

        from .core.registry import (
            UnknownScenarioError,
            alberta_workloads,
            get_benchmark,
        )
        from .core.resources import StackSampler, render_collapsed, top_frames
        from .machine.capture import capture_execution, replay_capture

        try:
            workloads = alberta_workloads(args.benchmark)
        except UnknownScenarioError as exc:
            print(f"flame: {exc}", file=sys.stderr)
            return 2
        if args.workload is None:
            workload = next(
                (w for w in workloads if w.name.endswith(".refrate")), workloads[0]
            )
        else:
            match = [w for w in workloads if w.name == args.workload]
            if not match:
                print(
                    f"flame: {args.benchmark} has no workload "
                    f"named {args.workload!r}",
                    file=sys.stderr,
                )
                return 2
            workload = match[0]
        benchmark = get_benchmark(args.benchmark)
        replays = 0
        started = time_mod.perf_counter()
        with StackSampler(hz=args.hz) as sampler:
            capture = capture_execution(benchmark, workload)
            while (
                replays == 0
                or time_mod.perf_counter() - started < args.seconds
            ):
                replay_capture(capture)
                replays += 1
        out = args.out or Path(f"{args.benchmark}.folded")
        out.write_text(render_collapsed(sampler.stacks), encoding="utf-8")
        print(
            f"flame: {args.benchmark}/{workload.name}: {sampler.total_samples} "
            f"samples over 1 capture + {replays} replays -> {out}",
            file=sys.stderr,
        )
        for frame, n in top_frames(sampler.stacks, limit=10):
            share = n / sampler.total_samples * 100.0 if sampler.total_samples else 0.0
            print(f"  {share:5.1f}%  {frame}")
        return 0

    if args.command == "top":
        import time as time_mod

        from .core.trace import read_trace, render_top

        while True:
            records = read_trace(args.path) if args.path.exists() else []
            if not records:
                if args.once:
                    print(f"top: no records at {args.path}", file=sys.stderr)
                    return 2
            else:
                frame = render_top(records, tail=args.tail)
                if args.once:
                    print(frame)
                    return 0
                # Clear + home, like watch(1); journal re-read each frame.
                print("\x1b[2J\x1b[H" + frame, flush=True)
                if any(r.get("type") == "summary" for r in records):
                    return 0
            time_mod.sleep(args.interval)

    if args.command in ("fig1", "fig2"):
        from .analysis.figures import render_figure1, render_figure2
        from .core.characterize import characterize

        char = characterize(args.benchmark, keep_profiles=True, **_engine_kwargs(args))
        render = render_figure1 if args.command == "fig1" else render_figure2
        print(render(char))
        return 0

    if args.command == "report":
        from .core.characterize import characterize
        from .core.reports import benchmark_report

        print(benchmark_report(characterize(args.benchmark, **_engine_kwargs(args))))
        return 0

    if args.command == "cache":
        from .core.artifacts import ArtifactStore

        store = ArtifactStore(args.cache_dir or default_cache_dir())
        if args.action == "wipe":
            n = store.wipe()
            print(f"removed {n} cached artifacts from {store.root}")
        else:
            profiles, captures = store.profiles, store.captures
            modes = profiles.replay_modes()
            print(f"cache dir : {store.root}")
            print("stage: replay (machine-dependent profiles)")
            print(f"  entries : {len(profiles)}")
            print(f"  bytes   : {profiles.total_bytes()}")
            print(f"  corrupt : {profiles.quarantined_entries()} (quarantined *.corrupt)")
            print(
                f"  source  : {modes['batched']} batched, "
                f"{modes['per-config']} per-config, "
                f"{modes['unlabeled']} unlabeled replays"
            )
            print("stage: capture (machine-independent telemetry)")
            print(f"  entries : {len(captures)}")
            print(f"  bytes   : {captures.total_bytes()}")
            print(f"  corrupt : {captures.quarantined_entries()} (quarantined *.corrupt)")
        return 0

    if args.command == "generate":
        from .core.registry import get_benchmark, get_generator
        from .machine.profiler import run_benchmark

        generator = get_generator(args.benchmark)
        workload = generator.generate(args.seed)
        profile = run_benchmark(get_benchmark(args.benchmark), workload)
        print(f"workload : {workload.name}")
        print(f"manifest : {workload.manifest()}")
        td = profile.topdown
        print(
            f"profile  : f={td.front_end:.3f} b={td.back_end:.3f} "
            f"s={td.bad_speculation:.3f} r={td.retiring:.3f} "
            f"time={profile.seconds:.6f}s"
        )
        print("verified : yes")
        return 0

    if args.command == "validate":
        from .core.registry import alberta_workloads
        from .core.validation import validate_workload_set

        report = validate_workload_set(alberta_workloads(args.benchmark))
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "fdo":
        from .fdo import cross_validate, single_workload_methodology

        single = single_workload_methodology(args.benchmark)
        print(f"single train->refrate speedup: {single.speedup:.4f}")
        cv = cross_validate(args.benchmark, max_workloads=args.max_workloads)
        s = cv.summary()
        print(
            f"cross-validated ({s['n']} pairs): mean={s['mean']:.4f} "
            f"range=[{s['min']:.4f}, {s['max']:.4f}] "
            f"regressions={s['n_regressions']}"
        )
        return 0

    if args.command == "export":
        from .analysis.export import export_bundle

        counts = export_bundle(args.out_dir, args.benchmarks or None, **_engine_kwargs(args))
        print(f"wrote {counts['tables']} tables, {counts['reports']} reports, "
              f"{counts['figures']} figures to {args.out_dir}")
        return 0

    if args.command == "list":
        from .core.registry import CAP_IN_TABLE2, REGISTRY

        if args.plugins:
            infos = REGISTRY.plugins()
            if not infos:
                print("no plugins loaded")
                return 0
            for info in infos:
                print(f"plugin {info.name} ({info.source})")
                for ref in info.descriptors:
                    print(f"  {ref}")
            return 0
        for d in REGISTRY.descriptors("benchmark"):
            table2 = "" if CAP_IN_TABLE2 in d.capabilities else "  (no Table II row)"
            origin = "" if d.origin == "builtin" else f"  [{d.origin}]"
            print(f"{d.id:<18} {d.suite or '?'}{table2}{origin}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
