"""Mini ``511.povray_r``: a recursive ray tracer.

The SPEC benchmark is POV-Ray.  The Alberta workloads organize into
three families that exercise different engine paths — *collection*
(moderately complex geometry of simple primitives), *lumpy* (a single
object over a checkered plane lit by two spotlights, stressing the
FPU), and *primitive* (built-in primitives emphasizing reflection,
refraction, and camera-lens aperture).  This substrate implements the
full classic Whitted tracer those families exercise:

* sphere and plane intersection;
* Phong shading with shadow rays and multiple (spot)lights;
* procedural checker texture;
* recursive reflection and refraction;
* camera aperture (focal blur) via multi-sample jitter.

Per-pixel hit/miss tests are data-dependent branches (povray's s =
8.8% in Table II); the coverage split across intersect/shade/texture/
reflect methods moves strongly with the scene family (``mu_g(M)`` =
66, among the largest).

Workload payload: :class:`SceneInput`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["SceneInput", "Sphere", "PlaneFloor", "Light", "PovrayBenchmark", "render"]

_OBJ_REGION = 0xC000_0000
_PIX_REGION = 0xC800_0000


@dataclass(frozen=True)
class Sphere:
    center: tuple[float, float, float]
    radius: float
    color: tuple[float, float, float] = (0.8, 0.2, 0.2)
    reflect: float = 0.0
    refract: float = 0.0  # transparency amount
    ior: float = 1.5

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("Sphere: radius must be positive")


@dataclass(frozen=True)
class PlaneFloor:
    height: float = 0.0
    checker: bool = True
    color: tuple[float, float, float] = (0.9, 0.9, 0.9)
    reflect: float = 0.0


@dataclass(frozen=True)
class Light:
    position: tuple[float, float, float]
    intensity: float = 1.0
    spot_target: tuple[float, float, float] | None = None
    spot_angle: float = 0.5  # radians half-angle


@dataclass(frozen=True)
class SceneInput:
    """One povray workload: scene + camera/render parameters."""

    spheres: tuple[Sphere, ...]
    floor: PlaneFloor | None
    lights: tuple[Light, ...]
    width: int = 32
    height: int = 24
    max_depth: int = 3
    aperture_samples: int = 1
    family: str = "collection"

    def __post_init__(self) -> None:
        if not self.lights:
            raise ValueError("SceneInput: need at least one light")
        if self.width < 4 or self.height < 4:
            raise ValueError("SceneInput: image too small")
        if self.max_depth < 1 or self.aperture_samples < 1:
            raise ValueError("SceneInput: depth/samples must be >= 1")


def _sub(a, b):
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def _add(a, b):
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def _scale(a, k):
    return (a[0] * k, a[1] * k, a[2] * k)


def _dot(a, b):
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def _norm(a):
    n = math.sqrt(_dot(a, a))
    if n == 0:
        return (0.0, 0.0, 0.0)
    return (a[0] / n, a[1] / n, a[2] / n)


class _Tracer:
    def __init__(self, scene: SceneInput, probe: Probe | None):
        self.scene = scene
        self.probe = probe
        self.hit_branches: list[bool] = []
        self.shadow_branches: list[bool] = []
        self.obj_reads: list[int] = []
        self.stats = {"rays": 0, "shadow_rays": 0, "reflect_rays": 0, "refract_rays": 0}

    # ------------------------------------------------------ intersections

    def intersect_sphere(self, origin, direction, sphere: Sphere) -> float | None:
        oc = _sub(origin, sphere.center)
        b = 2.0 * _dot(oc, direction)
        c = _dot(oc, oc) - sphere.radius * sphere.radius
        disc = b * b - 4 * c
        if disc < 0:
            return None
        sq = math.sqrt(disc)
        t1 = (-b - sq) / 2
        if t1 > 1e-4:
            return t1
        t2 = (-b + sq) / 2
        if t2 > 1e-4:
            return t2
        return None

    def intersect_floor(self, origin, direction) -> float | None:
        floor = self.scene.floor
        if floor is None or abs(direction[1]) < 1e-9:
            return None
        t = (floor.height - origin[1]) / direction[1]
        return t if t > 1e-4 else None

    def _closest(self, origin, direction):
        best_t = None
        best_obj = None
        for i, sphere in enumerate(self.scene.spheres):
            self.obj_reads.append(_OBJ_REGION + i * 128)
            t = self.intersect_sphere(origin, direction, sphere)
            self.hit_branches.append(t is not None)
            if t is not None and (best_t is None or t < best_t):
                best_t = t
                best_obj = sphere
        t = self.intersect_floor(origin, direction)
        self.hit_branches.append(t is not None)
        if t is not None and (best_t is None or t < best_t):
            best_t = t
            best_obj = self.scene.floor
        return best_t, best_obj

    # ------------------------------------------------------------ shading

    def _light_visible(self, point, light: Light) -> float:
        self.stats["shadow_rays"] += 1
        to_light = _sub(light.position, point)
        dist = math.sqrt(_dot(to_light, to_light))
        direction = _scale(to_light, 1.0 / dist)
        for sphere in self.scene.spheres:
            t = self.intersect_sphere(point, direction, sphere)
            blocked = t is not None and t < dist
            self.shadow_branches.append(blocked)
            if blocked:
                return 0.0
        # spotlight cone attenuation
        if light.spot_target is not None:
            axis = _norm(_sub(light.spot_target, light.position))
            cos = -_dot(direction, axis)
            if cos < math.cos(light.spot_angle):
                return 0.0
        return light.intensity / (1.0 + 0.01 * dist * dist)

    def trace(self, origin, direction, depth: int) -> tuple[float, float, float]:
        self.stats["rays"] += 1
        t, obj = self._closest(origin, direction)
        if obj is None:
            return (0.05, 0.05, 0.1)  # sky
        point = _add(origin, _scale(direction, t))

        if isinstance(obj, PlaneFloor):
            normal = (0.0, 1.0, 0.0)
            base = obj.color
            if obj.checker:
                check = (int(math.floor(point[0])) + int(math.floor(point[2]))) % 2
                base = obj.color if check else (0.1, 0.1, 0.1)
            reflect = obj.reflect
            refract = 0.0
            ior = 1.0
        else:
            normal = _norm(_sub(point, obj.center))
            base = obj.color
            reflect = obj.reflect
            refract = obj.refract
            ior = obj.ior

        # Phong: ambient + per-light diffuse/specular with shadows
        color = _scale(base, 0.08)
        for light in self.scene.lights:
            vis = self._light_visible(point, light)
            if vis <= 0:
                continue
            ldir = _norm(_sub(light.position, point))
            diff = max(0.0, _dot(normal, ldir)) * vis
            half = _norm(_sub(ldir, direction))
            spec = max(0.0, _dot(normal, half)) ** 24 * vis * 0.6
            color = _add(color, _add(_scale(base, diff), (spec, spec, spec)))

        if depth > 1 and reflect > 0:
            self.stats["reflect_rays"] += 1
            rdir = _norm(
                _sub(direction, _scale(normal, 2.0 * _dot(direction, normal)))
            )
            rcol = self.trace(_add(point, _scale(rdir, 1e-3)), rdir, depth - 1)
            color = _add(_scale(color, 1 - reflect), _scale(rcol, reflect))

        if depth > 1 and refract > 0:
            self.stats["refract_rays"] += 1
            # Snell refraction (enter only; exit approximated)
            cosi = -_dot(direction, normal)
            eta = 1.0 / ior if cosi > 0 else ior
            n = normal if cosi > 0 else _scale(normal, -1.0)
            cosi = abs(cosi)
            k = 1.0 - eta * eta * (1.0 - cosi * cosi)
            if k >= 0:
                tdir = _norm(
                    _add(_scale(direction, eta), _scale(n, eta * cosi - math.sqrt(k)))
                )
                tcol = self.trace(_add(point, _scale(tdir, 1e-3)), tdir, depth - 1)
                color = _add(_scale(color, 1 - refract), _scale(tcol, refract))

        return color


def render(scene: SceneInput, probe: Probe | None = None) -> dict:
    """Render the scene; returns the image checksum and ray statistics."""
    tracer = _Tracer(scene, probe)
    rng = random.Random(0xBEEF)
    cam = (0.0, 1.2, -4.0)
    aspect = scene.width / scene.height
    checksum = 0.0
    luminance = 0.0
    pixels = 0

    for py in range(scene.height):
        for px in range(scene.width):
            color = (0.0, 0.0, 0.0)
            for _s in range(scene.aperture_samples):
                jitter = (
                    (rng.uniform(-0.03, 0.03), rng.uniform(-0.03, 0.03), 0.0)
                    if scene.aperture_samples > 1
                    else (0.0, 0.0, 0.0)
                )
                origin = _add(cam, jitter)
                x = (2 * (px + 0.5) / scene.width - 1) * aspect
                y = 1 - 2 * (py + 0.5) / scene.height
                direction = _norm(_sub((x, y + 1.0, 0.0), origin))
                color = _add(color, tracer.trace(origin, direction, scene.max_depth))
            color = _scale(color, 1.0 / scene.aperture_samples)
            pixels += 1
            lum = 0.299 * color[0] + 0.587 * color[1] + 0.114 * color[2]
            luminance += lum
            checksum += lum * ((px * 31 + py * 17) % 97)

        if probe is not None and py % 6 == 5:
            _flush(tracer, probe, scene)

    if probe is not None:
        _flush(tracer, probe, scene)
        with probe.method("output_image", code_bytes=1024):
            probe.ops(pixels * 6)
            probe.accesses([_PIX_REGION + i * 4 for i in range(0, pixels, 2)])

    return {
        "checksum": checksum,
        "mean_luminance": luminance / pixels,
        "rays": tracer.stats["rays"],
        "shadow_rays": tracer.stats["shadow_rays"],
        "reflect_rays": tracer.stats["reflect_rays"],
        "refract_rays": tracer.stats["refract_rays"],
        "pixels": pixels,
    }


def _flush(tracer: _Tracer, probe: Probe, scene: SceneInput) -> None:
    stats = tracer.stats
    with probe.method("intersect_objects", code_bytes=3584):
        probe.branches(tracer.hit_branches, site=1)
        probe.accesses(tracer.obj_reads)
        probe.ops(len(tracer.hit_branches) * 14, kind="fp")
        probe.ops(len(tracer.hit_branches) // 2, kind="fpdiv")
    with probe.method("shade_phong", code_bytes=2560):
        probe.branches(tracer.shadow_branches, site=2)
        probe.ops(len(tracer.shadow_branches) * 18, kind="fp")
    if scene.floor is not None and scene.floor.checker:
        with probe.method("texture_checker", code_bytes=1024):
            probe.ops(stats["rays"] * 4, kind="fp")
    if stats["reflect_rays"] or stats["refract_rays"]:
        with probe.method("reflect_refract", code_bytes=2048):
            probe.ops((stats["reflect_rays"] + stats["refract_rays"]) * 22, kind="fp")
            probe.ops(stats["refract_rays"] * 2, kind="fpdiv")
    if scene.aperture_samples > 1:
        with probe.method("sample_aperture", code_bytes=768):
            probe.ops(stats["rays"] * 3, kind="fp")
    tracer.hit_branches = []
    tracer.shadow_branches = []
    tracer.obj_reads = []


@register_benchmark
class PovrayBenchmark:
    """The ``511.povray_r`` substrate."""

    name = "511.povray_r"
    suite = "fp"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, SceneInput):
            raise BenchmarkError(f"povray: bad payload type {type(payload).__name__}")
        with probe.method("parse_scene", code_bytes=2048):
            probe.ops(len(payload.spheres) * 24 + len(payload.lights) * 12 + 64)
            probe.accesses([_OBJ_REGION + i * 128 for i in range(len(payload.spheres))])
        return render(payload, probe)

    def verify(self, workload: Workload, output: dict) -> bool:
        # the image must contain actual signal: non-zero luminance and
        # at least one primary ray per pixel
        if output["rays"] < output["pixels"]:
            return False
        return 0.0 < output["mean_luminance"] < 4.0
