"""Mini ``519.lbm_r``: a D2Q9 lattice Boltzmann fluid simulator.

The SPEC benchmark simulates incompressible fluid in 3D with the
Lattice Boltzmann Method; a workload is an obstacle geometry file plus
command-line arguments (number of steps, type of simulation step).
This substrate implements the standard D2Q9 BGK scheme (2D for
interpreter speed; the memory/compute character is the same):

* ``stream``  — propagate distributions along the nine lattice
  directions (pure memory movement — the streaming traffic that makes
  the real benchmark the most back-end-bound in Table II, 61.2%);
* ``collide`` — BGK relaxation toward the local Maxwell equilibrium
  (dense FP arithmetic);
* ``bounce_back`` — no-slip obstacle boundaries;
* ``compute_macroscopic`` — density/velocity moments.

Branches are almost absent (s = 0.4% in the paper, with a large
sigma_g — the summarization caveat Section V-B discusses).

Workload payload: :class:`LbmInput`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["LbmInput", "LbmBenchmark", "run_lbm"]

_GRID_REGION = 0x8000_0000

# D2Q9 lattice: velocities and weights
_EX = np.array([0, 1, 0, -1, 0, 1, -1, -1, 1])
_EY = np.array([0, 0, 1, 0, -1, 1, 1, -1, -1])
_W = np.array([4 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 9, 1 / 36, 1 / 36, 1 / 36, 1 / 36])
_OPPOSITE = np.array([0, 3, 4, 1, 2, 7, 8, 5, 6])


@dataclass(frozen=True)
class LbmInput:
    """One lbm workload: obstacle mask + run parameters.

    ``obstacles`` is a boolean (h, w) mask; ``steps`` the number of
    time steps; ``omega`` the BGK relaxation rate; ``inflow`` the lid
    velocity; ``step_kind`` selects the simulation-step variant the
    SPEC command line exposes."""

    obstacles: np.ndarray
    steps: int = 24
    omega: float = 1.2
    inflow: float = 0.08
    step_kind: str = "channel"  # or "lid"

    def __post_init__(self) -> None:
        if self.obstacles.ndim != 2 or self.obstacles.dtype != np.bool_:
            raise ValueError("LbmInput: obstacles must be a 2-D boolean mask")
        if self.steps < 1:
            raise ValueError("LbmInput: steps must be >= 1")
        if not 0.2 <= self.omega <= 1.95:
            raise ValueError("LbmInput: omega must stay in the stable range [0.2, 1.95]")
        if self.step_kind not in ("channel", "lid"):
            raise ValueError(f"LbmInput: unknown step kind {self.step_kind!r}")
        if self.obstacles.all():
            raise ValueError("LbmInput: domain is fully blocked")


def _equilibrium(rho: np.ndarray, ux: np.ndarray, uy: np.ndarray) -> np.ndarray:
    """Maxwell equilibrium distribution for all nine directions."""
    usq = 1.5 * (ux * ux + uy * uy)
    feq = np.empty((9,) + rho.shape)
    for k in range(9):
        cu = 3.0 * (_EX[k] * ux + _EY[k] * uy)
        feq[k] = _W[k] * rho * (1.0 + cu + 0.5 * cu * cu - usq)
    return feq


def run_lbm(config: LbmInput, probe: Probe | None = None) -> dict:
    """Run the simulation; returns flow statistics."""
    mask = config.obstacles
    h, w = mask.shape
    cells = h * w

    rho = np.ones((h, w))
    ux = np.zeros((h, w))
    uy = np.zeros((h, w))
    if config.step_kind == "channel":
        ux[:, :] = config.inflow
    f = _equilibrium(rho, ux, uy)

    if probe is not None:
        with probe.method("init_grid", code_bytes=1536):
            probe.ops(cells * 9, kind="fp")
            probe.accesses(
                _GRID_REGION + np.arange(0, cells * 9, 64, dtype=np.int64) * 8
            )

    momentum_trace = []
    for step in range(config.steps):
        # streaming: shift each distribution along its lattice vector
        for k in range(1, 9):
            f[k] = np.roll(np.roll(f[k], _EY[k], axis=0), _EX[k], axis=1)
        if probe is not None:
            with probe.method("stream", code_bytes=2048):
                probe.ops(cells * 9 // 2)
                # touch all nine lattice planes: pure streaming traffic
                probe.accesses(
                    (
                        _GRID_REGION
                        + np.arange(9, dtype=np.int64)[:, None] * (cells * 8)
                        + np.arange(0, cells * 8, 512, dtype=np.int64)[None, :]
                    ).ravel()
                )

        # bounce-back on obstacles
        boundary = f[:, mask].copy()
        if probe is not None:
            with probe.method("bounce_back", code_bytes=1024):
                n_obstacle = int(mask.sum())
                probe.ops(max(1, n_obstacle * 9 // 2))
                probe.branches(mask.ravel()[:: max(1, cells // 512)], site=1)
        f[:, mask] = boundary[_OPPOSITE]

        # macroscopic moments
        rho = f.sum(axis=0)
        with np.errstate(divide="ignore", invalid="ignore"):
            ux = np.where(rho > 0, (f * _EX[:, None, None]).sum(axis=0) / rho, 0.0)
            uy = np.where(rho > 0, (f * _EY[:, None, None]).sum(axis=0) / rho, 0.0)
        ux[mask] = 0.0
        uy[mask] = 0.0
        if config.step_kind == "channel":
            ux[:, 0] = config.inflow
            uy[:, 0] = 0.0
        else:  # lid-driven cavity
            ux[0, :] = config.inflow
            uy[0, :] = 0.0
        if probe is not None:
            with probe.method("compute_macroscopic", code_bytes=1536):
                probe.ops(cells * 12, kind="fp")
                probe.accesses(
                    _GRID_REGION + np.arange(0, cells * 8, 256, dtype=np.int64)
                )

        # BGK collision
        feq = _equilibrium(rho, ux, uy)
        f = f + config.omega * (feq - f)
        if probe is not None:
            with probe.method("collide", code_bytes=2560):
                probe.ops(cells * 9 * 6, kind="fp")
                probe.ops(cells, kind="fpdiv")
                probe.accesses(
                    (
                        _GRID_REGION
                        + np.arange(9, dtype=np.int64)[:, None] * (cells * 8)
                        + np.arange(0, cells * 8, 1024, dtype=np.int64)[None, :]
                    ).ravel()
                )

        momentum = float(np.sqrt(ux * ux + uy * uy)[~mask].mean())
        momentum_trace.append(momentum)
        if not np.isfinite(momentum) or momentum > 10.0:
            raise BenchmarkError(f"lbm: simulation diverged at step {step}")

    total_mass = float(rho[~mask].sum())
    return {
        "steps": config.steps,
        "final_momentum": momentum_trace[-1],
        "momentum_trace": momentum_trace,
        "total_mass": total_mass,
        "cells": cells,
    }


@register_benchmark
class LbmBenchmark:
    """The ``519.lbm_r`` substrate."""

    name = "519.lbm_r"
    suite = "fp"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, LbmInput):
            raise BenchmarkError(f"lbm: bad payload type {type(payload).__name__}")
        return run_lbm(payload, probe)

    def verify(self, workload: Workload, output: dict) -> bool:
        # mass must be conserved to within numerical noise of the
        # boundary conditions, and the flow must not have diverged
        cells_free = output["cells"] - int(workload.payload.obstacles.sum())
        mass_per_cell = output["total_mass"] / max(1, cells_free)
        return 0.5 < mass_per_cell < 2.0 and 0.0 <= output["final_momentum"] < 10.0
