"""Mini ``548.exchange2_r``: a Sudoku puzzle generator.

The SPEC benchmark (Fortran) takes a collection of valid Sudoku puzzles
as *seeds* and generates new puzzles with identical clue patterns.
This substrate reproduces that pipeline:

* a bitmask backtracking solver (dense integer work over 81 cells —
  the source of the benchmark's very high retiring fraction, 58.6% in
  Table II, and its near-total insensitivity to workload);
* validity-preserving grid transformations (digit relabelling, row/
  column permutations within bands, band/stack permutations);
* puzzle generation: transform the seed's *solution*, then re-apply
  the seed's clue pattern and check the new puzzle is solvable.

The paper found that replacing the 27 distributed seed puzzles made
runs too short, so all Alberta workloads reuse the same seeds and vary
only how many puzzles are processed — this substrate's workloads do the
same (see :mod:`repro.workloads.exchange2_gen`).

Workload payload: :class:`SudokuInput` — seed puzzles (81-char strings)
plus the number of puzzles to generate per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["SudokuInput", "Exchange2Benchmark", "solve", "count_solutions", "BASE_SOLUTION"]

_GRID_REGION = 0x5000_0000

def _canonical_solution() -> list[int]:
    """The classic pattern: cell(r, c) = (r*3 + r//3 + c) % 9 + 1."""
    return [(r * 3 + r // 3 + c) % 9 + 1 for r in range(9) for c in range(9)]


#: A canonical solved grid (the standard shifted-rows construction).
BASE_SOLUTION = "".join(map(str, _canonical_solution()))


@dataclass(frozen=True)
class SudokuInput:
    """One exchange2 workload: seed puzzles + generation effort."""

    seeds: tuple[str, ...]
    puzzles_per_seed: int = 2

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ValueError("SudokuInput: need at least one seed puzzle")
        for s in self.seeds:
            if len(s) != 81 or any(ch not in "0123456789." for ch in s):
                raise ValueError("SudokuInput: each seed must be 81 chars of 0-9/.")
        if self.puzzles_per_seed < 1:
            raise ValueError("SudokuInput: puzzles_per_seed must be >= 1")


def _parse(puzzle: str) -> list[int]:
    return [0 if ch in "0." else int(ch) for ch in puzzle]


def _units_ok(grid: list[int], cell: int, digit: int) -> bool:
    r, c = divmod(cell, 9)
    for i in range(9):
        if grid[r * 9 + i] == digit or grid[i * 9 + c] == digit:
            return False
    br, bc = (r // 3) * 3, (c // 3) * 3
    for i in range(3):
        for j in range(3):
            if grid[(br + i) * 9 + bc + j] == digit:
                return False
    return True


def _solve_bitmask(
    grid: list[int],
    limit: int,
    probe: Probe | None,
    branch_buf: list[bool] | None,
    reads: list[int] | None = None,
) -> tuple[int, list[int] | None]:
    """Backtracking with row/col/box bitmasks.

    Returns (number of solutions found up to ``limit``, one solution).
    """
    rows = [0] * 9
    cols = [0] * 9
    boxes = [0] * 9
    empties: list[int] = []
    for cell, digit in enumerate(grid):
        r, c = divmod(cell, 9)
        b = (r // 3) * 3 + c // 3
        if digit:
            bit = 1 << digit
            if rows[r] & bit or cols[c] & bit or boxes[b] & bit:
                return 0, None
            rows[r] |= bit
            cols[c] |= bit
            boxes[b] |= bit
        else:
            empties.append(cell)

    solutions = 0
    solution_grid: list[int] | None = None
    work = grid[:]
    n_ops = 0

    def _rec(idx: int) -> bool:
        nonlocal solutions, solution_grid, n_ops
        if idx == len(empties):
            solutions += 1
            if solution_grid is None:
                solution_grid = work[:]
            return solutions >= limit
        # most-constrained-cell heuristic: pick the remaining empty cell
        # with the fewest candidates
        best_k = idx
        best_count = 10
        for k in range(idx, len(empties)):
            cell = empties[k]
            r, c = divmod(cell, 9)
            b = (r // 3) * 3 + c // 3
            used = rows[r] | cols[c] | boxes[b]
            count = 9 - bin(used & 0x3FE).count("1")
            if count < best_count:
                best_count = count
                best_k = k
                if count <= 1:
                    break
        empties[idx], empties[best_k] = empties[best_k], empties[idx]
        cell = empties[idx]
        r, c = divmod(cell, 9)
        b = (r // 3) * 3 + c // 3
        used = rows[r] | cols[c] | boxes[b]
        n_ops += 160
        if reads is not None:
            # candidate-table lookups over a few hundred KiB of
            # puzzle/candidate state, as in the Fortran original
            reads.append(_GRID_REGION + (n_ops * 37 & 0x3FFFF))
        for digit in range(1, 10):
            bit = 1 << digit
            candidate_ok = not used & bit
            if branch_buf is not None:
                branch_buf.append(candidate_ok)
            if not candidate_ok:
                continue
            rows[r] |= bit
            cols[c] |= bit
            boxes[b] |= bit
            work[cell] = digit
            n_ops += 48
            if _rec(idx + 1):
                rows[r] &= ~bit
                cols[c] &= ~bit
                boxes[b] &= ~bit
                work[cell] = 0
                empties[idx], empties[best_k] = empties[best_k], empties[idx]
                return True
            rows[r] &= ~bit
            cols[c] &= ~bit
            boxes[b] &= ~bit
            work[cell] = 0
        empties[idx], empties[best_k] = empties[best_k], empties[idx]
        return False

    _rec(0)
    if probe is not None:
        probe.ops(n_ops)
    return solutions, solution_grid


def solve(puzzle: str) -> str | None:
    """Solve a puzzle; returns the 81-char solution or None."""
    n, sol = _solve_bitmask(_parse(puzzle), 1, None, None)
    if n == 0 or sol is None:
        return None
    return "".join(map(str, sol))


def count_solutions(puzzle: str, limit: int = 2) -> int:
    """Count solutions up to ``limit`` (2 suffices for uniqueness checks)."""
    n, _ = _solve_bitmask(_parse(puzzle), limit, None, None)
    return n


def _transform_solution(solution: list[int], rng: random.Random) -> list[int]:
    """Apply validity-preserving permutations to a solved grid."""
    grid = [row[:] for row in (solution[i * 9 : (i + 1) * 9] for i in range(9))]
    # digit relabelling
    perm = list(range(1, 10))
    rng.shuffle(perm)
    grid = [[perm[v - 1] for v in row] for row in grid]
    # row permutations within each band
    for band in range(3):
        order = [0, 1, 2]
        rng.shuffle(order)
        rows = [grid[band * 3 + i] for i in order]
        grid[band * 3 : band * 3 + 3] = rows
    # column permutations within each stack
    for stack in range(3):
        order = [0, 1, 2]
        rng.shuffle(order)
        for row in grid:
            cols = [row[stack * 3 + i] for i in order]
            row[stack * 3 : stack * 3 + 3] = cols
    # band permutation
    order = [0, 1, 2]
    rng.shuffle(order)
    bands = [grid[b * 3 : b * 3 + 3] for b in order]
    grid = [row for band in bands for row in band]
    return [v for row in grid for v in row]


@register_benchmark
class Exchange2Benchmark:
    """The ``548.exchange2_r`` substrate."""

    name = "548.exchange2_r"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, SudokuInput):
            raise BenchmarkError(f"exchange2: bad payload type {type(payload).__name__}")
        rng = random.Random(0x5EED)
        generated: list[str] = []
        solved = 0
        for seed_puzzle in payload.seeds:
            branch_buf: list[bool] = []
            reads: list[int] = []
            with probe.method("solve_seed", code_bytes=2560):
                n, sol = _solve_bitmask(_parse(seed_puzzle), 1, probe, branch_buf, reads)
                probe.branches(branch_buf, site=1)
                probe.accesses(reads)
                probe.accesses([_GRID_REGION + i * 4 for i in range(81)])
            if n == 0 or sol is None:
                raise BenchmarkError("exchange2: seed puzzle unsolvable")
            solved += 1
            clue_pattern = [i for i, ch in enumerate(seed_puzzle) if ch not in "0."]

            for _ in range(payload.puzzles_per_seed):
                with probe.method("permute_grid", code_bytes=1024):
                    new_solution = _transform_solution(sol, rng)
                    probe.ops(81 * 6)
                    probe.accesses([_GRID_REGION + 512 + i * 4 for i in range(81)])
                with probe.method("apply_clue_pattern", code_bytes=512):
                    new_puzzle = [0] * 81
                    for i in clue_pattern:
                        new_puzzle[i] = new_solution[i]
                    probe.ops(len(clue_pattern) * 3)
                puzzle_str = "".join(map(str, new_puzzle))
                branch_buf = []
                reads = []
                with probe.method("check_puzzle", code_bytes=2560):
                    n_sols, _ = _solve_bitmask(_parse(puzzle_str), 2, probe, branch_buf, reads)
                    probe.branches(branch_buf, site=2)
                    probe.accesses(reads)
                    probe.accesses([_GRID_REGION + 1024 + i * 4 for i in range(81)])
                if n_sols >= 1:
                    generated.append(puzzle_str)
        return {
            "seeds_solved": solved,
            "generated": generated,
            "n_generated": len(generated),
        }

    def verify(self, workload: Workload, output: dict) -> bool:
        payload = workload.payload
        if output["seeds_solved"] != len(payload.seeds):
            return False
        if output["n_generated"] < len(payload.seeds):
            return False
        # every generated puzzle must itself be a valid, solvable Sudoku
        # whose clue pattern matches its seed's
        for puzzle in output["generated"][: min(4, len(output["generated"]))]:
            if count_solutions(puzzle, limit=1) < 1:
                return False
        return True
