"""Mini ``531.deepsjeng_r``: a chess engine performing alpha-beta search.

The SPEC benchmark analyzes chess positions (FEN + ply depth) with an
alpha-beta tree search.  This substrate is a real, compact engine:

* 0x88 board representation with a FEN parser;
* pseudo-legal move generation with legality filtering;
* material + piece-square evaluation;
* fixed-depth alpha-beta with a Zobrist-keyed transposition table and
  MVV-LVA move ordering.

Telemetry captures the benchmark's signature behaviour: scattered
transposition-table probes (back-end bound), data-dependent cutoff
branches (bad speculation), and a method-coverage profile dominated by
the search/movegen/eval trio regardless of workload — the paper reports
``mu_g(M) = 1`` for this benchmark.

Workload payload: :class:`ChessInput` — a list of (FEN, depth) pairs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["ChessInput", "DeepsjengBenchmark", "Position", "START_FEN", "perft"]

START_FEN = "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq - 0 1"

# piece codes: positive = white, negative = black
EMPTY, PAWN, KNIGHT, BISHOP, ROOK, QUEEN, KING = 0, 1, 2, 3, 4, 5, 6
_PIECE_CHARS = {"p": PAWN, "n": KNIGHT, "b": BISHOP, "r": ROOK, "q": QUEEN, "k": KING}
_CHAR_PIECES = {v: k for k, v in _PIECE_CHARS.items()}
_VALUES = {PAWN: 100, KNIGHT: 320, BISHOP: 330, ROOK: 500, QUEEN: 900, KING: 20000}

_KNIGHT_DELTAS = (-33, -31, -18, -14, 14, 18, 31, 33)
_KING_DELTAS = (-17, -16, -15, -1, 1, 15, 16, 17)
_BISHOP_DELTAS = (-17, -15, 15, 17)
_ROOK_DELTAS = (-16, -1, 1, 16)

# central piece-square bonus, mirrored for black
_PST = [0] * 128
for _sq in range(128):
    if not _sq & 0x88:
        _file, _rank = _sq & 7, _sq >> 4
        _PST[_sq] = 6 - (abs(2 * _file - 7) + abs(2 * _rank - 7))

_ZOBRIST_RNG = random.Random(0xC0FFEE)
_ZOBRIST = [[_ZOBRIST_RNG.getrandbits(64) for _ in range(13)] for _ in range(128)]
_ZOBRIST_SIDE = _ZOBRIST_RNG.getrandbits(64)

_TT_REGION = 0x0800_0000
_BOARD_REGION = 0x0700_0000


@dataclass(frozen=True)
class ChessInput:
    """One deepsjeng workload: positions with per-position search depth."""

    positions: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        if not self.positions:
            raise ValueError("ChessInput: need at least one position")
        for fen, depth in self.positions:
            if depth < 1:
                raise ValueError(f"ChessInput: depth must be >= 1, got {depth}")
            if len(fen.split()) < 4:
                raise ValueError(f"ChessInput: malformed FEN {fen!r}")


class Position:
    """A chess position on a 0x88 board."""

    __slots__ = ("board", "white_to_move", "castling", "ep_square", "hash_")

    def __init__(self) -> None:
        self.board = [EMPTY] * 128
        self.white_to_move = True
        self.castling = ""
        self.ep_square = -1
        self.hash_ = 0

    @classmethod
    def from_fen(cls, fen: str) -> "Position":
        parts = fen.split()
        if len(parts) < 4:
            raise BenchmarkError(f"bad FEN: {fen!r}")
        pos = cls()
        rank, file = 7, 0
        for ch in parts[0]:
            if ch == "/":
                rank -= 1
                file = 0
            elif ch.isdigit():
                file += int(ch)
            else:
                piece = _PIECE_CHARS.get(ch.lower())
                if piece is None or rank < 0 or file > 7:
                    raise BenchmarkError(f"bad FEN piece field: {fen!r}")
                sq = rank * 16 + file
                pos.board[sq] = piece if ch.isupper() else -piece
                file += 1
        pos.white_to_move = parts[1] == "w"
        pos.castling = parts[2] if parts[2] != "-" else ""
        pos.ep_square = -1
        if parts[3] != "-":
            f = ord(parts[3][0]) - ord("a")
            r = int(parts[3][1]) - 1
            pos.ep_square = r * 16 + f
        pos._rehash()
        return pos

    def to_fen(self) -> str:
        rows = []
        for rank in range(7, -1, -1):
            row = ""
            empties = 0
            for file in range(8):
                piece = self.board[rank * 16 + file]
                if piece == EMPTY:
                    empties += 1
                else:
                    if empties:
                        row += str(empties)
                        empties = 0
                    ch = _CHAR_PIECES[abs(piece)]
                    row += ch.upper() if piece > 0 else ch
            if empties:
                row += str(empties)
            rows.append(row)
        side = "w" if self.white_to_move else "b"
        castle = self.castling or "-"
        ep = "-"
        if self.ep_square >= 0:
            ep = "abcdefgh"[self.ep_square & 7] + str((self.ep_square >> 4) + 1)
        return f"{'/'.join(rows)} {side} {castle} {ep} 0 1"

    def _rehash(self) -> None:
        h = 0
        for sq in range(128):
            if not sq & 0x88 and self.board[sq] != EMPTY:
                h ^= _ZOBRIST[sq][self.board[sq] + 6]
        if not self.white_to_move:
            h ^= _ZOBRIST_SIDE
        self.hash_ = h

    def copy(self) -> "Position":
        p = Position.__new__(Position)
        p.board = self.board[:]
        p.white_to_move = self.white_to_move
        p.castling = self.castling
        p.ep_square = self.ep_square
        p.hash_ = self.hash_
        return p

    # ------------------------------------------------------------- movegen

    def find_king(self, white: bool) -> int:
        target = KING if white else -KING
        for sq in range(128):
            if not sq & 0x88 and self.board[sq] == target:
                return sq
        return -1

    def attacked_by(self, sq: int, by_white: bool) -> bool:
        board = self.board
        sign = 1 if by_white else -1
        # pawns
        for d in ((-15, -17) if by_white else (15, 17)):
            f = sq + d
            if not f & 0x88 and board[f] == sign * PAWN:
                return True
        for d in _KNIGHT_DELTAS:
            f = sq + d
            if not f & 0x88 and board[f] == sign * KNIGHT:
                return True
        for d in _KING_DELTAS:
            f = sq + d
            if not f & 0x88 and board[f] == sign * KING:
                return True
        for deltas, sliders in (
            (_BISHOP_DELTAS, (BISHOP, QUEEN)),
            (_ROOK_DELTAS, (ROOK, QUEEN)),
        ):
            for d in deltas:
                f = sq + d
                while not f & 0x88:
                    piece = board[f]
                    if piece != EMPTY:
                        if piece * sign > 0 and abs(piece) in sliders:
                            return True
                        break
                    f += d
        return False

    def pseudo_moves(self) -> list[tuple[int, int, int]]:
        """(from, to, captured) pseudo-legal moves for the side to move."""
        board = self.board
        white = self.white_to_move
        sign = 1 if white else -1
        moves: list[tuple[int, int, int]] = []
        for sq in range(128):
            if sq & 0x88:
                continue
            piece = board[sq]
            if piece == EMPTY or piece * sign < 0:
                continue
            kind = abs(piece)
            if kind == PAWN:
                fwd = 16 * sign
                one = sq + fwd
                if not one & 0x88 and board[one] == EMPTY:
                    moves.append((sq, one, EMPTY))
                    start_rank = 1 if white else 6
                    two = one + fwd
                    if sq >> 4 == start_rank and not two & 0x88 and board[two] == EMPTY:
                        moves.append((sq, two, EMPTY))
                for d in (fwd - 1, fwd + 1):
                    t = sq + d
                    if t & 0x88:
                        continue
                    if board[t] * sign < 0:
                        moves.append((sq, t, board[t]))
                    elif t == self.ep_square:
                        moves.append((sq, t, -sign * PAWN))
            elif kind == KNIGHT or kind == KING:
                for d in _KNIGHT_DELTAS if kind == KNIGHT else _KING_DELTAS:
                    t = sq + d
                    if t & 0x88:
                        continue
                    if board[t] * sign <= 0:
                        moves.append((sq, t, board[t]))
            else:
                deltas = (
                    _BISHOP_DELTAS
                    if kind == BISHOP
                    else _ROOK_DELTAS
                    if kind == ROOK
                    else _BISHOP_DELTAS + _ROOK_DELTAS
                )
                for d in deltas:
                    t = sq + d
                    while not t & 0x88:
                        captured = board[t]
                        if captured * sign > 0:
                            break
                        moves.append((sq, t, captured))
                        if captured != EMPTY:
                            break
                        t += d
        return moves

    def make_move(self, move: tuple[int, int, int]) -> "Position":
        """Return a new position with the move applied (copy-make)."""
        frm, to, _captured = move
        p = self.copy()
        board = p.board
        piece = board[frm]
        sign = 1 if piece > 0 else -1
        h = p.hash_
        h ^= _ZOBRIST[frm][piece + 6]
        if board[to] != EMPTY:
            h ^= _ZOBRIST[to][board[to] + 6]
        # en passant capture removes a pawn not on `to`
        if abs(piece) == PAWN and to == self.ep_square and board[to] == EMPTY:
            cap_sq = to - 16 * sign
            h ^= _ZOBRIST[cap_sq][board[cap_sq] + 6]
            board[cap_sq] = EMPTY
        board[frm] = EMPTY
        # promotion (always to queen, as search substrate)
        if abs(piece) == PAWN and (to >> 4) in (0, 7):
            piece = QUEEN * sign
        board[to] = piece
        h ^= _ZOBRIST[to][piece + 6]
        h ^= _ZOBRIST_SIDE
        p.hash_ = h
        p.ep_square = -1
        if abs(piece) == PAWN and abs(to - frm) == 32:
            p.ep_square = (frm + to) // 2
        p.white_to_move = not self.white_to_move
        return p

    def legal_moves(self) -> list[tuple[int, int, int]]:
        moves = []
        for move in self.pseudo_moves():
            child = self.make_move(move)
            king = child.find_king(self.white_to_move)
            if king >= 0 and not child.attacked_by(king, child.white_to_move):
                moves.append(move)
        return moves

    def in_check(self) -> bool:
        king = self.find_king(self.white_to_move)
        return king >= 0 and self.attacked_by(king, not self.white_to_move)


def evaluate(pos: Position) -> int:
    """Static evaluation (material + centralization), from White's view."""
    score = 0
    board = pos.board
    for sq in range(128):
        if sq & 0x88:
            continue
        piece = board[sq]
        if piece == EMPTY:
            continue
        kind = abs(piece)
        value = _VALUES[kind] + _PST[sq]
        score += value if piece > 0 else -value
    return score


def perft(pos: Position, depth: int) -> int:
    """Move-path enumeration; the standard movegen correctness check."""
    if depth == 0:
        return 1
    total = 0
    for move in pos.legal_moves():
        total += perft(pos.make_move(move), depth - 1)
    return total


#: Quiescence search explores capture chains at most this deep.
_QSEARCH_DEPTH = 3


class _Searcher:
    """Alpha-beta with transposition table, killer-move ordering, and a
    capture-only quiescence search at the horizon."""

    def __init__(self, probe: Probe):
        self.probe = probe
        self.tt: dict[int, tuple[int, int]] = {}
        self.nodes = 0
        self.qnodes = 0
        self.cutoff_branches: list[bool] = []
        self.tt_reads: list[int] = []
        self.eval_reads: list[int] = []
        # two killer moves per ply (indexed by remaining depth)
        self.killers: dict[int, list[tuple[int, int, int]]] = {}

    def _note_killer(self, depth: int, move: tuple[int, int, int]) -> None:
        slot = self.killers.setdefault(depth, [])
        if move in slot:
            return
        slot.insert(0, move)
        del slot[2:]

    def _order_moves(
        self, moves: list[tuple[int, int, int]], depth: int
    ) -> list[tuple[int, int, int]]:
        """Captures by MVV-LVA, then killers, then the rest."""
        killers = self.killers.get(depth, ())

        def _key(move: tuple[int, int, int]) -> tuple[int, int]:
            capture_value = _VALUES.get(abs(move[2]), 0)
            killer_bonus = 1 if move in killers else 0
            return (-capture_value, -killer_bonus)

        moves.sort(key=_key)
        # the ordering comparisons branch on move content
        prev = None
        for move in moves:
            key = _key(move)
            self.cutoff_branches.append(prev is not None and key == prev)
            self.cutoff_branches.append(move[2] != 0)
            prev = key
        return moves

    def qsearch(self, pos: Position, alpha: int, beta: int, qdepth: int) -> int:
        """Capture-only search to settle tactical noise at the horizon."""
        self.qnodes += 1
        probe = self.probe
        with probe.method("static_eval", code_bytes=6144):
            stand_pat = evaluate(pos)
            probe.ops(64)
            probe.branches(
                (pos.board[sq] != EMPTY for sq in range(0, 128, 8)), site=3
            )
        score = stand_pat if pos.white_to_move else -stand_pat
        if score >= beta or qdepth <= 0:
            return score
        if score > alpha:
            alpha = score
        with probe.method("gen_captures", code_bytes=4096):
            captures = [m for m in pos.pseudo_moves() if m[2] != EMPTY]
            probe.ops(len(captures) * 12 + 48)
        captures.sort(key=lambda m: -_VALUES.get(abs(m[2]), 0))
        for move in captures:
            child = pos.make_move(move)
            king = child.find_king(pos.white_to_move)
            if king < 0 or child.attacked_by(king, child.white_to_move):
                continue  # illegal capture (left the king hanging)
            value = -self.qsearch(child, -beta, -alpha, qdepth - 1)
            took_cutoff = value >= beta
            self.cutoff_branches.append(took_cutoff)
            if took_cutoff:
                return value
            if value > alpha:
                alpha = value
        return alpha

    def _flush(self) -> None:
        probe = self.probe
        with probe.method("ProbeTT", code_bytes=768):
            probe.accesses(self.tt_reads)
            probe.ops(len(self.tt_reads) * 4)
        with probe.method("search", code_bytes=10240):
            probe.branches(self.cutoff_branches, site=2)
        self.tt_reads.clear()
        self.cutoff_branches.clear()

    def search(self, pos: Position, depth: int, alpha: int, beta: int) -> int:
        self.nodes += 1
        probe = self.probe
        key = pos.hash_
        self.tt_reads.append(_TT_REGION + (key % 262_144) * 16)
        hit = self.tt.get(key)
        self.cutoff_branches.append(hit is not None and hit[1] >= depth)
        if hit is not None and hit[1] >= depth:
            return hit[0]

        if depth == 0:
            with probe.method("static_eval", code_bytes=6144):
                probe.accesses(
                    [_BOARD_REGION + (key % 4096) * 64 + i * 8 for i in range(4)]
                )
            return self.qsearch(pos, alpha, beta, _QSEARCH_DEPTH)

        with probe.method("gen_moves", code_bytes=8192):
            moves = pos.legal_moves()
            probe.ops(len(moves) * 24 + 128)
            probe.branches(
                [m[2] != EMPTY for m in moves], site=1
            )
        if not moves:
            return -30_000 if pos.in_check() else 0

        moves = self._order_moves(moves, depth)

        best = -1_000_000
        for move in moves:
            with probe.method("make_move", code_bytes=2048):
                child = pos.make_move(move)
                probe.ops(40)
            score = -self.search(child, depth - 1, -beta, -alpha)
            took_cutoff = score >= beta
            self.cutoff_branches.append(took_cutoff)
            self.cutoff_branches.append(score > best)
            self.cutoff_branches.append(score > alpha)
            if score > best:
                best = score
            if score > alpha:
                alpha = score
            if took_cutoff:
                if move[2] == EMPTY:
                    self._note_killer(depth, move)
                break

        self.tt[key] = (best, depth)
        if len(self.tt) > 200_000:
            self.tt.clear()
        if len(self.tt_reads) >= 4096:
            self._flush()
        return best


@register_benchmark
class DeepsjengBenchmark:
    """The ``531.deepsjeng_r`` substrate."""

    name = "531.deepsjeng_r"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, ChessInput):
            raise BenchmarkError(f"deepsjeng: bad payload type {type(payload).__name__}")
        results = []
        total_nodes = 0
        for fen, depth in payload.positions:
            with probe.method("parse_fen", code_bytes=1024):
                pos = Position.from_fen(fen)
                probe.ops(len(fen) * 3)
            searcher = _Searcher(probe)
            # iterative deepening: shallow passes seed the transposition
            # table and killers that speed up the full-depth pass
            score = 0
            with probe.method("search", code_bytes=10240):
                for d in range(1, depth + 1):
                    score = searcher.search(pos, d, -1_000_000, 1_000_000)
                probe.ops(searcher.nodes * 12)
            searcher._flush()
            total_nodes += searcher.nodes + searcher.qnodes
            results.append(score)
        return {"scores": results, "nodes": total_nodes}

    def verify(self, workload: Workload, output: dict) -> bool:
        scores = output["scores"]
        if len(scores) != len(workload.payload.positions):
            return False
        # scores are centipawn-ish values or mate scores
        return all(-40_000 <= s <= 40_000 for s in scores) and output["nodes"] > 0
