"""Mini ``505.mcf_r``: network simplex minimum-cost-flow solver.

The SPEC benchmark is MCF, Löbel's network simplex implementation used
to schedule vehicles over *deadhead routes* in public transport.  This
substrate implements the primal network simplex from scratch:

* arc-array problem representation with capacities and costs;
* an artificial-root initial spanning tree (big-M artificial arcs);
* **multiple partial pricing** for entering-arc selection — the
  method is named ``primal_bea_mpp`` after the function that dominates
  the real benchmark's profile;
* cycle detection along tree paths, flow augmentation, leaving-arc
  selection, tree re-rooting, and a periodic ``refresh_potential``.

The solver's telemetry mirrors the real program's signature: scattered
reads over the arc array during pricing (back-end bound), unpredictable
reduced-cost sign branches (bad speculation), and a coverage profile
concentrated in pricing regardless of workload (``mu_g(M) = 1`` in the
paper).

Workload payload: :class:`McfInstance`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["McfInstance", "McfBenchmark", "NetworkSimplex", "SolveResult"]

_ARC_REGION = 0x2000_0000
_NODE_REGION = 0x2800_0000
_ARC_BYTES = 40
_NODE_BYTES = 48
_BIG_M = 10**9


@dataclass(frozen=True)
class McfInstance:
    """A min-cost-flow instance.

    ``supplies[i]`` is positive for supply nodes and negative for
    demand nodes (they must sum to zero).  Each arc is a tuple
    ``(tail, head, capacity, cost)``.
    """

    n_nodes: int
    supplies: tuple[int, ...]
    arcs: tuple[tuple[int, int, int, int], ...]

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("McfInstance: need at least one node")
        if len(self.supplies) != self.n_nodes:
            raise ValueError("McfInstance: supplies length mismatch")
        if sum(self.supplies) != 0:
            raise ValueError("McfInstance: supplies must sum to zero")
        for tail, head, cap, _cost in self.arcs:
            if not (0 <= tail < self.n_nodes and 0 <= head < self.n_nodes):
                raise ValueError("McfInstance: arc endpoint out of range")
            if cap < 0:
                raise ValueError("McfInstance: negative capacity")


@dataclass
class SolveResult:
    """Solution: optimal cost, per-arc flows, solver statistics."""

    cost: int
    flows: list[int]
    pivots: int
    feasible: bool
    stats: dict[str, int] = field(default_factory=dict)


class NetworkSimplex:
    """Primal network simplex with multiple partial pricing."""

    def __init__(self, instance: McfInstance, probe: Probe | None = None):
        self.inst = instance
        self.probe = probe
        n = instance.n_nodes
        m = len(instance.arcs)
        self.n = n
        self.m = m
        # arc arrays: real arcs [0, m), artificial arcs [m, m + n)
        self.tail = [a[0] for a in instance.arcs]
        self.head = [a[1] for a in instance.arcs]
        self.cap = [a[2] for a in instance.arcs]
        self.cost = [a[3] for a in instance.arcs]
        self.flow = [0] * m
        # root is virtual node n
        self.root = n
        for i in range(n):
            b = instance.supplies[i]
            if b >= 0:
                self.tail.append(i)
                self.head.append(self.root)
            else:
                self.tail.append(self.root)
                self.head.append(i)
            self.cap.append(_BIG_M)
            self.cost.append(_BIG_M)
            self.flow.append(abs(b))
        # spanning tree state
        total = n + 1
        self.parent = [self.root] * total
        self.parent_arc = [-1] * total
        self.depth = [1] * total
        self.potential = [0] * total
        self.parent[self.root] = -1
        self.depth[self.root] = 0
        for i in range(n):
            self.parent_arc[i] = m + i
        self._refresh_potentials()
        # pricing state
        self._block_size = max(16, (m + n) // 16)
        self._next_block_start = 0
        # telemetry buffers
        self._price_branches: list[bool] = []
        self._arc_reads: list[int] = []
        self._node_reads: list[int] = []

    # ---------------------------------------------------------------- trees

    def _refresh_potentials(self) -> None:
        """Recompute potentials and depths from the tree structure."""
        total = self.n + 1
        children: list[list[int]] = [[] for _ in range(total)]
        for v in range(total):
            p = self.parent[v]
            if p >= 0:
                children[p].append(v)
        self.potential[self.root] = 0
        self.depth[self.root] = 0
        stack = [self.root]
        seen = 1
        while stack:
            u = stack.pop()
            for v in children[u]:
                arc = self.parent_arc[v]
                # basic arc has zero reduced cost: c - pi[tail] + pi[head] = 0
                if self.tail[arc] == v:
                    self.potential[v] = self.potential[u] + self.cost[arc]
                else:
                    self.potential[v] = self.potential[u] - self.cost[arc]
                self.depth[v] = self.depth[u] + 1
                stack.append(v)
                seen += 1
        if seen != total:
            raise BenchmarkError("network simplex: tree disconnected")

    def _reduced_cost(self, arc: int) -> int:
        return self.cost[arc] - self.potential[self.tail[arc]] + self.potential[self.head[arc]]

    # -------------------------------------------------------------- pricing

    def primal_bea_mpp(self) -> int:
        """Select the entering arc via multiple partial pricing.

        Scans up to the whole arc array in blocks, returning the arc
        with the most attractive violation found in the first block
        that contains any violation.  Returns -1 at optimality.
        """
        m_all = len(self.tail)
        start = self._next_block_start
        scanned = 0
        best_arc = -1
        best_violation = 0
        reads = self._arc_reads
        branches = self._price_branches
        while scanned < m_all:
            end = min(start + self._block_size, m_all)
            for arc in range(start, end):
                reads.append(_ARC_REGION + arc * _ARC_BYTES)
                red = self._reduced_cost(arc)
                if self.flow[arc] == 0:
                    violating = red < 0
                    violation = -red
                else:
                    violating = red > 0 and self.flow[arc] >= self.cap[arc]
                    violation = red
                branches.append(violating)
                if violating and violation > best_violation:
                    best_violation = violation
                    best_arc = arc
            scanned += end - start
            start = end % m_all
            if best_arc >= 0:
                break
        self._next_block_start = start
        return best_arc

    # ---------------------------------------------------------------- pivot

    def _tree_path_to_root(self, v: int) -> list[int]:
        path = []
        reads = self._node_reads
        while v != self.root:
            path.append(v)
            reads.append(_NODE_REGION + v * _NODE_BYTES)
            v = self.parent[v]
        return path

    def _pivot(self, entering: int) -> None:
        """Push flow around the cycle formed by the entering arc."""
        u, v = self.tail[entering], self.head[entering]
        at_upper = self.flow[entering] > 0
        # orientation of push: along the arc if it is at lower bound,
        # against it if at upper bound
        if at_upper:
            u, v = v, u

        # find the cycle: paths u->root and v->root, trimmed at the LCA
        pu = self._tree_path_to_root(u)
        pv = self._tree_path_to_root(v)
        set_u = {node: i for i, node in enumerate(pu)}
        lca_idx_v = None
        for j, node in enumerate(pv):
            if node in set_u:
                lca_idx_v = j
                break
        if lca_idx_v is None:
            up_path = pu
            down_path = pv
        else:
            lca = pv[lca_idx_v]
            up_path = pu[: set_u[lca]]
            down_path = pv[:lca_idx_v]

        # residual capacity around the cycle: entering arc, then tree
        # arcs from u up to the LCA (flow increases if the arc points
        # against the direction of travel ... compute per-arc headroom)
        delta = self.cap[entering] - self.flow[entering] if not at_upper else self.flow[entering]
        blocking = entering
        blocking_dir = 0

        # The cycle is: entering arc u -> v, then the tree path v -> LCA
        # (travelled child -> parent), then LCA -> u (parent -> child).
        # (arc, +1) = push along arc orientation, (arc, -1) = against it.
        cycle: list[tuple[int, int]] = []
        for nxt in down_path:  # v-side, child -> parent travel
            arc = self.parent_arc[nxt]
            direction = 1 if self.tail[arc] == nxt else -1
            cycle.append((arc, direction))
        for nxt in up_path:  # u-side, parent -> child travel
            arc = self.parent_arc[nxt]
            direction = 1 if self.head[arc] == nxt else -1
            cycle.append((arc, direction))

        for arc, direction in cycle:
            if direction > 0:
                headroom = self.cap[arc] - self.flow[arc]
            else:
                headroom = self.flow[arc]
            if headroom < delta:
                delta = headroom
                blocking = arc
                blocking_dir = direction

        # apply the push
        if delta > 0:
            if at_upper:
                self.flow[entering] -= delta
            else:
                self.flow[entering] += delta
            for arc, direction in cycle:
                self.flow[arc] += delta if direction > 0 else -delta

        if blocking == entering:
            return  # bound flip: basis unchanged

        # the blocking arc leaves the basis, the entering arc joins:
        # re-hang the subtree between the entering arc's endpoint and
        # the leaving arc by reversing parent pointers along that path
        leaving_child = None
        for nxt in up_path:
            if self.parent_arc[nxt] == blocking:
                leaving_child = nxt
                side_u = True
                break
        else:
            for nxt in down_path:
                if self.parent_arc[nxt] == blocking:
                    leaving_child = nxt
                    side_u = False
                    break
        if leaving_child is None:
            raise BenchmarkError("network simplex: lost the leaving arc")

        # reverse parents from the entering endpoint on the leaving side
        start_node = u if side_u else v
        other_node = v if side_u else u
        prev = other_node
        prev_arc = entering
        node = start_node
        while True:
            nxt_parent = self.parent[node]
            nxt_arc = self.parent_arc[node]
            self.parent[node] = prev
            self.parent_arc[node] = prev_arc
            if node == leaving_child:
                break
            prev = node
            prev_arc = nxt_arc
            node = nxt_parent

        self._refresh_potentials()
        del blocking_dir

    # ---------------------------------------------------------------- solve

    def _flush_telemetry(self, method: str) -> None:
        probe = self.probe
        if probe is None:
            self._price_branches.clear()
            self._arc_reads.clear()
            self._node_reads.clear()
            return
        with probe.method("primal_bea_mpp", code_bytes=2048):
            probe.accesses(self._arc_reads)
            probe.branches(self._price_branches, site=1)
            probe.ops(len(self._arc_reads) * 6)
        with probe.method("update_tree", code_bytes=1536):
            probe.accesses(self._node_reads)
            probe.ops(len(self._node_reads) * 4)
        self._price_branches.clear()
        self._arc_reads.clear()
        self._node_reads.clear()
        del method

    def solve(self, max_pivots: int | None = None) -> SolveResult:
        probe = self.probe
        limit = max_pivots if max_pivots is not None else 50 * (self.n + self.m)
        pivots = 0
        refreshes = 0
        while pivots < limit:
            entering = self.primal_bea_mpp()
            if entering < 0:
                break
            self._pivot(entering)
            pivots += 1
            refreshes += 1
            if probe is not None and refreshes % 32 == 0:
                with probe.method("refresh_potential", code_bytes=1024):
                    probe.ops(self.n * 5)
                    probe.accesses(
                        _NODE_REGION
                        + np.arange(0, self.n, 2, dtype=np.int64) * _NODE_BYTES
                    )
            if len(self._arc_reads) >= 16384:
                self._flush_telemetry("solve")
        else:
            raise BenchmarkError("network simplex: pivot limit exceeded")
        self._flush_telemetry("solve")

        # artificial arcs must be empty for feasibility
        feasible = all(self.flow[self.m + i] == 0 for i in range(self.n))
        total_cost = sum(self.flow[a] * self.cost[a] for a in range(self.m))
        if probe is not None:
            with probe.method("flow_cost", code_bytes=512):
                probe.ops(self.m * 3)
                probe.accesses(
                    _ARC_REGION
                    + np.arange(0, self.m, 2, dtype=np.int64) * _ARC_BYTES
                )
        return SolveResult(
            cost=total_cost,
            flows=self.flow[: self.m],
            pivots=pivots,
            feasible=feasible,
            stats={"nodes": self.n, "arcs": self.m, "pivots": pivots},
        )


@register_benchmark
class McfBenchmark:
    """The ``505.mcf_r`` substrate."""

    name = "505.mcf_r"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> SolveResult:
        payload = workload.payload
        if not isinstance(payload, McfInstance):
            raise BenchmarkError(f"mcf: bad payload type {type(payload).__name__}")
        with probe.method("read_min", code_bytes=1024):
            probe.ops(len(payload.arcs) * 4 + payload.n_nodes * 2)
            probe.accesses(
                _ARC_REGION
                + np.arange(len(payload.arcs), dtype=np.int64) * _ARC_BYTES
            )
        solver = NetworkSimplex(payload, probe)
        result = solver.solve()
        if not result.feasible:
            raise BenchmarkError("mcf: instance infeasible")
        return result

    def verify(self, workload: Workload, output: SolveResult) -> bool:
        inst = workload.payload
        if not output.feasible:
            return False
        # flow conservation at every node
        balance = list(inst.supplies)
        for (tail, head, cap, _cost), f in zip(inst.arcs, output.flows):
            if f < 0 or f > cap:
                return False
            balance[tail] -= f
            balance[head] += f
        return all(b == 0 for b in balance)
