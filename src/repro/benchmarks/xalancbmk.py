"""Mini ``523.xalancbmk_r``: an XML-to-output transformation engine.

The SPEC benchmark runs Xalan-C, applying an XSLT stylesheet to an XML
document.  This substrate implements the same pipeline from scratch:

* a character-level XML tokenizer and DOM-tree parser;
* an XPath-lite node selection engine (child paths, wildcards,
  attribute and text predicates, ``//`` descent);
* a transformation interpreter with the operations that dominate real
  stylesheets — ``for-each`` iteration, key-based sorting, string
  transformation, numeric aggregation, and recursive template descent;
* an output serializer.

Because each workload pairs a document with a different *mix* of
transformation operations, the time distribution across engine methods
shifts dramatically between workloads — exactly the behaviour the paper
measures for this benchmark (the largest ``mu_g(M)`` in Table II, 108).

Workload payload: :class:`XalanInput` — XML text plus a stylesheet
(a tuple of :class:`TransformOp`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = [
    "XalanInput",
    "TransformOp",
    "XmlNode",
    "XalancbmkBenchmark",
    "parse_xml",
    "select",
]

_HEAP_REGION = 0x1000_0000
_STRING_REGION = 0x1800_0000
_NODE_BYTES = 96  # simulated DOM node footprint


class XmlNode:
    """One DOM element: tag, attributes, text, children."""

    __slots__ = ("tag", "attrs", "text", "children", "heap_addr")

    _next_addr = 0

    def __init__(self, tag: str):
        self.tag = tag
        self.attrs: dict[str, str] = {}
        self.text = ""
        self.children: list[XmlNode] = []
        # heap layout: nodes are allocated sequentially but revisited in
        # document order scattered by tree shape
        self.heap_addr = _HEAP_REGION + XmlNode._next_addr
        XmlNode._next_addr = (XmlNode._next_addr + _NODE_BYTES) % 0x0040_0000

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.tag} attrs={len(self.attrs)} children={len(self.children)}>"


@dataclass(frozen=True)
class TransformOp:
    """One stylesheet operation.

    ``kind`` selects the engine path:

    * ``"extract"``   — select nodes, emit a field's text;
    * ``"sort"``      — select nodes, sort by a key, emit in order;
    * ``"aggregate"`` — select nodes, numeric sum/avg/count over a field;
    * ``"string"``    — select nodes, apply a string pipeline (upper,
      reverse, translate) to a field;
    * ``"descend"``   — recursive template application counting depth.
    """

    kind: str
    path: str
    key: str = ""
    params: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.kind not in ("extract", "sort", "aggregate", "string", "descend"):
            raise ValueError(f"unknown TransformOp kind {self.kind!r}")
        if not self.path:
            raise ValueError("TransformOp.path must be non-empty")


@dataclass(frozen=True)
class XalanInput:
    """One xalancbmk workload: document text + stylesheet operations.

    ``repeats`` applies the stylesheet that many times over the parsed
    document (the SPEC benchmark likewise reprocesses its document),
    shifting time from parsing into the transformation engine.
    """

    xml: str
    ops: tuple[TransformOp, ...]
    repeats: int = 2

    def __post_init__(self) -> None:
        if not self.xml.strip():
            raise ValueError("XalanInput: xml must be non-empty")
        if not self.ops:
            raise ValueError("XalanInput: need at least one operation")
        if self.repeats < 1:
            raise ValueError("XalanInput: repeats must be >= 1")


# --------------------------------------------------------------------- parser


def _tokenize(text: str, probe: Probe | None) -> list[tuple[str, str]]:
    """Character-level tokenizer -> (kind, value) tokens.

    Kinds: ``open`` (tag with raw attribute text), ``close``, ``text``.
    """
    tokens: list[tuple[str, str]] = []
    branches: list[bool] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        is_tag = ch == "<"
        branches.append(is_tag)
        if is_tag:
            end = text.find(">", i)
            if end < 0:
                raise BenchmarkError("xml: unterminated tag")
            body = text[i + 1 : end]
            if body.startswith("?") or body.startswith("!"):
                pass  # prolog / comment: skipped
            elif body.startswith("/"):
                tokens.append(("close", body[1:].strip()))
            elif body.endswith("/"):
                tokens.append(("open", body[:-1].strip()))
                tokens.append(("close", body[:-1].strip().split()[0]))
            else:
                tokens.append(("open", body))
            i = end + 1
        else:
            end = text.find("<", i)
            if end < 0:
                end = n
            chunk = text[i:end]
            if chunk.strip():
                tokens.append(("text", chunk.strip()))
            i = end
    if probe is not None:
        probe.branches(branches, site=1)
        probe.ops(n // 2)
        probe.accesses([_STRING_REGION + (j & 0x3FFFFF) for j in range(0, n, 64)])
    return tokens


def _parse_attrs(raw: str) -> tuple[str, dict[str, str]]:
    parts = raw.split()
    tag = parts[0]
    attrs: dict[str, str] = {}
    for part in parts[1:]:
        if "=" in part:
            k, _, v = part.partition("=")
            attrs[k] = v.strip('"').strip("'")
    return tag, attrs


def parse_xml(text: str, probe: Probe | None = None) -> XmlNode:
    """Parse XML text into a DOM tree (root element returned)."""
    tokens = _tokenize(text, probe)
    root: XmlNode | None = None
    stack: list[XmlNode] = []
    heap_touches: list[int] = []
    for kind, value in tokens:
        if kind == "open":
            tag, attrs = _parse_attrs(value)
            node = XmlNode(tag)
            node.attrs = attrs
            heap_touches.append(node.heap_addr)
            if stack:
                stack[-1].children.append(node)
            elif root is None:
                root = node
            else:
                raise BenchmarkError("xml: multiple roots")
            stack.append(node)
        elif kind == "close":
            if not stack:
                raise BenchmarkError(f"xml: stray close tag {value!r}")
            open_tag = stack[-1].tag
            if open_tag != value:
                raise BenchmarkError(f"xml: mismatched {open_tag!r} vs {value!r}")
            stack.pop()
        else:
            if stack:
                stack[-1].text += value
    if stack or root is None:
        raise BenchmarkError("xml: unbalanced document")
    if probe is not None:
        probe.accesses(heap_touches)
        probe.ops(len(tokens) * 8)
    return root


# ---------------------------------------------------------------- selection


def select(
    root: XmlNode,
    path: str,
    probe: Probe | None = None,
) -> list[XmlNode]:
    """XPath-lite selection.

    Grammar: steps separated by ``/``; a step is a tag name, ``*``
    (any), or ``**`` (descend any depth); a step may carry one
    predicate ``[attr=value]`` or ``[tag]`` (has child).
    """
    steps = [s for s in path.split("/") if s]
    current = [root]
    branches: list[bool] = []
    touches: list[int] = []
    for step in steps:
        pred_attr = pred_val = pred_child = None
        if "[" in step:
            step, _, rest = step.partition("[")
            pred = rest.rstrip("]")
            if "=" in pred:
                pred_attr, _, pred_val = pred.partition("=")
            else:
                pred_child = pred
        nxt: list[XmlNode] = []
        if step == "**":
            def _desc(node: XmlNode) -> None:
                for child in node.children:
                    nxt.append(child)
                    _desc(child)
            for node in current:
                touches.append(node.heap_addr)
                _desc(node)
        else:
            for node in current:
                touches.append(node.heap_addr)
                for child in node.children:
                    matched = step == "*" or child.tag == step
                    branches.append(matched)
                    if matched:
                        nxt.append(child)
        if pred_attr is not None:
            filtered = []
            for node in nxt:
                ok = node.attrs.get(pred_attr) == pred_val
                branches.append(ok)
                touches.append(node.heap_addr)
                if ok:
                    filtered.append(node)
            nxt = filtered
        elif pred_child is not None:
            filtered = []
            for node in nxt:
                ok = any(c.tag == pred_child for c in node.children)
                branches.append(ok)
                touches.append(node.heap_addr)
                if ok:
                    filtered.append(node)
            nxt = filtered
        current = nxt
    if probe is not None:
        probe.branches(branches, site=2)
        probe.accesses(touches)
        probe.ops(len(touches) * 6 + len(branches) * 2)
    return current


def _field_text(node: XmlNode, key: str) -> str:
    if not key or key == "text()":
        return node.text
    if key.startswith("@"):
        return node.attrs.get(key[1:], "")
    for child in node.children:
        if child.tag == key:
            return child.text
    return ""


# ------------------------------------------------------------ transformation


@register_benchmark
class XalancbmkBenchmark:
    """The ``523.xalancbmk_r`` substrate."""

    name = "523.xalancbmk_r"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, XalanInput):
            raise BenchmarkError(f"xalancbmk: bad payload type {type(payload).__name__}")

        # the DOM-node allocation cursor is process-global; start every
        # run from a canonical layout so results depend only on the workload
        XmlNode._next_addr = 0

        with probe.method("XMLScanner_scan", code_bytes=6144):
            root = parse_xml(payload.xml, probe)

        out: list[str] = []
        op_counts = {"extract": 0, "sort": 0, "aggregate": 0, "string": 0, "descend": 0}
        schedule = [op for _ in range(payload.repeats) for op in payload.ops]
        for op in schedule:
            op_counts[op.kind] += 1
            with probe.method("XPath_execute", code_bytes=4096):
                nodes = select(root, op.path, probe)
            if op.kind == "extract":
                with probe.method("Formatter_emit", code_bytes=2048):
                    for node in nodes:
                        out.append(_field_text(node, op.key))
                    probe.ops(len(nodes) * 10)
                    probe.accesses([n.heap_addr + 32 for n in nodes])
            elif op.kind == "sort":
                with probe.method("NodeSorter_sort", code_bytes=3072):
                    keyed = [(_field_text(n, op.key), n) for n in nodes]
                    probe.accesses([n.heap_addr + 16 for n in nodes])
                    # comparison branches of the sort are data dependent
                    comparisons: list[bool] = []

                    def _cmp_key(kv: tuple[str, XmlNode]) -> str:
                        return kv[0]

                    keyed.sort(key=_cmp_key)
                    prev = None
                    for k, _n in keyed:
                        comparisons.append(prev is not None and k < prev)
                        prev = k
                    probe.branches(comparisons, site=3)
                    probe.ops(int(len(keyed) * max(1, len(keyed)).bit_length() * 4))
                    out.extend(k for k, _ in keyed)
            elif op.kind == "aggregate":
                with probe.method("XNumber_sum", code_bytes=1536):
                    total = 0.0
                    count = 0
                    parse_ok: list[bool] = []
                    for node in nodes:
                        raw = _field_text(node, op.key)
                        try:
                            total += float(raw)
                            parse_ok.append(True)
                            count += 1
                        except ValueError:
                            parse_ok.append(False)
                        probe.ops(12, kind="fp")
                    probe.branches(parse_ok, site=4)
                    probe.accesses([n.heap_addr + 48 for n in nodes])
                    out.append(f"{total:.3f}/{count}")
            elif op.kind == "string":
                with probe.method("XString_transform", code_bytes=2560):
                    table = dict(op.params)
                    for node in nodes:
                        s = _field_text(node, op.key)
                        s = s.upper()
                        s = "".join(table.get(c, c) for c in s)
                        s = s[::-1]
                        out.append(s)
                        probe.ops(len(s) * 6)
                        s_base = _STRING_REGION + (zlib.crc32(s.encode()) & 0x3FFF00)
                        probe.accesses(
                            [s_base + j for j in range(0, max(1, len(s)), 64)]
                        )
            else:  # descend
                with probe.method("TreeWalker_descend", code_bytes=2048):
                    depth_hist: dict[int, int] = {}
                    touches: list[int] = []

                    def _walk(node: XmlNode, depth: int) -> None:
                        depth_hist[depth] = depth_hist.get(depth, 0) + 1
                        touches.append(node.heap_addr)
                        for child in node.children:
                            _walk(child, depth + 1)

                    for node in nodes:
                        _walk(node, 0)
                    probe.accesses(touches)
                    probe.ops(len(touches) * 8)
                    out.append(str(max(depth_hist) if depth_hist else 0))

        with probe.method("Serializer_write", code_bytes=1536):
            result = "\n".join(out)
            probe.ops(len(result) // 2)
            probe.accesses([_STRING_REGION + 0x200000 + j for j in range(0, len(result), 64)])

        return {"output": result, "lines": len(out), "op_counts": op_counts}

    def verify(self, workload: Workload, output: dict) -> bool:
        return output["lines"] > 0 and isinstance(output["output"], str)
