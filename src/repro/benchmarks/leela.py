"""Mini ``541.leela_r``: a Go engine with Monte-Carlo tree search.

The SPEC benchmark takes an incomplete Go game (SGF) and plays it to
the end with a fixed number of simulations per move.  This substrate
implements the full stack from scratch:

* a Go board with group/liberty tracking, captures, suicide and
  simple-ko rules, for 9x9 / 13x13 / 19x19 boards;
* an SGF parser for game records;
* MCTS: UCT selection over a game tree, node expansion, uniform random
  playouts, and Tromp-Taylor-style area scoring.

The real benchmark shows the *highest bad-speculation fraction* in the
paper's Table II (27.6%): random playout move legality checks are
inherently unpredictable branches, which the telemetry reproduces
directly.  Coverage is concentrated in the playout loop regardless of
workload (``mu_g(M) = 1``).

Workload payload: :class:`GoInput` — SGF records plus the number of
playouts per move.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["GoInput", "LeelaBenchmark", "GoBoard", "parse_sgf", "sgf_coord"]

EMPTY, BLACK, WHITE = 0, 1, 2
_BOARD_REGION = 0x4000_0000
_TREE_REGION = 0x4400_0000


@dataclass(frozen=True)
class GoInput:
    """One leela workload: SGF games to finish + search effort."""

    games: tuple[str, ...]
    playouts_per_move: int = 12
    max_moves_to_play: int = 8

    def __post_init__(self) -> None:
        if not self.games:
            raise ValueError("GoInput: need at least one game")
        if self.playouts_per_move < 1 or self.max_moves_to_play < 1:
            raise ValueError("GoInput: effort parameters must be >= 1")


def sgf_coord(move: str, size: int) -> int | None:
    """SGF two-letter coordinate -> board index, None for a pass."""
    if not move or move == "tt" and size <= 19:
        return None
    col = ord(move[0]) - ord("a")
    row = ord(move[1]) - ord("a")
    if not (0 <= col < size and 0 <= row < size):
        raise BenchmarkError(f"sgf: coordinate {move!r} outside board {size}")
    return row * size + col


def parse_sgf(text: str) -> tuple[int, list[tuple[int, int | None]]]:
    """Parse a minimal SGF game record.

    Returns (board_size, moves) where each move is (color, point) with
    point None for a pass.  Supports the properties SZ, B, W.
    """
    size = 19
    moves: list[tuple[int, int | None]] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in ";)(":
            i += 1
            continue
        j = i
        while j < n and text[j].isalpha():
            j += 1
        prop = text[i:j]
        values: list[str] = []
        while j < n and text[j] == "[":
            end = text.find("]", j)
            if end < 0:
                raise BenchmarkError("sgf: unterminated property value")
            values.append(text[j + 1 : end])
            j = end + 1
        i = j
        if not prop:
            i += 1
            continue
        if prop == "SZ":
            size = int(values[0])
        elif prop in ("B", "W"):
            color = BLACK if prop == "B" else WHITE
            moves.append((color, sgf_coord(values[0], size)))
    if size not in (9, 13, 19):
        raise BenchmarkError(f"sgf: unsupported board size {size}")
    return size, moves


class GoBoard:
    """Go board with group capture, suicide, and simple-ko rules."""

    __slots__ = ("size", "cells", "ko_point", "captures")

    def __init__(self, size: int):
        self.size = size
        self.cells = [EMPTY] * (size * size)
        self.ko_point = -1
        self.captures = [0, 0, 0]

    def copy(self) -> "GoBoard":
        b = GoBoard.__new__(GoBoard)
        b.size = self.size
        b.cells = self.cells[:]
        b.ko_point = self.ko_point
        b.captures = self.captures[:]
        return b

    def neighbors(self, point: int) -> list[int]:
        size = self.size
        out = []
        row, col = divmod(point, size)
        if row > 0:
            out.append(point - size)
        if row < size - 1:
            out.append(point + size)
        if col > 0:
            out.append(point - 1)
        if col < size - 1:
            out.append(point + 1)
        return out

    def _group_and_liberties(self, point: int) -> tuple[list[int], int]:
        """Flood-fill the group at ``point``; returns (stones, #liberties)."""
        color = self.cells[point]
        stack = [point]
        seen = {point}
        liberties: set[int] = set()
        group = []
        while stack:
            p = stack.pop()
            group.append(p)
            for q in self.neighbors(p):
                c = self.cells[q]
                if c == EMPTY:
                    liberties.add(q)
                elif c == color and q not in seen:
                    seen.add(q)
                    stack.append(q)
        return group, len(liberties)

    def is_legal(self, point: int, color: int) -> bool:
        if self.cells[point] != EMPTY or point == self.ko_point:
            return False
        # fast path: any empty neighbor makes the move legal
        for q in self.neighbors(point):
            if self.cells[q] == EMPTY:
                return True
        # otherwise legal iff it captures something or joins a group
        # that keeps a liberty
        other = BLACK + WHITE - color
        self.cells[point] = color
        try:
            for q in self.neighbors(point):
                if self.cells[q] == other:
                    _, libs = self._group_and_liberties(q)
                    if libs == 0:
                        return True
            _, own_libs = self._group_and_liberties(point)
            return own_libs > 0
        finally:
            self.cells[point] = EMPTY

    def play(self, point: int | None, color: int) -> int:
        """Apply a move (None = pass); returns stones captured."""
        if point is None:
            self.ko_point = -1
            return 0
        if self.cells[point] != EMPTY:
            raise BenchmarkError(f"go: point {point} occupied")
        other = BLACK + WHITE - color
        self.cells[point] = color
        captured: list[int] = []
        for q in self.neighbors(point):
            if self.cells[q] == other:
                group, libs = self._group_and_liberties(q)
                if libs == 0:
                    captured.extend(group)
        for p in set(captured):
            self.cells[p] = EMPTY
        n_captured = len(set(captured))
        if n_captured == 0:
            _, own_libs = self._group_and_liberties(point)
            if own_libs == 0:
                self.cells[point] = EMPTY
                raise BenchmarkError("go: suicide move")
        # simple ko: single-stone capture of a single stone
        self.ko_point = -1
        if n_captured == 1:
            group, libs = self._group_and_liberties(point)
            if len(group) == 1 and libs == 1:
                self.ko_point = captured[0]
        self.captures[color] += n_captured
        return n_captured

    def is_eyelike(self, point: int, color: int) -> bool:
        """True if ``point`` is surrounded by ``color`` stones (do not fill)."""
        for q in self.neighbors(point):
            if self.cells[q] != color:
                return False
        return True

    def score(self) -> float:
        """Tromp-Taylor area score, positive in Black's favour."""
        size2 = self.size * self.size
        black = white = 0
        visited = [False] * size2
        for p in range(size2):
            c = self.cells[p]
            if c == BLACK:
                black += 1
            elif c == WHITE:
                white += 1
            elif not visited[p]:
                # flood-fill the empty region, find bordering colors
                stack = [p]
                visited[p] = True
                region = []
                borders = set()
                while stack:
                    q = stack.pop()
                    region.append(q)
                    for r in self.neighbors(q):
                        c2 = self.cells[r]
                        if c2 == EMPTY and not visited[r]:
                            visited[r] = True
                            stack.append(r)
                        elif c2 != EMPTY:
                            borders.add(c2)
                if borders == {BLACK}:
                    black += len(region)
                elif borders == {WHITE}:
                    white += len(region)
        return black - white - 6.5  # komi


class _MctsNode:
    """One node of the UCT search tree."""

    __slots__ = ("move", "color", "visits", "wins", "children", "untried", "addr")

    _next = 0

    def __init__(self, move: int | None, color: int, untried: list[int]):
        self.move = move
        self.color = color  # color that made `move` to reach this node
        self.visits = 0
        self.wins = 0.0
        self.children: list[_MctsNode] = []
        self.untried = untried
        self.addr = _TREE_REGION + (_MctsNode._next % 65_536) * 64
        _MctsNode._next += 1

    def uct_child(self, exploration: float, reads: list[int]) -> "_MctsNode":
        """The child maximizing the UCT bound."""
        log_n = math.log(max(1, self.visits))
        best = self.children[0]
        best_value = -1e18
        for child in self.children:
            reads.append(child.addr)
            value = child.wins / child.visits + exploration * math.sqrt(
                log_n / child.visits
            )
            if value > best_value:
                best_value = value
                best = child
        return best


def _mcts_move(
    board: GoBoard,
    color: int,
    legal: list[int],
    n_playouts: int,
    rng: random.Random,
    branch_buf: list[bool],
    reads: list[int],
    playout_counter: list[int],
    exploration: float = 0.9,
) -> int:
    """Full UCT: select, expand, random playout, backpropagate."""
    size = board.size
    root = _MctsNode(None, BLACK + WHITE - color, legal[:])
    rng.shuffle(root.untried)

    for _ in range(n_playouts):
        playout_counter[0] += 1
        node = root
        sim = board.copy()
        sim_color = color
        path = [root]

        # --- selection: descend fully-expanded nodes by UCT ------------
        while not node.untried and node.children:
            node = node.uct_child(exploration, reads)
            sim.play(node.move, sim_color)
            sim_color = BLACK + WHITE - sim_color
            path.append(node)

        # --- expansion: try one untried move ---------------------------
        if node.untried:
            move = node.untried.pop()
            # the move may have become illegal in this line of play
            legal_now = sim.cells[move] == EMPTY and sim.is_legal(move, sim_color)
            branch_buf.append(legal_now)
            if legal_now:
                sim.play(move, sim_color)
                child_untried = _legal_moves(sim, BLACK + WHITE - sim_color)
                rng.shuffle(child_untried)
                child = _MctsNode(move, sim_color, child_untried)
                node.children.append(child)
                path.append(child)
                sim_color = BLACK + WHITE - sim_color

        # --- playout + backpropagation ----------------------------------
        pool = _BOARD_REGION + (playout_counter[0] * 2048) % (384 << 10)
        reads.extend(pool + i * 64 for i in range(0, size * size * 4, 256))
        result = _playout(
            sim, sim_color, rng, branch_buf, reads,
            max_steps=size * size // 2, pool_base=pool,
        )
        for visited in path:
            visited.visits += 1
            reads.append(visited.addr)
            # a node holds the move played by `visited.color`; score is
            # from Black's perspective
            node_score = result if visited.color == BLACK else -result
            branch_buf.append(node_score > 0)
            if node_score > 0:
                visited.wins += 1.0

    if not root.children:
        return legal[0]
    # final choice: most-visited child (standard robust-child rule)
    return max(root.children, key=lambda c: c.visits).move


def _legal_moves(board: GoBoard, color: int) -> list[int]:
    return [
        p
        for p in range(board.size * board.size)
        if board.cells[p] == EMPTY
        and not board.is_eyelike(p, color)
        and board.is_legal(p, color)
    ]


def _playout(
    board: GoBoard,
    color: int,
    rng: random.Random,
    branch_buf: list[bool],
    reads: list[int],
    max_steps: int,
    pool_base: int = _BOARD_REGION,
) -> float:
    """Uniform random playout; returns the final area score.

    ``pool_base`` is the heap address of this playout's private board
    copy — each playout works on freshly allocated state, so the
    address stream sweeps a large heap pool rather than one hot board.
    """
    passes = 0
    steps = 0
    while passes < 2 and steps < max_steps:
        steps += 1
        size2 = board.size * board.size
        # sample candidate points until a legal one is found — each
        # legality test is a data-dependent, effectively random branch
        move = None
        for _ in range(12):
            p = rng.randrange(size2)
            reads.append(pool_base + p * 4)
            ok = (
                board.cells[p] == EMPTY
                and not board.is_eyelike(p, color)
                and board.is_legal(p, color)
            )
            branch_buf.append(ok)
            if ok:
                move = p
                break
        if move is None:
            board.play(None, color)
            passes += 1
        else:
            board.play(move, color)
            passes = 0
        color = BLACK + WHITE - color
    return board.score()


@register_benchmark
class LeelaBenchmark:
    """The ``541.leela_r`` substrate."""

    name = "541.leela_r"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, GoInput):
            raise BenchmarkError(f"leela: bad payload type {type(payload).__name__}")
        # the tree-node allocation cursor is process-global; start every
        # run from a canonical layout so results depend only on the workload
        _MctsNode._next = 0
        rng = random.Random(0xA11CE)
        finished = 0
        total_playouts = 0
        scores: list[float] = []
        for sgf in payload.games:
            with probe.method("parse_sgf", code_bytes=1024):
                size, moves = parse_sgf(sgf)
                probe.ops(len(sgf) * 2)
            board = GoBoard(size)
            color = BLACK
            with probe.method("replay_game", code_bytes=1536):
                for mv_color, point in moves:
                    if point is not None and not board.is_legal(point, mv_color):
                        raise BenchmarkError("leela: illegal move in SGF record")
                    board.play(point, mv_color)
                    color = BLACK + WHITE - mv_color
                probe.ops(len(moves) * 30)
                probe.accesses([_BOARD_REGION + p * 4 for p in range(0, size * size, 2)])

            # play the culled tail of the game with MCTS
            for _ply in range(payload.max_moves_to_play):
                with probe.method("uct_select", code_bytes=2048):
                    legal = _legal_moves(board, color)
                    probe.ops(len(legal) * 18 + 32)
                    probe.accesses([_BOARD_REGION + p * 4 for p in legal[:64]])
                if not legal:
                    board.play(None, color)
                    color = BLACK + WHITE - color
                    continue
                branch_buf: list[bool] = []
                reads: list[int] = []
                with probe.method("run_playout", code_bytes=2560):
                    counter = [total_playouts]
                    # search effort: 8 tree playouts per candidate-move
                    # budget unit, as the flat search used
                    n_playouts = payload.playouts_per_move * min(len(legal), 8)
                    best_move = _mcts_move(
                        board, color, legal, n_playouts, rng,
                        branch_buf, reads, counter,
                    )
                    total_playouts = counter[0]
                    probe.branches(branch_buf, site=1)
                    probe.accesses(reads)
                    probe.ops(len(branch_buf) * 8)
                with probe.method("update_board", code_bytes=1024):
                    board.play(best_move, color)
                    probe.ops(64)
                color = BLACK + WHITE - color

            with probe.method("score_game", code_bytes=1280):
                final = board.score()
                probe.ops(size * size * 4)
                probe.accesses([_BOARD_REGION + p * 4 for p in range(size * size)])
            scores.append(final)
            finished += 1
        return {
            "games": finished,
            "scores": scores,
            "playouts": total_playouts,
        }

    def verify(self, workload: Workload, output: dict) -> bool:
        if output["games"] != len(workload.payload.games):
            return False
        max_area = 19 * 19 + 7
        return output["playouts"] > 0 and all(
            -max_area <= s <= max_area for s in output["scores"]
        )
