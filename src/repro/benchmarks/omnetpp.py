"""Mini ``520.omnetpp_r``: a discrete-event network simulator.

The SPEC benchmark runs OMNeT++ simulating an Ethernet-like network
described by a NED file.  This substrate implements the same machinery
from scratch:

* a future-event set (binary heap) driving virtual time;
* network modules (hosts/switches) exchanging packets over links with
  propagation delay, bandwidth-limited serialization, and FIFO queues;
* static shortest-path routing computed from the topology;
* per-module statistics collection.

The real benchmark is strongly back-end bound (61-65% in the paper)
because the event set and module state are pointer-chased heap objects;
telemetry reproduces that with scattered per-event and per-module
accesses.  Workload payload: :class:`OmnetInput` (a topology + traffic
configuration), mirroring the .ned + .ini pair.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["OmnetInput", "OmnetppBenchmark", "Network", "simulate"]

_EVENT_REGION = 0x3000_0000
_MODULE_REGION = 0x3400_0000
_QUEUE_REGION = 0x3800_0000
_EVENT_BYTES = 128
_MODULE_BYTES = 256


@dataclass(frozen=True)
class OmnetInput:
    """One omnetpp workload: topology + traffic parameters.

    ``edges`` is an undirected edge list over ``n_nodes`` modules;
    ``sim_time`` is the virtual duration in milliseconds;
    ``send_interval_ms`` controls offered load; ``packet_bytes`` sets
    serialization time; ``seed`` drives the traffic RNG.
    """

    n_nodes: int
    edges: tuple[tuple[int, int], ...]
    sim_time: int = 2000
    send_interval_ms: float = 40.0
    packet_bytes: int = 1000
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("OmnetInput: need at least two nodes")
        if not self.edges:
            raise ValueError("OmnetInput: need at least one edge")
        for a, b in self.edges:
            if not (0 <= a < self.n_nodes and 0 <= b < self.n_nodes) or a == b:
                raise ValueError(f"OmnetInput: bad edge ({a}, {b})")
        if self.sim_time <= 0 or self.send_interval_ms <= 0 or self.packet_bytes <= 0:
            raise ValueError("OmnetInput: time/load parameters must be positive")


class Network:
    """Topology with static next-hop routing tables."""

    def __init__(self, n_nodes: int, edges: tuple[tuple[int, int], ...]):
        self.n_nodes = n_nodes
        self.adj: list[list[int]] = [[] for _ in range(n_nodes)]
        for a, b in edges:
            if b not in self.adj[a]:
                self.adj[a].append(b)
            if a not in self.adj[b]:
                self.adj[b].append(a)
        # BFS from every node -> next hop matrix
        self.next_hop: list[list[int]] = [[-1] * n_nodes for _ in range(n_nodes)]
        for src in range(n_nodes):
            dist = [-1] * n_nodes
            dist[src] = 0
            frontier = [src]
            parent = [-1] * n_nodes
            while frontier:
                nxt = []
                for u in frontier:
                    for v in self.adj[u]:
                        if dist[v] < 0:
                            dist[v] = dist[u] + 1
                            parent[v] = u
                            nxt.append(v)
                frontier = nxt
            if any(d < 0 for d in dist):
                raise BenchmarkError("omnetpp: topology is disconnected")
            for dst in range(n_nodes):
                if dst == src:
                    continue
                node = dst
                while parent[node] != src:
                    node = parent[node]
                self.next_hop[src][dst] = node


# event kinds
_SEND, _ARRIVE, _DEQUEUE = 0, 1, 2


def simulate(config: OmnetInput, probe: Probe | None = None) -> dict:
    """Run the simulation; returns aggregate statistics."""
    import random as _random

    rng = _random.Random(config.seed)
    with probe.method("buildNetwork", code_bytes=2048) if probe else _null():
        net = Network(config.n_nodes, config.edges)
        if probe:
            probe.ops(config.n_nodes * config.n_nodes * 4)
            probe.accesses(
                [_MODULE_REGION + i * _MODULE_BYTES for i in range(config.n_nodes)]
            )

    # future event set: (time, seq, kind, node, packet)
    fes: list[tuple[float, int, int, int, tuple]] = []
    seq = 0
    link_busy_until: dict[tuple[int, int], float] = {}
    link_queue: dict[tuple[int, int], list[tuple]] = {}
    # 100 Mbit/s link: bits / 1e8 bit/s -> seconds, * 1000 -> ms
    serialize_ms = config.packet_bytes * 8 / 100_000.0
    prop_delay = 0.05

    delivered = 0
    dropped = 0
    hops_total = 0
    latency_total = 0.0
    queue_peak = 0

    sched_reads: list[int] = []
    gen_reads: list[int] = []
    fwd_reads: list[int] = []
    switch_reads: list[int] = []
    queue_reads: list[int] = []
    fwd_branches: list[bool] = []
    queue_branches: list[bool] = []
    # module class by degree: high-degree nodes behave like switches
    # (routing fan-out work), low-degree like hosts — topology therefore
    # decides which module implementations execute
    is_switch = [len(net.adj[i]) >= 3 for i in range(config.n_nodes)]

    def _push(ev: tuple) -> None:
        heapq.heappush(fes, ev)
        sched_reads.append(_EVENT_REGION + (ev[1] % 32_768) * _EVENT_BYTES)

    def _transmit(link: tuple[int, int], to_node: int, pkt: tuple, now: float) -> None:
        """Serialize the packet onto a free link and schedule arrival."""
        nonlocal seq
        done = now + serialize_ms
        link_busy_until[link] = done
        src, dst, born, hops = pkt
        _push((done + prop_delay, seq, _ARRIVE, to_node, (src, dst, born, hops + 1)))
        seq += 1
        _push((done, seq, _DEQUEUE, link[0], (link,)))
        seq += 1

    def _forward(frm: int, to: int, pkt: tuple, now: float) -> None:
        """Send the packet over link (frm, to), queueing if busy."""
        nonlocal dropped, queue_peak
        link = (frm, to)
        busy = link_busy_until.get(link, -1.0) > now
        queue_branches.append(busy)
        if busy:
            q = link_queue.setdefault(link, [])
            if len(q) >= 64:
                dropped += 1
            else:
                q.append((pkt, to))
                if len(q) > queue_peak:
                    queue_peak = len(q)
            queue_reads.append(_QUEUE_REGION + ((frm * 131 + to) % 4096) * 64)
        else:
            _transmit(link, to, pkt, now)

    def _flush() -> None:
        with probe.method("scheduleEvent", code_bytes=1536):
            probe.accesses(sched_reads)
            probe.ops(len(sched_reads) * 4)
        with probe.method("generateTraffic", code_bytes=1024):
            probe.accesses(gen_reads)
            probe.ops(len(gen_reads) * 11)
        with probe.method("HostModule_handle", code_bytes=2560):
            probe.accesses(fwd_reads)
            probe.branches(fwd_branches, site=1)
            probe.ops(len(fwd_reads) * 22)
        with probe.method("SwitchModule_route", code_bytes=3584):
            probe.accesses(switch_reads)
            probe.ops(len(switch_reads) * 30)
        with probe.method("processQueue", code_bytes=1280):
            probe.accesses(queue_reads)
            probe.branches(queue_branches, site=2)
            probe.ops(len(queue_reads) * 14 + len(queue_branches) * 3)
        sched_reads.clear()
        gen_reads.clear()
        fwd_reads.clear()
        switch_reads.clear()
        queue_reads.clear()
        fwd_branches.clear()
        queue_branches.clear()

    # seed initial traffic: every node sends periodically
    for node in range(config.n_nodes):
        t = rng.uniform(0, config.send_interval_ms)
        _push((t, seq, _SEND, node, ()))
        seq += 1

    max_events = 400_000
    n_events = 0
    while fes:
        time_now, _, kind, node, packet = heapq.heappop(fes)
        if time_now > config.sim_time:
            break
        n_events += 1
        if n_events > max_events:
            raise BenchmarkError("omnetpp: event explosion")
        sched_reads.append(_EVENT_REGION + (n_events % 32_768) * _EVENT_BYTES)

        if kind == _SEND:
            dst = rng.randrange(config.n_nodes - 1)
            if dst >= node:
                dst += 1
            pkt = (node, dst, time_now, 0)
            hop = net.next_hop[node][dst]
            gen_reads.append(_MODULE_REGION + node * _MODULE_BYTES)
            _forward(node, hop, pkt, time_now)
            nxt = time_now + rng.expovariate(1.0 / config.send_interval_ms)
            _push((nxt, seq, _SEND, node, ()))
            seq += 1
        elif kind == _ARRIVE:
            src, dst, born, hops = packet
            at_destination = node == dst
            fwd_branches.append(at_destination)
            reads = switch_reads if is_switch[node] else fwd_reads
            reads.append(_MODULE_REGION + node * _MODULE_BYTES)
            reads.append(_MODULE_REGION + node * _MODULE_BYTES + 64 + (dst % 3) * 8)
            if at_destination:
                delivered += 1
                hops_total += hops
                latency_total += time_now - born
            else:
                hop = net.next_hop[node][dst]
                _forward(node, hop, (src, dst, born, hops), time_now)
        else:  # _DEQUEUE: link became free, transmit next queued packet
            link = packet[0]
            q = link_queue.get(link)
            has_queued = bool(q)
            queue_branches.append(has_queued)
            queue_reads.append(_QUEUE_REGION + ((link[0] * 131 + link[1]) % 4096) * 64)
            if has_queued:
                pkt, dst_node = q.pop(0)
                _transmit(link, dst_node, pkt, time_now)

        if probe is not None and len(sched_reads) >= 8192:
            _flush()

    if probe is not None:
        _flush()
        with probe.method("recordStatistics", code_bytes=1024):
            probe.ops(delivered * 4 + 64)
            probe.accesses(
                [_MODULE_REGION + i * _MODULE_BYTES + 128 for i in range(config.n_nodes)]
            )

    return {
        "events": n_events,
        "delivered": delivered,
        "dropped": dropped,
        "avg_hops": hops_total / delivered if delivered else 0.0,
        "avg_latency_ms": latency_total / delivered if delivered else 0.0,
        "queue_peak": queue_peak,
    }


def _null():
    class _N:
        def __enter__(self):
            return None

        def __exit__(self, *args):
            return None

    return _N()


def parse_ned(text: str) -> OmnetInput:
    """Parse a NED-style network description into an :class:`OmnetInput`.

    The paper's workloads *are* .ned files plus a configuration; this
    parser accepts the subset the generators emit::

        network ring10 {
            parameters:
                sim_time = 1500;
                send_interval_ms = 12.0;
                packet_bytes = 60000;
                seed = 3;
            submodules:
                node[10]: Host;
            connections:
                node[0].port <--> node[1].port;
                ...
        }
    """
    import re

    if "network" not in text:
        raise BenchmarkError("ned: missing network declaration")
    params: dict[str, float] = {}
    for m in re.finditer(r"(\w+)\s*=\s*([0-9.]+)\s*;", text):
        params[m.group(1)] = float(m.group(2))
    sub = re.search(r"(\w+)\s*\[\s*(\d+)\s*\]\s*:\s*\w+\s*;", text)
    if sub is None:
        raise BenchmarkError("ned: missing submodule vector declaration")
    n_nodes = int(sub.group(2))
    edges: list[tuple[int, int]] = []
    for m in re.finditer(r"\w+\[(\d+)\]\.\w+\s*<-->\s*\w+\[(\d+)\]\.\w+\s*;", text):
        a, b = int(m.group(1)), int(m.group(2))
        edges.append((a, b))
    if not edges:
        raise BenchmarkError("ned: no connections declared")
    return OmnetInput(
        n_nodes=n_nodes,
        edges=tuple(edges),
        sim_time=int(params.get("sim_time", 2000)),
        send_interval_ms=params.get("send_interval_ms", 40.0),
        packet_bytes=int(params.get("packet_bytes", 1000)),
        seed=int(params.get("seed", 1)),
    )


def to_ned(config: OmnetInput, name: str = "net") -> str:
    """Render an :class:`OmnetInput` as NED text (inverse of parse_ned)."""
    lines = [f"network {name} {{"]
    lines.append("    parameters:")
    lines.append(f"        sim_time = {config.sim_time};")
    lines.append(f"        send_interval_ms = {config.send_interval_ms};")
    lines.append(f"        packet_bytes = {config.packet_bytes};")
    lines.append(f"        seed = {config.seed};")
    lines.append("    submodules:")
    lines.append(f"        node[{config.n_nodes}]: Host;")
    lines.append("    connections:")
    for a, b in config.edges:
        lines.append(f"        node[{a}].port <--> node[{b}].port;")
    lines.append("}")
    return "\n".join(lines)


@register_benchmark
class OmnetppBenchmark:
    """The ``520.omnetpp_r`` substrate.

    Accepts either an :class:`OmnetInput` payload or NED text (the real
    benchmark's input format), which it parses first.
    """

    name = "520.omnetpp_r"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if isinstance(payload, str):
            with probe.method("parseNed", code_bytes=2048):
                payload = parse_ned(payload)
                probe.ops(len(workload.payload) * 2)
        if not isinstance(payload, OmnetInput):
            raise BenchmarkError(f"omnetpp: bad payload type {type(payload).__name__}")
        return simulate(payload, probe)

    def verify(self, workload: Workload, output: dict) -> bool:
        if output["events"] <= 0 or output["delivered"] <= 0:
            return False
        # every delivered packet took at least one hop and non-negative time
        return output["avg_hops"] >= 1.0 and output["avg_latency_ms"] >= 0.0
