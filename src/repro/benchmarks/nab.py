"""Mini ``544.nab_r``: molecular-mechanics force-field evaluation.

The SPEC benchmark is the Nucleic Acid Builder: given a protein
structure (pdb) and a parameter file (prm), it computes molecular
forces and relaxes the structure.  This substrate implements the
force-field core from scratch:

* bonded terms — harmonic bonds and angles over the molecular graph;
* non-bonded terms — Lennard-Jones and Coulomb interactions with a
  cutoff, over a cell-list neighbour structure;
* a few steepest-descent minimization steps using those forces.

The real benchmark is back-end bound (55.3% in Table II) from the
pairwise-interaction memory traffic, with essentially workload-stable
coverage (``mu_g(M) = 2``) — both reproduced here.

Workload payload: :class:`NabInput` — atom positions/charges plus
bond topology (what a pdb + prm pair encodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["NabInput", "NabBenchmark", "compute_forces"]

_ATOM_REGION = 0xB000_0000
_NEIGH_REGION = 0xB400_0000


@dataclass(frozen=True)
class NabInput:
    """One nab workload: a molecular structure + force-field params."""

    positions: np.ndarray  # (n, 3)
    charges: np.ndarray  # (n,)
    bonds: tuple[tuple[int, int], ...]
    cutoff: float = 6.0
    minimize_steps: int = 4
    step_size: float = 1e-4

    def __post_init__(self) -> None:
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("NabInput: positions must be (n, 3)")
        n = self.positions.shape[0]
        if n < 4:
            raise ValueError("NabInput: need at least 4 atoms")
        if self.charges.shape != (n,):
            raise ValueError("NabInput: charges shape mismatch")
        for a, b in self.bonds:
            if not (0 <= a < n and 0 <= b < n) or a == b:
                raise ValueError(f"NabInput: bad bond ({a}, {b})")
        if self.cutoff <= 0 or self.minimize_steps < 1:
            raise ValueError("NabInput: cutoff/minimize_steps must be positive")


def compute_forces(
    positions: np.ndarray,
    charges: np.ndarray,
    bonds: tuple[tuple[int, int], ...],
    cutoff: float,
    probe: Probe | None = None,
) -> tuple[np.ndarray, dict]:
    """Total force on every atom; returns (forces, energy terms)."""
    n = positions.shape[0]
    forces = np.zeros_like(positions)
    energies = {"bond": 0.0, "lj": 0.0, "coulomb": 0.0}

    # ---- bonded terms -------------------------------------------------
    bond_reads: list[int] = []
    for a, b in bonds:
        d = positions[b] - positions[a]
        r = float(np.linalg.norm(d))
        if r < 1e-9:
            raise BenchmarkError("nab: coincident bonded atoms")
        k_bond, r0 = 50.0, 1.5
        f = -2.0 * k_bond * (r - r0) * d / r
        forces[a] -= f
        forces[b] += f
        energies["bond"] += k_bond * (r - r0) ** 2
        bond_reads.append(_ATOM_REGION + a * 32)
        bond_reads.append(_ATOM_REGION + b * 32)
    if probe is not None:
        with probe.method("bonded_terms", code_bytes=2048):
            probe.ops(len(bonds) * 24, kind="fp")
            probe.ops(len(bonds), kind="fpdiv")
            probe.accesses(bond_reads)

    # ---- non-bonded terms via cell list --------------------------------
    cell = cutoff
    keys = np.floor(positions / cell).astype(np.int64)
    buckets: dict[tuple[int, int, int], list[int]] = {}
    for i in range(n):
        buckets.setdefault(tuple(keys[i]), []).append(i)

    bonded_pairs = {(min(a, b), max(a, b)) for a, b in bonds}
    pair_reads: list[int] = []
    cutoff_branches: list[bool] = []
    n_pairs = 0
    eps, sigma = 0.2, 2.0
    sig6 = sigma**6
    for (cx, cy, cz), atoms in buckets.items():
        neigh_atoms: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    neigh_atoms.extend(buckets.get((cx + dx, cy + dy, cz + dz), []))
        for i in atoms:
            pi = positions[i]
            qi = charges[i]
            for j in neigh_atoms:
                if j <= i or (i, j) in bonded_pairs:
                    continue
                d = positions[j] - pi
                r2 = float(d @ d)
                within = r2 < cutoff * cutoff
                cutoff_branches.append(within)
                pair_reads.append(_ATOM_REGION + j * 32)
                if not within or r2 < 1e-9:
                    continue
                n_pairs += 1
                inv_r2 = 1.0 / r2
                inv_r6 = inv_r2**3
                lj_e = 4 * eps * (sig6 * sig6 * inv_r6 * inv_r6 - sig6 * inv_r6)
                lj_f = 24 * eps * (2 * sig6 * sig6 * inv_r6 * inv_r6 - sig6 * inv_r6) * inv_r2
                qq = qi * charges[j]
                r = r2**0.5
                coul_e = qq / r
                coul_f = qq / (r2 * r)
                ftot = (lj_f + coul_f) * d
                forces[i] -= ftot
                forces[j] += ftot
                energies["lj"] += lj_e
                energies["coulomb"] += coul_e
    if probe is not None:
        with probe.method("nonbonded_pairs", code_bytes=4096):
            probe.ops(n_pairs * 30, kind="fp")
            probe.ops(n_pairs * 3, kind="fpdiv")
            probe.branches(cutoff_branches, site=1)
            probe.accesses(pair_reads)
        with probe.method("cell_list", code_bytes=1536):
            probe.ops(n * 8)
            probe.accesses([_NEIGH_REGION + i * 16 for i in range(n)])
    energies["pairs"] = n_pairs
    return forces, energies


@register_benchmark
class NabBenchmark:
    """The ``544.nab_r`` substrate."""

    name = "544.nab_r"
    suite = "fp"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, NabInput):
            raise BenchmarkError(f"nab: bad payload type {type(payload).__name__}")
        positions = payload.positions.copy()
        energy_trace: list[float] = []
        for _step in range(payload.minimize_steps):
            forces, energies = compute_forces(
                positions, payload.charges, payload.bonds, payload.cutoff, probe
            )
            total = energies["bond"] + energies["lj"] + energies["coulomb"]
            energy_trace.append(total)
            if not np.isfinite(total):
                raise BenchmarkError("nab: energy diverged")
            with probe.method("minimize_step", code_bytes=1024):
                # clipped steepest descent
                norm = float(np.abs(forces).max()) or 1.0
                positions = positions + payload.step_size * forces / norm * 10.0
                probe.ops(positions.size * 4, kind="fp")
        return {
            "energy_trace": energy_trace,
            "final_energy": energy_trace[-1],
            "pairs": energies["pairs"],
            "atoms": positions.shape[0],
        }

    def verify(self, workload: Workload, output: dict) -> bool:
        if output["pairs"] <= 0:
            return False
        trace = output["energy_trace"]
        # minimization must not blow the energy up
        return all(np.isfinite(e) for e in trace) and trace[-1] < trace[0] + abs(trace[0])
