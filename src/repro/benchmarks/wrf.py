"""Mini ``521.wrf_r``: a numerical weather-prediction model.

The SPEC benchmark is WRF.  A workload pairs an input dataset captured
from a major weather event with a parameter file selecting physics
options (micro-physics, long-wave radiation, land-surface temperature,
boundary-layer scheme) — exactly the knobs the Alberta script varies.
This substrate integrates the 2-D shallow-water equations (the
canonical dynamical core of atmospheric models) with switchable
physics parameterizations:

* ``advect``          — upwind advection of height and momentum;
* ``pressure_terms``  — the gravity/pressure-gradient update;
* ``microphysics``    — moisture condensation/rain removal (optional);
* ``radiation``       — long-wave cooling relaxation (optional);
* ``surface_layer``   — land-surface drag / heating (optional);
* ``boundary``        — periodic or damped boundary scheme.

Like the real model it is strongly back-end bound (54.9% in Table II)
— field sweeps over grids larger than L2 — with low coverage variation
(``mu_g(M) = 4``) since the dynamical core always dominates.

Workload payload: :class:`WrfInput`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["WrfInput", "WrfBenchmark", "run_forecast"]

_FIELD_REGION = 0xD000_0000
_GRAVITY = 9.81


@dataclass(frozen=True)
class WrfInput:
    """One wrf workload: initial weather state + physics options.

    ``height``/``u``/``v``/``moisture`` are (h, w) initial fields (the
    "captured event" dataset); the booleans/strings select physics
    options as in a WRF namelist."""

    height: np.ndarray
    u: np.ndarray
    v: np.ndarray
    moisture: np.ndarray
    steps: int = 20
    dt: float = 0.02
    microphysics: bool = True
    radiation: bool = True
    surface_layer: bool = True
    boundary_scheme: str = "periodic"  # or "damped"

    def __post_init__(self) -> None:
        shape = self.height.shape
        if self.height.ndim != 2 or shape[0] < 8 or shape[1] < 8:
            raise ValueError("WrfInput: height field must be at least 8x8")
        for name in ("u", "v", "moisture"):
            if getattr(self, name).shape != shape:
                raise ValueError(f"WrfInput: field {name} shape mismatch")
        if (self.height <= 0).any():
            raise ValueError("WrfInput: height field must be positive")
        if self.steps < 1 or self.dt <= 0:
            raise ValueError("WrfInput: steps/dt must be positive")
        if self.boundary_scheme not in ("periodic", "damped"):
            raise ValueError(f"WrfInput: unknown boundary scheme {self.boundary_scheme!r}")


def _ddx(f: np.ndarray) -> np.ndarray:
    return (np.roll(f, -1, axis=1) - np.roll(f, 1, axis=1)) * 0.5


def _ddy(f: np.ndarray) -> np.ndarray:
    return (np.roll(f, -1, axis=0) - np.roll(f, 1, axis=0)) * 0.5


def run_forecast(config: WrfInput, probe: Probe | None = None) -> dict:
    """Integrate the model; returns forecast diagnostics."""
    h = config.height.astype(np.float64).copy()
    u = config.u.astype(np.float64).copy()
    v = config.v.astype(np.float64).copy()
    q = config.moisture.astype(np.float64).copy()
    cells = h.size
    initial_mass = float(h.sum())
    rain_total = 0.0

    for step in range(config.steps):
        # --- dynamics: shallow-water advection + pressure terms --------
        du = -(u * _ddx(u) + v * _ddy(u)) - _GRAVITY * _ddx(h)
        dv = -(u * _ddx(v) + v * _ddy(v)) - _GRAVITY * _ddy(h)
        dh = -(_ddx(u * h) + _ddy(v * h))
        dq = -(u * _ddx(q) + v * _ddy(q))
        if probe is not None:
            with probe.method("advect", code_bytes=4096):
                probe.ops(cells * 14, kind="fp")
                # four prognostic fields plus their shifted stencil
                # copies: twelve grid sweeps per step
                probe.accesses(
                    [_FIELD_REGION + i for i in range(0, cells * 8 * 12, 96)]
                )
                # upwind-direction selection branches on the local wind
                # sign — spatially structured but not uniform
                probe.branches((bool(x) for x in (u.ravel()[::5] > 0)), site=2)
                probe.branches((bool(x) for x in (v.ravel()[::7] > 0)), site=3)
            with probe.method("pressure_terms", code_bytes=2048):
                probe.ops(cells * 8, kind="fp")
                probe.accesses(
                    [_FIELD_REGION + cells * 32 + i for i in range(0, cells * 8, 512)]
                )

        u = u + config.dt * du
        v = v + config.dt * dv
        h = h + config.dt * dh
        q = np.clip(q + config.dt * dq, 0.0, None)

        # --- physics options -------------------------------------------
        if config.microphysics:
            saturated = q > 0.8
            rain = np.where(saturated, (q - 0.8) * 0.5, 0.0)
            q = q - rain
            h = h + rain * 0.01  # latent heating proxy
            rain_total += float(rain.sum())
            if probe is not None:
                with probe.method("microphysics", code_bytes=2560):
                    probe.ops(cells * 6, kind="fp")
                    probe.branches(
                        (bool(x) for x in saturated.ravel()[:: max(1, cells // 1024)]),
                        site=1,
                    )
        if config.radiation:
            h = h - config.dt * 0.02 * (h - h.mean())
            if probe is not None:
                with probe.method("radiation", code_bytes=2048):
                    probe.ops(cells * 4, kind="fp")
        if config.surface_layer:
            drag = 1.0 - config.dt * 0.5
            u = u * drag
            v = v * drag
            if probe is not None:
                with probe.method("surface_layer", code_bytes=1536):
                    probe.ops(cells * 4, kind="fp")

        # --- boundary scheme --------------------------------------------
        if config.boundary_scheme == "damped":
            for f in (u, v):
                f[0, :] *= 0.5
                f[-1, :] *= 0.5
                f[:, 0] *= 0.5
                f[:, -1] *= 0.5
        if probe is not None:
            with probe.method("boundary", code_bytes=1024):
                probe.ops(int(4 * (h.shape[0] + h.shape[1])), kind="fp")

        max_wind = float(np.sqrt(u * u + v * v).max())
        if not np.isfinite(max_wind) or max_wind > 500.0:
            raise BenchmarkError(f"wrf: forecast blew up at step {step}")

    return {
        "steps": config.steps,
        "final_mass": float(h.sum()),
        "initial_mass": initial_mass,
        "max_wind": max_wind,
        "rain_total": rain_total,
        "cells": cells,
    }


@register_benchmark
class WrfBenchmark:
    """The ``521.wrf_r`` substrate."""

    name = "521.wrf_r"
    suite = "fp"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, WrfInput):
            raise BenchmarkError(f"wrf: bad payload type {type(payload).__name__}")
        return run_forecast(payload, probe)

    def verify(self, workload: Workload, output: dict) -> bool:
        if output["max_wind"] >= 500.0 or output["final_mass"] <= 0:
            return False
        # mass conservation: advection conserves; physics terms add only
        # small sources, so total drift stays bounded
        drift = abs(output["final_mass"] - output["initial_mass"]) / output["initial_mass"]
        return drift < 0.2
