"""Mini ``525.x264_r``: a block-based video encoder.

The SPEC workload runs three programs per the paper: ``ldecod_r``
decodes the input video, ``x264_r`` re-encodes it, and
``imagevalidate_r`` compares dumped frames.  This substrate implements
the same pipeline on synthetic grayscale video:

* **decode** — unpack the stored frame deltas into raster frames;
* **encode** — per 8x8 block: motion estimation against the previous
  reconstructed frame (full search in a +/-4 window), residual
  computation, an integer 4x4 Hadamard-style transform, quantization,
  entropy-size estimation, and reconstruction (the decode loop of the
  encoder);
* **imagevalidate** — PSNR comparison of reconstructed frames against
  the source, failing the run below a threshold.

Pixel math uses numpy (the real encoder uses SIMD); control decisions
(skip blocks, zero motion vectors, quantized-coefficient significance)
are genuine data-dependent branches reported to the probe.

Workload payload: :class:`VideoInput`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["VideoInput", "X264Benchmark", "encode_video", "psnr"]

_FRAME_REGION = 0x7000_0000
_REF_REGION = 0x7400_0000
_COEF_REGION = 0x7800_0000

_BLOCK = 8
_SEARCH = 4


@dataclass(frozen=True)
class VideoInput:
    """One x264 workload: frames + encode parameters.

    ``frames`` is a (n, h, w) uint8 array; ``start_frame`` /
    ``n_frames`` select the encoded interval (the paper's workloads
    carry exactly these parameters); ``qp`` is the quantization
    parameter; ``two_pass`` runs a second pass with refined qp.
    """

    frames: np.ndarray
    start_frame: int = 0
    n_frames: int | None = None
    qp: int = 8
    two_pass: bool = False
    me_method: str = "full"  # or "diamond"

    def __post_init__(self) -> None:
        if self.frames.ndim != 3:
            raise ValueError("VideoInput: frames must be (n, h, w)")
        n, h, w = self.frames.shape
        if n < 2 or h % _BLOCK or w % _BLOCK:
            raise ValueError(
                f"VideoInput: need >= 2 frames with dimensions divisible by {_BLOCK}"
            )
        if not (0 <= self.start_frame < n):
            raise ValueError("VideoInput: start_frame out of range")
        if self.qp < 1:
            raise ValueError("VideoInput: qp must be >= 1")
        if self.me_method not in ("full", "diamond"):
            raise ValueError(f"VideoInput: unknown me_method {self.me_method!r}")


def psnr(a: np.ndarray, b: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two uint8 images."""
    diff = a.astype(np.float64) - b.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0:
        return 99.0
    return 10.0 * np.log10(255.0 * 255.0 / mse)


_HADAMARD = np.array(
    [[1, 1, 1, 1], [1, 1, -1, -1], [1, -1, -1, 1], [1, -1, 1, -1]], dtype=np.int32
)


def _transform_quant(residual: np.ndarray, qp: int) -> np.ndarray:
    """4x4 Hadamard transform + uniform quantization of an 8x8 residual."""
    out = np.empty((_BLOCK, _BLOCK), dtype=np.int32)
    for by in (0, 4):
        for bx in (0, 4):
            sub = residual[by : by + 4, bx : bx + 4].astype(np.int32)
            coef = _HADAMARD @ sub @ _HADAMARD.T
            out[by : by + 4, bx : bx + 4] = np.round(coef / (qp * 4)).astype(np.int32)
    return out


def _dequant_inverse(coefs: np.ndarray, qp: int) -> np.ndarray:
    """Inverse of :func:`_transform_quant` (lossy)."""
    out = np.empty((_BLOCK, _BLOCK), dtype=np.int32)
    for by in (0, 4):
        for bx in (0, 4):
            coef = coefs[by : by + 4, bx : bx + 4] * (qp * 4)
            sub = _HADAMARD.T @ coef @ _HADAMARD
            out[by : by + 4, bx : bx + 4] = sub // 16
    return out



def _sad_at(block, ref, yy, xx, h, w, stats):
    """SAD against the reference block at (yy, xx); None if off-frame."""
    if yy < 0 or yy + _BLOCK > h or xx < 0 or xx + _BLOCK > w:
        return None
    stats["sad_evals"] += 1
    cand = ref[yy : yy + _BLOCK, xx : xx + _BLOCK]
    return int(np.abs(block - cand).sum())


def _full_search(block, ref, y, x, h, w, stats):
    """Exhaustive motion search in a +/-_SEARCH window."""
    best_sad = None
    best_mv = (0, 0)
    for dy in range(-_SEARCH, _SEARCH + 1):
        for dx in range(-_SEARCH, _SEARCH + 1):
            sad = _sad_at(block, ref, y + dy, x + dx, h, w, stats)
            if sad is None:
                continue
            if best_sad is None or sad < best_sad:
                best_sad = sad
                best_mv = (dy, dx)
                if sad == 0:
                    return best_sad, best_mv
    return best_sad, best_mv


_DIAMOND = ((-1, 0), (1, 0), (0, -1), (0, 1))


def _diamond_search(block, ref, y, x, h, w, stats):
    """Small-diamond descent: follow the best neighbour until a local
    minimum — the fast path real encoders use instead of full search."""
    cy, cx = 0, 0
    best_sad = _sad_at(block, ref, y, x, h, w, stats)
    if best_sad is None:
        best_sad = 1 << 30
    for _step in range(2 * _SEARCH):
        improved = False
        for dy, dx in _DIAMOND:
            ny, nx = cy + dy, cx + dx
            if abs(ny) > _SEARCH or abs(nx) > _SEARCH:
                continue
            sad = _sad_at(block, ref, y + ny, x + nx, h, w, stats)
            if sad is not None and sad < best_sad:
                best_sad = sad
                cy, cx = ny, nx
                improved = True
        if not improved or best_sad == 0:
            break
    return best_sad, (cy, cx)


def encode_video(
    frames: np.ndarray,
    qp: int,
    probe: Probe | None = None,
    me_method: str = "full",
) -> tuple[np.ndarray, dict]:
    """Encode frames; returns (reconstructed frames, statistics)."""
    n, h, w = frames.shape
    recon = np.empty_like(frames)
    stats = {"bits": 0, "skip_blocks": 0, "coded_blocks": 0, "intra_blocks": 0, "sad_evals": 0}

    mv_branches: list[bool] = []
    skip_branches: list[bool] = []
    coef_branches: list[bool] = []
    block_reads: list[int] = []

    for f in range(n):
        src = frames[f].astype(np.int32)
        if f == 0:
            # intra frame: transform blocks against a flat predictor
            rec = np.empty((h, w), dtype=np.int32)
            for y in range(0, h, _BLOCK):
                for x in range(0, w, _BLOCK):
                    block = src[y : y + _BLOCK, x : x + _BLOCK]
                    pred = int(block.mean())
                    coefs = _transform_quant(block - pred, qp)
                    nz = int(np.count_nonzero(coefs))
                    stats["bits"] += 6 + nz * 4
                    stats["intra_blocks"] += 1
                    coef_branches.extend(bool(b) for b in (coefs.ravel() != 0)[::4])
                    rec[y : y + _BLOCK, x : x + _BLOCK] = np.clip(
                        _dequant_inverse(coefs, qp) + pred, 0, 255
                    )
                    block_reads.append(_FRAME_REGION + (f * h * w + y * w + x))
            recon[f] = rec.astype(np.uint8)
        else:
            ref = recon[f - 1].astype(np.int32)
            rec = np.empty((h, w), dtype=np.int32)
            for y in range(0, h, _BLOCK):
                for x in range(0, w, _BLOCK):
                    block = src[y : y + _BLOCK, x : x + _BLOCK]
                    if me_method == "diamond":
                        best_sad, best_mv = _diamond_search(block, ref, y, x, h, w, stats)
                    else:
                        best_sad, best_mv = _full_search(block, ref, y, x, h, w, stats)
                    mv_branches.append(best_mv != (0, 0))
                    block_reads.append(
                        _REF_REGION
                        + ((f % 4) * h * w + (y + best_mv[0]) * w + x + best_mv[1])
                    )
                    pred_block = ref[
                        y + best_mv[0] : y + best_mv[0] + _BLOCK,
                        x + best_mv[1] : x + best_mv[1] + _BLOCK,
                    ]
                    residual = block - pred_block
                    # skip when the prediction error is within the
                    # quantization noise floor for this qp
                    skip = best_sad is not None and best_sad < 2 * qp * _BLOCK
                    skip_branches.append(skip)
                    if skip:
                        stats["skip_blocks"] += 1
                        stats["bits"] += 2
                        rec[y : y + _BLOCK, x : x + _BLOCK] = pred_block
                    else:
                        coefs = _transform_quant(residual, qp)
                        nz = int(np.count_nonzero(coefs))
                        stats["bits"] += 8 + nz * 4
                        stats["coded_blocks"] += 1
                        coef_branches.extend(bool(b) for b in (coefs.ravel() != 0)[::4])
                        rec[y : y + _BLOCK, x : x + _BLOCK] = np.clip(
                            _dequant_inverse(coefs, qp) + pred_block, 0, 255
                        )
            recon[f] = rec.astype(np.uint8)

        if probe is not None:
            n_blocks = (h // _BLOCK) * (w // _BLOCK)
            with probe.method("motion_search", code_bytes=4096):
                probe.ops(stats["sad_evals"] * _BLOCK * _BLOCK // 8)
                probe.branches(mv_branches, site=1)
                probe.accesses(block_reads)
            with probe.method("dct_quant", code_bytes=3072):
                probe.ops(n_blocks * 4 * 16 * 3, kind="fp")
                probe.branches(coef_branches, site=2)
                probe.accesses(
                    _COEF_REGION
                    + (f * n_blocks + np.arange(n_blocks, dtype=np.int64)) * 256
                )
            with probe.method("entropy_encode", code_bytes=2048):
                probe.ops(stats["bits"] // 2)
                probe.branches(skip_branches, site=3)
            mv_branches = []
            skip_branches = []
            coef_branches = []
            block_reads = []
            stats["sad_evals"] = 0 if f < n - 1 else stats["sad_evals"]

    return recon, stats


@register_benchmark(in_table2=False)
class X264Benchmark:
    """The ``525.x264_r`` substrate (decode -> encode -> validate)."""

    name = "525.x264_r"
    suite = "int"

    #: Minimum acceptable reconstruction quality (dB), as the SPEC
    #: imagevalidate tool enforces a structural-similarity threshold.
    PSNR_THRESHOLD = 24.0

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, VideoInput):
            raise BenchmarkError(f"x264: bad payload type {type(payload).__name__}")
        n_total = payload.frames.shape[0]
        count = payload.n_frames or (n_total - payload.start_frame)
        end = min(n_total, payload.start_frame + count)
        window = payload.frames[payload.start_frame : end]
        if window.shape[0] < 2:
            raise BenchmarkError("x264: encode window needs at least two frames")

        with probe.method("ldecod_decode", code_bytes=3584):
            # the stored input is delta-coded; reconstruct raster frames
            deltas = np.diff(window.astype(np.int16), axis=0)
            rebuilt = np.cumsum(
                np.concatenate([window[:1].astype(np.int16), deltas]), axis=0
            ).astype(np.uint8)
            probe.ops(int(window.size) // 2)
            h, w = window.shape[1:]
            probe.accesses(
                _FRAME_REGION
                + np.arange(0, int(window.size), 512, dtype=np.int64) * 64
            )
        if not np.array_equal(rebuilt, window):
            raise BenchmarkError("x264: ldecod reconstruction failed")

        recon, stats = encode_video(window, payload.qp, probe, payload.me_method)
        if payload.two_pass:
            # second pass: refine qp from first-pass bit usage
            target = window.size // 4
            qp2 = max(1, payload.qp + (1 if stats["bits"] > target else -1))
            recon, stats = encode_video(window, qp2, probe, payload.me_method)

        with probe.method("imagevalidate", code_bytes=1536):
            scores = [psnr(window[i], recon[i]) for i in range(window.shape[0])]
            probe.ops(int(window.size) // 4, kind="fp")
            probe.accesses(
                _REF_REGION
                + np.arange(0, int(window.size), 1024, dtype=np.int64) * 64
            )

        return {
            "frames": int(window.shape[0]),
            "bits": stats["bits"],
            "skip_blocks": stats["skip_blocks"],
            "coded_blocks": stats["coded_blocks"],
            "psnr_min": min(scores),
            "psnr_avg": sum(scores) / len(scores),
        }

    def verify(self, workload: Workload, output: dict) -> bool:
        return output["psnr_min"] >= self.PSNR_THRESHOLD and output["bits"] > 0
