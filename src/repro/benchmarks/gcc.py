"""Mini ``502.gcc_r``: an optimizing compiler for a C subset.

The SPEC benchmark compiles a single preprocessed C file.  This
substrate is a real compiler for *mini-C* — a C subset with functions,
``int`` variables, arithmetic/logical/comparison expressions,
``if``/``else``, ``while``, ``return``, assignment, and calls:

* ``lex``        — character-level tokenizer;
* ``parse``      — recursive-descent parser producing an AST;
* ``resolve``    — symbol table construction and checking;
* ``optimize``   — constant folding, algebraic simplification,
  dead-branch elimination, and dead-code removal after ``return``;
* ``codegen``    — stack-machine code emission;
* ``peephole``   — push/pop and jump-threading cleanup;
* ``execute``    — a stack VM used by SPEC-style output validation
  (the compiled program's result must match direct AST interpretation).

Compiler phases light up differently for different source programs —
expression-heavy sources spend time folding, control-heavy ones in
parsing and codegen — which is why the paper measures one of the
largest method-coverage variations for gcc (``mu_g(M) = 25``) and the
highest front-end-bound fraction (23.4%, the compiler's huge code
footprint), reproduced here through many large-code methods.

Workload payload: :class:`CSource` — mini-C source text plus the
optimization level.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = [
    "CSource",
    "GccBenchmark",
    "Token",
    "lex",
    "Parser",
    "optimize",
    "cse",
    "codegen",
    "run_vm",
    "interpret",
]

_AST_REGION = 0x6000_0000
_SYM_REGION = 0x6400_0000
_CODE_REGION = 0x6800_0000

KEYWORDS = {"int", "if", "else", "while", "return"}
_PUNCT2 = {"==", "!=", "<=", ">=", "&&", "||"}
_PUNCT1 = set("+-*/%<>=!(){},;&|^")


@dataclass(frozen=True)
class CSource:
    """One gcc workload: source text + optimization level (0 or 2)."""

    text: str
    opt_level: int = 2
    entry: str = "main"

    def __post_init__(self) -> None:
        if not self.text.strip():
            raise ValueError("CSource: empty source")
        if self.opt_level not in (0, 2):
            raise ValueError("CSource: opt_level must be 0 or 2")


@dataclass(frozen=True)
class Token:
    kind: str  # "num", "ident", "kw", "punct"
    value: str
    pos: int


def lex(text: str, probe: Probe | None = None) -> list[Token]:
    """Tokenize mini-C source."""
    tokens: list[Token] = []
    branches: list[bool] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\n\r":
            i += 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        if ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i)
            if j < 0:
                raise BenchmarkError("lex: unterminated comment")
            i = j + 2
            continue
        is_digit = ch.isdigit()
        branches.append(is_digit)
        if is_digit:
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("num", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            tokens.append(Token("kw" if word in KEYWORDS else "ident", word, i))
            i = j
            continue
        two = text[i : i + 2]
        if two in _PUNCT2:
            tokens.append(Token("punct", two, i))
            i += 2
            continue
        if ch in _PUNCT1:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise BenchmarkError(f"lex: unexpected character {ch!r} at {i}")
    if probe is not None:
        probe.ops(n * 5)
        probe.branches(branches, site=1)
        probe.accesses([_AST_REGION + (k % 8192) * 16 for k in range(0, len(tokens), 2)])
    return tokens


# AST nodes are plain tuples: ("num", v) | ("var", name) |
# ("bin", op, l, r) | ("un", op, e) | ("call", name, args) |
# ("assign", name, e) | ("if", cond, then, els) | ("while", cond, body) |
# ("return", e) | ("decl", name, e) | ("expr", e) | ("block", stmts)
# functions: ("func", name, params, body)


class Parser:
    """Recursive-descent parser for mini-C."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0
        self.nodes = 0

    def _peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> Token:
        tok = self._peek()
        if tok is None:
            raise BenchmarkError("parse: unexpected end of input")
        self.pos += 1
        return tok

    def _expect(self, value: str) -> Token:
        tok = self._next()
        if tok.value != value:
            raise BenchmarkError(f"parse: expected {value!r}, got {tok.value!r} at {tok.pos}")
        return tok

    def parse_program(self) -> list[tuple]:
        funcs: list[tuple] = []
        while self._peek() is not None:
            funcs.append(self.parse_function())
        if not funcs:
            raise BenchmarkError("parse: no functions")
        return funcs

    def parse_function(self) -> tuple:
        self._expect("int")
        name = self._next()
        if name.kind != "ident":
            raise BenchmarkError(f"parse: bad function name {name.value!r}")
        self._expect("(")
        params: list[str] = []
        if self._peek() and self._peek().value != ")":
            while True:
                self._expect("int")
                p = self._next()
                params.append(p.value)
                if self._peek() and self._peek().value == ",":
                    self._next()
                else:
                    break
        self._expect(")")
        body = self.parse_block()
        self.nodes += 1
        return ("func", name.value, params, body)

    def parse_block(self) -> tuple:
        self._expect("{")
        stmts: list[tuple] = []
        while self._peek() and self._peek().value != "}":
            stmts.append(self.parse_statement())
        self._expect("}")
        self.nodes += 1
        return ("block", stmts)

    def parse_statement(self) -> tuple:
        tok = self._peek()
        assert tok is not None
        self.nodes += 1
        if tok.value == "int":
            self._next()
            name = self._next().value
            init = ("num", 0)
            if self._peek() and self._peek().value == "=":
                self._next()
                init = self.parse_expr()
            self._expect(";")
            return ("decl", name, init)
        if tok.value == "if":
            self._next()
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            then = self.parse_block()
            els = None
            if self._peek() and self._peek().value == "else":
                self._next()
                els = self.parse_block()
            return ("if", cond, then, els)
        if tok.value == "while":
            self._next()
            self._expect("(")
            cond = self.parse_expr()
            self._expect(")")
            body = self.parse_block()
            return ("while", cond, body)
        if tok.value == "return":
            self._next()
            expr = self.parse_expr()
            self._expect(";")
            return ("return", expr)
        if tok.value == "{":
            return self.parse_block()
        # assignment or expression statement
        if tok.kind == "ident":
            nxt = self.tokens[self.pos + 1] if self.pos + 1 < len(self.tokens) else None
            if nxt is not None and nxt.value == "=":
                name = self._next().value
                self._next()
                expr = self.parse_expr()
                self._expect(";")
                return ("assign", name, expr)
        expr = self.parse_expr()
        self._expect(";")
        return ("expr", expr)

    # precedence-climbing expression parser
    _PREC = {
        "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
        "==": 6, "!=": 6, "<": 7, ">": 7, "<=": 7, ">=": 7,
        "+": 8, "-": 8, "*": 9, "/": 9, "%": 9,
    }

    def parse_expr(self, min_prec: int = 1) -> tuple:
        left = self.parse_unary()
        while True:
            tok = self._peek()
            if tok is None or tok.kind != "punct":
                break
            prec = self._PREC.get(tok.value)
            if prec is None or prec < min_prec:
                break
            op = self._next().value
            right = self.parse_expr(prec + 1)
            left = ("bin", op, left, right)
            self.nodes += 1
        return left

    def parse_unary(self) -> tuple:
        tok = self._peek()
        assert tok is not None
        if tok.value in ("-", "!"):
            self._next()
            self.nodes += 1
            return ("un", tok.value, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> tuple:
        tok = self._next()
        self.nodes += 1
        if tok.kind == "num":
            return ("num", int(tok.value))
        if tok.kind == "ident":
            if self._peek() and self._peek().value == "(":
                self._next()
                args: list[tuple] = []
                if self._peek() and self._peek().value != ")":
                    while True:
                        args.append(self.parse_expr())
                        if self._peek() and self._peek().value == ",":
                            self._next()
                        else:
                            break
                self._expect(")")
                return ("call", tok.value, args)
            return ("var", tok.value)
        if tok.value == "(":
            expr = self.parse_expr()
            self._expect(")")
            return expr
        raise BenchmarkError(f"parse: unexpected token {tok.value!r} at {tok.pos}")


def resolve(funcs: list[tuple]) -> dict[str, tuple]:
    """Build the function symbol table and check references."""
    table: dict[str, tuple] = {}
    for func in funcs:
        _, name, params, _body = func
        if name in table:
            raise BenchmarkError(f"resolve: duplicate function {name!r}")
        if len(set(params)) != len(params):
            raise BenchmarkError(f"resolve: duplicate parameter in {name!r}")
        table[name] = func

    def _check_expr(expr: tuple, locals_: set[str]) -> None:
        kind = expr[0]
        if kind == "var":
            if expr[1] not in locals_:
                raise BenchmarkError(f"resolve: undefined variable {expr[1]!r}")
        elif kind == "bin":
            _check_expr(expr[2], locals_)
            _check_expr(expr[3], locals_)
        elif kind == "un":
            _check_expr(expr[2], locals_)
        elif kind == "call":
            if expr[1] not in table:
                raise BenchmarkError(f"resolve: undefined function {expr[1]!r}")
            want = len(table[expr[1]][2])
            if len(expr[2]) != want:
                raise BenchmarkError(f"resolve: arity mismatch calling {expr[1]!r}")
            for a in expr[2]:
                _check_expr(a, locals_)

    def _check_stmt(stmt: tuple, locals_: set[str]) -> None:
        kind = stmt[0]
        if kind == "block":
            inner = set(locals_)
            for s in stmt[1]:
                _check_stmt(s, inner)
        elif kind == "decl":
            _check_expr(stmt[2], locals_)
            locals_.add(stmt[1])
        elif kind == "assign":
            if stmt[1] not in locals_:
                raise BenchmarkError(f"resolve: assignment to undefined {stmt[1]!r}")
            _check_expr(stmt[2], locals_)
        elif kind == "if":
            _check_expr(stmt[1], locals_)
            _check_stmt(stmt[2], locals_)
            if stmt[3] is not None:
                _check_stmt(stmt[3], locals_)
        elif kind == "while":
            _check_expr(stmt[1], locals_)
            _check_stmt(stmt[2], locals_)
        elif kind in ("return", "expr"):
            _check_expr(stmt[1], locals_)

    for func in funcs:
        _, _name, params, body = func
        _check_stmt(body, set(params))
    return table


_FOLD_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}


def optimize(funcs: list[tuple], stats: dict[str, int] | None = None) -> list[tuple]:
    """Constant folding, algebraic identities, dead-branch/code removal."""
    if stats is None:
        stats = {}
    stats.setdefault("folded", 0)
    stats.setdefault("dead_branches", 0)
    stats.setdefault("dead_code", 0)
    stats.setdefault("identities", 0)

    def _expr(e: tuple) -> tuple:
        kind = e[0]
        if kind == "bin":
            left = _expr(e[2])
            right = _expr(e[3])
            if left[0] == "num" and right[0] == "num":
                stats["folded"] += 1
                return ("num", _FOLD_OPS[e[1]](left[1], right[1]))
            # algebraic identities: x+0, x*1, x*0, 0+x, 1*x
            if e[1] == "+" and right == ("num", 0):
                stats["identities"] += 1
                return left
            if e[1] == "+" and left == ("num", 0):
                stats["identities"] += 1
                return right
            if e[1] == "*" and right == ("num", 1):
                stats["identities"] += 1
                return left
            if e[1] == "*" and left == ("num", 1):
                stats["identities"] += 1
                return right
            if e[1] == "*" and ("num", 0) in (left, right):
                stats["identities"] += 1
                return ("num", 0)
            return ("bin", e[1], left, right)
        if kind == "un":
            inner = _expr(e[2])
            if inner[0] == "num":
                stats["folded"] += 1
                return ("num", -inner[1] if e[1] == "-" else int(not inner[1]))
            return ("un", e[1], inner)
        if kind == "call":
            return ("call", e[1], [_expr(a) for a in e[2]])
        return e

    def _stmt(s: tuple) -> tuple | None:
        kind = s[0]
        if kind == "block":
            out: list[tuple] = []
            for sub in s[1]:
                opt = _stmt(sub)
                if opt is not None:
                    out.append(opt)
                    if opt[0] == "return":
                        # statements after return are dead
                        remaining = len(s[1]) - len(out)
                        stats["dead_code"] += max(0, remaining)
                        break
            return ("block", out)
        if kind == "if":
            cond = _expr(s[1])
            if cond[0] == "num":
                stats["dead_branches"] += 1
                if cond[1]:
                    return _stmt(s[2])
                return _stmt(s[3]) if s[3] is not None else None
            then = _stmt(s[2])
            els = _stmt(s[3]) if s[3] is not None else None
            return ("if", cond, then, els)
        if kind == "while":
            cond = _expr(s[1])
            if cond == ("num", 0):
                stats["dead_branches"] += 1
                return None
            return ("while", cond, _stmt(s[2]))
        if kind == "decl":
            return ("decl", s[1], _expr(s[2]))
        if kind == "assign":
            return ("assign", s[1], _expr(s[2]))
        if kind in ("return", "expr"):
            return (kind, _expr(s[1]))
        return s

    return [("func", f[1], f[2], _stmt(f[3])) for f in funcs]


def _expr_vars(expr: tuple) -> set[str]:
    """Variables read by an expression."""
    kind = expr[0]
    if kind == "var":
        return {expr[1]}
    if kind == "bin":
        return _expr_vars(expr[2]) | _expr_vars(expr[3])
    if kind == "un":
        return _expr_vars(expr[2])
    if kind == "call":
        out: set[str] = set()
        for a in expr[2]:
            out |= _expr_vars(a)
        return out
    return set()


def _has_call(expr: tuple) -> bool:
    kind = expr[0]
    if kind == "call":
        return True
    if kind == "bin":
        return _has_call(expr[2]) or _has_call(expr[3])
    if kind == "un":
        return _has_call(expr[2])
    return False


def cse(funcs: list[tuple], stats: dict[str, int] | None = None) -> list[tuple]:
    """Local common-subexpression elimination (value numbering).

    Within each straight-line statement run, repeated call-free binary
    subexpressions are hoisted into compiler temporaries
    (``__cse<N>``).  Available expressions are invalidated when any
    variable they read is reassigned; control flow (if/while) starts a
    fresh scope, so the pass never hoists across a branch.
    """
    if stats is None:
        stats = {}
    stats.setdefault("cse_hits", 0)
    counter = [0]

    def _key(expr: tuple):
        if expr[0] == "bin":
            return ("bin", expr[1], _key(expr[2]), _key(expr[3]))
        if expr[0] == "un":
            return ("un", expr[1], _key(expr[2]))
        return expr

    def _rewrite(expr: tuple, avail: dict, hoisted: list[tuple]) -> tuple:
        kind = expr[0]
        if kind == "bin":
            left = _rewrite(expr[2], avail, hoisted)
            right = _rewrite(expr[3], avail, hoisted)
            new = ("bin", expr[1], left, right)
            if _has_call(new):
                return new
            key = _key(new)
            if key in avail:
                stats["cse_hits"] += 1
                return ("var", avail[key])
            counter[0] += 1
            temp = f"__cse{counter[0]}"
            avail[key] = temp
            hoisted.append(("decl", temp, new))
            return ("var", temp)
        if kind == "un":
            return ("un", expr[1], _rewrite(expr[2], avail, hoisted))
        if kind == "call":
            return ("call", expr[1], [_rewrite(a, avail, hoisted) for a in expr[2]])
        return expr

    def _key_vars(key) -> set[str]:
        if isinstance(key, tuple):
            if key[0] == "var":
                return {key[1]}
            out: set[str] = set()
            for part in key:
                if isinstance(part, tuple):
                    out |= _key_vars(part)
            return out
        return set()

    def _invalidate(avail: dict, name: str) -> None:
        dead = [k for k in avail if name in _key_vars(k)]
        for k in dead:
            del avail[k]

    def _block(stmts: list[tuple]) -> list[tuple]:
        avail: dict = {}
        out: list[tuple] = []
        for stmt in stmts:
            kind = stmt[0]
            if kind in ("decl", "assign"):
                hoisted: list[tuple] = []
                expr = _rewrite(stmt[2], avail, hoisted)
                out.extend(hoisted)
                out.append((kind, stmt[1], expr))
                _invalidate(avail, stmt[1])
            elif kind in ("return", "expr"):
                hoisted = []
                expr = _rewrite(stmt[1], avail, hoisted)
                out.extend(hoisted)
                out.append((kind, expr))
            elif kind == "block":
                out.append(("block", _block(stmt[1])))
                avail.clear()
            elif kind == "if":
                then = _scope(stmt[2])
                els = _scope(stmt[3]) if stmt[3] is not None else None
                out.append(("if", stmt[1], then, els))
                avail.clear()
            elif kind == "while":
                out.append(("while", stmt[1], _scope(stmt[2])))
                avail.clear()
            else:
                out.append(stmt)
                avail.clear()
        return out

    def _scope(stmt: tuple | None) -> tuple | None:
        if stmt is None:
            return None
        if stmt[0] == "block":
            return ("block", _block(stmt[1]))
        return ("block", _block([stmt]))

    return [("func", f[1], f[2], _scope(f[3])) for f in funcs]


# stack-machine opcodes: (op, arg)
# PUSH n | LOAD name | STORE name | BIN op | UN op | JMP t | JZ t |
# CALL name nargs | RET | POP


def codegen(funcs: list[tuple]) -> dict[str, list[tuple]]:
    """Emit stack-machine code per function."""
    code_by_func: dict[str, list[tuple]] = {}

    def _expr(e: tuple, code: list[tuple]) -> None:
        kind = e[0]
        if kind == "num":
            code.append(("PUSH", e[1]))
        elif kind == "var":
            code.append(("LOAD", e[1]))
        elif kind == "bin":
            _expr(e[2], code)
            _expr(e[3], code)
            code.append(("BIN", e[1]))
        elif kind == "un":
            _expr(e[2], code)
            code.append(("UN", e[1]))
        elif kind == "call":
            for a in e[2]:
                _expr(a, code)
            code.append(("CALL", (e[1], len(e[2]))))
        else:  # pragma: no cover - parser precludes this
            raise BenchmarkError(f"codegen: bad expr {kind}")

    def _stmt(s: tuple | None, code: list[tuple]) -> None:
        if s is None:
            return
        kind = s[0]
        if kind == "block":
            for sub in s[1]:
                _stmt(sub, code)
        elif kind in ("decl", "assign"):
            _expr(s[2], code)
            code.append(("STORE", s[1]))
        elif kind == "if":
            _expr(s[1], code)
            jz = len(code)
            code.append(("JZ", -1))
            _stmt(s[2], code)
            if s[3] is not None:
                jmp = len(code)
                code.append(("JMP", -1))
                code[jz] = ("JZ", len(code))
                _stmt(s[3], code)
                code[jmp] = ("JMP", len(code))
            else:
                code[jz] = ("JZ", len(code))
        elif kind == "while":
            top = len(code)
            _expr(s[1], code)
            jz = len(code)
            code.append(("JZ", -1))
            _stmt(s[2], code)
            code.append(("JMP", top))
            code[jz] = ("JZ", len(code))
        elif kind == "return":
            _expr(s[1], code)
            code.append(("RET", None))
        elif kind == "expr":
            _expr(s[1], code)
            code.append(("POP", None))

    for func in funcs:
        _, name, _params, body = func
        code: list[tuple] = []
        _stmt(body, code)
        code.append(("PUSH", 0))
        code.append(("RET", None))
        code_by_func[name] = code
    return code_by_func


def peephole(code_by_func: dict[str, list[tuple]], stats: dict[str, int] | None = None) -> dict[str, list[tuple]]:
    """Peephole pass: remove PUSH-then-POP pairs and thread JMP->JMP."""
    if stats is None:
        stats = {}
    stats.setdefault("peephole_removed", 0)
    out: dict[str, list[tuple]] = {}
    for name, code in code_by_func.items():
        # jump threading (JMP to JMP)
        threaded = list(code)
        for idx, (op, arg) in enumerate(threaded):
            if op in ("JMP", "JZ") and isinstance(arg, int) and 0 <= arg < len(threaded):
                hops = 0
                target = arg
                while (
                    hops < 8
                    and target < len(threaded)
                    and threaded[target][0] == "JMP"
                ):
                    target = threaded[target][1]
                    hops += 1
                if target != arg:
                    threaded[idx] = (op, target)
                    stats["peephole_removed"] += 1
        out[name] = threaded
    return out


def run_vm(
    code_by_func: dict[str, list[tuple]],
    funcs: dict[str, tuple],
    entry: str,
    args: list[int],
    probe: Probe | None = None,
    max_steps: int = 4_000_000,
) -> int:
    """Execute compiled code starting at ``entry``."""

    steps = 0
    branch_buf: list[bool] = []
    mem_reads: list[int] = []

    def _call(name: str, argv: list[int]) -> int:
        nonlocal steps
        code = code_by_func[name]
        params = funcs[name][2]
        env: dict[str, int] = dict(zip(params, argv))
        stack: list[int] = []
        pc = 0
        base = _CODE_REGION + (sum(map(ord, name)) % 512) * 4096
        while pc < len(code):
            steps += 1
            if steps > max_steps:
                raise BenchmarkError("vm: step limit exceeded (infinite loop?)")
            op, arg = code[pc]
            mem_reads.append(base + (pc % 1024) * 8)
            if op == "PUSH":
                stack.append(arg)
            elif op == "LOAD":
                stack.append(env.get(arg, 0))
            elif op == "STORE":
                env[arg] = stack.pop()
            elif op == "BIN":
                b = stack.pop()
                a = stack.pop()
                stack.append(_FOLD_OPS[arg](a, b))
            elif op == "UN":
                a = stack.pop()
                stack.append(-a if arg == "-" else int(not a))
            elif op == "JZ":
                taken = stack.pop() == 0
                branch_buf.append(taken)
                if taken:
                    pc = arg
                    continue
            elif op == "JMP":
                pc = arg
                continue
            elif op == "CALL":
                fname, nargs = arg
                argv2 = stack[-nargs:] if nargs else []
                del stack[len(stack) - nargs :]
                stack.append(_call(fname, argv2))
            elif op == "RET":
                result = stack.pop() if stack else 0
                return result
            elif op == "POP":
                stack.pop()
            pc += 1
        return 0

    result = _call(entry, args)
    if probe is not None:
        # execution is only SPEC-style output validation: the real
        # benchmark never runs the compiled program, so keep its share
        # of the profile small
        probe.ops(steps)
        probe.branches(branch_buf[::4], site=4)
        probe.accesses(mem_reads[:16384:4])
    return result


def interpret(funcs: dict[str, tuple], entry: str, args: list[int], max_steps: int = 2_000_000) -> int:
    """Direct AST interpretation — the reference for output validation."""
    steps = 0

    class _Return(Exception):
        def __init__(self, value: int):
            self.value = value

    def _expr(e: tuple, env: dict[str, int]) -> int:
        nonlocal steps
        steps += 1
        if steps > max_steps:
            raise BenchmarkError("interp: step limit exceeded")
        kind = e[0]
        if kind == "num":
            return e[1]
        if kind == "var":
            return env.get(e[1], 0)
        if kind == "bin":
            return _FOLD_OPS[e[1]](_expr(e[2], env), _expr(e[3], env))
        if kind == "un":
            v = _expr(e[2], env)
            return -v if e[1] == "-" else int(not v)
        if kind == "call":
            argv = [_expr(a, env) for a in e[2]]
            return _callf(e[1], argv)
        raise BenchmarkError(f"interp: bad expr {kind}")

    def _stmt(s: tuple | None, env: dict[str, int]) -> None:
        nonlocal steps
        if s is None:
            return
        steps += 1
        if steps > max_steps:
            raise BenchmarkError("interp: step limit exceeded")
        kind = s[0]
        if kind == "block":
            for sub in s[1]:
                _stmt(sub, env)
        elif kind in ("decl", "assign"):
            env[s[1]] = _expr(s[2], env)
        elif kind == "if":
            if _expr(s[1], env):
                _stmt(s[2], env)
            elif s[3] is not None:
                _stmt(s[3], env)
        elif kind == "while":
            while _expr(s[1], env):
                _stmt(s[2], env)
        elif kind == "return":
            raise _Return(_expr(s[1], env))
        elif kind == "expr":
            _expr(s[1], env)

    def _callf(name: str, argv: list[int]) -> int:
        func = funcs[name]
        env = dict(zip(func[2], argv))
        try:
            _stmt(func[3], env)
        except _Return as r:
            return r.value
        return 0

    return _callf(entry, args)


@register_benchmark
class GccBenchmark:
    """The ``502.gcc_r`` substrate."""

    name = "502.gcc_r"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> dict[str, Any]:
        payload = workload.payload
        if not isinstance(payload, CSource):
            raise BenchmarkError(f"gcc: bad payload type {type(payload).__name__}")

        with probe.method("lex", code_bytes=3072):
            tokens = lex(payload.text, probe)

        with probe.method("parse", code_bytes=6144):
            parser = Parser(tokens)
            funcs = parser.parse_program()
            probe.ops(parser.nodes * 90)
            # AST nodes are heap-allocated and revisited in traversal
            # order: a scattered pointer walk over a multi-MiB arena
            probe.accesses(
                [_AST_REGION + (k * 193 % 32768) * 64 for k in range(parser.nodes * 2)]
            )
            # the parser dispatches on token kind — a data-dependent,
            # content-driven branch at every step
            probe.branches((t.kind == "ident" for t in tokens), site=2)
            probe.branches((t.kind == "punct" for t in tokens), site=5)
            # table-driven dispatch indexes on the token text hash; the
            # sequence is content-defined and seen only once, so the
            # dynamic predictor cannot learn it
            probe.branches(
                (zlib.crc32(t.value.encode(), k) & 1 == 1
                 for k in range(8) for t in tokens),
                site=7,
            )

        with probe.method("resolve", code_bytes=4096):
            table = resolve(funcs)
            probe.ops(parser.nodes * 16)
            probe.accesses(
                [_SYM_REGION + (sum(map(ord, name)) % 2048) * 64 for name in table]
            )
            # hash-bucket probing during symbol lookup branches on the
            # identifier hash — effectively random per distinct name
            probe.branches(
                (zlib.crc32(t.value.encode()) & 1 == 1
                 for t in tokens if t.kind == "ident"),
                site=6,
            )

        # keep the pristine AST: the reference interpreter runs the
        # unoptimized program so that validation genuinely checks every
        # optimization pass plus codegen plus the VM
        original_table = dict(table)
        stats: dict[str, int] = {}
        if payload.opt_level >= 2:
            with probe.method("fold_const", code_bytes=4096):
                funcs = optimize(funcs, stats)
                probe.ops(parser.nodes * 60)
                probe.accesses(
                    [_AST_REGION + (k * 389 % 32768) * 64 for k in range(parser.nodes)]
                )
                # whether a node folds depends on the source content
                probe.branches((ch.isdigit() for ch in payload.text[::2]), site=3)
            with probe.method("cse_pass", code_bytes=3072):
                funcs = cse(funcs, stats)
                probe.ops(parser.nodes * 8)
                probe.accesses(
                    [_AST_REGION + (k * 811 % 32768) * 64 for k in range(parser.nodes)]
                )
            table = {f[1]: f for f in funcs}

        with probe.method("codegen", code_bytes=5120):
            code = codegen(funcs)
            n_instr = sum(len(c) for c in code.values())
            probe.ops(n_instr * 40)
            probe.accesses([_CODE_REGION + (k % 8192) * 16 for k in range(n_instr)])

        with probe.method("peephole", code_bytes=3072):
            code = peephole(code, stats)
            probe.ops(n_instr * 3)

        entry = payload.entry
        if entry not in table:
            raise BenchmarkError(f"gcc: entry function {entry!r} not found")
        with probe.method("execute", code_bytes=4096):
            compiled_result = run_vm(code, table, entry, [], probe)

        interpreted_result = interpret(original_table, entry, [])

        return {
            "result": compiled_result,
            "reference": interpreted_result,
            "n_functions": len(funcs),
            "n_instructions": n_instr,
            "n_tokens": len(tokens),
            "opt_stats": stats,
        }

    def verify(self, workload: Workload, output: dict[str, Any]) -> bool:
        # SPEC-style validation: compiled output must match the reference
        return output["result"] == output["reference"] and output["n_instructions"] > 0
