"""Mini ``507.cactuBSSN_r``: a 3-D hyperbolic PDE stencil solver.

The SPEC benchmark solves the Einstein equations in vacuum with the
EinsteinToolkit's BSSN formulation — at its computational core, a
high-order finite-difference stencil update over a 3-D grid with
many coupled fields.  This substrate solves the 3-D linear wave
equation (the canonical vacuum-spacetime testbed) with a fourth-order
spatial stencil and leapfrog time integration over several coupled
field components, preserving the benchmark's character: wide stencil
reads (back-end bound), negligible branching (s = 0.2% in Table II,
another small-mean/,large-sigma caveat case), and a workload defined
purely by a *parameter file* (grid size, steps, courant factor,
dissipation), exactly how the Alberta workloads vary it.

Workload payload: :class:`CactusInput`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["CactusInput", "CactuBssnBenchmark", "run_wave"]

_FIELD_REGION = 0x9000_0000


@dataclass(frozen=True)
class CactusInput:
    """One cactuBSSN workload: the solver parameter file.

    ``grid`` is the cubic grid edge length; ``steps`` the number of
    leapfrog steps; ``courant`` the time-step factor (must satisfy the
    3-D CFL bound); ``dissipation`` the Kreiss-Oliger coefficient;
    ``n_fields`` how many coupled components evolve (BSSN has ~25).
    """

    grid: int = 16
    steps: int = 12
    courant: float = 0.25
    dissipation: float = 0.01
    n_fields: int = 4

    def __post_init__(self) -> None:
        if self.grid < 8:
            raise ValueError("CactusInput: grid must be >= 8")
        if self.steps < 1:
            raise ValueError("CactusInput: steps must be >= 1")
        if not 0.0 < self.courant <= 0.5:
            raise ValueError("CactusInput: courant must be in (0, 0.5] for stability")
        if self.dissipation < 0 or self.dissipation > 0.2:
            raise ValueError("CactusInput: dissipation must be in [0, 0.2]")
        if self.n_fields < 1:
            raise ValueError("CactusInput: n_fields must be >= 1")


def _laplacian4(u: np.ndarray) -> np.ndarray:
    """Fourth-order 3-D Laplacian (interior only; boundary untouched)."""
    lap = np.zeros_like(u)
    c0, c1, c2 = -2.5, 4.0 / 3.0, -1.0 / 12.0
    core = 3 * c0 * u[2:-2, 2:-2, 2:-2]
    for axis in range(3):
        s1p = [slice(2, -2)] * 3
        s1m = [slice(2, -2)] * 3
        s2p = [slice(2, -2)] * 3
        s2m = [slice(2, -2)] * 3
        s1p[axis] = slice(3, -1)
        s1m[axis] = slice(1, -3)
        s2p[axis] = slice(4, None)
        s2m[axis] = slice(None, -4)
        core = core + c1 * (u[tuple(s1p)] + u[tuple(s1m)]) + c2 * (
            u[tuple(s2p)] + u[tuple(s2m)]
        )
    lap[2:-2, 2:-2, 2:-2] = core
    return lap


def run_wave(config: CactusInput, probe: Probe | None = None) -> dict:
    """Evolve coupled wave fields; returns conservation diagnostics."""
    n = config.grid
    dt = config.courant  # dx = 1
    coords = np.linspace(-1.0, 1.0, n)
    xx, yy, zz = np.meshgrid(coords, coords, coords, indexing="ij")
    r2 = xx * xx + yy * yy + zz * zz

    fields = []
    for k in range(config.n_fields):
        u = np.exp(-r2 / (0.1 + 0.05 * k))
        v = np.zeros_like(u)  # du/dt
        fields.append((u, v))
    cells = n**3

    if probe is not None:
        with probe.method("setup_initial_data", code_bytes=2048):
            probe.ops(cells * config.n_fields, kind="fp")
            probe.accesses([_FIELD_REGION + i for i in range(0, cells * 8, 512)])

    energy_trace = []
    for _step in range(config.steps):
        total_energy = 0.0
        new_fields = []
        for k, (u, v) in enumerate(fields):
            lap = _laplacian4(u)
            v_new = v + dt * lap
            if config.dissipation > 0:
                # Kreiss-Oliger-style damping acts on the time derivative
                v_new = v_new * (1.0 - config.dissipation)
            u_new = u + dt * v_new
            # reflective boundaries
            u_new[0:2, :, :] = 0.0
            u_new[-2:, :, :] = 0.0
            u_new[:, 0:2, :] = 0.0
            u_new[:, -2:, :] = 0.0
            u_new[:, :, 0:2] = 0.0
            u_new[:, :, -2:] = 0.0
            new_fields.append((u_new, v_new))
            total_energy += float((u_new * u_new + v_new * v_new).sum())
            if probe is not None:
                base = _FIELD_REGION + k * cells * 16
                # each evolved component has its own generated RHS
                # kernel; the aggregate footprint dwarfs the L1I, which
                # is what makes the real benchmark front-end bound
                with probe.method(f"bssn_rhs_{k % 4}", code_bytes=16384):
                    # the wide stencil reads 13 points per cell
                    probe.ops(cells * 16, kind="fp")
                    probe.accesses([base + i for i in range(0, cells * 8, 192)])
                    # wave-front threshold checks: spatially clustered,
                    # hence mostly — but not perfectly — predictable
                    probe.branches(
                        (bool(x) for x in (np.abs(u_new.ravel()[::97]) > 1e-3)),
                        site=2,
                    )
                with probe.method("time_integrate", code_bytes=2048):
                    probe.ops(cells * 4, kind="fp")
                    probe.accesses([base + cells * 8 + i for i in range(0, cells * 8, 384)])
        fields = new_fields
        if probe is not None:
            with probe.method("apply_boundaries", code_bytes=1536):
                probe.ops(n * n * 12 * config.n_fields, kind="fp")
        energy_trace.append(total_energy)
        if not np.isfinite(total_energy) or total_energy > 1e12:
            raise BenchmarkError(f"cactuBSSN: evolution diverged at step {_step}")

    return {
        "steps": config.steps,
        "final_energy": energy_trace[-1],
        "initial_energy": energy_trace[0],
        "energy_trace": energy_trace,
        "cells": cells,
    }


@register_benchmark
class CactuBssnBenchmark:
    """The ``507.cactuBSSN_r`` substrate."""

    name = "507.cactuBSSN_r"
    suite = "fp"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, CactusInput):
            raise BenchmarkError(f"cactuBSSN: bad payload type {type(payload).__name__}")
        return run_wave(payload, probe)

    def verify(self, workload: Workload, output: dict) -> bool:
        # a stable evolution keeps energy bounded by its initial value
        # (dissipation only removes energy; reflection conserves it)
        if output["final_energy"] < 0:
            return False
        return output["final_energy"] <= output["initial_energy"] * 4.0
