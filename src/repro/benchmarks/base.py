"""Benchmark protocol shared by all mini-benchmark substrates.

Each SPEC CPU 2017 program reproduced here is a class implementing
:class:`Benchmark`: it has a SPEC-style ``name`` (``"505.mcf_r"``), runs
real algorithmic work on a workload payload while reporting telemetry
to a probe, and can verify its own output (SPEC validates every run's
output against expected results; our substrates carry their own
invariant checks instead).
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from ..core.workload import Workload
from ..machine.telemetry import Probe

__all__ = ["Benchmark", "BenchmarkError"]


class BenchmarkError(Exception):
    """A benchmark failed to execute a workload (bad input, solver failure)."""


@runtime_checkable
class Benchmark(Protocol):
    """Protocol for mini-benchmark substrates."""

    #: SPEC-style identifier, e.g. ``"505.mcf_r"``.
    name: str
    #: Suite membership: ``"int"`` or ``"fp"``.
    suite: str

    def run(self, workload: Workload, probe: Probe) -> Any:
        """Execute the workload, reporting telemetry; return the output."""
        ...

    def verify(self, workload: Workload, output: Any) -> bool:
        """Check the output of :meth:`run` (SPEC-style validation)."""
        ...
