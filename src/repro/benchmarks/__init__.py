"""Mini-benchmark substrates, one per SPEC CPU 2017 program."""

from .base import Benchmark, BenchmarkError
from .blender import BlenderBenchmark, BlendScene, MeshObject
from .cactubssn import CactuBssnBenchmark, CactusInput
from .deepsjeng import ChessInput, DeepsjengBenchmark, Position
from .exchange2 import Exchange2Benchmark, SudokuInput
from .gcc import CSource, GccBenchmark
from .lbm import LbmBenchmark, LbmInput
from .leela import GoBoard, GoInput, LeelaBenchmark
from .mcf import McfBenchmark, McfInstance, NetworkSimplex
from .nab import NabBenchmark, NabInput
from .omnetpp import OmnetInput, OmnetppBenchmark
from .parest import ParestBenchmark, ParestInput
from .povray import PovrayBenchmark, SceneInput
from .wrf import WrfBenchmark, WrfInput
from .x264 import VideoInput, X264Benchmark
from .xalancbmk import XalanInput, XalancbmkBenchmark
from .xz import XzBenchmark, XzInput

__all__ = [
    "Benchmark",
    "BenchmarkError",
    "BlenderBenchmark",
    "BlendScene",
    "MeshObject",
    "CactuBssnBenchmark",
    "CactusInput",
    "ChessInput",
    "DeepsjengBenchmark",
    "Position",
    "Exchange2Benchmark",
    "SudokuInput",
    "CSource",
    "GccBenchmark",
    "LbmBenchmark",
    "LbmInput",
    "GoBoard",
    "GoInput",
    "LeelaBenchmark",
    "McfBenchmark",
    "McfInstance",
    "NetworkSimplex",
    "NabBenchmark",
    "NabInput",
    "OmnetInput",
    "OmnetppBenchmark",
    "ParestBenchmark",
    "ParestInput",
    "PovrayBenchmark",
    "SceneInput",
    "WrfBenchmark",
    "WrfInput",
    "VideoInput",
    "X264Benchmark",
    "XalanInput",
    "XalancbmkBenchmark",
    "XzBenchmark",
    "XzInput",
]
