"""Mini ``526.blender_r``: a 3-D rendering pipeline.

The SPEC benchmark renders .blend scenes.  This substrate implements a
software rasterization pipeline over triangle meshes:

* procedural mesh construction (cube, UV sphere, subdivided plane);
* modifier application (Catmull-Clark-style subdivision surface —
  midpoint subdivision — and displacement noise);
* vertex transformation (model/view/projection);
* backface culling and z-buffered triangle rasterization;
* Gouraud shading with a directional light.

Scenes differ in *which pipeline stages dominate* — subdivision-heavy
character meshes vs. raster-heavy large scenes vs. transform-heavy
many-object scenes — which is why blender shows one of the larger
coverage variations in Table II (``mu_g(M) = 44``) while staying
retiring-heavy (41.1%).

Workload payload: :class:`BlendScene` — the .blend stand-in, including
frame range (the Alberta workloads vary start frame and frame count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["BlendScene", "MeshObject", "BlenderBenchmark", "make_mesh", "render_frame"]

_VTX_REGION = 0xE000_0000
_ZBUF_REGION = 0xE800_0000


@dataclass(frozen=True)
class MeshObject:
    """One object: primitive kind + modifiers + animation orbit."""

    kind: str  # "cube" | "sphere" | "plane"
    subdivisions: int = 0
    displace: float = 0.0
    scale: float = 1.0
    orbit_radius: float = 2.0
    orbit_speed: float = 0.3
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("cube", "sphere", "plane"):
            raise ValueError(f"MeshObject: unknown primitive {self.kind!r}")
        if not 0 <= self.subdivisions <= 4:
            raise ValueError("MeshObject: subdivisions must be in [0, 4]")
        if self.scale <= 0:
            raise ValueError("MeshObject: scale must be positive")


@dataclass(frozen=True)
class BlendScene:
    """The .blend stand-in: objects + camera + frame range."""

    objects: tuple[MeshObject, ...]
    start_frame: int = 1
    n_frames: int = 2
    width: int = 48
    height: int = 36
    renderable: bool = True  # resource-only .blend files are not

    def __post_init__(self) -> None:
        if not self.objects:
            raise ValueError("BlendScene: need at least one object")
        if self.n_frames < 1 or self.start_frame < 0:
            raise ValueError("BlendScene: bad frame range")
        if self.width < 8 or self.height < 8:
            raise ValueError("BlendScene: image too small")


def make_mesh(obj: MeshObject, seed_noise: int = 0) -> tuple[list, list]:
    """Build (vertices, triangles) for a primitive with modifiers."""
    verts: list[list[float]] = []
    tris: list[tuple[int, int, int]] = []
    s = obj.scale
    if obj.kind == "cube":
        corners = [
            (x, y, z)
            for x in (-s, s)
            for y in (-s, s)
            for z in (-s, s)
        ]
        verts = [list(c) for c in corners]
        faces = [
            (0, 1, 3, 2), (4, 6, 7, 5), (0, 4, 5, 1),
            (2, 3, 7, 6), (0, 2, 6, 4), (1, 5, 7, 3),
        ]
        for a, b, c, d in faces:
            tris.append((a, b, c))
            tris.append((a, c, d))
    elif obj.kind == "sphere":
        n_lat, n_lon = 6, 8
        for i in range(n_lat + 1):
            theta = math.pi * i / n_lat
            for j in range(n_lon):
                phi = 2 * math.pi * j / n_lon
                verts.append(
                    [
                        s * math.sin(theta) * math.cos(phi),
                        s * math.cos(theta),
                        s * math.sin(theta) * math.sin(phi),
                    ]
                )
        for i in range(n_lat):
            for j in range(n_lon):
                a = i * n_lon + j
                b = i * n_lon + (j + 1) % n_lon
                c = (i + 1) * n_lon + j
                d = (i + 1) * n_lon + (j + 1) % n_lon
                tris.append((a, b, c))
                tris.append((b, d, c))
    else:  # plane (tilted toward the camera so it is never seen edge-on)
        n = 4
        for i in range(n + 1):
            for j in range(n + 1):
                u_c = 2 * i / n - 1
                verts.append([s * u_c, 0.45 * s * u_c, s * (2 * j / n - 1)])
        for i in range(n):
            for j in range(n):
                a = i * (n + 1) + j
                b = a + 1
                c = a + n + 1
                d = c + 1
                tris.append((a, b, c))
                tris.append((b, d, c))

    # subdivision-surface modifier: midpoint subdivision
    for _ in range(obj.subdivisions):
        new_tris: list[tuple[int, int, int]] = []
        edge_mid: dict[tuple[int, int], int] = {}

        def _mid(a: int, b: int) -> int:
            key = (min(a, b), max(a, b))
            idx = edge_mid.get(key)
            if idx is None:
                va, vb = verts[a], verts[b]
                verts.append([(va[k] + vb[k]) / 2 for k in range(3)])
                idx = len(verts) - 1
                edge_mid[key] = idx
            return idx

        for a, b, c in tris:
            ab, bc, ca = _mid(a, b), _mid(b, c), _mid(c, a)
            new_tris.extend([(a, ab, ca), (ab, b, bc), (ca, bc, c), (ab, bc, ca)])
        tris = new_tris

    # displacement modifier: deterministic pseudo-noise along normals
    if obj.displace > 0:
        for i, v in enumerate(verts):
            n = math.sqrt(v[0] ** 2 + v[1] ** 2 + v[2] ** 2) or 1.0
            wob = math.sin(v[0] * 5 + seed_noise) * math.cos(v[2] * 5) * obj.displace
            verts[i] = [v[k] * (1 + wob / n) for k in range(3)]

    return verts, tris


def render_frame(
    scene: BlendScene,
    frame: int,
    meshes: list[tuple[MeshObject, list, list]],
    probe: Probe | None,
) -> dict:
    """Transform, cull, rasterize and shade one frame."""
    w, h = scene.width, scene.height
    zbuf = [[1e18] * w for _ in range(h)]
    shaded = [[0.0] * w for _ in range(h)]
    covered = 0
    tris_drawn = 0
    cull_branches: list[bool] = []
    z_branches: list[bool] = []
    raster_reads: list[int] = []

    light = (0.577, -0.577, 0.577)
    t = frame * 0.1

    for obj_idx, (obj, verts, tris) in enumerate(meshes):
        # model transform: orbit + spin
        angle = obj.orbit_speed * t + obj.phase
        cx = obj.orbit_radius * math.cos(angle)
        cz = 6.0 + obj.orbit_radius * math.sin(angle)
        ca, sa = math.cos(t + obj.phase), math.sin(t + obj.phase)
        transformed: list[tuple[float, float, float]] = []
        for v in verts:
            x = v[0] * ca - v[2] * sa + cx
            y = v[1]
            z = v[0] * sa + v[2] * ca + cz
            transformed.append((x, y, z))
        if probe is not None:
            with probe.method("transform_vertices", code_bytes=2048):
                probe.ops(len(verts) * 12, kind="fp")
                probe.accesses(
                    [_VTX_REGION + obj_idx * 1 << 16 | (i * 24) & 0xFFFF for i in range(len(verts))]
                )

        for a, b, c in tris:
            va, vb, vc = transformed[a], transformed[b], transformed[c]
            if va[2] <= 0.2 or vb[2] <= 0.2 or vc[2] <= 0.2:
                continue
            # project
            pa = (va[0] / va[2], va[1] / va[2])
            pb = (vb[0] / vb[2], vb[1] / vb[2])
            pc = (vc[0] / vc[2], vc[1] / vc[2])
            # backface cull via signed area; open surfaces (planes) are
            # double-sided, closed primitives cull their far hemisphere
            area = (pb[0] - pa[0]) * (pc[1] - pa[1]) - (pb[1] - pa[1]) * (pc[0] - pa[0])
            if obj.kind == "plane":
                front_facing = abs(area) > 1e-9
            else:
                front_facing = area > 1e-9
            cull_branches.append(front_facing)
            if not front_facing:
                continue
            tris_drawn += 1
            # flat normal for shading
            ux, uy, uz = vb[0] - va[0], vb[1] - va[1], vb[2] - va[2]
            wx, wy, wz = vc[0] - va[0], vc[1] - va[1], vc[2] - va[2]
            nx, ny, nz = uy * wz - uz * wy, uz * wx - ux * wz, ux * wy - uy * wx
            nlen = math.sqrt(nx * nx + ny * ny + nz * nz) or 1.0
            intensity = max(
                0.1, (nx * light[0] + ny * light[1] + nz * light[2]) / nlen
            )
            # raster bounding box in screen space
            xs = [int((p[0] * 0.9 + 0.5) * w) for p in (pa, pb, pc)]
            ys = [int((0.5 - p[1] * 0.9) * h) for p in (pa, pb, pc)]
            x0, x1 = max(0, min(xs)), min(w - 1, max(xs))
            y0, y1 = max(0, min(ys)), min(h - 1, max(ys))
            if x1 < x0 or y1 < y0:
                continue
            zavg = (va[2] + vb[2] + vc[2]) / 3
            for py in range(y0, y1 + 1):
                row = zbuf[py]
                for px in range(x0, x1 + 1):
                    visible = zavg < row[px]
                    z_branches.append(visible)
                    raster_reads.append(_ZBUF_REGION + (py * w + px) * 8)
                    if visible:
                        if row[px] > 1e17:
                            covered += 1
                        row[px] = zavg
                        shaded[py][px] = intensity

        if probe is not None and len(raster_reads) >= 16384:
            _flush_raster(probe, cull_branches, z_branches, raster_reads)
            cull_branches, z_branches, raster_reads = [], [], []

    if probe is not None:
        _flush_raster(probe, cull_branches, z_branches, raster_reads)
    total_light = sum(sum(row) for row in shaded)
    return {
        "covered": covered,
        "tris_drawn": tris_drawn,
        "mean_intensity": total_light / (w * h),
    }


def _flush_raster(probe: Probe, cull, zb, reads) -> None:
    with probe.method("rasterize", code_bytes=4096):
        probe.branches(zb, site=1)
        probe.accesses(reads)
        probe.ops(len(reads) * 5)
    with probe.method("cull_backface", code_bytes=1024):
        probe.branches(cull, site=2)
        probe.ops(len(cull) * 9, kind="fp")
    with probe.method("shade_gouraud", code_bytes=1536):
        probe.ops(len(cull) * 14, kind="fp")
        probe.ops(len(cull), kind="fpdiv")


@register_benchmark
class BlenderBenchmark:
    """The ``526.blender_r`` substrate."""

    name = "526.blender_r"
    suite = "fp"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, BlendScene):
            raise BenchmarkError(f"blender: bad payload type {type(payload).__name__}")
        if not payload.renderable:
            raise BenchmarkError(
                "blender: .blend file is a resource library, not a renderable scene"
            )
        meshes = []
        with probe.method("apply_modifiers", code_bytes=5120):
            total_verts = 0
            for i, obj in enumerate(payload.objects):
                verts, tris = make_mesh(obj, seed_noise=i)
                meshes.append((obj, verts, tris))
                total_verts += len(verts)
            probe.ops(total_verts * 20, kind="fp")
            probe.accesses([_VTX_REGION + i * 24 for i in range(total_verts)])

        frames = []
        for f in range(payload.start_frame, payload.start_frame + payload.n_frames):
            frames.append(render_frame(payload, f, meshes, probe))
        return {
            "frames": len(frames),
            "total_tris": sum(fr["tris_drawn"] for fr in frames),
            "coverage": [fr["covered"] for fr in frames],
            "mean_intensity": sum(fr["mean_intensity"] for fr in frames) / len(frames),
        }

    def verify(self, workload: Workload, output: dict) -> bool:
        if output["frames"] != workload.payload.n_frames:
            return False
        # something must actually land on screen over the frame range
        # (individual frames may be empty when an orbit leaves the view)
        return output["total_tris"] > 0 and sum(output["coverage"]) > 0
