"""Mini ``557.xz_r``: an LZMA-style sliding-window compressor.

The SPEC benchmark decompresses a stored file to memory, compresses it,
and decompresses it again.  This substrate implements the same pipeline
with a real LZ77 match finder (hash chains over a sliding-window
dictionary, greedy parse with lazy-match heuristic) and an adaptive
binary range coder — the two phases whose balance the paper found to be
workload-sensitive (its "memoization" discovery: inputs shorter than
the dictionary degenerate into dictionary lookups).

Workload payload: :class:`XzInput` with the raw content and compressor
parameters (dictionary size, minimum/maximum match lengths).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["XzInput", "XzBenchmark", "compress", "decompress"]

_MIN_MATCH = 3
_HASH_BITS = 14
_WINDOW_REGION = 0x0100_0000
_HASH_REGION = 0x0200_0000
_CHAIN_REGION = 0x0300_0000
_PROB_REGION = 0x0400_0000


@dataclass(frozen=True)
class XzInput:
    """One xz workload: content plus compressor parameters.

    ``stored`` optionally carries the pre-compressed form of ``content``
    (the real benchmark's input file *is* compressed); when absent the
    benchmark compresses on the fly to create it.
    """

    content: bytes
    dict_size: int = 1 << 13
    max_match: int = 64
    max_chain: int = 32
    lazy: bool = True
    stored: bytes | None = None

    def __post_init__(self) -> None:
        if not self.content:
            raise ValueError("XzInput: content must be non-empty")
        if self.dict_size < 256 or self.dict_size & (self.dict_size - 1):
            raise ValueError("XzInput: dict_size must be a power of two >= 256")
        if self.max_match < _MIN_MATCH:
            raise ValueError(f"XzInput: max_match must be >= {_MIN_MATCH}")
        if self.max_chain < 1:
            raise ValueError("XzInput: max_chain must be >= 1")


class _RangeEncoder:
    """Adaptive binary range coder (the LZMA entropy-coding stage).

    Uses the canonical LZMA carry-propagation scheme: emitted bytes are
    buffered through ``cache``/``cache_size`` so that a carry out of the
    32-bit ``low`` register can ripple into bytes already produced.
    """

    TOP = 1 << 24

    def __init__(self) -> None:
        self.low = 0
        self.range_ = 0xFFFFFFFF
        self.cache = 0
        self.cache_size = 1
        self.out = bytearray()

    def _shift_low(self) -> None:
        if self.low < 0xFF000000 or self.low >= 0x1_0000_0000:
            carry = self.low >> 32
            temp = self.cache
            while True:
                self.out.append((temp + carry) & 0xFF)
                temp = 0xFF
                self.cache_size -= 1
                if self.cache_size == 0:
                    break
            self.cache = (self.low >> 24) & 0xFF
        self.cache_size += 1
        self.low = (self.low << 8) & 0xFFFFFFFF

    def encode_bit(self, probs: list[int], idx: int, bit: int) -> None:
        prob = probs[idx]
        bound = (self.range_ >> 11) * prob
        if bit == 0:
            self.range_ = bound
            probs[idx] = prob + ((2048 - prob) >> 5)
        else:
            self.low += bound
            self.range_ -= bound
            probs[idx] = prob - (prob >> 5)
        while self.range_ < self.TOP:
            self.range_ <<= 8
            self._shift_low()

    def finish(self) -> bytes:
        for _ in range(5):
            self._shift_low()
        return bytes(self.out)


class _RangeDecoder:
    """Mirror of :class:`_RangeEncoder`."""

    TOP = 1 << 24

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 5
        self.range_ = 0xFFFFFFFF
        self.code = 0
        for i in range(5):
            self.code = (self.code << 8) | (data[i] if i < len(data) else 0)
        self.code &= 0xFFFFFFFF

    def decode_bit(self, probs: list[int], idx: int) -> int:
        prob = probs[idx]
        bound = (self.range_ >> 11) * prob
        if self.code < bound:
            bit = 0
            self.range_ = bound
            probs[idx] = prob + ((2048 - prob) >> 5)
        else:
            bit = 1
            self.code -= bound
            self.range_ -= bound
            probs[idx] = prob - (prob >> 5)
        while self.range_ < self.TOP:
            nxt = self.data[self.pos] if self.pos < len(self.data) else 0
            self.pos += 1
            self.code = ((self.code << 8) | nxt) & 0xFFFFFFFF
            self.range_ <<= 8
        return bit

    def byte_position(self) -> int:
        return self.pos


def _new_probs(n: int) -> list[int]:
    return [1024] * n


def _encode_number(enc: _RangeEncoder, probs: list[int], value: int, bits: int) -> None:
    for i in range(bits - 1, -1, -1):
        enc.encode_bit(probs, bits - 1 - i, (value >> i) & 1)


def _decode_number(dec: _RangeDecoder, probs: list[int], bits: int) -> int:
    value = 0
    for i in range(bits):
        value = (value << 1) | dec.decode_bit(probs, i)
    return value


def compress(
    data: bytes,
    params: XzInput,
    probe: Probe | None = None,
) -> bytes:
    """LZ77 + range-coder compression of ``data``.

    The token stream is: flag bit (0 = literal, 1 = match), literal
    bytes coded bit-by-bit with per-position-context probabilities,
    matches coded as (length, distance) fixed-width numbers under
    adaptive probabilities.
    """
    n = len(data)
    dict_mask = params.dict_size - 1
    hash_mask = (1 << _HASH_BITS) - 1
    head: list[int] = [-1] * (1 << _HASH_BITS)
    chain: list[int] = [-1] * params.dict_size

    enc = _RangeEncoder()
    flag_probs = _new_probs(2)
    lit_probs = _new_probs(256 * 8)
    len_probs = _new_probs(16)
    dist_probs = _new_probs(32)

    max_match = params.max_match
    min_pos_limit = params.dict_size

    def _hash3(pos: int) -> int:
        return ((data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]) & hash_mask

    pos = 0
    match_probes: list[bool] = []
    bit_branches: list[bool] = []
    window_reads: list[int] = []
    n_matches = 0
    n_literals = 0
    total_match_len = 0

    def _find_match(at: int) -> tuple[int, int]:
        """Hash-chain search for the longest match starting at ``at``."""
        if at + _MIN_MATCH > n:
            return 0, 0
        best_len = 0
        best_dist = 0
        h = _hash3(at)
        window_reads.append(_HASH_REGION + h * 4)
        cand = head[h]
        tries = params.max_chain
        lo_limit = at - min_pos_limit
        while cand >= 0 and cand >= lo_limit and tries > 0:
            tries -= 1
            length = 0
            limit = min(max_match, n - at)
            cpos = cand
            # data-dependent inner match-extension loop
            while length < limit and data[cpos + length] == data[at + length]:
                length += 1
            # the extension loop is a data-dependent branch: `length`
            # taken iterations followed by one not-taken exit
            match_probes.extend([True] * min(length, 16))
            match_probes.append(False)
            match_probes.append(length >= _MIN_MATCH)
            window_reads.append(_WINDOW_REGION + (cand & dict_mask) * 8)
            if length > best_len:
                best_len = length
                best_dist = at - cand
                if length >= max_match:
                    break
            window_reads.append(_CHAIN_REGION + (cand & dict_mask) * 16)
            cand = chain[cand & dict_mask]
        return best_len, best_dist

    deferred: tuple[int, int] | None = None  # lazy: match found at pos
    while pos < n:
        if deferred is not None:
            best_len, best_dist = deferred
            deferred = None
        else:
            best_len, best_dist = _find_match(pos)

        # lazy matching: before committing to a match, peek at pos + 1;
        # if a strictly longer match starts there, emit a literal now
        # and keep the better match for the next iteration
        if params.lazy and _MIN_MATCH <= best_len < max_match and pos + 1 < n:
            next_len, next_dist = _find_match(pos + 1)
            match_probes.append(next_len > best_len)
            if next_len > best_len:
                deferred = (next_len, next_dist)
                best_len = 0  # force the literal path for this byte

        if best_len >= _MIN_MATCH:
            enc.encode_bit(flag_probs, 0, 1)
            _encode_number(enc, len_probs, best_len, 8)
            _encode_number(enc, dist_probs, best_dist, 16)
            n_matches += 1
            total_match_len += best_len
            end = min(pos + best_len, n - 2)
            p = pos
            while p < end:
                h = _hash3(p)
                chain[p & dict_mask] = head[h]
                head[h] = p
                p += 1
            pos += best_len
        else:
            enc.encode_bit(flag_probs, 0, 0)
            byte = data[pos]
            # literal context: top 3 bits of the previous byte (known to
            # the decoder as well, keeping the adaptive models in sync)
            ctx = (data[pos - 1] >> 5) if pos > 0 else 0
            for i in range(7, -1, -1):
                bit = (byte >> i) & 1
                enc.encode_bit(lit_probs, ctx * 8 + (7 - i), bit)
                # the range coder branches on the bit value itself — a
                # data-dependent branch that is unpredictable exactly when
                # the content is incompressible
                bit_branches.append(bool(bit))
            n_literals += 1
            if pos + _MIN_MATCH <= n:
                h = _hash3(pos)
                chain[pos & dict_mask] = head[h]
                head[h] = pos
            pos += 1

        if probe is not None and len(window_reads) >= 8192:
            probe.accesses(window_reads)
            probe.branches(match_probes, site=1)
            probe.branches(bit_branches, site=3)
            window_reads.clear()
            match_probes.clear()
            bit_branches.clear()

    if probe is not None:
        probe.accesses(window_reads)
        probe.branches(match_probes, site=1)
        probe.branches(bit_branches, site=3)
        probe.count("matches", n_matches)
        probe.count("literals", n_literals)
        probe.count("match_bytes", total_match_len)
        # entropy-coder work: ~9 ops per literal bit, ~24 per match token
        probe.ops(n_literals * 9 * 8 + n_matches * 24 * 3)
        probe.accesses(
            _PROB_REGION
            + (
                np.arange(0, n_literals * 8 + n_matches * 24, 5, dtype=np.int64)
                * 31
                % 32768
            )
            * 8
        )

    return enc.finish()


def decompress(blob: bytes, expected_size: int, probe: Probe | None = None) -> bytes:
    """Inverse of :func:`compress`."""
    dec = _RangeDecoder(blob)
    flag_probs = _new_probs(2)
    lit_probs = _new_probs(256 * 8)
    len_probs = _new_probs(16)
    dist_probs = _new_probs(32)

    out = bytearray()
    copy_branches: list[bool] = []
    bit_branches: list[bool] = []
    reads: list[int] = []
    while len(out) < expected_size:
        if dec.decode_bit(flag_probs, 0):
            length = _decode_number(dec, len_probs, 8)
            dist = _decode_number(dec, dist_probs, 16)
            if dist <= 0 or dist > len(out) or length < _MIN_MATCH:
                raise BenchmarkError("xz: corrupt stream (bad match)")
            start = len(out) - dist
            for i in range(length):
                out.append(out[start + i])
                reads.append(_WINDOW_REGION + ((start + i) & 0xFFFF))
            copy_branches.append(True)
        else:
            # literal context mirrors the encoder: top 3 bits of the
            # previous (already decoded) byte
            ctx = (out[-1] >> 5) if out else 0
            byte = 0
            for i in range(8):
                bit = dec.decode_bit(lit_probs, ctx * 8 + i)
                byte = (byte << 1) | bit
                bit_branches.append(bool(bit))
            out.append(byte)
            copy_branches.append(False)
        if probe is not None and len(reads) >= 8192:
            probe.accesses(reads)
            probe.branches(bit_branches, site=4)
            reads.clear()
            bit_branches.clear()
    if probe is not None:
        probe.accesses(reads)
        probe.branches(copy_branches, site=2)
        probe.branches(bit_branches, site=4)
        probe.ops(len(out) * 6)
    return bytes(out)


@register_benchmark
class XzBenchmark:
    """The ``557.xz_r`` substrate: decompress -> compress -> decompress."""

    name = "557.xz_r"
    suite = "int"

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, XzInput):
            raise BenchmarkError(f"xz: bad payload type {type(payload).__name__}")

        # Stage 1: the stored input is itself compressed; decode it.
        stored = payload.stored
        if stored is None:
            stored = compress(payload.content, payload)
        with probe.method("lzma_decode", code_bytes=3072):
            content = decompress(stored, len(payload.content), probe)
        if content != payload.content:
            raise BenchmarkError("xz: stage-1 round trip failed")

        # Stage 2: compress the decoded content.
        with probe.method("lzma_encode", code_bytes=4096):
            blob = compress(content, payload, probe)

        # Stage 3: decompress again and check.
        with probe.method("lzma_decode_check", code_bytes=3072):
            again = decompress(blob, len(content), probe)

        with probe.method("crc_check", code_bytes=512):
            crc = 0
            for i in range(0, len(again), 64):
                chunk = again[i : i + 64]
                crc = (crc * 31 + sum(chunk)) & 0xFFFFFFFF
            probe.ops(len(again) // 8)

        return {
            "ok": again == content,
            "original_size": len(content),
            "compressed_size": len(blob),
            "ratio": len(blob) / len(content),
            "crc": crc,
        }

    def verify(self, workload: Workload, output: dict) -> bool:
        return bool(output["ok"]) and output["compressed_size"] > 0
