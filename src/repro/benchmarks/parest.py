"""Mini ``510.parest_r``: a finite-element PDE solver.

The SPEC benchmark is parest, a deal.II-based finite-element parameter
estimation code.  Its computational heart — assembling a sparse system
from elements and solving it with conjugate gradients — is what this
substrate implements from scratch:

* bilinear quadrilateral elements on a structured 2-D mesh;
* sparse (CSR) stiffness-matrix assembly for the Poisson problem
  ``-div(a grad u) = f`` with a spatially varying coefficient;
* a Jacobi-preconditioned conjugate-gradient solver;
* residual verification against the assembled system.

Table II shows parest as strongly retiring-dominated (53.7%) with a
modest coverage variation (``mu_g(M) = 5``) — assembly vs. solve
balance shifts with mesh size and solver tolerance, reproduced here.

Workload payload: :class:`ParestInput`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.registry import register_benchmark
from ..core.workload import Workload
from ..machine.telemetry import Probe
from .base import BenchmarkError

__all__ = ["ParestInput", "ParestBenchmark", "assemble_poisson", "conjugate_gradient"]

_MATRIX_REGION = 0xA000_0000
_VECTOR_REGION = 0xA800_0000


@dataclass(frozen=True)
class ParestInput:
    """One parest workload: mesh resolution + problem/solver parameters."""

    mesh: int = 24
    tolerance: float = 1e-8
    coefficient_kind: str = "smooth"  # "smooth" | "checker" | "spike"
    max_iterations: int = 2000
    #: run the inverse problem: recover the coefficient scale from
    #: synthetic observations via candidate forward solves (the actual
    #: job of the real parest benchmark)
    estimate: bool = False
    candidate_scales: tuple[float, ...] = (0.5, 0.75, 1.0, 1.5, 2.0)

    def __post_init__(self) -> None:
        if self.mesh < 4:
            raise ValueError("ParestInput: mesh must be >= 4")
        if self.estimate and len(self.candidate_scales) < 2:
            raise ValueError("ParestInput: estimation needs >= 2 candidate scales")
        if not 0 < self.tolerance < 1:
            raise ValueError("ParestInput: tolerance must be in (0, 1)")
        if self.coefficient_kind not in ("smooth", "checker", "spike"):
            raise ValueError(f"ParestInput: unknown coefficient {self.coefficient_kind!r}")
        if self.max_iterations < 10:
            raise ValueError("ParestInput: max_iterations must be >= 10")


def _coefficient(kind: str, n: int) -> np.ndarray:
    """Per-cell diffusion coefficient field."""
    yy, xx = np.mgrid[0:n, 0:n] / n
    if kind == "smooth":
        return 1.0 + 0.5 * np.sin(2 * np.pi * xx) * np.cos(2 * np.pi * yy)
    if kind == "checker":
        return np.where(((xx * 4).astype(int) + (yy * 4).astype(int)) % 2 == 0, 1.0, 10.0)
    # spike: a high-contrast inclusion
    field = np.ones((n, n))
    field[(xx - 0.5) ** 2 + (yy - 0.5) ** 2 < 0.04] = 100.0
    return field


def assemble_poisson(
    mesh: int,
    coefficient_kind: str,
    probe: Probe | None = None,
    scale: float = 1.0,
) -> tuple[dict, np.ndarray]:
    """Assemble the CSR Poisson system on an n x n quad mesh.

    Interior nodes are unknowns (Dirichlet boundary u = 0).  Returns
    (csr, rhs) where ``csr`` has 'data', 'indices', 'indptr'.
    """
    n = mesh
    coef = _coefficient(coefficient_kind, n) * scale
    n_interior = (n - 1) * (n - 1)

    def node_id(i: int, j: int) -> int:
        """Interior node index for grid point (i, j), or -1 on boundary."""
        if 1 <= i < n and 1 <= j < n:
            return (i - 1) * (n - 1) + (j - 1)
        return -1

    # element stiffness for bilinear quad with coefficient a:
    # the classic 4x4 matrix a/6 * [[4,-1,-2,-1], ...]
    base_ke = np.array(
        [
            [4, -1, -2, -1],
            [-1, 4, -1, -2],
            [-2, -1, 4, -1],
            [-1, -2, -1, 4],
        ],
        dtype=np.float64,
    ) / 6.0

    entries: dict[tuple[int, int], float] = {}
    rhs = np.zeros(n_interior)
    touches: list[int] = []
    for ei in range(n):
        for ej in range(n):
            a = coef[ei, ej]
            nodes = [
                node_id(ei, ej),
                node_id(ei, ej + 1),
                node_id(ei + 1, ej + 1),
                node_id(ei + 1, ej),
            ]
            for r in range(4):
                nr = nodes[r]
                if nr < 0:
                    continue
                rhs[nr] += 0.25  # unit load
                for c in range(4):
                    nc = nodes[c]
                    if nc < 0:
                        continue
                    key = (nr, nc)
                    entries[key] = entries.get(key, 0.0) + a * base_ke[r, c]
                    touches.append(_MATRIX_REGION + (nr % 65_536) * 8)

    # dict-of-keys -> CSR
    indptr = np.zeros(n_interior + 1, dtype=np.int64)
    for (r, _c) in entries:
        indptr[r + 1] += 1
    indptr = np.cumsum(indptr)
    indices = np.zeros(len(entries), dtype=np.int64)
    data = np.zeros(len(entries))
    fill = indptr[:-1].copy()
    for (r, c), v in sorted(entries.items()):
        indices[fill[r]] = c
        data[fill[r]] = v
        fill[r] += 1

    if probe is not None:
        with probe.method("assemble_system", code_bytes=6144):
            probe.ops(n * n * 40, kind="fp")
            probe.accesses(touches[:32768])
    return {"data": data, "indices": indices, "indptr": indptr, "n": n_interior}, rhs


def _csr_matvec(csr: dict, x: np.ndarray) -> np.ndarray:
    out = np.zeros_like(x)
    data, indices, indptr = csr["data"], csr["indices"], csr["indptr"]
    for r in range(csr["n"]):
        lo, hi = indptr[r], indptr[r + 1]
        out[r] = np.dot(data[lo:hi], x[indices[lo:hi]])
    return out


def conjugate_gradient(
    csr: dict,
    rhs: np.ndarray,
    tolerance: float,
    max_iterations: int,
    probe: Probe | None = None,
) -> tuple[np.ndarray, int]:
    """Jacobi-preconditioned CG; returns (solution, iterations)."""
    n = csr["n"]
    diag = np.zeros(n)
    data, indices, indptr = csr["data"], csr["indices"], csr["indptr"]
    for r in range(n):
        for k in range(indptr[r], indptr[r + 1]):
            if indices[k] == r:
                diag[r] = data[k]
                break
    if (diag <= 0).any():
        raise BenchmarkError("parest: non-SPD system (bad diagonal)")

    x = np.zeros(n)
    r = rhs.copy()
    z = r / diag
    p = z.copy()
    rz = float(r @ z)
    rhs_norm = float(np.linalg.norm(rhs))
    if rhs_norm == 0:
        return x, 0
    iterations = 0
    nnz = len(data)
    while iterations < max_iterations:
        iterations += 1
        ap = _csr_matvec(csr, p)
        alpha = rz / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        if probe is not None and iterations % 8 == 0:
            with probe.method("cg_iterate", code_bytes=3072):
                probe.ops(nnz * 2 * 8 + n * 10 * 8, kind="fp")
                probe.ops(8, kind="fpdiv")
                probe.accesses(
                    [_MATRIX_REGION + (k % 262_144) * 8 for k in range(0, nnz * 8, 64)]
                )
                probe.accesses([_VECTOR_REGION + k for k in range(0, n * 8, 256)])
                # residual-sign scan: the oscillating CG residual makes
                # these data-dependent branches genuinely hard to predict
                probe.branches((bool(x) for x in (r[: min(n, 2048) : 4] > 0)), site=1)
        if float(np.linalg.norm(r)) / rhs_norm < tolerance:
            break
        z = r / diag
        rz_new = float(r @ z)
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
    return x, iterations


@register_benchmark
class ParestBenchmark:
    """The ``510.parest_r`` substrate."""

    name = "510.parest_r"
    suite = "fp"

    def _forward(self, payload: ParestInput, probe: Probe, scale: float):
        csr, rhs = assemble_poisson(
            payload.mesh, payload.coefficient_kind, probe, scale=scale
        )
        x, iterations = conjugate_gradient(
            csr, rhs, payload.tolerance, payload.max_iterations, probe
        )
        return csr, rhs, x, iterations

    def run(self, workload: Workload, probe: Probe) -> dict:
        payload = workload.payload
        if not isinstance(payload, ParestInput):
            raise BenchmarkError(f"parest: bad payload type {type(payload).__name__}")

        csr, rhs, x, iterations = self._forward(payload, probe, 1.0)
        with probe.method("compute_residual", code_bytes=1536):
            residual = float(np.linalg.norm(_csr_matvec(csr, x) - rhs))
            probe.ops(len(csr["data"]) * 2, kind="fp")
        rel = residual / float(np.linalg.norm(rhs))
        out = {
            "unknowns": csr["n"],
            "iterations": iterations,
            "relative_residual": rel,
            "solution_max": float(np.abs(x).max()),
        }

        if payload.estimate:
            # the inverse problem the real parest solves: the forward
            # solution at the true coefficient plays the role of the
            # measured optical-tomography data, and candidate forward
            # solves recover the coefficient scale by misfit
            observed = x
            best_scale = None
            best_misfit = None
            for scale in payload.candidate_scales:
                _, _, candidate, _ = self._forward(payload, probe, scale)
                with probe.method("compute_misfit", code_bytes=1024):
                    misfit = float(np.linalg.norm(candidate - observed))
                    probe.ops(observed.size * 3, kind="fp")
                if best_misfit is None or misfit < best_misfit:
                    best_misfit = misfit
                    best_scale = scale
            out["estimated_scale"] = best_scale
            out["misfit"] = best_misfit
        return out

    def verify(self, workload: Workload, output: dict) -> bool:
        if output["iterations"] >= workload.payload.max_iterations:
            return False
        if workload.payload.estimate:
            # the estimation must recover the true coefficient scale
            if output.get("estimated_scale") != 1.0:
                return False
        # converged solve: residual within 100x of the requested tolerance
        # (norm differences between the stopping and verification metrics)
        return output["relative_residual"] <= workload.payload.tolerance * 100
