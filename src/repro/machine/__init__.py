"""Machine model: caches, branch predictors, telemetry, cost accounting."""

from .batch import replay_capture_batched
from .branch import BimodalPredictor, GsharePredictor
from .cache import Cache, CacheConfig, CacheGeometry, CacheHierarchy, Tlb
from .capture import TelemetryCapture, capture_execution, replay_capture
from .cost import CostModel, MachineConfig, MachineReport, MethodCost
from .machine import ATOM_LIKE, I7_2600, I7_6700K, PRESETS, preset, preset_names
from .profiler import ExecutionProfile, Profiler, run_benchmark
from .sampling import SampledProfile, SamplingInfo, SamplingPlan, sampled_replay
from .telemetry import MethodCounters, Probe

__all__ = [
    "TelemetryCapture",
    "capture_execution",
    "replay_capture",
    "replay_capture_batched",
    "BimodalPredictor",
    "GsharePredictor",
    "Cache",
    "CacheConfig",
    "CacheGeometry",
    "CacheHierarchy",
    "Tlb",
    "ATOM_LIKE",
    "I7_2600",
    "I7_6700K",
    "PRESETS",
    "preset",
    "preset_names",
    "CostModel",
    "MachineConfig",
    "MachineReport",
    "MethodCost",
    "ExecutionProfile",
    "Profiler",
    "run_benchmark",
    "MethodCounters",
    "Probe",
    "SampledProfile",
    "SamplingInfo",
    "SamplingPlan",
    "sampled_replay",
]
