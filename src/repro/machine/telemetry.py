"""Instrumentation API for the mini-benchmarks.

Real SPEC runs are observed with hardware counters; our mini-benchmarks
are observed through a :class:`Probe`.  Each benchmark routes its work
through named *methods* (``with probe.method("primal_bea_mpp"): ...``)
and reports three kinds of events:

* **operation counts** (``probe.ops``) — exact, per kind (int / fp /
  fpdiv);
* **conditional branch outcomes** (``probe.branch`` /
  ``probe.branches``) — replayed through a branch predictor;
* **memory accesses** (``probe.load`` / ``probe.store`` /
  ``probe.accesses``) — replayed through the cache hierarchy.

Operation counts are kept exactly.  Branch and memory events are
appended to a single, order-preserving event stream that is decimated
(uniformly, deterministically) once it reaches a cap, so that replay
cost stays bounded while hit/miss *rates* remain representative; the
cost model extrapolates the sampled rates back to the exact counts.

Decimation caveat: subsampling strips temporal locality from the
address stream and history correlation from the branch stream, so
decimated runs conservatively *overestimate* miss and misprediction
rates.  The top-down category fractions — the quantity Section V of
the paper reports — remain stable (see
``tests/test_telemetry_sampling.py``); absolute simulated cycles are
only comparable between runs with similar sampling strides.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = [
    "Probe",
    "MethodCounters",
    "EV_BRANCH",
    "EV_DATA",
    "EV_CALL",
    "record",
    "record_many",
    "counters",
    "reset_counters",
]

EV_BRANCH = 0
EV_DATA = 1
EV_CALL = 2

#: Code addresses live far above any data address a benchmark will use.
_CODE_REGION_BASE = 1 << 40

#: Default cap on sampled events kept in the stream.
_DEFAULT_EVENT_CAP = 262_144


# --------------------------------------------------------------------------
# Process-wide operational counters.
#
# Probes observe one benchmark execution; these counters observe the
# harness itself (e.g. the characterization engine's result cache:
# ``engine.cache.hits`` / ``.misses`` / ``.bytes_read`` /
# ``.bytes_written``).  They are plain monotonically-increasing ints,
# namespaced by dotted prefix, and live for the life of the process.

_COUNTERS: dict[str, int] = {}


def record(name: str, n: int = 1) -> None:
    """Add ``n`` to the process-wide counter ``name``."""
    _COUNTERS[name] = _COUNTERS.get(name, 0) + n


def record_many(values: "dict[str, int]", prefix: str = "") -> None:
    """Bulk-add counters, optionally under a dotted ``prefix``.

    Used by the run-trace layer to mirror a whole run summary into the
    process-wide counters in one call.
    """
    dotted = prefix if not prefix or prefix.endswith(".") else prefix + "."
    for name, n in values.items():
        record(dotted + name, n)


def counters(prefix: str | None = None) -> dict[str, int]:
    """Snapshot the counters, optionally filtered to a dotted prefix."""
    if prefix is None:
        return dict(_COUNTERS)
    dotted = prefix if prefix.endswith(".") else prefix + "."
    return {k: v for k, v in _COUNTERS.items() if k == prefix or k.startswith(dotted)}


def reset_counters(prefix: str | None = None) -> None:
    """Zero the counters (all of them, or just one dotted prefix)."""
    if prefix is None:
        _COUNTERS.clear()
        return
    for key in list(counters(prefix)):
        del _COUNTERS[key]


@dataclass
class MethodCounters:
    """Exact per-method counters (never sampled)."""

    name: str
    index: int
    code_base: int
    code_bytes: int
    calls: int = 0
    int_ops: int = 0
    fp_ops: int = 0
    fpdiv_ops: int = 0
    branches: int = 0
    branches_taken: int = 0
    loads: int = 0
    stores: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    @property
    def data_accesses(self) -> int:
        return self.loads + self.stores

    @property
    def total_ops(self) -> int:
        return self.int_ops + self.fp_ops + self.fpdiv_ops


class Probe:
    """Collects telemetry for one benchmark execution.

    The probe is deterministic: method code addresses are derived from
    CRC32 of the method name, event decimation uses fixed counters, and
    no wall-clock or OS state is consulted.
    """

    def __init__(self, event_cap: int = _DEFAULT_EVENT_CAP):
        if event_cap < 1024:
            raise ValueError("event_cap too small to be representative")
        self._methods: dict[str, MethodCounters] = {}
        self._stack: list[MethodCounters] = []
        self._events: list[tuple[int, int, int, int]] = []
        self._event_cap = event_cap
        self._keep_every = 1
        self._tick = 0

    # ---------------------------------------------------------------- methods

    def register(self, name: str, code_bytes: int = 512) -> MethodCounters:
        """Register a method (idempotent) and return its counters."""
        mc = self._methods.get(name)
        if mc is None:
            code_base = _CODE_REGION_BASE + (zlib.crc32(name.encode()) << 12)
            mc = MethodCounters(
                name=name,
                index=len(self._methods),
                code_base=code_base,
                code_bytes=code_bytes,
            )
            self._methods[name] = mc
        return mc

    def method(self, name: str, code_bytes: int = 512) -> "_MethodScope":
        """Context manager: attribute enclosed events to ``name``."""
        return _MethodScope(self, self.register(name, code_bytes))

    @property
    def current(self) -> MethodCounters:
        if not self._stack:
            raise RuntimeError("no active method scope; wrap work in probe.method(...)")
        return self._stack[-1]

    def methods(self) -> list[MethodCounters]:
        return list(self._methods.values())

    def method_by_index(self, index: int) -> MethodCounters:
        for mc in self._methods.values():
            if mc.index == index:
                return mc
        raise KeyError(index)

    # ----------------------------------------------------------------- events

    def _push_event(self, kind: int, a: int, b: int) -> None:
        self._tick += 1
        if self._tick % self._keep_every:
            return
        events = self._events
        events.append((self._stack[-1].index, kind, a, b))
        if len(events) >= self._event_cap:
            # Uniform deterministic decimation: keep every other sampled
            # event and double the sampling stride.  Every surviving
            # event now represents twice as many raw events; the cost
            # model only uses *rates* from the stream, so no weights are
            # needed.
            self._events = events[::2]
            self._keep_every *= 2

    def ops(self, n: int = 1, kind: str = "int") -> None:
        """Record ``n`` retired operations of the given kind (exact)."""
        mc = self.current
        if kind == "int":
            mc.int_ops += n
        elif kind == "fp":
            mc.fp_ops += n
        elif kind == "fpdiv":
            mc.fpdiv_ops += n
        else:
            raise ValueError(f"unknown op kind {kind!r}")

    def branch(self, taken: bool, site: int = 0) -> None:
        """Record one conditional branch outcome at ``site``."""
        mc = self.current
        mc.branches += 1
        if taken:
            mc.branches_taken += 1
        self._push_event(EV_BRANCH, mc.code_base + site * 16, 1 if taken else 0)

    def branches(self, outcomes: Iterable[bool], site: int = 0) -> None:
        """Record a sequence of branch outcomes at the same site."""
        mc = self.current
        pc = mc.code_base + site * 16
        taken = 0
        count = 0
        for t in outcomes:
            count += 1
            if t:
                taken += 1
            self._push_event(EV_BRANCH, pc, 1 if t else 0)
        mc.branches += count
        mc.branches_taken += taken

    def load(self, addr: int) -> None:
        """Record one data load at byte address ``addr``."""
        mc = self.current
        mc.loads += 1
        self._push_event(EV_DATA, addr, 0)

    def store(self, addr: int) -> None:
        """Record one data store at byte address ``addr``."""
        mc = self.current
        mc.stores += 1
        self._push_event(EV_DATA, addr, 1)

    def accesses(self, addrs: Sequence[int], store: bool = False) -> None:
        """Record a batch of data accesses (all loads or all stores)."""
        mc = self.current
        flag = 1 if store else 0
        for addr in addrs:
            self._push_event(EV_DATA, addr, flag)
        if store:
            mc.stores += len(addrs)
        else:
            mc.loads += len(addrs)

    def count(self, key: str, n: int = 1) -> None:
        """Accumulate a benchmark-specific named counter (for reports)."""
        extra = self.current.extra
        extra[key] = extra.get(key, 0) + n

    # ------------------------------------------------------------- inspection

    @property
    def events(self) -> list[tuple[int, int, int, int]]:
        """The sampled event stream: (method_index, kind, a, b) tuples."""
        return self._events

    @property
    def sampling_stride(self) -> int:
        return self._keep_every

    def total_branches(self) -> int:
        return sum(mc.branches for mc in self._methods.values())

    def total_data_accesses(self) -> int:
        return sum(mc.data_accesses for mc in self._methods.values())

    def total_ops(self) -> int:
        return sum(mc.total_ops for mc in self._methods.values())


class _MethodScope:
    """Context manager pushing a method onto the probe's scope stack."""

    __slots__ = ("_probe", "_mc")

    def __init__(self, probe: Probe, mc: MethodCounters):
        self._probe = probe
        self._mc = mc

    def __enter__(self) -> MethodCounters:
        mc = self._mc
        mc.calls += 1
        probe = self._probe
        probe._stack.append(mc)
        probe._push_event(EV_CALL, mc.index, 0)
        return mc

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._probe._stack.pop()
