"""Instrumentation API for the mini-benchmarks.

Real SPEC runs are observed with hardware counters; our mini-benchmarks
are observed through a :class:`Probe`.  Each benchmark routes its work
through named *methods* (``with probe.method("primal_bea_mpp"): ...``)
and reports three kinds of events:

* **operation counts** (``probe.ops``) — exact, per kind (int / fp /
  fpdiv);
* **conditional branch outcomes** (``probe.branch`` /
  ``probe.branches``) — replayed through a branch predictor;
* **memory accesses** (``probe.load`` / ``probe.store`` /
  ``probe.accesses``) — replayed through the cache hierarchy.

Operation counts are kept exactly.  Branch and memory events are
appended to a single, order-preserving event stream that is decimated
(uniformly, deterministically) once it reaches a cap, so that replay
cost stays bounded while hit/miss *rates* remain representative; the
cost model extrapolates the sampled rates back to the exact counts.

The stream is stored **columnar**: four parallel ``array('q')`` columns
(method index, event kind, ``a``, ``b``) instead of a list of tuples.
The bulk recorders (:meth:`Probe.branches`, :meth:`Probe.accesses`)
have vector fast paths that apply the decimation stride with NumPy
slicing — one slice per stride segment instead of one Python call per
event — and decimation itself is a column slice.  The sampled stream is
bit-identical to the historical scalar implementation (see
``tests/test_golden_equivalence.py``).

Decimation caveat: subsampling strips temporal locality from the
address stream and history correlation from the branch stream, so
decimated runs conservatively *overestimate* miss and misprediction
rates.  The top-down category fractions — the quantity Section V of
the paper reports — remain stable (see
``tests/test_telemetry_sampling.py``); absolute simulated cycles are
only comparable between runs with similar sampling strides.
"""

from __future__ import annotations

import zlib
from array import array
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Probe",
    "MethodCounters",
    "EventStream",
    "EV_BRANCH",
    "EV_DATA",
    "EV_CALL",
    "record",
    "record_many",
    "record_max",
    "counters",
    "reset_counters",
    "snapshot",
    "since",
    "totals",
    "Scope",
]

EV_BRANCH = 0
EV_DATA = 1
EV_CALL = 2

#: Code addresses live far above any data address a benchmark will use.
_CODE_REGION_BASE = 1 << 40

#: Default cap on sampled events kept in the stream.
_DEFAULT_EVENT_CAP = 262_144


# --------------------------------------------------------------------------
# Process-wide operational counters.
#
# Probes observe one benchmark execution; these counters observe the
# harness itself (e.g. the characterization engine's result cache:
# ``engine.cache.hits`` / ``.misses`` / ``.bytes_read`` /
# ``.bytes_written``, or the replay kernel's ``engine.profile.*``
# throughput gauges).  They are plain monotonically-increasing ints,
# namespaced by dotted prefix, and live for the life of the process.

_COUNTERS: dict[str, int] = {}


def record(name: str, n: int = 1) -> None:
    """Add ``n`` to the process-wide counter ``name``."""
    _COUNTERS[name] = _COUNTERS.get(name, 0) + n


def record_many(values: "dict[str, int]", prefix: str = "") -> None:
    """Bulk-add counters, optionally under a dotted ``prefix``.

    Used by the run-trace layer to mirror a whole run summary into the
    process-wide counters in one call.
    """
    dotted = prefix if not prefix or prefix.endswith(".") else prefix + "."
    for name, n in values.items():
        record(dotted + name, n)


def record_max(name: str, n: int) -> None:
    """Raise the counter ``name`` to ``n`` if ``n`` exceeds it (a gauge
    for high-water marks such as the largest sampling stride seen)."""
    if n > _COUNTERS.get(name, 0):
        _COUNTERS[name] = n


def counters(prefix: str | None = None) -> dict[str, int]:
    """Snapshot the counters, optionally filtered to a dotted prefix."""
    if prefix is None:
        return dict(_COUNTERS)
    dotted = prefix if prefix.endswith(".") else prefix + "."
    return {k: v for k, v in _COUNTERS.items() if k == prefix or k.startswith(dotted)}


def reset_counters(prefix: str | None = None) -> None:
    """Zero the counters (all of them, or just one dotted prefix)."""
    if prefix is None:
        _COUNTERS.clear()
        return
    for key in list(counters(prefix)):
        del _COUNTERS[key]


def snapshot(prefix: str | None = None) -> dict[str, int]:
    """Alias of :func:`counters`: a point-in-time copy for later diffing."""
    return counters(prefix)


def since(baseline: "dict[str, int]", prefix: str | None = None) -> dict[str, int]:
    """Counter deltas accumulated after ``baseline`` was snapshotted.

    The scoped-view primitive: the process-global counters are never
    reset (other concurrent consumers keep their view), callers instead
    subtract their starting snapshot.  Counters absent from the
    baseline report their full value; zero deltas are dropped.
    """
    out: dict[str, int] = {}
    for name, value in counters(prefix).items():
        delta = value - baseline.get(name, 0)
        if delta:
            out[name] = delta
    return out


def totals(prefix: str | None = None) -> dict[str, int]:
    """The process-global, cross-run counter view (explicitly named).

    Scoped consumers (:class:`Scope`, ``Run``/``Session``) report
    per-run deltas; ``totals()`` is the deliberate way to ask for the
    whole process history instead.
    """
    return counters(prefix)


class Scope:
    """A per-run window onto the process-global counters.

    Counters accumulate for the life of the process, so two ``Run``s in
    one process would otherwise bleed into each other's ``trace
    summary``.  A ``Scope`` snapshots the counters at construction and
    reports only what happened after that point — without resetting
    anything, so concurrent scopes and :func:`totals` stay correct.
    """

    def __init__(self, prefix: str | None = None):
        self.prefix = prefix
        self._baseline = counters(prefix)

    def counters(self, prefix: str | None = None) -> dict[str, int]:
        """Deltas since this scope began (optionally sub-filtered)."""
        out = since(self._baseline, self.prefix)
        if prefix is None:
            return out
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            k: v for k, v in out.items() if k == prefix or k.startswith(dotted)
        }

    def reset(self) -> None:
        """Restart the window at the current counter values."""
        self._baseline = counters(self.prefix)


@dataclass
class MethodCounters:
    """Exact per-method counters (never sampled)."""

    name: str
    index: int
    code_base: int
    code_bytes: int
    calls: int = 0
    int_ops: int = 0
    fp_ops: int = 0
    fpdiv_ops: int = 0
    branches: int = 0
    branches_taken: int = 0
    loads: int = 0
    stores: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    @property
    def data_accesses(self) -> int:
        return self.loads + self.stores

    @property
    def total_ops(self) -> int:
        return self.int_ops + self.fp_ops + self.fpdiv_ops


class EventStream(Sequence):
    """Read-only view over the probe's four event columns.

    Indexing and iteration yield the historical ``(method_index, kind,
    a, b)`` tuples, so scalar consumers are unchanged; the replay
    kernel instead pulls whole columns at once via :meth:`columns`.
    The view cannot mutate the probe's stream — rewriters (e.g. the FDO
    hint filter) must go through :meth:`Probe.replace_events`.
    """

    __slots__ = ("_method", "_kind", "_a", "_b", "_owner")

    def __init__(
        self,
        method: array,
        kind: array,
        a: array,
        b: array,
        owner: "Probe | None" = None,
    ):
        self._method = method
        self._kind = kind
        self._a = a
        self._b = b
        self._owner = owner

    def __len__(self) -> int:
        return len(self._kind)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [
                (self._method[j], self._kind[j], self._a[j], self._b[j])
                for j in range(*i.indices(len(self._kind)))
            ]
        return (self._method[i], self._kind[i], self._a[i], self._b[i])

    def __iter__(self) -> Iterator[tuple[int, int, int, int]]:
        return zip(self._method, self._kind, self._a, self._b)

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The stream as four int64 NumPy arrays (snapshot copies).

        Copies (via ``tobytes``) rather than buffer views so the probe
        can keep appending afterwards — a live buffer export would make
        ``array`` resizes raise ``BufferError``.  The snapshot is
        read-only and cached on the owning probe, keyed on the column
        objects and length, so replaying one capture against many
        machine configs pays the copy once; appends grow the length and
        rewrites swap the ``array`` objects, either of which misses.
        """
        owner = self._owner
        n = len(self._kind)
        if owner is not None:
            c = owner._columns_cache
            if (
                c is not None
                and c[0] is self._method
                and c[1] is self._kind
                and c[2] is self._a
                and c[3] is self._b
                and c[4] == n
            ):
                return c[5]
        cols = (
            np.frombuffer(self._method.tobytes(), dtype=np.int64),
            np.frombuffer(self._kind.tobytes(), dtype=np.int64),
            np.frombuffer(self._a.tobytes(), dtype=np.int64),
            np.frombuffer(self._b.tobytes(), dtype=np.int64),
        )
        if owner is not None:
            owner._columns_cache = (
                self._method, self._kind, self._a, self._b, n, cols
            )
        return cols


class Probe:
    """Collects telemetry for one benchmark execution.

    The probe is deterministic: method code addresses are derived from
    CRC32 of the method name, event decimation uses fixed counters, and
    no wall-clock or OS state is consulted.
    """

    def __init__(self, event_cap: int = _DEFAULT_EVENT_CAP):
        if event_cap < 1024:
            raise ValueError("event_cap too small to be representative")
        self._methods: dict[str, MethodCounters] = {}
        self._by_index: list[MethodCounters] = []
        self._stack: list[MethodCounters] = []
        self._ev_method = array("q")
        self._ev_kind = array("q")
        self._ev_a = array("q")
        self._ev_b = array("q")
        self._event_cap = event_cap
        self._keep_every = 1
        self._tick = 0
        self._columns_cache: "tuple | None" = None

    # ---------------------------------------------------------------- methods

    def register(self, name: str, code_bytes: int = 512) -> MethodCounters:
        """Register a method (idempotent) and return its counters."""
        mc = self._methods.get(name)
        if mc is None:
            code_base = _CODE_REGION_BASE + (zlib.crc32(name.encode()) << 12)
            mc = MethodCounters(
                name=name,
                index=len(self._methods),
                code_base=code_base,
                code_bytes=code_bytes,
            )
            self._methods[name] = mc
            self._by_index.append(mc)
        return mc

    def method(self, name: str, code_bytes: int = 512) -> "_MethodScope":
        """Context manager: attribute enclosed events to ``name``."""
        return _MethodScope(self, self.register(name, code_bytes))

    @property
    def current(self) -> MethodCounters:
        if not self._stack:
            raise RuntimeError("no active method scope; wrap work in probe.method(...)")
        return self._stack[-1]

    def methods(self) -> list[MethodCounters]:
        return list(self._by_index)

    def method_by_index(self, index: int) -> MethodCounters:
        """O(1) lookup by registration index (indices are dense)."""
        try:
            return self._by_index[index]
        except IndexError:
            raise KeyError(index) from None

    # ----------------------------------------------------------------- events

    def _decimate(self) -> None:
        # Uniform deterministic decimation: keep every other sampled
        # event and double the sampling stride.  Every surviving event
        # now represents twice as many raw events; the cost model only
        # uses *rates* from the stream, so no weights are needed.
        self._ev_method = self._ev_method[::2]
        self._ev_kind = self._ev_kind[::2]
        self._ev_a = self._ev_a[::2]
        self._ev_b = self._ev_b[::2]
        self._keep_every *= 2

    def _push_event(self, kind: int, a: int, b: int) -> None:
        self._tick += 1
        if self._tick % self._keep_every:
            return
        self._ev_method.append(self._stack[-1].index)
        self._ev_kind.append(kind)
        self._ev_a.append(a)
        self._ev_b.append(b)
        if len(self._ev_kind) >= self._event_cap:
            self._decimate()

    def _push_events_vector(self, kind: int, a: np.ndarray, b: np.ndarray) -> None:
        """Append a batch of same-kind events, applying the decimation
        stride with slices instead of per-event pushes.

        ``a`` and ``b`` are int64 arrays of equal length.  Equivalent,
        event for event, to calling ``_push_event`` in a loop: the tick
        counter advances once per input event, survivors are the events
        whose tick is a stride multiple, and hitting the cap mid-batch
        halves the stored stream and doubles the stride for the rest of
        the batch.
        """
        n = len(a)
        midx = self._stack[-1].index
        pos = 0
        while pos < n:
            k = self._keep_every
            t = self._tick
            # First input index whose tick lands on the stride: event i
            # consumes tick t + (i - pos) + 1, kept iff divisible by k.
            first = pos + ((-t - 1) % k)
            if first >= n:
                self._tick = t + (n - pos)
                return
            room = self._event_cap - len(self._ev_kind)
            avail = (n - 1 - first) // k + 1
            take = min(avail, room)
            stop = first + (take - 1) * k + 1
            sel_a = a[first:stop:k]
            sel_b = b[first:stop:k]
            self._ev_method.frombytes(np.full(take, midx, dtype=np.int64).tobytes())
            self._ev_kind.frombytes(np.full(take, kind, dtype=np.int64).tobytes())
            self._ev_a.frombytes(np.ascontiguousarray(sel_a).tobytes())
            self._ev_b.frombytes(np.ascontiguousarray(sel_b).tobytes())
            self._tick = t + (stop - pos)
            pos = stop
            if len(self._ev_kind) >= self._event_cap:
                self._decimate()

    def replace_events(
        self, events: "EventStream | Iterable[tuple[int, int, int, int]]"
    ) -> None:
        """Replace the sampled stream (replay rewriters only).

        ``Probe.events`` is a read-only view; transforms that drop or
        rewrite events — e.g. the FDO optimizer removing statically
        hinted branches — rebuild the stream through this method.
        """
        if isinstance(events, EventStream):
            self._ev_method = array("q", events._method)
            self._ev_kind = array("q", events._kind)
            self._ev_a = array("q", events._a)
            self._ev_b = array("q", events._b)
            return
        cols = list(zip(*events)) or [(), (), (), ()]
        self._ev_method = array("q", cols[0])
        self._ev_kind = array("q", cols[1])
        self._ev_a = array("q", cols[2])
        self._ev_b = array("q", cols[3])

    def replace_events_columns(
        self,
        method: np.ndarray,
        kind: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
    ) -> None:
        """Columnar variant of :meth:`replace_events` (zero tuple churn)."""
        cols = []
        for col in (method, kind, a, b):
            arr = array("q")
            arr.frombytes(np.ascontiguousarray(col, dtype=np.int64).tobytes())
            cols.append(arr)
        if len({len(c) for c in cols}) != 1:
            raise ValueError("replace_events_columns: column length mismatch")
        self._ev_method, self._ev_kind, self._ev_a, self._ev_b = cols

    def ops(self, n: int = 1, kind: str = "int") -> None:
        """Record ``n`` retired operations of the given kind (exact)."""
        mc = self.current
        if kind == "int":
            mc.int_ops += n
        elif kind == "fp":
            mc.fp_ops += n
        elif kind == "fpdiv":
            mc.fpdiv_ops += n
        else:
            raise ValueError(f"unknown op kind {kind!r}")

    def branch(self, taken: bool, site: int = 0) -> None:
        """Record one conditional branch outcome at ``site``."""
        mc = self.current
        mc.branches += 1
        if taken:
            mc.branches_taken += 1
        self._push_event(EV_BRANCH, mc.code_base + site * 16, 1 if taken else 0)

    def branches(self, outcomes: Iterable[bool], site: int = 0) -> None:
        """Record a sequence of branch outcomes at the same site.

        Vector fast path: the outcomes are materialized once, reduced
        with NumPy for the exact counters, and the sampled survivors
        are appended by stride slicing.
        """
        mc = self.current
        pc = mc.code_base + site * 16
        if isinstance(outcomes, np.ndarray):
            arr = outcomes
        else:
            arr = np.asarray(list(outcomes))
        if arr.dtype.kind not in "biuf":
            # exotic element types: preserve per-element truthiness
            arr = np.asarray([bool(t) for t in arr.tolist()])
        n = len(arr)
        if n == 0:
            return
        flags = (arr != 0).astype(np.int64)
        self._push_events_vector(EV_BRANCH, np.full(n, pc, dtype=np.int64), flags)
        mc.branches += n
        mc.branches_taken += int(flags.sum())

    def load(self, addr: int) -> None:
        """Record one data load at byte address ``addr``."""
        mc = self.current
        mc.loads += 1
        self._push_event(EV_DATA, addr, 0)

    def store(self, addr: int) -> None:
        """Record one data store at byte address ``addr``."""
        mc = self.current
        mc.stores += 1
        self._push_event(EV_DATA, addr, 1)

    def accesses(self, addrs: Sequence[int], store: bool = False) -> None:
        """Record a batch of data accesses (all loads or all stores).

        Vector fast path: the address batch becomes one int64 column
        append with the decimation stride applied by slicing.
        """
        mc = self.current
        flag = 1 if store else 0
        try:
            arr = np.asarray(addrs, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            # addresses that don't fit int64: scalar fallback
            for addr in addrs:
                self._push_event(EV_DATA, addr, flag)
            if store:
                mc.stores += len(addrs)
            else:
                mc.loads += len(addrs)
            return
        n = len(arr)
        if n:
            self._push_events_vector(EV_DATA, arr, np.full(n, flag, dtype=np.int64))
        if store:
            mc.stores += n
        else:
            mc.loads += n

    def count(self, key: str, n: int = 1) -> None:
        """Accumulate a benchmark-specific named counter (for reports)."""
        extra = self.current.extra
        extra[key] = extra.get(key, 0) + n

    # ------------------------------------------------------------- inspection

    @property
    def events(self) -> EventStream:
        """Read-only view of the sampled stream; items are
        ``(method_index, kind, a, b)`` tuples."""
        return EventStream(
            self._ev_method, self._ev_kind, self._ev_a, self._ev_b, self
        )

    @property
    def sampling_stride(self) -> int:
        return self._keep_every

    def total_branches(self) -> int:
        return sum(mc.branches for mc in self._methods.values())

    def total_data_accesses(self) -> int:
        return sum(mc.data_accesses for mc in self._methods.values())

    def total_ops(self) -> int:
        return sum(mc.total_ops for mc in self._methods.values())


class _MethodScope:
    """Context manager pushing a method onto the probe's scope stack."""

    __slots__ = ("_probe", "_mc")

    def __init__(self, probe: Probe, mc: MethodCounters):
        self._probe = probe
        self._mc = mc

    def __enter__(self) -> MethodCounters:
        mc = self._mc
        mc.calls += 1
        probe = self._probe
        probe._stack.append(mc)
        probe._push_event(EV_CALL, mc.index, 0)
        return mc

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self._probe._stack.pop()
