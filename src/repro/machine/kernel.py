"""Exact vectorized replay primitives for the machine model.

The cost model replays sampled event streams through a branch
predictor and an LRU cache hierarchy.  Both structures look inherently
serial — every access mutates state the next access reads — but both
admit exact reformulations that vectorize:

* **2-bit saturating counters** are clamped walks.  Every update is a
  monotone clamp function ``s -> min(u, max(l, s + d))``, and that
  family is closed under composition, so a whole outcome stream per
  table slot collapses to one composed function via an associative
  (segmented, Hillis-Steele) parallel-prefix scan — :func:`counter_scan`.

* **LRU hit/miss** is a stack-distance test: an access hits iff fewer
  than ``associativity`` distinct lines touched its set since the
  previous access to the same line.  With ``V[q]`` the position of that
  previous access (set-major order), the distinct count in the window
  is ``C[q] - V[q] - 1`` where ``C[q] = #{p < q : V[p] <= V[q]}``,
  because every ``p <= V[q]`` trivially satisfies ``V[p] < p <= V[q]``.
  ``C`` is a left-rank count, computed by :func:`left_rank` with a
  vectorized mergesort — :func:`lru_hits`.

* **Common streams avoid the general kernel entirely.**  Most sampled
  address streams never evict: when every set's distinct-line count is
  at most the associativity, an access hits iff it is not the first
  touch of its line, which one ``np.unique`` answers — :func:`lru_filter`.
  Sets are independent, so conflict sets that do evict are carved out
  and replayed exactly on their own.

Every function here is bit-exact against the scalar dict/bytearray
implementations; ``tests/test_kernel.py`` fuzzes them against brute
force and ``tests/test_golden_equivalence.py`` checks whole reports.
"""

from __future__ import annotations

import numpy as np

__all__ = ["left_rank", "lru_hits", "lru_filter", "counter_scan", "gshare_history"]

# Below this block size, cross-counts are cheaper by broadcast compare
# than by searchsorted-based merging.
_BROADCAST_MAX_BLOCK = 32

# Below this stream length the plain dict walk in ``_lru_scalar`` beats
# any vector setup cost.
_FILTER_SCALAR_MAX = 1024


def _stable_order(values: np.ndarray) -> np.ndarray:
    """Indices that stable-sort ``values`` (int64).

    NumPy's ``kind="stable"`` argsort on int64 is timsort and several
    times slower than quicksort at these sizes, so when the value range
    permits we sort the collision-free composite key ``value * n + pos``
    with the default quicksort instead; distinct keys make the result
    deterministic and equal to the stable order.
    """
    n = values.size
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    vmin = int(values.min())
    vmax = int(values.max())
    if vmax - vmin < (1 << 62) // n:
        pos = np.arange(n, dtype=np.int64)
        return np.argsort((values - vmin) * n + pos)
    return np.argsort(values, kind="stable")


def left_rank(values: np.ndarray) -> np.ndarray:
    """For distinct integers, ``C[q] = #{p < q : values[p] < values[q]}``.

    Iterative bottom-up mergesort.  Levels with blocks up to
    ``_BROADCAST_MAX_BLOCK`` count left-half-vs-right-half pairs with one
    broadcast comparison per level (no sorting needed); larger levels
    keep blocks sorted and use a single flattened ``searchsorted`` per
    direction — row offsets larger than the value range make the
    concatenation of sorted blocks globally sorted, so one call serves
    every block pair at once.
    """
    v = np.asarray(values, dtype=np.int64)
    n = v.size
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    # Rank-compress to a permutation of 0..n-1 so pads and row offsets
    # have a known range.  Values are distinct, so the default quicksort
    # is deterministic.
    ranks = np.empty(n, dtype=np.int64)
    ranks[np.argsort(v)] = np.arange(n, dtype=np.int64)
    m = 1 << (n - 1).bit_length()
    a = np.empty(m, dtype=np.int64)
    a[:n] = ranks
    # Pads sort above every real rank, so they never count for a real
    # query; their own counts land on positions >= n and are discarded.
    a[n:] = np.arange(n, m, dtype=np.int64)
    perm = np.arange(m, dtype=np.int64)
    out = np.zeros(m, dtype=np.int64)

    width = 1
    while width < m and width <= _BROADCAST_MAX_BLOCK:
        pairs = a.reshape(m // (2 * width), 2 * width)
        left, right = pairs[:, :width], pairs[:, width:]
        cnt = (left[:, :, None] < right[:, None, :]).sum(axis=1, dtype=np.int64)
        out[perm.reshape(m // (2 * width), 2 * width)[:, width:].ravel()] += cnt.ravel()
        width *= 2

    if width < m:
        # Seed the merge levels: sort each block once.
        rows = a.reshape(m // width, width)
        order = np.argsort(rows, axis=1, kind="stable")
        a = np.take_along_axis(rows, order, axis=1).ravel()
        perm = np.take_along_axis(perm.reshape(m // width, width), order, axis=1).ravel()
        while width < m:
            nblocks = m // (2 * width)
            blocks = a.reshape(nblocks, 2 * width)
            pblocks = perm.reshape(nblocks, 2 * width)
            row = np.repeat(np.arange(nblocks, dtype=np.int64), width)
            offset = row * m
            lkeys = blocks[:, :width].ravel() + offset
            rkeys = blocks[:, width:].ravel() + offset
            # of each right element: how many left-block values are below
            cnt_r = np.searchsorted(lkeys, rkeys) - row * width
            out[pblocks[:, width:].ravel()] += cnt_r
            # merge the sorted halves by final position (values distinct)
            cnt_l = np.searchsorted(rkeys, lkeys) - row * width
            within = np.tile(np.arange(width, dtype=np.int64), nblocks)
            base = row * (2 * width)
            merged = np.empty(m, dtype=np.int64)
            mperm = np.empty(m, dtype=np.int64)
            lpos = base + within + cnt_l
            rpos = base + within + cnt_r
            merged[lpos] = blocks[:, :width].ravel()
            mperm[lpos] = pblocks[:, :width].ravel()
            merged[rpos] = blocks[:, width:].ravel()
            mperm[rpos] = pblocks[:, width:].ravel()
            a, perm = merged, mperm
            width *= 2
    return out[:n]


def lru_hits(tags: np.ndarray, set_mask: int, assoc: int) -> np.ndarray:
    """Exact LRU hit flags for one allocate-on-miss cache level.

    ``tags`` are line tags in access order; a tag's set is
    ``tag & set_mask`` (pass 0 for a fully-associative structure).
    Returns a boolean array, True where the access hits.  Matches the
    insertion-ordered-dict LRU in :mod:`repro.machine.cache` exactly,
    starting from an empty cache.
    """
    t = np.asarray(tags, dtype=np.int64)
    n = t.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = _stable_order(t & set_mask)
    st = t[order]
    # An access repeating the immediately-previous tag of its set is a
    # hit that leaves LRU state unchanged — drop it before the expensive
    # rank computation.  (Equal tags imply equal sets.)
    rerun = np.empty(n, dtype=bool)
    rerun[0] = False
    if set_mask:
        ss = st & set_mask
        rerun[1:] = (st[1:] == st[:-1]) & (ss[1:] == ss[:-1])
    else:
        rerun[1:] = st[1:] == st[:-1]
    keep = np.flatnonzero(~rerun)
    kt = st[keep]
    k = keep.size

    # V[q]: position (in kept, set-major order) of the previous access
    # to the same tag, or -1.  Same tag implies same set, so grouping by
    # tag alone finds the predecessor.
    by_tag = _stable_order(kt)
    grouped = kt[by_tag]
    same_tag = grouped[1:] == grouped[:-1]
    V = np.full(k, -1, dtype=np.int64)
    V[by_tag[1:][same_tag]] = by_tag[:-1][same_tag]

    # distinct lines since previous access: d = C - V - 1
    Vd = V.copy()
    first = np.flatnonzero(V < 0)
    Vd[first] = -2 - np.arange(first.size, dtype=np.int64)
    C = left_rank(Vd)
    kept_hits = (V >= 0) & (C <= V + assoc)

    sorted_hits = np.empty(n, dtype=bool)
    sorted_hits[rerun] = True
    sorted_hits[keep] = kept_hits
    hits = np.empty(n, dtype=bool)
    hits[order] = sorted_hits
    return hits


def _lru_scalar(tags: list, set_mask: int, assoc: int) -> np.ndarray:
    """Reference dict-LRU walk of one cache level; returns hit flags.

    Mirrors the insertion-ordered-dict model in
    :mod:`repro.machine.cache` exactly (allocate on miss, evict the
    least recently used way).
    """
    hits = np.empty(len(tags), dtype=bool)
    sets: dict = {}
    i = 0
    for t in tags:
        lset = sets.get(t & set_mask)
        if lset is None:
            lset = sets[t & set_mask] = {}
        if t in lset:
            del lset[t]
            lset[t] = None
            hits[i] = True
        else:
            hits[i] = False
            if len(lset) >= assoc:
                lset.pop(next(iter(lset)))
            lset[t] = None
        i += 1
    return hits


def lru_filter(tags: np.ndarray, set_mask: int, assoc: int) -> np.ndarray:
    """Exact LRU hit flags for one level, exploiting stream structure.

    Sampled address streams are usually eviction-free: when a set's
    distinct-line count never exceeds the associativity, nothing is
    ever evicted from it, so an access to that set hits iff it is not
    the first touch of its line — answered by one ``np.unique``.  Sets
    behave independently under LRU, so the (typically few) conflict
    sets whose distinct count does exceed the associativity are carved
    out as a subsequence and replayed exactly by the reference dict
    walk, then scattered back.  Results are bit-identical to
    :func:`lru_hits` and to :mod:`repro.machine.cache`.
    """
    t = np.asarray(tags, dtype=np.int64)
    n = t.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n < _FILTER_SCALAR_MAX:
        return _lru_scalar(t.tolist(), set_mask, assoc)
    # uniques and their first-occurrence indices (np.unique would use
    # the slow stable sort when asked for indices)
    order = _stable_order(t)
    st = t[order]
    head = np.empty(n, dtype=bool)
    head[0] = True
    head[1:] = st[1:] != st[:-1]
    uniq = st[head]
    first = order[head]
    if set_mask == 0:
        # fully associative: one set, all-or-nothing
        if uniq.size <= assoc:
            hits = np.ones(n, dtype=bool)
            hits[first] = False
            return hits
        return _lru_scalar(t.tolist(), set_mask, assoc)
    counts = np.bincount(uniq & set_mask, minlength=set_mask + 1)
    bad = counts > assoc
    if not bad.any():
        hits = np.ones(n, dtype=bool)
        hits[first] = False
        return hits
    hits = np.ones(n, dtype=bool)
    hits[first[~bad[uniq & set_mask]]] = False
    conflict = np.flatnonzero(bad[t & set_mask])
    hits[conflict] = _lru_scalar(t[conflict].tolist(), set_mask, assoc)
    return hits


def _build_counter_luts() -> tuple[np.ndarray, np.ndarray]:
    """Composition / evaluation tables for canonical 2-bit clip codes.

    On the domain {0..3} every update function is ``x -> min(hi,
    max(lo, x + d))`` with ``lo, hi`` in [0, 3] and ``d`` in [-3, 3]
    (a shift beyond the window acts saturated), so each function packs
    into a 7-bit code ``(d + 3) * 16 + lo * 4 + hi``.  The family is
    closed under composition; tabulating it turns the whole segmented
    prefix scan into one uint8 gather per round.
    """
    codes = np.arange(112, dtype=np.int64)
    d = codes // 16 - 3
    lo = (codes // 4) % 4
    hi = codes % 4
    x = np.arange(4, dtype=np.int64)
    # val[c, x] = f_c(x)
    val = np.minimum(hi[:, None], np.maximum(lo[:, None], x[None, :] + d[:, None]))
    val = np.clip(val, 0, 3)
    # h[c1, c2, x] = f_c2(f_c1(x)) — apply c1 first
    h = val[codes[None, :, None], val[:, None, :]]
    h0 = h[:, :, 0]
    h3 = h[:, :, 3]
    step = h[:, :, 1:] != h[:, :, :-1]
    ramp = np.argmax(step, axis=2)  # first x with f(x+1) = f(x) + 1
    d_c = np.where(
        h0 == h3,
        h0 - 3,  # constant function: any in-range shift works
        np.take_along_axis(h, ramp[:, :, None], axis=2)[:, :, 0] - ramp,
    )
    compose = ((d_c + 3) * 16 + h0 * 4 + h3).astype(np.uint8)
    return compose.ravel(), val.astype(np.uint8).ravel()


_COMPOSE_LUT, _EVAL_LUT = _build_counter_luts()


def counter_scan(idx: np.ndarray, taken: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Replay 2-bit saturating counters; returns mispredict flags.

    ``idx`` is the table slot per event, ``taken`` the outcome (0/1),
    ``table`` the uint8 counter table updated in place.  A taken update
    is ``s -> min(3, s + 1)``, not-taken is ``s -> max(0, s - 1)``; both
    are clip functions, and that family is closed under composition, so
    each slot's event run reduces by a segmented parallel-prefix scan.

    Two structural compressions make the scan cheap: a run of ``k``
    same-direction outcomes is itself one clip function (``k`` takens
    are ``min(3, s + min(k, 3))``), so the scan runs over outcome
    *runs*, not events; and every clip function canonicalizes to a
    7-bit code (:func:`_build_counter_luts`), so one composition is one
    table gather.  Per-event flags come back from the run level in
    closed form: a taken-run entered at state ``x`` mispredicts exactly
    its first ``max(0, 2 - x)`` events, a not-taken-run its first
    ``max(0, x - 1)``.
    """
    n = idx.size
    miss = np.empty(n, dtype=np.uint8)
    if n == 0:
        return miss
    order = _stable_order(idx)
    sidx = idx[order]
    tk = taken[order] != 0

    head = np.empty(n, dtype=bool)
    head[0] = True
    head[1:] = sidx[1:] != sidx[:-1]

    # Run-length compress: consecutive same-outcome events in one slot.
    rb = head.copy()
    rb[1:] |= tk[1:] != tk[:-1]
    run_start = np.flatnonzero(rb)
    r = run_start.size
    run_len = np.empty(r, dtype=np.int64)
    run_len[:-1] = np.diff(run_start)
    run_len[-1] = n - run_start[-1]
    run_tak = tk[run_start]
    run_head = head[run_start]  # first run of its slot segment

    # Canonical codes per run (see _build_counter_luts for the packing).
    k3 = np.minimum(run_len, 3)
    code = np.where(run_tak, (k3 + 3) * 16 + k3 * 4 + 3, (3 - k3) * 17)

    # Segmented Hillis-Steele over runs; active sets are nested, so each
    # pass filters the shrinking index list instead of rescanning.
    rpos = np.arange(r, dtype=np.int64)
    rseg_head = np.maximum.accumulate(np.where(run_head, rpos, 0))
    rrun = rpos - rseg_head
    active = np.flatnonzero(rrun >= 1)
    shift = 1
    while active.size:
        code[active] = _COMPOSE_LUT[code[active - shift] * 112 + code[active]]
        shift <<= 1
        active = active[rrun[active] >= shift]

    # Entry state of each run: the segment's initial counter pushed
    # through the previous runs' composed function.
    c0 = table[sidx[run_start]].astype(np.int64)  # constant per segment
    x_before = c0.copy()
    inner = ~run_head
    x_before[inner] = _EVAL_LUT[code[np.flatnonzero(inner) - 1] * 4 + c0[inner]]

    thresh = np.where(run_tak, 2 - x_before, x_before - 1)
    np.maximum(thresh, 0, out=thresh)
    pos = np.arange(n, dtype=np.int64)
    miss[order] = (pos - np.repeat(run_start, run_len)) < np.repeat(thresh, run_len)

    last = np.empty(r, dtype=bool)
    last[:-1] = run_head[1:]
    last[-1] = True
    table[sidx[run_start[last]]] = _EVAL_LUT[code[last] * 4 + c0[last]]
    return miss


def gshare_history(taken: np.ndarray, history0: int, history_bits: int) -> np.ndarray:
    """Per-event global history column for a gshare replay.

    ``history`` before event ``i`` packs outcomes ``i-1, i-2, ...`` into
    the low bits, seeded with ``history0``; each bit position is one
    shifted slice of the outcome column.
    """
    n = taken.size
    h = np.zeros(n, dtype=np.int64)
    if n == 0 or history_bits == 0:
        return h
    hmask = (1 << history_bits) - 1
    for bit in range(min(history_bits, n - 1) if n > 1 else 0):
        h[bit + 1 :] |= taken[: n - 1 - bit] << bit
    for i in range(min(n, history_bits)):
        h[i] |= (history0 << i) & hmask
    return h
