"""Exact vectorized replay primitives for the machine model.

The cost model replays sampled event streams through a branch
predictor and an LRU cache hierarchy.  Both structures look inherently
serial — every access mutates state the next access reads — but both
admit exact reformulations that vectorize:

* **2-bit saturating counters** are clamped walks.  Every update is a
  monotone clamp function ``s -> min(u, max(l, s + d))``, and that
  family is closed under composition, so a whole outcome stream per
  table slot collapses to one composed function via an associative
  (segmented, Hillis-Steele) parallel-prefix scan — :func:`counter_scan`.

* **LRU hit/miss** is a stack-distance test: an access hits iff fewer
  than ``associativity`` distinct lines touched its set since the
  previous access to the same line.  With ``V[q]`` the position of that
  previous access (set-major order), the distinct count in the window
  is ``C[q] - V[q] - 1`` where ``C[q] = #{p < q : V[p] <= V[q]}``,
  because every ``p <= V[q]`` trivially satisfies ``V[p] < p <= V[q]``.
  ``C`` is a left-rank count, computed by :func:`left_rank` with a
  vectorized mergesort — :func:`lru_hits`.

* **Common streams avoid the general kernel entirely.**  Most sampled
  address streams never evict: when every set's distinct-line count is
  at most the associativity, an access hits iff it is not the first
  touch of its line, which one ``np.unique`` answers — :func:`lru_filter`.
  Sets are independent, so conflict sets that do evict are carved out
  and replayed exactly on their own — through :func:`lru_hits` when the
  residue is large, so conflict-heavy streams (omnetpp's pointer webs,
  xalancbmk's DOM walks) stay vectorized end to end.

* **Configs batch along an extra axis.**  Counter tables are
  independent per slot and LRU sets are independent per set, so N
  machine configs replaying the *same* event stream collapse into one
  kernel invocation over a disjoint union of slot/set spaces:
  :func:`counter_scan_batched` concatenates per-config tables,
  :func:`lru_hits_batched` / :func:`lru_filter_batched` embed the
  config index into composite set/line ids.  Each config's flags are
  bit-identical to its own single-config call.

Every function here is bit-exact against the scalar dict/bytearray
implementations; ``tests/test_kernel.py`` fuzzes them against brute
force and ``tests/test_golden_equivalence.py`` checks whole reports.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "left_rank",
    "lru_hits",
    "lru_filter",
    "counter_scan",
    "gshare_history",
    "counter_scan_batched",
    "lru_hits_batched",
    "lru_filter_batched",
]

# Below this block size, cross-counts are cheaper by broadcast compare
# than by searchsorted-based merging.
_BROADCAST_MAX_BLOCK = 32

# Below this stream length the plain dict walk in ``_lru_scalar`` beats
# any vector setup cost.
_FILTER_SCALAR_MAX = 1024


def _stable_order(values: np.ndarray) -> np.ndarray:
    """Indices that stable-sort ``values`` (int64).

    NumPy's ``kind="stable"`` argsort on int64 is timsort and several
    times slower than quicksort at these sizes.  Narrow value ranges
    (set indices, page-local ids) fit uint16, where the stable sort is
    a radix sort — faster still than any comparison sort.  Otherwise,
    when the range permits, we sort the collision-free composite key
    ``value * n + pos`` with the default quicksort; distinct keys make
    the result deterministic and equal to the stable order.
    """
    n = values.size
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    vmin = int(values.min())
    vmax = int(values.max())
    if vmin == vmax:
        return np.arange(n, dtype=np.int64)
    if vmax - vmin < (1 << 16):
        return np.argsort((values - vmin).astype(np.uint16), kind="stable")
    if vmax - vmin < (1 << 62) // n:
        pos = np.arange(n, dtype=np.int64)
        return np.argsort((values - vmin) * n + pos)
    return np.argsort(values, kind="stable")


def left_rank(values: np.ndarray) -> np.ndarray:
    """For distinct integers, ``C[q] = #{p < q : values[p] < values[q]}``.

    Iterative bottom-up mergesort.  Levels with blocks up to
    ``_BROADCAST_MAX_BLOCK`` count left-half-vs-right-half pairs with one
    broadcast comparison per level (no sorting needed); larger levels
    keep blocks sorted and use a single flattened ``searchsorted`` per
    direction — row offsets larger than the value range make the
    concatenation of sorted blocks globally sorted, so one call serves
    every block pair at once.
    """
    v = np.asarray(values, dtype=np.int64)
    n = v.size
    if n <= 1:
        return np.zeros(n, dtype=np.int64)
    # Rank-compress to a permutation of 0..n-1 so pads and row offsets
    # have a known range.  Values are distinct, so the default quicksort
    # is deterministic.
    ranks = np.empty(n, dtype=np.int64)
    ranks[np.argsort(v)] = np.arange(n, dtype=np.int64)
    m = 1 << (n - 1).bit_length()
    a = np.empty(m, dtype=np.int64)
    a[:n] = ranks
    # Pads sort above every real rank, so they never count for a real
    # query; their own counts land on positions >= n and are discarded.
    a[n:] = np.arange(n, m, dtype=np.int64)
    perm = np.arange(m, dtype=np.int64)
    out = np.zeros(m, dtype=np.int64)

    width = 1
    while width < m and width <= _BROADCAST_MAX_BLOCK:
        pairs = a.reshape(m // (2 * width), 2 * width)
        left, right = pairs[:, :width], pairs[:, width:]
        cnt = (left[:, :, None] < right[:, None, :]).sum(axis=1, dtype=np.int64)
        out[perm.reshape(m // (2 * width), 2 * width)[:, width:].ravel()] += cnt.ravel()
        width *= 2

    if width < m:
        # Seed the merge levels: sort each block once.
        rows = a.reshape(m // width, width)
        order = np.argsort(rows, axis=1, kind="stable")
        a = np.take_along_axis(rows, order, axis=1).ravel()
        perm = np.take_along_axis(perm.reshape(m // width, width), order, axis=1).ravel()
        while width < m:
            nblocks = m // (2 * width)
            blocks = a.reshape(nblocks, 2 * width)
            pblocks = perm.reshape(nblocks, 2 * width)
            row = np.repeat(np.arange(nblocks, dtype=np.int64), width)
            offset = row * m
            lkeys = blocks[:, :width].ravel() + offset
            rkeys = blocks[:, width:].ravel() + offset
            # of each right element: how many left-block values are below
            cnt_r = np.searchsorted(lkeys, rkeys) - row * width
            out[pblocks[:, width:].ravel()] += cnt_r
            # merge the sorted halves by final position (values distinct)
            cnt_l = np.searchsorted(rkeys, lkeys) - row * width
            within = np.tile(np.arange(width, dtype=np.int64), nblocks)
            base = row * (2 * width)
            merged = np.empty(m, dtype=np.int64)
            mperm = np.empty(m, dtype=np.int64)
            lpos = base + within + cnt_l
            rpos = base + within + cnt_r
            merged[lpos] = blocks[:, :width].ravel()
            mperm[lpos] = pblocks[:, :width].ravel()
            merged[rpos] = blocks[:, width:].ravel()
            mperm[rpos] = pblocks[:, width:].ravel()
            a, perm = merged, mperm
            width *= 2
    return out[:n]


# Bitset-path limits: widest per-set line alphabet (words of 64), and
# the word-operation budget above which the rank path is cheaper.
_BITSET_MAX_LINES = 2048
_BITSET_RANK_FACTOR = 256

# Below this many boolean ops (hard queries x stream length), long
# windows are answered by direct broadcast comparison instead of
# building the dyadic OR table.
_DIRECT_MAX_OPS = 1 << 20

# Below this many total window positions, hard queries are answered by
# gathering every in-window predecessor flag directly — cost scales
# with the sum of window lengths rather than stream length, which wins
# when hard windows are short (low-associativity levels).
_FLAT_MAX_OPS = 1 << 16

# Reusable backing store for the dyadic OR tables.  These run to
# megabytes, which the allocator returns to the OS on free — without
# reuse every replay repays the page faults for the same buffer.
# Oversized requests (beyond this word count) stay one-shot so a single
# huge stream cannot pin memory for the life of the process.
_TABLE_CACHE_MAX_WORDS = 1 << 22
_table_scratch_buf = np.zeros(0, dtype=np.uint64)


def _table_scratch(rows: int, k: int) -> np.ndarray:
    global _table_scratch_buf
    need = rows * k
    if need > _TABLE_CACHE_MAX_WORDS:
        return np.empty((rows, k), dtype=np.uint64)
    if _table_scratch_buf.size < need:
        _table_scratch_buf = np.empty(need, dtype=np.uint64)
    return _table_scratch_buf[:need].reshape(rows, k)


def _window_distinct_hits(
    ks: np.ndarray,
    kt: np.ndarray,
    by_tag: np.ndarray,
    same_tag: np.ndarray,
    V: np.ndarray,
    queries: np.ndarray,
    q_assoc: "int | np.ndarray",
) -> "np.ndarray | None":
    """Hit flags by counting distinct lines in reuse windows directly.

    An access at kept position ``q`` hits iff fewer than ``assoc``
    distinct lines appeared in the window ``(V[q], q)``.  The stream is
    set-major, so the window stays inside one set's segment and every
    set can number its lines locally; each position then becomes a
    one-bit row of a bitset, and a dyadic range-OR table answers every
    window with two gathers — popcount of the OR is the distinct count.
    Linear in stream length x alphabet words, independent of how many
    accesses need answering; returns ``None`` when per-set alphabets
    are too wide or the rank path is estimated cheaper.
    """
    k = kt.size
    # A window of w positions holds at most w distinct lines, so any
    # reuse window shorter than the associativity hits unconditionally
    # — on associative levels that is usually almost every query.
    wq = queries - V[queries] - 1
    hits = np.ones(queries.size, dtype=bool)
    hard = np.flatnonzero(wq >= q_assoc)
    if not hard.size:
        return hits
    hq = queries[hard]
    hV = V[hq]
    aw = q_assoc[hard] if isinstance(q_assoc, np.ndarray) else q_assoc
    ws = wq[hard]
    total_win = int(ws.sum())
    if total_win <= _FLAT_MAX_OPS and int(ws.min()) > 0:
        # Short hard windows: enumerate every window position in one
        # flat gather.  A position ``p`` counts iff its predecessor
        # lies outside the window (``V[p] <= V[q]``) — the first
        # in-window occurrence of each distinct line; ``line[q]``
        # itself cannot appear inside its own reuse window.
        cum = np.zeros(hard.size + 1, dtype=np.int64)
        np.cumsum(ws, out=cum[1:])
        starts = cum[:-1]
        ramp = np.arange(total_win, dtype=np.int64) - np.repeat(starts, ws)
        idx = np.repeat(hV + 1, ws) + ramp
        firsts = (V[idx] <= np.repeat(hV, ws)).astype(np.int32)
        distinct = np.add.reduceat(firsts, starts)
        hits[hard] = distinct < aw
        return hits
    if hard.size * k <= _DIRECT_MAX_OPS:
        # A handful of long-window queries (pointer chasers through a
        # big dTLB): answer each with one masked comparison over the
        # kept stream.  A position ``p`` in the window counts iff its
        # own predecessor lies outside it (``V[p] <= V[q]``; first
        # touches have -1) — exactly the first in-window occurrence of
        # each distinct line, and ``line[q]`` itself cannot appear.
        # Positions at or before ``V[q]`` pass the predicate trivially
        # (``V[p] < p``), contributing exactly ``V[q] + 1``.  Kept
        # positions fit int32, which halves the broadcast traffic.
        pos = np.arange(k, dtype=np.int32)
        V32 = V.astype(np.int32)
        inwin = (pos[None, :] < hq[:, None].astype(np.int32)) & (
            V32[None, :] <= hV[:, None].astype(np.int32)
        )
        distinct = inwin.sum(axis=1, dtype=np.int64) - hV - 1
        hits[hard] = distinct < aw
        return hits
    if not hasattr(np, "bitwise_count"):  # numpy < 2.0
        return None
    head = np.empty(k, dtype=bool)
    head[0] = True
    head[1:] = ~same_tag
    first_pos = by_tag[head]
    # Lines ordered by first occurrence are grouped by set segment, so
    # a line's local id is its rank within that run.
    forder = np.argsort(first_pos)
    fsorted = first_pos[forder]
    sseq = ks[fsorted]
    nlines = first_pos.size
    newset = np.empty(nlines, dtype=bool)
    newset[0] = True
    newset[1:] = sseq[1:] != sseq[:-1]
    seg_start = np.flatnonzero(newset)
    seg_sizes = np.diff(np.append(seg_start, nlines))
    maxd = int(seg_sizes.max())
    if maxd > _BITSET_MAX_LINES:
        return None
    words = (maxd + 63) >> 6
    levels = int(wq[hard].max()).bit_length() - 1
    if (levels + 2) * k * words > queries.size * _BITSET_RANK_FACTOR:
        return None
    lid = np.empty(nlines, dtype=np.int64)
    lid[forder] = np.arange(nlines, dtype=np.int64) - np.repeat(
        seg_start, seg_sizes
    )
    group_sizes = np.diff(np.append(np.flatnonzero(head), k))
    rid = np.empty(k, dtype=np.int64)
    rid[by_tag] = np.repeat(lid, group_sizes)
    # Stack every dyadic level into one array so all queries — whatever
    # their window length — answer with a single flat double-gather.
    # floor(log2) is exact on float64 for any window length < 2**53.
    lq = np.floor(np.log2(wq[hard])).astype(np.int64)
    base = lq * k
    lo = base + hV + 1
    hi = base + hq - (np.int64(1) << lq)
    bits = np.uint64(1) << (rid & 63).astype(np.uint64)
    if words == 1:
        # one word covers the whole set alphabet: drop the word axis,
        # the per-row popcount is then a straight ufunc
        tabs = _table_scratch(levels + 1, k)
        tabs[0] = bits
        for ell in range(1, levels + 1):
            half = 1 << (ell - 1)
            prev = tabs[ell - 1]
            np.bitwise_or(prev[: k - half], prev[half:], out=tabs[ell, : k - half])
            tabs[ell, k - half :] = prev[k - half :]
        flat = tabs.reshape(-1)
        distinct = np.bitwise_count(flat[lo] | flat[hi]).astype(np.int64)
    else:
        # Wider alphabets: one flat single-word table per 64-line plane,
        # accumulating popcounts across planes.  Same total word count
        # as a 3D table, but every OR and gather stays contiguous.
        widx = rid >> 6
        tabs = _table_scratch(levels + 1, k)
        distinct = np.zeros(hard.size, dtype=np.int64)
        for w in range(words):
            row0 = tabs[0]
            row0[:] = 0
            sel = widx == w
            row0[sel] = bits[sel]
            for ell in range(1, levels + 1):
                half = 1 << (ell - 1)
                prev = tabs[ell - 1]
                np.bitwise_or(
                    prev[: k - half], prev[half:], out=tabs[ell, : k - half]
                )
                tabs[ell, k - half :] = prev[k - half :]
            flat = tabs.reshape(-1)
            distinct += np.bitwise_count(flat[lo] | flat[hi]).astype(np.int64)
    hits[hard] = distinct < aw
    return hits


def _lru_hits_core(
    sets: np.ndarray,
    lines: np.ndarray,
    assoc: "int | np.ndarray",
    tag_order: "np.ndarray | None" = None,
) -> np.ndarray:
    """Exact LRU hit flags over explicit (set, line) id streams.

    ``sets``/``lines`` are parallel int64 arrays in access order; set
    and line ids may be arbitrary composites (equal line id implies
    equal set id).  ``assoc`` is the associativity — a scalar, or a
    per-event array for streams mixing cache configs (every event of
    one set must carry the same value).  Starts from an empty cache.

    ``tag_order``, when given, is a permutation of stream positions
    grouping equal line ids contiguously, stable within each group —
    a caller that already tag-sorted the stream (``lru_filter``) passes
    it so the second sort here is skipped.
    """
    n = lines.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = _stable_order(sets)
    st = lines[order]
    # An access repeating the immediately-previous line of its set is a
    # hit that leaves LRU state unchanged — drop it before the expensive
    # rank computation.  (Equal line ids imply equal sets.)
    rerun = np.empty(n, dtype=bool)
    rerun[0] = False
    rerun[1:] = st[1:] == st[:-1]
    keep = np.flatnonzero(~rerun)
    kt = st[keep]
    k = keep.size

    # V[q]: position (in kept, set-major order) of the previous access
    # to the same line, or -1.  Same line implies same set, so grouping
    # by line alone finds the predecessor.
    if tag_order is None:
        by_tag = _stable_order(kt)
    else:
        # Reuse the caller's tag grouping: within a line group the
        # original order equals the kept set-major order (same line
        # means same set, and the set sort is stable), so mapping the
        # caller's permutation to kept coordinates and dropping the
        # rerun positions yields exactly the stable tag order of ``kt``.
        kcoord = np.full(n, -1, dtype=np.int64)
        kcoord[order[keep]] = np.arange(k, dtype=np.int64)
        mapped = kcoord[tag_order]
        by_tag = mapped[mapped >= 0]
    grouped = kt[by_tag]
    same_tag = grouped[1:] == grouped[:-1]
    V = np.full(k, -1, dtype=np.int64)
    V[by_tag[1:][same_tag]] = by_tag[:-1][same_tag]

    kept_assoc = (
        np.asarray(assoc, dtype=np.int64)[order][keep]
        if isinstance(assoc, np.ndarray)
        else assoc
    )
    # Only accesses with a previous occurrence can hit; first touches
    # are misses outright and need no rank query.
    queries = np.flatnonzero(V >= 0)
    kept_hits = np.zeros(k, dtype=bool)
    if queries.size:
        q_assoc = (
            kept_assoc[queries]
            if isinstance(kept_assoc, np.ndarray)
            else kept_assoc
        )
        hits_q = _window_distinct_hits(
            sets[order][keep], kt, by_tag, same_tag, V, queries, q_assoc
        )
        if hits_q is None:
            # Distinct lines touched since the previous access to this
            # line: every first touch before q counts (its synthetic
            # predecessor sorts below any real position), plus the
            # non-first accesses whose predecessor came before V[q].
            # Predecessor positions are unique per access, so the rank
            # restricted to query positions is a left_rank over the
            # subsequence V[queries] — usually far smaller than the
            # stream when the carve-out is dominated by cold misses.
            firsts_before = np.cumsum(V < 0)
            d = firsts_before[queries] + left_rank(V[queries]) - V[queries]
            hits_q = d <= q_assoc
        kept_hits[queries] = hits_q

    sorted_hits = np.empty(n, dtype=bool)
    sorted_hits[rerun] = True
    sorted_hits[keep] = kept_hits
    hits = np.empty(n, dtype=bool)
    hits[order] = sorted_hits
    return hits


def lru_hits(tags: np.ndarray, set_mask: int, assoc: int) -> np.ndarray:
    """Exact LRU hit flags for one allocate-on-miss cache level.

    ``tags`` are line tags in access order; a tag's set is
    ``tag & set_mask`` (pass 0 for a fully-associative structure).
    Returns a boolean array, True where the access hits.  Matches the
    insertion-ordered-dict LRU in :mod:`repro.machine.cache` exactly,
    starting from an empty cache.
    """
    t = np.asarray(tags, dtype=np.int64)
    return _lru_hits_core(t & set_mask, t, assoc)


def _lru_scalar(tags: list, set_mask: int, assoc: int) -> np.ndarray:
    """Reference dict-LRU walk of one cache level; returns hit flags.

    Mirrors the insertion-ordered-dict model in
    :mod:`repro.machine.cache` exactly (allocate on miss, evict the
    least recently used way).
    """
    hits = np.empty(len(tags), dtype=bool)
    sets: dict = {}
    i = 0
    for t in tags:
        lset = sets.get(t & set_mask)
        if lset is None:
            lset = sets[t & set_mask] = {}
        if t in lset:
            del lset[t]
            lset[t] = None
            hits[i] = True
        else:
            hits[i] = False
            if len(lset) >= assoc:
                lset.pop(next(iter(lset)))
            lset[t] = None
        i += 1
    return hits


def lru_filter(tags: np.ndarray, set_mask: int, assoc: int) -> np.ndarray:
    """Exact LRU hit flags for one level, exploiting stream structure.

    Sampled address streams are usually eviction-free: when a set's
    distinct-line count never exceeds the associativity, nothing is
    ever evicted from it, so an access to that set hits iff it is not
    the first touch of its line — answered by one ``np.unique``.  Sets
    behave independently under LRU, so the (typically few) conflict
    sets whose distinct count does exceed the associativity are carved
    out as a subsequence and replayed exactly by the reference dict
    walk, then scattered back.  Results are bit-identical to
    :func:`lru_hits` and to :mod:`repro.machine.cache`.
    """
    t = np.asarray(tags, dtype=np.int64)
    n = t.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n < _FILTER_SCALAR_MAX:
        return _lru_scalar(t.tolist(), set_mask, assoc)
    # uniques and their first-occurrence indices (np.unique would use
    # the slow stable sort when asked for indices)
    order = _stable_order(t)
    st = t[order]
    head = np.empty(n, dtype=bool)
    head[0] = True
    head[1:] = st[1:] != st[:-1]
    uniq = st[head]
    first = order[head]
    if set_mask == 0:
        # fully associative: one set, all-or-nothing
        if uniq.size <= assoc:
            hits = np.ones(n, dtype=bool)
            hits[first] = False
            return hits
        # The whole stream evicts (e.g. a pointer chaser touching more
        # pages than the dTLB holds): the stack-distance kernel is exact
        # and keeps the stream vectorized; only short streams still pay
        # off in the dict walk.
        return _lru_hits_core(
            np.zeros(n, dtype=np.int64), t, assoc, tag_order=order
        )
    counts = np.bincount(uniq & set_mask, minlength=set_mask + 1)
    bad = counts > assoc
    if not bad.any():
        hits = np.ones(n, dtype=bool)
        hits[first] = False
        return hits
    cm = bad[t & set_mask]
    conflict = np.flatnonzero(cm)
    if conflict.size * 10 >= n * 9:
        # Nearly every event sits in a conflicting set (DOM walks,
        # pointer webs): carving buys nothing, so hand the whole stream
        # to the kernel, reusing the tag sort.  Clean sets stay exact
        # there — they just skip the first-touch shortcut.
        return _lru_hits_core(t & set_mask, t, assoc, tag_order=order)
    hits = np.ones(n, dtype=bool)
    hits[first[~bad[uniq & set_mask]]] = False
    # Conflict sets are independent of the clean sets, so their carved
    # subsequence replays exactly on its own.  Large residues (streams
    # where most sets conflict) go through the vectorized stack-distance
    # kernel instead of the scalar dict walk — bit-identical, and the
    # difference between a x1.8 and a x4 replay on conflict-heavy
    # benchmarks.
    tc = t[conflict]
    if conflict.size >= _FILTER_SCALAR_MAX:
        # Restrict the full tag sort to carve members and renumber to
        # carve coordinates; the core then skips its own tag sort.
        rank_tc = np.cumsum(cm) - 1
        tc_order = rank_tc[order[cm[order]]]
        hits[conflict] = _lru_hits_core(
            tc & set_mask, tc, assoc, tag_order=tc_order
        )
    else:
        hits[conflict] = _lru_scalar(tc.tolist(), set_mask, assoc)
    return hits


def _build_counter_luts() -> tuple[np.ndarray, np.ndarray]:
    """Composition / evaluation tables for canonical 2-bit clip codes.

    On the domain {0..3} every update function is ``x -> min(hi,
    max(lo, x + d))`` with ``lo, hi`` in [0, 3] and ``d`` in [-3, 3]
    (a shift beyond the window acts saturated), so each function packs
    into a 7-bit code ``(d + 3) * 16 + lo * 4 + hi``.  The family is
    closed under composition; tabulating it turns the whole segmented
    prefix scan into one uint8 gather per round.
    """
    codes = np.arange(112, dtype=np.int64)
    d = codes // 16 - 3
    lo = (codes // 4) % 4
    hi = codes % 4
    x = np.arange(4, dtype=np.int64)
    # val[c, x] = f_c(x)
    val = np.minimum(hi[:, None], np.maximum(lo[:, None], x[None, :] + d[:, None]))
    val = np.clip(val, 0, 3)
    # h[c1, c2, x] = f_c2(f_c1(x)) — apply c1 first
    h = val[codes[None, :, None], val[:, None, :]]
    h0 = h[:, :, 0]
    h3 = h[:, :, 3]
    step = h[:, :, 1:] != h[:, :, :-1]
    ramp = np.argmax(step, axis=2)  # first x with f(x+1) = f(x) + 1
    d_c = np.where(
        h0 == h3,
        h0 - 3,  # constant function: any in-range shift works
        np.take_along_axis(h, ramp[:, :, None], axis=2)[:, :, 0] - ramp,
    )
    compose = ((d_c + 3) * 16 + h0 * 4 + h3).astype(np.uint8)
    return compose.ravel(), val.astype(np.uint8).ravel()


_COMPOSE_LUT, _EVAL_LUT = _build_counter_luts()


def counter_scan(idx: np.ndarray, taken: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Replay 2-bit saturating counters; returns mispredict flags.

    ``idx`` is the table slot per event, ``taken`` the outcome (0/1),
    ``table`` the uint8 counter table updated in place.  A taken update
    is ``s -> min(3, s + 1)``, not-taken is ``s -> max(0, s - 1)``; both
    are clip functions, and that family is closed under composition, so
    each slot's event run reduces by a segmented parallel-prefix scan.

    Two structural compressions make the scan cheap: a run of ``k``
    same-direction outcomes is itself one clip function (``k`` takens
    are ``min(3, s + min(k, 3))``), so the scan runs over outcome
    *runs*, not events; and every clip function canonicalizes to a
    7-bit code (:func:`_build_counter_luts`), so one composition is one
    table gather.  Per-event flags come back from the run level in
    closed form: a taken-run entered at state ``x`` mispredicts exactly
    its first ``max(0, 2 - x)`` events, a not-taken-run its first
    ``max(0, x - 1)``.
    """
    n = idx.size
    miss = np.empty(n, dtype=np.uint8)
    if n == 0:
        return miss
    order = _stable_order(idx)
    sidx = idx[order]
    tk = taken[order] != 0

    head = np.empty(n, dtype=bool)
    head[0] = True
    head[1:] = sidx[1:] != sidx[:-1]

    # Run-length compress: consecutive same-outcome events in one slot.
    rb = head.copy()
    rb[1:] |= tk[1:] != tk[:-1]
    run_start = np.flatnonzero(rb)
    r = run_start.size
    run_len = np.empty(r, dtype=np.int64)
    run_len[:-1] = np.diff(run_start)
    run_len[-1] = n - run_start[-1]
    run_tak = tk[run_start]
    run_head = head[run_start]  # first run of its slot segment

    # Canonical codes per run (see _build_counter_luts for the packing).
    k3 = np.minimum(run_len, 3)
    code = np.where(run_tak, (k3 + 3) * 16 + k3 * 4 + 3, (3 - k3) * 17)

    # Segmented Hillis-Steele over runs; active sets are nested, so each
    # pass filters the shrinking index list instead of rescanning.
    rpos = np.arange(r, dtype=np.int64)
    rseg_head = np.maximum.accumulate(np.where(run_head, rpos, 0))
    rrun = rpos - rseg_head
    active = np.flatnonzero(rrun >= 1)
    shift = 1
    while active.size:
        code[active] = _COMPOSE_LUT[code[active - shift] * 112 + code[active]]
        shift <<= 1
        active = active[rrun[active] >= shift]

    # Entry state of each run: the segment's initial counter pushed
    # through the previous runs' composed function.
    c0 = table[sidx[run_start]].astype(np.int64)  # constant per segment
    x_before = c0.copy()
    inner = ~run_head
    x_before[inner] = _EVAL_LUT[code[np.flatnonzero(inner) - 1] * 4 + c0[inner]]

    thresh = np.where(run_tak, 2 - x_before, x_before - 1)
    np.maximum(thresh, 0, out=thresh)
    pos = np.arange(n, dtype=np.int64)
    miss[order] = (pos - np.repeat(run_start, run_len)) < np.repeat(thresh, run_len)

    last = np.empty(r, dtype=bool)
    last[:-1] = run_head[1:]
    last[-1] = True
    table[sidx[run_start[last]]] = _EVAL_LUT[code[last] * 4 + c0[last]]
    return miss


# ------------------------------------------------------- config-axis kernels


def counter_scan_batched(
    idx_rows: "list[np.ndarray]", taken: np.ndarray, tables: "list[np.ndarray]"
) -> np.ndarray:
    """Replay N independent counter tables over one outcome stream.

    ``idx_rows[c]`` is config ``c``'s table slot per event (configs
    index the *same* events differently — table size and history depth
    vary), ``taken`` the shared outcome column, ``tables[c]`` config
    ``c``'s uint8 table, updated in place.  Slots are disjoint across
    configs once offset by the table sizes, and :func:`counter_scan` is
    independent per slot with stable per-slot event order, so one scan
    over the concatenated stream is bit-identical to N separate scans.
    Returns an ``(N, n_events)`` uint8 mispredict matrix.
    """
    c = len(tables)
    n = taken.size
    miss = np.empty((c, n), dtype=np.uint8)
    # Tables are independent, so per-config scans are bit-identical to
    # one scan over the offset-concatenated stream — and cheaper: the
    # slot sort inside counter_scan is superlinear in stream length,
    # so c short sorts beat one c-times-longer composite sort.
    for i in range(c):
        miss[i] = counter_scan(idx_rows[i], taken, tables[i])
    return miss


def _batch_ids(
    tag_rows: "list[np.ndarray]", set_masks: "list[int]", assocs: "list[int]"
):
    """Composite (set, line, assoc) id streams for a config batch.

    Embeds the config index into the low bits of set and line ids so
    configs occupy disjoint id spaces; returns ``None`` when the
    composite line id would overflow int64 (callers fall back to the
    per-config loop).
    """
    c = len(tag_rows)
    lens = np.array([t.size for t in tag_rows], dtype=np.int64)
    t = np.concatenate(tag_rows) if tag_rows else np.zeros(0, dtype=np.int64)
    if t.size and (int(t.min()) < 0 or int(t.max()) > (1 << 62) // c - 1):
        return None
    cfg = np.repeat(np.arange(c, dtype=np.int64), lens)
    masks = np.asarray(set_masks, dtype=np.int64)[cfg]
    gline = t * c + cfg
    gset = (t & masks) * c + cfg
    assoc_e = np.asarray(assocs, dtype=np.int64)[cfg]
    return t, cfg, lens, gline, gset, assoc_e


def _split_rows(flat: np.ndarray, lens: np.ndarray) -> "list[np.ndarray]":
    bounds = np.zeros(lens.size + 1, dtype=np.int64)
    np.cumsum(lens, out=bounds[1:])
    return [flat[bounds[i] : bounds[i + 1]] for i in range(lens.size)]


def lru_hits_batched(
    tag_rows: "list[np.ndarray]", set_masks: "list[int]", assocs: "list[int]"
) -> "list[np.ndarray]":
    """:func:`lru_hits` for N configs in one kernel invocation.

    ``tag_rows[i]`` is config ``i``'s line-tag stream (streams may
    differ in content and length — an L2 sees each config's own L1
    misses), ``set_masks[i]``/``assocs[i]`` its geometry.  Sets are
    independent under LRU and the composite ids keep configs in
    disjoint sets, so any interleaving that preserves each config's
    order — here config-major concatenation — replays all of them
    exactly at once.  Returns per-config hit-flag arrays, each
    bit-identical to its own :func:`lru_hits` call.
    """
    ids = _batch_ids(tag_rows, set_masks, assocs)
    if ids is None:
        return [
            lru_hits(t, m, a) for t, m, a in zip(tag_rows, set_masks, assocs)
        ]
    _t, _cfg, lens, gline, gset, assoc_e = ids
    return _split_rows(_lru_hits_core(gset, gline, assoc_e), lens)


def lru_filter_batched(
    tag_rows: "list[np.ndarray]", set_masks: "list[int]", assocs: "list[int]"
) -> "list[np.ndarray]":
    """:func:`lru_filter` for N configs in one pass.

    The eviction-free fast path generalizes: first touches and per-set
    distinct-line counts are computed once over the composite id
    stream, and the conflict residue of *all* configs — each config's
    conflicting sets carved as a subsequence — resolves in a single
    :func:`_lru_hits_core` call.  Per-config results are bit-identical
    to :func:`lru_filter`.
    """
    total = sum(t.size for t in tag_rows)
    if len(tag_rows) == 1 or total < _FILTER_SCALAR_MAX:
        return [
            lru_filter(t, m, a) for t, m, a in zip(tag_rows, set_masks, assocs)
        ]
    ids = _batch_ids(tag_rows, set_masks, assocs)
    if ids is None:
        return [
            lru_filter(t, m, a) for t, m, a in zip(tag_rows, set_masks, assocs)
        ]
    _t, _cfg, lens, gline, gset, assoc_e = ids
    n = gline.size

    order = _stable_order(gline)
    st = gline[order]
    head = np.empty(n, dtype=bool)
    head[0] = True
    head[1:] = st[1:] != st[:-1]
    first = order[head]  # first touch of each distinct (config, line)

    # distinct-line count per (config, set); the set id space is sparse,
    # so group via unique rather than bincount.  Every event of one set
    # belongs to one config, so any member's associativity represents
    # the set — take the first occurrence's.
    uset = gset[first]
    us, us_idx, cnt = np.unique(uset, return_index=True, return_counts=True)
    bad_us = cnt > assoc_e[first[us_idx]]

    hits = np.ones(n, dtype=bool)
    set_of_first = np.searchsorted(us, uset)
    hits[first[~bad_us[set_of_first]]] = False
    bad_e = bad_us[np.searchsorted(us, gset)]
    conflict = np.flatnonzero(bad_e)
    if conflict.size:
        hits[conflict] = _lru_hits_core(
            gset[conflict], gline[conflict], assoc_e[conflict]
        )
    return _split_rows(hits, lens)


def gshare_history(taken: np.ndarray, history0: int, history_bits: int) -> np.ndarray:
    """Per-event global history column for a gshare replay.

    ``history`` before event ``i`` packs outcomes ``i-1, i-2, ...`` into
    the low bits, seeded with ``history0``; each bit position is one
    shifted slice of the outcome column.
    """
    n = taken.size
    h = np.zeros(n, dtype=np.int64)
    if n == 0 or history_bits == 0:
        return h
    hmask = (1 << history_bits) - 1
    for bit in range(min(history_bits, n - 1) if n > 1 else 0):
        h[bit + 1 :] |= taken[: n - 1 - bit] << bit
    for i in range(min(n, history_bits)):
        h[i] |= (history0 << i) & hmask
    return h
