"""Execution profiler: runs a benchmark on a workload under the machine model.

This is the harness's equivalent of running a SPEC binary under perf:
it executes the mini-benchmark (real algorithmic work in Python),
collects telemetry through a :class:`~repro.machine.telemetry.Probe`,
evaluates the cost model, and verifies the benchmark's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.coverage import CoverageProfile
from ..core.errors import VerificationError, WorkloadError
from ..core.topdown import TopDownVector
from ..core.workload import Workload
from .cost import CostModel, MachineConfig, MachineReport
from .telemetry import Probe

__all__ = ["ExecutionProfile", "run_benchmark", "Profiler"]


@dataclass(frozen=True)
class ExecutionProfile:
    """The full observation of one (benchmark, workload) execution."""

    benchmark: str
    workload: str
    report: MachineReport
    output: Any
    verified: bool

    @property
    def topdown(self) -> TopDownVector:
        return self.report.topdown

    @property
    def coverage(self) -> CoverageProfile:
        return self.report.coverage

    @property
    def seconds(self) -> float:
        return self.report.seconds

    @property
    def cycles(self) -> float:
        return self.report.cycles


class Profiler:
    """Runs benchmarks under a fixed machine configuration."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()
        self._cost_model = CostModel(self.config)

    def run(self, benchmark: Any, workload: Workload, *, verify: bool = True) -> ExecutionProfile:
        """Execute ``benchmark`` on ``workload`` and profile it.

        ``benchmark`` must implement the
        :class:`~repro.benchmarks.base.Benchmark` protocol.  When
        ``verify`` is true the benchmark's own output check runs and a
        failure raises :class:`~repro.core.errors.VerificationError` —
        mirroring SPEC's output validation step, which treats a
        miscompare as a failed run.
        """
        if workload.benchmark != benchmark.name:
            raise WorkloadError(
                f"workload {workload.name!r} is for {workload.benchmark!r}, "
                f"not {benchmark.name!r}"
            )
        probe = Probe()
        output = benchmark.run(workload, probe)
        verified = True
        if verify:
            verified = bool(benchmark.verify(workload, output))
            if not verified:
                raise VerificationError(
                    f"{benchmark.name}: output verification failed for "
                    f"workload {workload.name!r}"
                )
        report = self._cost_model.evaluate(probe)
        return ExecutionProfile(
            benchmark=benchmark.name,
            workload=workload.name,
            report=report,
            output=output,
            verified=verified,
        )


def run_benchmark(
    benchmark: Any,
    workload: Workload,
    config: MachineConfig | None = None,
) -> ExecutionProfile:
    """One-shot convenience wrapper around :class:`Profiler`."""
    return Profiler(config).run(benchmark, workload)
