"""Branch predictors.

The bad-speculation fraction of the top-down breakdown is driven by
branch mispredictions, so the machine model replays each benchmark's
conditional-branch outcome stream through a real predictor.  Two
classical predictors are provided:

* :class:`BimodalPredictor` — a table of 2-bit saturating counters
  indexed by branch PC;
* :class:`GsharePredictor` — 2-bit counters indexed by PC xor global
  history, the default for the i7-like machine configuration.

Both keep their 2-bit counters in a flat ``bytearray`` table (one byte
per counter, initialized weakly-not-taken), so a prediction is a byte
index instead of a dict probe, and both expose a :meth:`replay` batch
API that walks an entire outcome stream at once.  Short streams run a
tight scalar loop; long streams dispatch to the segmented prefix scan
in :mod:`repro.machine.kernel` (saturating-counter updates are clamp
functions, which compose associatively).  Predictions are identical to
the historical dict-backed tables: a missing dict entry defaulted to
counter state 1, which is exactly the ``bytearray`` initial fill.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .kernel import counter_scan, gshare_history

__all__ = ["BimodalPredictor", "GsharePredictor", "PredictorStats"]

# Streams shorter than this replay faster in the scalar loop than in
# the vectorized scan (fixed NumPy call overhead dominates).
_VECTOR_MIN_EVENTS = 512


class PredictorStats:
    """Counts of predicted/mispredicted branches."""

    __slots__ = ("branches", "mispredicts")

    def __init__(self) -> None:
        self.branches = 0
        self.mispredicts = 0

    def misprediction_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0


class BimodalPredictor:
    """2-bit saturating counter per branch site.

    Counter states: 0, 1 predict not-taken; 2, 3 predict taken.
    Counters start weakly not-taken (1).
    """

    __slots__ = ("table_bits", "_mask", "_table", "stats")

    def __init__(self, table_bits: int = 12):
        if not 1 <= table_bits <= 24:
            raise ValueError("table_bits must be in [1, 24]")
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._table = bytearray(b"\x01" * (1 << table_bits))
        self.stats = PredictorStats()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, update state; returns correctness."""
        table = self._table
        idx = pc & self._mask
        counter = table[idx]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.branches += 1
        if not correct:
            self.stats.mispredicts += 1
        if taken:
            if counter < 3:
                table[idx] = counter + 1
        else:
            if counter > 0:
                table[idx] = counter - 1
        return correct

    def replay(self, pcs: Sequence[int], takens: Sequence[int]):
        """Replay a whole outcome stream; returns per-event mispredict
        flags (1 = mispredicted, buffer-compatible) and updates
        :attr:`stats`."""
        n = len(pcs)
        if n >= _VECTOR_MIN_EVENTS:
            pc_col = np.asarray(pcs, dtype=np.int64)
            tak_col = (np.asarray(takens, dtype=np.int64) != 0).astype(np.int64)
            table = np.frombuffer(self._table, dtype=np.uint8)
            miss = counter_scan(pc_col & self._mask, tak_col, table)
            self.stats.branches += n
            self.stats.mispredicts += int(miss.sum())
            return miss
        if isinstance(pcs, np.ndarray):
            pcs = pcs.tolist()
        if isinstance(takens, np.ndarray):
            takens = takens.tolist()
        table = self._table
        mask = self._mask
        miss = bytearray(n)
        n_miss = 0
        i = 0
        for pc, taken in zip(pcs, takens):
            counter = table[pc & mask]
            if (counter >= 2) != bool(taken):
                miss[i] = 1
                n_miss += 1
            if taken:
                if counter < 3:
                    table[pc & mask] = counter + 1
            elif counter > 0:
                table[pc & mask] = counter - 1
            i += 1
        self.stats.branches += n
        self.stats.mispredicts += n_miss
        return miss


class GsharePredictor:
    """Gshare: 2-bit counters indexed by PC xor global branch history."""

    __slots__ = ("table_bits", "history_bits", "_mask", "_history", "_table", "stats")

    def __init__(self, table_bits: int = 14, history_bits: int = 12):
        if not 1 <= table_bits <= 24:
            raise ValueError("table_bits must be in [1, 24]")
        if not 0 <= history_bits <= table_bits:
            raise ValueError("history_bits must be in [0, table_bits]")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history = 0
        self._table = bytearray(b"\x01" * (1 << table_bits))
        self.stats = PredictorStats()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        table = self._table
        idx = (pc ^ self._history) & self._mask
        counter = table[idx]
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.branches += 1
        if not correct:
            self.stats.mispredicts += 1
        if taken:
            if counter < 3:
                table[idx] = counter + 1
        else:
            if counter > 0:
                table[idx] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & (
            (1 << self.history_bits) - 1
        )
        return correct

    def replay(self, pcs: Sequence[int], takens: Sequence[int]):
        """Replay a whole outcome stream; returns per-event mispredict
        flags (1 = mispredicted, buffer-compatible) and updates
        :attr:`stats`."""
        n = len(pcs)
        if n >= _VECTOR_MIN_EVENTS:
            pc_col = np.asarray(pcs, dtype=np.int64)
            tak_col = (np.asarray(takens, dtype=np.int64) != 0).astype(np.int64)
            hist = gshare_history(tak_col, self._history, self.history_bits)
            table = np.frombuffer(self._table, dtype=np.uint8)
            miss = counter_scan((pc_col ^ hist) & self._mask, tak_col, table)
            hmask = (1 << self.history_bits) - 1
            history = self._history
            for bit in tak_col[-self.history_bits :].tolist() if self.history_bits else ():
                history = ((history << 1) | bit) & hmask
            self._history = history
            self.stats.branches += n
            self.stats.mispredicts += int(miss.sum())
            return miss
        if isinstance(pcs, np.ndarray):
            pcs = pcs.tolist()
        if isinstance(takens, np.ndarray):
            takens = takens.tolist()
        table = self._table
        mask = self._mask
        hist_mask = (1 << self.history_bits) - 1
        history = self._history
        miss = bytearray(len(pcs))
        n_miss = 0
        i = 0
        for pc, taken in zip(pcs, takens):
            idx = (pc ^ history) & mask
            counter = table[idx]
            if taken:
                if counter < 2:
                    miss[i] = 1
                    n_miss += 1
                if counter < 3:
                    table[idx] = counter + 1
                history = ((history << 1) | 1) & hist_mask
            else:
                if counter >= 2:
                    miss[i] = 1
                    n_miss += 1
                if counter > 0:
                    table[idx] = counter - 1
                history = (history << 1) & hist_mask
            i += 1
        self._history = history
        self.stats.branches += len(pcs)
        self.stats.mispredicts += n_miss
        return miss
