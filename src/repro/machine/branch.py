"""Branch predictors.

The bad-speculation fraction of the top-down breakdown is driven by
branch mispredictions, so the machine model replays each benchmark's
conditional-branch outcome stream through a real predictor.  Two
classical predictors are provided:

* :class:`BimodalPredictor` — a table of 2-bit saturating counters
  indexed by branch PC;
* :class:`GsharePredictor` — 2-bit counters indexed by PC xor global
  history, the default for the i7-like machine configuration.

Both are deterministic and cheap (one dict lookup per branch).
"""

from __future__ import annotations

__all__ = ["BimodalPredictor", "GsharePredictor", "PredictorStats"]


class PredictorStats:
    """Counts of predicted/mispredicted branches."""

    __slots__ = ("branches", "mispredicts")

    def __init__(self) -> None:
        self.branches = 0
        self.mispredicts = 0

    def misprediction_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0


class BimodalPredictor:
    """2-bit saturating counter per branch site.

    Counter states: 0, 1 predict not-taken; 2, 3 predict taken.
    Counters start weakly not-taken (1).
    """

    __slots__ = ("table_bits", "_mask", "_counters", "stats")

    def __init__(self, table_bits: int = 12):
        if not 1 <= table_bits <= 24:
            raise ValueError("table_bits must be in [1, 24]")
        self.table_bits = table_bits
        self._mask = (1 << table_bits) - 1
        self._counters: dict[int, int] = {}
        self.stats = PredictorStats()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, update state; returns correctness."""
        idx = pc & self._mask
        counter = self._counters.get(idx, 1)
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.branches += 1
        if not correct:
            self.stats.mispredicts += 1
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        return correct


class GsharePredictor:
    """Gshare: 2-bit counters indexed by PC xor global branch history."""

    __slots__ = ("table_bits", "history_bits", "_mask", "_history", "_counters", "stats")

    def __init__(self, table_bits: int = 14, history_bits: int = 12):
        if not 1 <= table_bits <= 24:
            raise ValueError("table_bits must be in [1, 24]")
        if not 0 <= history_bits <= table_bits:
            raise ValueError("history_bits must be in [0, table_bits]")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history = 0
        self._counters: dict[int, int] = {}
        self.stats = PredictorStats()

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        idx = (pc ^ self._history) & self._mask
        counter = self._counters.get(idx, 1)
        prediction = counter >= 2
        correct = prediction == taken
        self.stats.branches += 1
        if not correct:
            self.stats.mispredicts += 1
        if taken:
            if counter < 3:
                self._counters[idx] = counter + 1
        else:
            if counter > 0:
                self._counters[idx] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & (
            (1 << self.history_bits) - 1
        )
        return correct
