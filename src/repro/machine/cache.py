"""Set-associative cache and TLB simulation.

The paper measures benchmarks on an Intel Core i7-2600.  We cannot use
hardware counters here, so the machine model replays the benchmarks'
memory address streams through a classical set-associative LRU cache
hierarchy (L1I, L1D, unified L2, shared LLC) plus a data TLB.  Miss
counts per level feed the top-down cost model in
:mod:`repro.machine.cost`.

Addresses are abstract byte addresses (plain ints).  Benchmarks lay out
their data structures in whatever address space they like; only
locality relative to line/page granularity matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "CacheConfig",
    "CacheGeometry",
    "Cache",
    "Tlb",
    "CacheHierarchy",
    "HierarchyStats",
]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int
    associativity: int
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ValueError(f"{self.name}: all geometry parameters must be positive")
        n_lines = self.size_bytes // self.line_bytes
        if n_lines * self.line_bytes != self.size_bytes:
            raise ValueError(f"{self.name}: size must be a multiple of the line size")
        if n_lines % self.associativity != 0:
            raise ValueError(f"{self.name}: line count must be a multiple of associativity")

    @property
    def n_sets(self) -> int:
        return (self.size_bytes // self.line_bytes) // self.associativity


@dataclass(frozen=True)
class CacheGeometry:
    """The swept half of a machine's memory system, as plain parameters.

    :class:`~repro.machine.cost.MachineConfig` carries one of these so
    cache geometry participates in config sweeps (and in cache keys —
    ``dataclasses.asdict`` recurses into it).  Defaults match the
    historical hard-coded i7-2600 hierarchy, so a default config is
    bit-identical to every profile produced before geometry became
    sweepable.
    """

    l1d_kib: int = 32
    l1d_assoc: int = 8
    l1i_kib: int = 32
    l1i_assoc: int = 8
    l2_kib: int = 256
    l2_assoc: int = 8
    llc_kib: int = 8192
    llc_assoc: int = 16
    line_bytes: int = 64
    dtlb_entries: int = 64

    def __post_init__(self) -> None:
        # CacheConfig/Cache validate sizes, multiples, and powers of two;
        # building the configs eagerly surfaces bad geometry at
        # construction instead of first replay.
        for cache in self._configs():
            Cache(cache)
        if self.dtlb_entries < 1:
            raise ValueError("CacheGeometry: dtlb_entries must be >= 1")

    def _configs(self) -> "tuple[CacheConfig, CacheConfig, CacheConfig, CacheConfig]":
        return (
            CacheConfig(self.l1d_kib * 1024, self.line_bytes, self.l1d_assoc, name="L1D"),
            CacheConfig(self.l1i_kib * 1024, self.line_bytes, self.l1i_assoc, name="L1I"),
            CacheConfig(self.l2_kib * 1024, self.line_bytes, self.l2_assoc, name="L2"),
            CacheConfig(self.llc_kib * 1024, self.line_bytes, self.llc_assoc, name="LLC"),
        )

    def hierarchy(self) -> "CacheHierarchy":
        """A fresh, empty :class:`CacheHierarchy` with this geometry."""
        l1d, l1i, l2, llc = self._configs()
        return CacheHierarchy(
            l1d=l1d, l1i=l1i, l2=l2, llc=llc, dtlb_entries=self.dtlb_entries
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "l1d_kib": self.l1d_kib,
            "l1d_assoc": self.l1d_assoc,
            "l1i_kib": self.l1i_kib,
            "l1i_assoc": self.l1i_assoc,
            "l2_kib": self.l2_kib,
            "l2_assoc": self.l2_assoc,
            "llc_kib": self.llc_kib,
            "llc_assoc": self.llc_assoc,
            "line_bytes": self.line_bytes,
            "dtlb_entries": self.dtlb_entries,
        }

    @classmethod
    def from_dict(cls, data: "Mapping[str, Any]") -> "CacheGeometry":
        return cls(**dict(data))


class Cache:
    """One set-associative LRU cache level.

    LRU is implemented with per-set insertion-ordered dicts: a hit moves
    the tag to the back, a fill evicts the front.  This is exact LRU,
    deterministic, and fast enough for the sampled event streams the
    harness replays.
    """

    __slots__ = (
        "config",
        "_sets_store",
        "_set_mask",
        "_line_shift",
        "hits",
        "misses",
    )

    def __init__(self, config: CacheConfig):
        self.config = config
        n_sets = config.n_sets
        if n_sets & (n_sets - 1):
            raise ValueError(f"{config.name}: set count must be a power of two")
        line = config.line_bytes
        if line & (line - 1):
            raise ValueError(f"{config.name}: line size must be a power of two")
        # The per-set dicts only serve the scalar walk; vectorized
        # replay never touches them, so they materialize on first use
        # (an LLC alone is thousands of dict allocations per level).
        self._sets_store: "list[dict[int, None]] | None" = None
        self._set_mask = n_sets - 1
        self._line_shift = line.bit_length() - 1
        self.hits = 0
        self.misses = 0

    @property
    def _sets(self) -> "list[dict[int, None]]":
        s = self._sets_store
        if s is None:
            s = self._sets_store = [dict() for _ in range(self.config.n_sets)]
        return s

    def access(self, addr: int) -> bool:
        """Access one byte address; returns True on hit, False on miss.

        A miss fills the line (allocate-on-miss, for reads and writes
        alike — the i7 caches are write-allocate).
        """
        tag = addr >> self._line_shift
        line_set = self._sets[tag & self._set_mask]
        if tag in line_set:
            # refresh LRU position
            del line_set[tag]
            line_set[tag] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(line_set) >= self.config.associativity:
            line_set.pop(next(iter(line_set)))
        line_set[tag] = None
        return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


class Tlb:
    """A fully-associative LRU TLB over fixed-size pages."""

    __slots__ = ("entries", "page_bytes", "_map", "hits", "misses", "_page_shift")

    def __init__(self, entries: int = 64, page_bytes: int = 4096):
        if entries <= 0:
            raise ValueError("Tlb: entries must be positive")
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError("Tlb: page size must be a positive power of two")
        self.entries = entries
        self.page_bytes = page_bytes
        self._page_shift = page_bytes.bit_length() - 1
        self._map: dict[int, None] = {}
        self.hits = 0
        self.misses = 0

    def access(self, addr: int) -> bool:
        page = addr >> self._page_shift
        if page in self._map:
            del self._map[page]
            self._map[page] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(self._map) >= self.entries:
            self._map.pop(next(iter(self._map)))
        self._map[page] = None
        return False

    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


@dataclass
class HierarchyStats:
    """Aggregated access/miss counts for one replay."""

    l1d_accesses: int = 0
    l1d_misses: int = 0
    l1i_accesses: int = 0
    l1i_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    llc_accesses: int = 0
    llc_misses: int = 0
    dtlb_misses: int = 0


class CacheHierarchy:
    """A three-level hierarchy modelled on the i7-2600.

    Defaults: 32 KiB 8-way L1D and L1I, 256 KiB 8-way unified L2, 8 MiB
    16-way LLC, 64-entry DTLB.  Data and instruction accesses share the
    L2 and LLC, as on the real part.
    """

    def __init__(
        self,
        l1d: CacheConfig | None = None,
        l1i: CacheConfig | None = None,
        l2: CacheConfig | None = None,
        llc: CacheConfig | None = None,
        dtlb_entries: int = 64,
    ):
        self.l1d = Cache(l1d or CacheConfig(32 * 1024, 64, 8, name="L1D"))
        self.l1i = Cache(l1i or CacheConfig(32 * 1024, 64, 8, name="L1I"))
        self.l2 = Cache(l2 or CacheConfig(256 * 1024, 64, 8, name="L2"))
        self.llc = Cache(llc or CacheConfig(8 * 1024 * 1024, 64, 16, name="LLC"))
        self.dtlb = Tlb(entries=dtlb_entries)

    def access_data(self, addr: int) -> int:
        """Replay one data access; returns the level that served it.

        Return codes: 1 = L1D hit, 2 = L2 hit, 3 = LLC hit, 4 = memory.
        """
        self.dtlb.access(addr)
        if self.l1d.access(addr):
            return 1
        if self.l2.access(addr):
            return 2
        if self.llc.access(addr):
            return 3
        return 4

    def access_code(self, addr: int) -> int:
        """Replay one instruction-fetch access; returns serving level."""
        if self.l1i.access(addr):
            return 1
        if self.l2.access(addr):
            return 2
        if self.llc.access(addr):
            return 3
        return 4

    def stats(self) -> HierarchyStats:
        return HierarchyStats(
            l1d_accesses=self.l1d.accesses,
            l1d_misses=self.l1d.misses,
            l1i_accesses=self.l1i.accesses,
            l1i_misses=self.l1i.misses,
            l2_accesses=self.l2.accesses,
            l2_misses=self.l2.misses,
            llc_accesses=self.llc.accesses,
            llc_misses=self.llc.misses,
            dtlb_misses=self.dtlb.misses,
        )
