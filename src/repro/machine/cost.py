"""Cycle-accounting cost model mapping telemetry to top-down categories.

This is the stand-in for the Intel top-down hardware counters used in
Section V-B of the paper.  The model replays the probe's sampled event
stream through a branch predictor and a cache hierarchy, extrapolates
the observed misprediction and miss *rates* to the exact event counts,
and then accounts cycles into the four top-down categories:

* **retiring** — issued micro-ops divided by the pipeline width;
* **bad speculation** — wrong-path micro-ops squashed on each branch
  misprediction;
* **front-end bound** — fetch bubbles from instruction-cache misses and
  pipeline refill after mispredictions;
* **back-end bound** — stall cycles from data-cache/TLB misses (scaled
  by a memory-level-parallelism factor) and long-latency floating-point
  operations.

All four components are attributed to the method whose events caused
them, which also yields the method-coverage profile of Section V-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.coverage import CoverageProfile
from ..core.topdown import TopDownVector
from .branch import BimodalPredictor, GsharePredictor
from .cache import CacheHierarchy, HierarchyStats
from .telemetry import EV_BRANCH, EV_CALL, EV_DATA, Probe

__all__ = ["MachineConfig", "MethodCost", "CostModel", "MachineReport"]

# Cap on synthesized instruction-fetch blocks per sampled call, so one
# giant method cannot dominate replay cost.
_MAX_FETCH_BLOCKS = 256


@dataclass(frozen=True)
class MachineConfig:
    """Microarchitectural parameters (defaults modelled on an i7-2600)."""

    width: int = 4
    clock_ghz: float = 3.4
    predictor: str = "gshare"
    predictor_table_bits: int = 14
    predictor_history_bits: int = 12
    wrongpath_uops: float = 16.0
    refill_cycles: float = 2.0
    l2_latency: float = 12.0
    llc_latency: float = 30.0
    mem_latency: float = 180.0
    mlp: float = 4.0
    fetch_overlap: float = 2.0
    tlb_walk_cycles: float = 30.0
    fp_backend_stall: float = 0.10
    fpdiv_backend_stall: float = 12.0
    call_overhead_uops: float = 4.0

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.predictor not in ("gshare", "bimodal"):
            raise ValueError(f"unknown predictor {self.predictor!r}")
        if self.mlp < 1.0 or self.fetch_overlap < 1.0:
            raise ValueError("mlp and fetch_overlap must be >= 1")

    def make_predictor(self) -> GsharePredictor | BimodalPredictor:
        if self.predictor == "gshare":
            return GsharePredictor(self.predictor_table_bits, self.predictor_history_bits)
        return BimodalPredictor(self.predictor_table_bits)


@dataclass
class MethodCost:
    """Per-method cycle accounting and derived statistics."""

    name: str
    uops: float = 0.0
    retiring_cycles: float = 0.0
    bad_spec_cycles: float = 0.0
    frontend_cycles: float = 0.0
    backend_cycles: float = 0.0
    est_mispredicts: float = 0.0
    est_data_misses: float = 0.0

    @property
    def total_cycles(self) -> float:
        return (
            self.retiring_cycles
            + self.bad_spec_cycles
            + self.frontend_cycles
            + self.backend_cycles
        )


@dataclass
class MachineReport:
    """Everything the cost model derives from one execution's telemetry."""

    topdown: TopDownVector
    coverage: CoverageProfile
    cycles: float
    seconds: float
    per_method: dict[str, MethodCost]
    cache_stats: HierarchyStats
    branch_misprediction_rate: float
    sampling_stride: int
    counters: dict[str, float] = field(default_factory=dict)


class _Replay:
    """Per-method tallies from replaying the sampled event stream."""

    __slots__ = (
        "branches", "mispredicts",
        "data", "d_l2", "d_llc", "d_mem", "d_tlb",
        "calls", "c_l2", "c_llc", "c_mem",
    )

    def __init__(self) -> None:
        self.branches = 0
        self.mispredicts = 0
        self.data = 0
        self.d_l2 = 0
        self.d_llc = 0
        self.d_mem = 0
        self.d_tlb = 0
        self.calls = 0
        self.c_l2 = 0
        self.c_llc = 0
        self.c_mem = 0


class CostModel:
    """Evaluates a :class:`~repro.machine.telemetry.Probe` into a report."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()

    def evaluate(self, probe: Probe) -> MachineReport:
        cfg = self.config
        predictor = cfg.make_predictor()
        hierarchy = CacheHierarchy()

        methods = probe.methods()
        replays: dict[int, _Replay] = {mc.index: _Replay() for mc in methods}
        by_index = {mc.index: mc for mc in methods}

        # --- replay the sampled, order-preserving event stream -------------
        for method_idx, kind, a, b in probe.events:
            rep = replays[method_idx]
            if kind == EV_BRANCH:
                rep.branches += 1
                if not predictor.predict_and_update(a, bool(b)):
                    rep.mispredicts += 1
            elif kind == EV_DATA:
                rep.data += 1
                tlb_hit = hierarchy.dtlb.hits
                level = hierarchy.access_data(a)
                if hierarchy.dtlb.hits == tlb_hit:
                    rep.d_tlb += 1
                if level == 2:
                    rep.d_l2 += 1
                elif level == 3:
                    rep.d_llc += 1
                elif level == 4:
                    rep.d_mem += 1
            else:  # EV_CALL: synthesize instruction fetches for the callee
                target = by_index[a]
                rep = replays[a]
                rep.calls += 1
                blocks = min(max(1, target.code_bytes // 64), _MAX_FETCH_BLOCKS)
                base = target.code_base
                for i in range(blocks):
                    level = hierarchy.access_code(base + i * 64)
                    if level == 2:
                        rep.c_l2 += 1
                    elif level == 3:
                        rep.c_llc += 1
                    elif level == 4:
                        rep.c_mem += 1

        # --- extrapolate sampled rates to exact counts and account cycles --
        per_method: dict[str, MethodCost] = {}
        for mc in methods:
            rep = replays[mc.index]
            cost = MethodCost(name=mc.name)

            cost.uops = (
                mc.int_ops
                + mc.fp_ops
                + mc.fpdiv_ops
                + mc.branches
                + mc.loads
                + mc.stores
                + mc.calls * cfg.call_overhead_uops
            )
            cost.retiring_cycles = cost.uops / cfg.width

            if rep.branches:
                miss_rate = rep.mispredicts / rep.branches
                cost.est_mispredicts = mc.branches * miss_rate
            cost.bad_spec_cycles = cost.est_mispredicts * cfg.wrongpath_uops / cfg.width

            frontend = cost.est_mispredicts * cfg.refill_cycles
            if rep.calls:
                scale = mc.calls / rep.calls
                frontend += (
                    scale
                    * (
                        rep.c_l2 * cfg.l2_latency
                        + rep.c_llc * cfg.llc_latency
                        + rep.c_mem * cfg.mem_latency
                    )
                    / cfg.fetch_overlap
                )
            cost.frontend_cycles = frontend

            backend = (
                mc.fp_ops * cfg.fp_backend_stall
                + mc.fpdiv_ops * cfg.fpdiv_backend_stall
            )
            if rep.data:
                scale = mc.data_accesses / rep.data
                cost.est_data_misses = scale * (rep.d_l2 + rep.d_llc + rep.d_mem)
                backend += (
                    scale
                    * (
                        rep.d_l2 * cfg.l2_latency
                        + rep.d_llc * cfg.llc_latency
                        + rep.d_mem * cfg.mem_latency
                        + rep.d_tlb * cfg.tlb_walk_cycles
                    )
                    / cfg.mlp
                )
            cost.backend_cycles = backend

            per_method[mc.name] = cost

        total_ret = sum(c.retiring_cycles for c in per_method.values())
        total_bad = sum(c.bad_spec_cycles for c in per_method.values())
        total_fe = sum(c.frontend_cycles for c in per_method.values())
        total_be = sum(c.backend_cycles for c in per_method.values())
        total = total_ret + total_bad + total_fe + total_be
        if total <= 0:
            raise ValueError("cost model: benchmark recorded no work")

        topdown = TopDownVector.from_cycles(total_fe, total_be, total_bad, total_ret)
        coverage = CoverageProfile.from_times(
            {name: c.total_cycles for name, c in per_method.items() if c.total_cycles > 0}
        )
        seconds = total / (cfg.clock_ghz * 1e9)

        total_sampled_branches = sum(r.branches for r in replays.values())
        total_sampled_miss = sum(r.mispredicts for r in replays.values())
        mispred_rate = (
            total_sampled_miss / total_sampled_branches if total_sampled_branches else 0.0
        )

        return MachineReport(
            topdown=topdown,
            coverage=coverage,
            cycles=total,
            seconds=seconds,
            per_method=per_method,
            cache_stats=hierarchy.stats(),
            branch_misprediction_rate=mispred_rate,
            sampling_stride=probe.sampling_stride,
            counters={
                "uops": sum(c.uops for c in per_method.values()),
                "branches": float(probe.total_branches()),
                "data_accesses": float(probe.total_data_accesses()),
                "est_mispredicts": sum(c.est_mispredicts for c in per_method.values()),
                "est_data_misses": sum(c.est_data_misses for c in per_method.values()),
            },
        )
