"""Cycle-accounting cost model mapping telemetry to top-down categories.

This is the stand-in for the Intel top-down hardware counters used in
Section V-B of the paper.  The model replays the probe's sampled event
stream through a branch predictor and a cache hierarchy, extrapolates
the observed misprediction and miss *rates* to the exact event counts,
and then accounts cycles into the four top-down categories:

* **retiring** — issued micro-ops divided by the pipeline width;
* **bad speculation** — wrong-path micro-ops squashed on each branch
  misprediction;
* **front-end bound** — fetch bubbles from instruction-cache misses and
  pipeline refill after mispredictions;
* **back-end bound** — stall cycles from data-cache/TLB misses (scaled
  by a memory-level-parallelism factor) and long-latency floating-point
  operations.

All four components are attributed to the method whose events caused
them, which also yields the method-coverage profile of Section V-C.

The replay is a batched, per-kind kernel over the probe's columnar
event stream: branch events (the only events that touch predictor
state) are split out with one NumPy mask and replayed through the
vectorized counter/history scans in :mod:`repro.machine.kernel`; data
accesses go through the closed-form LRU filters, with only the
genuinely order-dependent residue (conflicting L1D sets, shared
L2/LLC state) walked scalar in its original interleaving;
instruction-fetch bursts are deduplicated to unique
(callee, footprint-window) pairs and resolved once per pair
(``_replay_code_bursts``).  Rate extrapolation then runs vectorized
over methods.  Results are bit-identical to the historical scalar loop
(``tests/test_golden_equivalence.py``); replay volume and wall time
are recorded under the ``engine.profile.*`` telemetry counters.  See
DESIGN.md §9.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.coverage import CoverageProfile
from ..core.topdown import TopDownVector
from . import telemetry
from .branch import BimodalPredictor, GsharePredictor
from .cache import CacheGeometry, CacheHierarchy, HierarchyStats
from .kernel import lru_filter
from .telemetry import EV_BRANCH, EV_DATA, MethodCounters, Probe

__all__ = ["MachineConfig", "MethodCost", "CostModel", "MachineReport", "REPLAY_FIELDS"]

# Cap on synthesized instruction-fetch blocks per sampled call, so one
# giant method cannot dominate replay cost.
_MAX_FETCH_BLOCKS = 256

# Below this many cache accesses (data events plus synthesized fetch
# blocks) the scalar dict walk beats the vectorized stack-distance
# kernel's fixed overhead.
_VECTOR_MIN_ACCESSES = 2048

# Merge key stride for interleaving data accesses and per-call fetch
# blocks in original order; must exceed _MAX_FETCH_BLOCKS + 1.
_ORDER_STRIDE = 260


@dataclass(frozen=True)
class MachineConfig:
    """Microarchitectural parameters (defaults modelled on an i7-2600)."""

    width: int = 4
    clock_ghz: float = 3.4
    predictor: str = "gshare"
    predictor_table_bits: int = 14
    predictor_history_bits: int = 12
    wrongpath_uops: float = 16.0
    refill_cycles: float = 2.0
    l2_latency: float = 12.0
    llc_latency: float = 30.0
    mem_latency: float = 180.0
    mlp: float = 4.0
    fetch_overlap: float = 2.0
    tlb_walk_cycles: float = 30.0
    fp_backend_stall: float = 0.10
    fpdiv_backend_stall: float = 12.0
    call_overhead_uops: float = 4.0
    #: Cache/TLB geometry; the default matches the historical
    #: hard-coded i7-2600 hierarchy bit-for-bit.
    geometry: CacheGeometry = CacheGeometry()

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.predictor not in ("gshare", "bimodal"):
            raise ValueError(f"unknown predictor {self.predictor!r}")
        if self.mlp < 1.0 or self.fetch_overlap < 1.0:
            raise ValueError("mlp and fetch_overlap must be >= 1")

    def make_predictor(self) -> GsharePredictor | BimodalPredictor:
        if self.predictor == "gshare":
            return GsharePredictor(self.predictor_table_bits, self.predictor_history_bits)
        return BimodalPredictor(self.predictor_table_bits)


@dataclass
class MethodCost:
    """Per-method cycle accounting and derived statistics."""

    name: str
    uops: float = 0.0
    retiring_cycles: float = 0.0
    bad_spec_cycles: float = 0.0
    frontend_cycles: float = 0.0
    backend_cycles: float = 0.0
    est_mispredicts: float = 0.0
    est_data_misses: float = 0.0

    @property
    def total_cycles(self) -> float:
        return (
            self.retiring_cycles
            + self.bad_spec_cycles
            + self.frontend_cycles
            + self.backend_cycles
        )


@dataclass
class MachineReport:
    """Everything the cost model derives from one execution's telemetry."""

    topdown: TopDownVector
    coverage: CoverageProfile
    cycles: float
    seconds: float
    per_method: dict[str, MethodCost]
    cache_stats: HierarchyStats
    branch_misprediction_rate: float
    sampling_stride: int
    counters: dict[str, float] = field(default_factory=dict)


class _ReplayTallies:
    """Per-method-slot tallies from one replay of the event stream."""

    __slots__ = (
        "branches", "mispredicts",
        "data", "d_l2", "d_llc", "d_mem", "d_tlb",
        "calls", "c_l2", "c_llc", "c_mem",
    )

    def __init__(self, n_methods: int) -> None:
        self.branches = np.zeros(n_methods, dtype=np.int64)
        self.mispredicts = np.zeros(n_methods, dtype=np.int64)
        self.data = [0] * n_methods
        self.d_l2 = [0] * n_methods
        self.d_llc = [0] * n_methods
        self.d_mem = [0] * n_methods
        self.d_tlb = [0] * n_methods
        self.calls = [0] * n_methods
        self.c_l2 = [0] * n_methods
        self.c_llc = [0] * n_methods
        self.c_mem = [0] * n_methods


def _stream_columns(probe: Probe) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The probe's event stream as four int64 columns.

    Falls back to tuple unpacking for foreign probes whose ``events``
    is a plain iterable of 4-tuples.
    """
    events = probe.events
    columns = getattr(events, "columns", None)
    if columns is not None:
        return columns()
    rows = list(events)
    if not rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty, empty
    arr = np.asarray(rows, dtype=np.int64)
    return arr[:, 0], arr[:, 1], arr[:, 2], arr[:, 3]


def _replay_stream(
    probe: Probe,
    predictor: GsharePredictor | BimodalPredictor,
    hierarchy: CacheHierarchy,
    n_methods: int,
) -> _ReplayTallies:
    """Replay the sampled, order-preserving event stream.

    Branch events only touch predictor state, so they are extracted
    with one mask and replayed in the predictor's batch loop; data and
    call events share L2/LLC state and are walked in their original
    interleaved order with the cache bookkeeping inlined.
    """
    midx, kind, a_col, b_col = _stream_columns(probe)
    tallies = _ReplayTallies(n_methods)

    # --- branch events: batch through the predictor -----------------------
    branch_sel = kind == EV_BRANCH
    if branch_sel.any():
        b_midx = midx[branch_sel]
        miss = predictor.replay(a_col[branch_sel], b_col[branch_sel])
        miss_np = np.frombuffer(miss, dtype=np.uint8)
        tallies.branches = np.bincount(b_midx, minlength=n_methods)
        tallies.mispredicts = np.bincount(
            b_midx, weights=miss_np, minlength=n_methods
        ).astype(np.int64)

    # --- data + instruction-fetch events -----------------------------------
    mem_sel = ~branch_sel
    if not mem_sel.any():
        return tallies

    # per-call code-fetch geometry, pre-resolved per method slot
    code_base = np.zeros(n_methods, dtype=np.int64)
    code_blocks = np.zeros(n_methods, dtype=np.int64)
    for mc in probe.methods():
        code_base[mc.index] = mc.code_base
        code_blocks[mc.index] = min(max(1, mc.code_bytes // 64), _MAX_FETCH_BLOCKS)

    # the store flag (column b) does not affect replay: caches are
    # write-allocate, so loads and stores take the same path
    m_midx = midx[mem_sel]
    m_kind = kind[mem_sel]
    m_a = a_col[mem_sel]
    data_sel = m_kind == EV_DATA
    n_accesses = int(data_sel.sum()) + int(code_blocks[m_a[~data_sel]].sum())
    if n_accesses >= _VECTOR_MIN_ACCESSES:
        _replay_mem_vector(
            tallies, hierarchy, n_methods, m_midx, m_a, data_sel, code_base, code_blocks
        )
    else:
        _replay_mem_scalar(
            tallies,
            hierarchy,
            m_midx.tolist(),
            m_kind.tolist(),
            m_a.tolist(),
            code_base.tolist(),
            code_blocks.tolist(),
        )
    return tallies


def _replay_mem_scalar(
    tallies: _ReplayTallies,
    hierarchy: CacheHierarchy,
    m_list: list[int],
    k_list: list[int],
    a_list: list[int],
    code_base: list[int],
    code_blocks: list[int],
) -> None:
    """In-order dict walk of the data/fetch stream (short streams)."""
    # pre-resolved cache state: set tables, geometry, local hit counters
    l1d, l1i, l2, llc, dtlb = (
        hierarchy.l1d, hierarchy.l1i, hierarchy.l2, hierarchy.llc, hierarchy.dtlb
    )
    l1d_sets, l1d_mask, l1d_shift, l1d_assoc = (
        l1d._sets, l1d._set_mask, l1d._line_shift, l1d.config.associativity
    )
    l1i_sets, l1i_mask, l1i_shift, l1i_assoc = (
        l1i._sets, l1i._set_mask, l1i._line_shift, l1i.config.associativity
    )
    l2_sets, l2_mask, l2_shift, l2_assoc = (
        l2._sets, l2._set_mask, l2._line_shift, l2.config.associativity
    )
    llc_sets, llc_mask, llc_shift, llc_assoc = (
        llc._sets, llc._set_mask, llc._line_shift, llc.config.associativity
    )
    tlb_map, tlb_shift, tlb_entries = dtlb._map, dtlb._page_shift, dtlb.entries
    l1d_hits = l1d_misses = l1i_hits = l1i_misses = 0
    l2_hits = l2_misses = llc_hits = llc_misses = 0
    tlb_hits = tlb_misses = 0

    data_ct = tallies.data
    d_l2_ct, d_llc_ct, d_mem_ct, d_tlb_ct = (
        tallies.d_l2, tallies.d_llc, tallies.d_mem, tallies.d_tlb
    )
    calls_ct = tallies.calls
    c_l2_ct, c_llc_ct, c_mem_ct = tallies.c_l2, tallies.c_llc, tallies.c_mem

    for mi, kd, av in zip(m_list, k_list, a_list):
        if kd == EV_DATA:
            data_ct[mi] += 1
            page = av >> tlb_shift
            if page in tlb_map:
                del tlb_map[page]
                tlb_map[page] = None
                tlb_hits += 1
            else:
                tlb_misses += 1
                if len(tlb_map) >= tlb_entries:
                    tlb_map.pop(next(iter(tlb_map)))
                tlb_map[page] = None
                d_tlb_ct[mi] += 1
            tag = av >> l1d_shift
            lset = l1d_sets[tag & l1d_mask]
            if tag in lset:
                del lset[tag]
                lset[tag] = None
                l1d_hits += 1
                continue
            l1d_misses += 1
            if len(lset) >= l1d_assoc:
                lset.pop(next(iter(lset)))
            lset[tag] = None
            tag = av >> l2_shift
            lset = l2_sets[tag & l2_mask]
            if tag in lset:
                del lset[tag]
                lset[tag] = None
                l2_hits += 1
                d_l2_ct[mi] += 1
                continue
            l2_misses += 1
            if len(lset) >= l2_assoc:
                lset.pop(next(iter(lset)))
            lset[tag] = None
            tag = av >> llc_shift
            lset = llc_sets[tag & llc_mask]
            if tag in lset:
                del lset[tag]
                lset[tag] = None
                llc_hits += 1
                d_llc_ct[mi] += 1
            else:
                llc_misses += 1
                if len(lset) >= llc_assoc:
                    lset.pop(next(iter(lset)))
                lset[tag] = None
                d_mem_ct[mi] += 1
        else:  # EV_CALL: synthesize instruction fetches for the callee
            calls_ct[av] += 1
            base = code_base[av]
            for i in range(code_blocks[av]):
                addr = base + i * 64
                tag = addr >> l1i_shift
                lset = l1i_sets[tag & l1i_mask]
                if tag in lset:
                    del lset[tag]
                    lset[tag] = None
                    l1i_hits += 1
                    continue
                l1i_misses += 1
                if len(lset) >= l1i_assoc:
                    lset.pop(next(iter(lset)))
                lset[tag] = None
                tag = addr >> l2_shift
                lset = l2_sets[tag & l2_mask]
                if tag in lset:
                    del lset[tag]
                    lset[tag] = None
                    l2_hits += 1
                    c_l2_ct[av] += 1
                    continue
                l2_misses += 1
                if len(lset) >= l2_assoc:
                    lset.pop(next(iter(lset)))
                lset[tag] = None
                tag = addr >> llc_shift
                lset = llc_sets[tag & llc_mask]
                if tag in lset:
                    del lset[tag]
                    lset[tag] = None
                    llc_hits += 1
                    c_llc_ct[av] += 1
                else:
                    llc_misses += 1
                    if len(lset) >= llc_assoc:
                        lset.pop(next(iter(lset)))
                    lset[tag] = None
                    c_mem_ct[av] += 1

    # write the locally-accumulated counters back to the cache objects
    l1d.hits += l1d_hits
    l1d.misses += l1d_misses
    l1i.hits += l1i_hits
    l1i.misses += l1i_misses
    l2.hits += l2_hits
    l2.misses += l2_misses
    llc.hits += llc_hits
    llc.misses += llc_misses
    dtlb.hits += tlb_hits
    dtlb.misses += tlb_misses


def _replay_code_bursts(
    c_midx: np.ndarray,
    c_key: np.ndarray,
    code_base: np.ndarray,
    code_blocks: np.ndarray,
    l1i,
):
    """Exact burst-granular L1I replay; ``None`` if preconditions fail.

    A call expands to a *fixed* sequence of fetch blocks for its callee,
    so the L1I line stream is a sequence of per-method bursts.  When no
    two methods share a line (checked), a burst's lines in one set are
    all hits or all misses together: a line's LRU window spans its own
    burst's other lines in that set plus every line of the *distinct*
    intervening methods, so it hits iff
    ``c[m, s] - 1 + sum(c[m', s] for distinct intervening m') < assoc``
    — one decision per (burst, set) instead of per line.  Intervening
    method sets come from bitmask ORs over inter-occurrence windows
    (``np.bitwise_or.reduceat``), which caps distinct callees at 64;
    streams with more fall back to the generic per-line path.

    ``c_key`` is each burst's pre-scaled merge key (original position
    times ``_ORDER_STRIDE``).  Returns ``(hits, misses, miss_addr,
    miss_attr, miss_key)`` where the arrays describe the per-line L2
    traffic of missing bursts; ``miss_addr`` carries the line address
    (low bits zero), which every lower level reduces by the same
    64-byte line shift.
    """
    if l1i.config.line_bytes != 64:
        # burst lines are ``(base >> shift) + within``, i.e. one line
        # per 64-byte fetch block — with wider lines adjacent blocks
        # share a line (MRU hits the scalar walk models), so fall back
        # to the per-line filter, which is exact for any line size
        return None
    uniq = np.unique(c_midx)
    if uniq.size > 64:
        return None
    n_sets = l1i.config.n_sets
    set_mask = l1i._set_mask
    shift = l1i._line_shift
    assoc = l1i.config.associativity
    k = c_midx.size

    # per-method line geometry, grouped by set
    c_mat = np.zeros((uniq.size, n_sets), dtype=np.int64)
    offs = np.zeros((uniq.size, n_sets + 1), dtype=np.int64)
    grouped_lines = []
    grouped_within = []
    total = 0
    for j, m in enumerate(uniq.tolist()):
        b = int(code_blocks[m])
        within = np.arange(b, dtype=np.int64)
        lines = (int(code_base[m]) >> shift) + within
        sets = lines & set_mask
        order = np.argsort(sets * b + within)
        grouped_lines.append(lines[order])
        grouped_within.append(within[order])
        cnt = np.bincount(sets, minlength=n_sets)
        c_mat[j] = cnt
        offs[j, 0] = total
        offs[j, 1:] = total + np.cumsum(cnt)
        total += b
    all_lines = np.concatenate(grouped_lines)
    if np.unique(all_lines).size != all_lines.size:
        return None  # methods share a line: window counts would double
    all_within = np.concatenate(grouped_within)

    # distinct-method masks of each inter-occurrence window
    uidx = np.searchsorted(uniq, c_midx)
    masks = np.uint64(1) << uidx.astype(np.uint64)
    exists_prev = np.zeros(k, dtype=bool)
    window = np.zeros(k, dtype=np.uint64)
    for j in range(uniq.size):
        p = np.flatnonzero(uidx == j)
        if p.size < 2:
            continue
        exists_prev[p[1:]] = True
        bounds = np.empty(2 * (p.size - 1), dtype=np.int64)
        bounds[0::2] = p[:-1] + 1
        bounds[1::2] = p[1:]
        # empty windows (adjacent occurrences) reduce to the burst's own
        # mask, which the self-bit clear below zeroes out
        w = np.bitwise_or.reduceat(masks, bounds)[0::2]
        window[p[1:]] = w & ~(np.uint64(1) << np.uint64(j))

    # Bursts with the same callee and the same intervening-method mask
    # have identical per-set decisions, so resolve hit/miss rows once
    # per unique (method, window) pair — typically a few dozen pairs
    # for tens of thousands of bursts — and broadcast back.
    uw, winv = np.unique(window, return_inverse=True)
    u = uniq.size
    table_w = np.zeros((uw.size + 1, n_sets), dtype=np.int64)
    for j in range(u):
        present = (uw >> np.uint64(j)) & np.uint64(1) != 0
        if present.any():
            table_w[:-1][present] += c_mat[j]
    # first-occurrence bursts get the sentinel pseudo-window: never hit
    qid = np.where(exists_prev, winv, uw.size) * u + uidx
    uq, qinv = np.unique(qid, return_inverse=True)
    q_m = uq % u
    q_w = uq // u
    q_touch = c_mat[q_m]
    q_hit = (q_touch > 0) & (q_touch - 1 + table_w[q_w] < assoc)
    q_hit[q_w == uw.size] = False
    q_hitw = (q_touch * q_hit).sum(axis=1)
    q_burst = q_touch.sum(axis=1)
    n_hits = int(q_hitw[qinv].sum())
    n_misses = int(q_burst[qinv].sum()) - n_hits

    # expand missing (burst, set) cells to their line-level L2 traffic:
    # per unique pair, the missing lines are a fixed index list into the
    # grouped line table, shared by every burst of that pair
    q_miss = (q_touch > 0) & ~q_hit
    # Expand every missing (pair, set) cell's line-index range in one
    # flat gather: np.nonzero walks row-major, so segments stay grouped
    # by pair, and one keyed sort puts each pair's lines in fetch order
    # — miss_key then comes out globally sorted and the L2 merge below
    # needs no sort of its own.
    qi_idx, s_idx = np.nonzero(q_miss)
    seg_lo = offs[q_m[qi_idx], s_idx]
    seg_len = offs[q_m[qi_idx], s_idx + 1] - seg_lo
    seg_cum = np.zeros(seg_len.size + 1, dtype=np.int64)
    np.cumsum(seg_len, out=seg_cum[1:])
    ramp = np.arange(seg_cum[-1], dtype=np.int64) - np.repeat(seg_cum[:-1], seg_len)
    flat_all = np.repeat(seg_lo, seg_len) + ramp
    rep_qi = np.repeat(qi_idx, seg_len)
    flat_src = flat_all[np.argsort(rep_qi * _ORDER_STRIDE + all_within[flat_all])]
    pair_lens = np.zeros(uq.size, dtype=np.int64)
    np.add.at(pair_lens, qi_idx, seg_len)
    pair_offs = np.zeros(uq.size + 1, dtype=np.int64)
    np.cumsum(pair_lens, out=pair_offs[1:])
    lens_b = pair_lens[qinv]
    n_lines = int(lens_b.sum())
    if not n_lines:
        empty = np.zeros(0, dtype=np.int64)
        return n_hits, n_misses, empty, empty, empty
    starts_b = np.zeros(k, dtype=np.int64)
    np.cumsum(lens_b[:-1], out=starts_b[1:])
    runs = np.arange(n_lines, dtype=np.int64) - np.repeat(starts_b, lens_b)
    src = flat_src[np.repeat(pair_offs[qinv], lens_b) + runs]
    miss_addr = all_lines[src] << shift
    miss_attr = np.repeat(c_midx, lens_b)
    miss_key = np.repeat(c_key, lens_b) + 1 + all_within[src]
    return n_hits, n_misses, miss_addr, miss_attr, miss_key


def _replay_mem_vector(
    tallies: _ReplayTallies,
    hierarchy: CacheHierarchy,
    n_methods: int,
    m_midx: np.ndarray,
    m_a: np.ndarray,
    data_sel: np.ndarray,
    code_base: np.ndarray,
    code_blocks: np.ndarray,
) -> None:
    """Vectorized walk of the data/fetch stream.

    Data events repeating the previous data event's cache line are MRU
    hits in both the dTLB and the L1D with no state change, so they are
    dropped up front.  Each private level (dTLB, L1D) then filters its
    residual stream with one :func:`~repro.machine.kernel.lru_filter`
    call; the L1I replays call bursts at burst granularity
    (:func:`_replay_code_bursts`) when its preconditions hold.  L1
    misses are merged back into original program order (data and code
    share the L2/LLC) and cascaded through L2 then LLC.  Hit/miss
    decisions, final stats, and per-method tallies are bit-identical to
    the scalar dict walk.
    """
    l1d, l1i, l2, llc, dtlb = (
        hierarchy.l1d, hierarchy.l1i, hierarchy.l2, hierarchy.llc, hierarchy.dtlb
    )
    pos = np.arange(m_a.size, dtype=np.int64)

    d_midx = m_midx[data_sel]
    d_addr = m_a[data_sel]
    nd = d_addr.size
    tallies.data = np.bincount(d_midx, minlength=n_methods)

    if nd:
        # consecutive same-line data events: MRU hits with no state
        # change in the dTLB (same line implies same page) or L1D
        d_lines = d_addr >> l1d._line_shift
        dup = np.zeros(nd, dtype=bool)
        dup[1:] = d_lines[1:] == d_lines[:-1]
        n_dup = int(dup.sum())
        if n_dup:
            keep = ~dup
            r_midx = d_midx[keep]
            r_addr = d_addr[keep]
            r_pos = pos[data_sel][keep]
            dtlb.hits += n_dup
            l1d.hits += n_dup
        else:
            r_midx, r_addr, r_pos = d_midx, d_addr, pos[data_sel]
        nr = r_addr.size
        # dTLB: fully associative over pages.  Pages are coarser than
        # lines, so consecutive accesses repeat them even after the line
        # dedup — again MRU hits with no state change.
        pages = r_addr >> dtlb._page_shift
        pdup = np.zeros(nr, dtype=bool)
        pdup[1:] = pages[1:] == pages[:-1]
        n_pdup = int(pdup.sum())
        if n_pdup:
            dtlb.hits += n_pdup
            pkeep = ~pdup
            tlb_hit_r = lru_filter(pages[pkeep], 0, dtlb.entries)
            n_hit = int(tlb_hit_r.sum())
            dtlb.hits += n_hit
            dtlb.misses += (nr - n_pdup) - n_hit
            tlb_miss_midx = r_midx[pkeep][~tlb_hit_r]
        else:
            tlb_hit_r = lru_filter(pages, 0, dtlb.entries)
            n_hit = int(tlb_hit_r.sum())
            dtlb.hits += n_hit
            dtlb.misses += nr - n_hit
            tlb_miss_midx = r_midx[~tlb_hit_r]
        tallies.d_tlb = np.bincount(tlb_miss_midx, minlength=n_methods)
        d_hit1 = lru_filter(r_addr >> l1d._line_shift, l1d._set_mask, l1d.config.associativity)
        n_hit = int(d_hit1.sum())
        l1d.hits += n_hit
        l1d.misses += nr - n_hit
    else:
        r_midx, r_addr, r_pos = d_midx, d_addr, pos[:0]
        d_hit1 = np.zeros(0, dtype=bool)

    # calls expand to sequential instruction-fetch blocks for the callee
    c_midx = m_a[~data_sel]
    tallies.calls = np.bincount(c_midx, minlength=n_methods)
    i_miss_addr = i_miss_attr = i_miss_key = np.zeros(0, dtype=np.int64)
    if c_midx.size:
        c_key = pos[~data_sel] * _ORDER_STRIDE
        burst = _replay_code_bursts(c_midx, c_key, code_base, code_blocks, l1i)
        if burst is not None:
            n_hits, n_misses, i_miss_addr, i_miss_attr, i_miss_key = burst
            l1i.hits += n_hits
            l1i.misses += n_misses
        else:
            blocks = code_blocks[c_midx]
            total_blocks = int(blocks.sum())
            starts = np.zeros(c_midx.size, dtype=np.int64)
            np.cumsum(blocks[:-1], out=starts[1:])
            within = np.arange(total_blocks, dtype=np.int64) - np.repeat(starts, blocks)
            i_addr = np.repeat(code_base[c_midx], blocks) + within * 64
            i_hit1 = lru_filter(
                i_addr >> l1i._line_shift, l1i._set_mask, l1i.config.associativity
            )
            n_hit = int(i_hit1.sum())
            l1i.hits += n_hit
            l1i.misses += total_blocks - n_hit
            i_miss = ~i_hit1
            i_miss_addr = i_addr[i_miss]
            i_miss_attr = np.repeat(c_midx, blocks)[i_miss]
            i_miss_key = (np.repeat(c_key, blocks) + 1 + within)[i_miss]

    # Merge L1D and L1I misses back into original order for the L2.
    # Both halves arrive key-sorted (data keys follow event position;
    # fetch-block keys are emitted in fetch order within each burst and
    # bursts in position order), and merge keys are distinct, so two
    # searchsorted calls place every element — no sort needed.
    d_miss = ~d_hit1
    a_addr = r_addr[d_miss]
    na = a_addr.size
    nb = i_miss_addr.size
    if not na + nb:
        return
    a_keys = r_pos[d_miss] * _ORDER_STRIDE
    pos_a = np.arange(na, dtype=np.int64) + np.searchsorted(i_miss_key, a_keys)
    pos_b = np.arange(nb, dtype=np.int64) + np.searchsorted(a_keys, i_miss_key)
    l2_addr = np.empty(na + nb, dtype=np.int64)
    l2_addr[pos_a] = a_addr
    l2_addr[pos_b] = i_miss_addr
    l2_attr = np.empty(na + nb, dtype=np.int64)
    l2_attr[pos_a] = r_midx[d_miss]
    l2_attr[pos_b] = i_miss_attr
    l2_from_data = np.zeros(na + nb, dtype=bool)
    l2_from_data[pos_a] = True

    hit2 = lru_filter(l2_addr >> l2._line_shift, l2._set_mask, l2.config.associativity)
    n_hit = int(hit2.sum())
    l2.hits += n_hit
    l2.misses += l2_addr.size - n_hit
    tallies.d_l2 = np.bincount(l2_attr[hit2 & l2_from_data], minlength=n_methods)
    tallies.c_l2 = np.bincount(l2_attr[hit2 & ~l2_from_data], minlength=n_methods)

    # LLC sees L2 misses, order preserved
    miss2 = ~hit2
    llc_addr = l2_addr[miss2]
    if not llc_addr.size:
        return
    llc_attr = l2_attr[miss2]
    llc_from_data = l2_from_data[miss2]
    hit3 = lru_filter(llc_addr >> llc._line_shift, llc._set_mask, llc.config.associativity)
    n_hit = int(hit3.sum())
    llc.hits += n_hit
    llc.misses += llc_addr.size - n_hit
    tallies.d_llc = np.bincount(llc_attr[hit3 & llc_from_data], minlength=n_methods)
    tallies.c_llc = np.bincount(llc_attr[hit3 & ~llc_from_data], minlength=n_methods)
    tallies.d_mem = np.bincount(llc_attr[~hit3 & llc_from_data], minlength=n_methods)
    tallies.c_mem = np.bincount(llc_attr[~hit3 & ~llc_from_data], minlength=n_methods)


#: Replay-tally fields, in the order the accounting step consumes them.
#: Exact replay fills them with int64 bincounts; sampled replay
#: (:mod:`repro.machine.sampling`) fills them with float64 estimates —
#: both flow through the identical :func:`_account` arithmetic.
REPLAY_FIELDS = (
    "branches",
    "mispredicts",
    "data",
    "d_l2",
    "d_llc",
    "d_mem",
    "d_tlb",
    "calls",
    "c_l2",
    "c_llc",
    "c_mem",
)


def _account(
    cfg: MachineConfig,
    methods: tuple[MethodCounters, ...],
    rep: "dict[str, np.ndarray]",
) -> tuple[dict[str, MethodCost], TopDownVector, CoverageProfile, float, float, float]:
    """Turn per-method replay tallies into the cycle accounting.

    ``rep`` maps every name in :data:`REPLAY_FIELDS` to a per-method
    array.  Vectorized over methods; every elementwise expression
    mirrors the historical scalar accounting operation-for-operation so
    exact-replay results stay bit-identical (int64 inputs convert to
    float64 at the same points the historical path converted them, and
    float64 arrays holding exact integers take the same values).

    Returns ``(per_method, topdown, coverage, total_cycles, seconds,
    branch_misprediction_rate)``.
    """
    nm = len(methods)
    mc_int = np.array([mc.int_ops for mc in methods], dtype=np.int64)
    mc_fp = np.array([mc.fp_ops for mc in methods], dtype=np.int64)
    mc_fpdiv = np.array([mc.fpdiv_ops for mc in methods], dtype=np.int64)
    mc_br = np.array([mc.branches for mc in methods], dtype=np.int64)
    mc_ld = np.array([mc.loads for mc in methods], dtype=np.int64)
    mc_st = np.array([mc.stores for mc in methods], dtype=np.int64)
    mc_calls = np.array([mc.calls for mc in methods], dtype=np.int64)

    rep_br = rep["branches"]
    rep_mis = rep["mispredicts"]
    rep_data = rep["data"]
    d_l2 = rep["d_l2"]
    d_llc = rep["d_llc"]
    d_mem = rep["d_mem"]
    d_tlb = rep["d_tlb"]
    rep_calls = rep["calls"]
    c_l2 = rep["c_l2"]
    c_llc = rep["c_llc"]
    c_mem = rep["c_mem"]

    zeros = np.zeros(nm, dtype=np.float64)
    uops = (
        mc_int + mc_fp + mc_fpdiv + mc_br + mc_ld + mc_st
    ) + mc_calls * cfg.call_overhead_uops
    retiring = uops / cfg.width

    miss_rate = np.divide(rep_mis, rep_br, out=zeros.copy(), where=rep_br > 0)
    est_mispredicts = mc_br * miss_rate
    bad_spec = est_mispredicts * cfg.wrongpath_uops / cfg.width

    call_scale = np.divide(mc_calls, rep_calls, out=zeros.copy(), where=rep_calls > 0)
    frontend = est_mispredicts * cfg.refill_cycles + (
        call_scale
        * (c_l2 * cfg.l2_latency + c_llc * cfg.llc_latency + c_mem * cfg.mem_latency)
        / cfg.fetch_overlap
    )

    data_scale = np.divide(
        mc_ld + mc_st, rep_data, out=zeros.copy(), where=rep_data > 0
    )
    est_data_misses = data_scale * (d_l2 + d_llc + d_mem)
    backend = (
        mc_fp * cfg.fp_backend_stall + mc_fpdiv * cfg.fpdiv_backend_stall
    ) + (
        data_scale
        * (
            d_l2 * cfg.l2_latency
            + d_llc * cfg.llc_latency
            + d_mem * cfg.mem_latency
            + d_tlb * cfg.tlb_walk_cycles
        )
        / cfg.mlp
    )

    per_method: dict[str, MethodCost] = {}
    for i, mc in enumerate(methods):
        per_method[mc.name] = MethodCost(
            name=mc.name,
            uops=float(uops[i]),
            retiring_cycles=float(retiring[i]),
            bad_spec_cycles=float(bad_spec[i]),
            frontend_cycles=float(frontend[i]),
            backend_cycles=float(backend[i]),
            est_mispredicts=float(est_mispredicts[i]),
            est_data_misses=float(est_data_misses[i]),
        )

    total_ret = sum(c.retiring_cycles for c in per_method.values())
    total_bad = sum(c.bad_spec_cycles for c in per_method.values())
    total_fe = sum(c.frontend_cycles for c in per_method.values())
    total_be = sum(c.backend_cycles for c in per_method.values())
    total = total_ret + total_bad + total_fe + total_be
    if total <= 0:
        raise ValueError("cost model: benchmark recorded no work")

    topdown = TopDownVector.from_cycles(total_fe, total_be, total_bad, total_ret)
    coverage = CoverageProfile.from_times(
        {name: c.total_cycles for name, c in per_method.items() if c.total_cycles > 0}
    )
    seconds = total / (cfg.clock_ghz * 1e9)

    total_sampled_branches = float(rep_br.sum())
    total_sampled_miss = float(rep_mis.sum())
    mispred_rate = (
        total_sampled_miss / total_sampled_branches if total_sampled_branches else 0.0
    )
    return per_method, topdown, coverage, total, seconds, mispred_rate


class CostModel:
    """Evaluates a :class:`~repro.machine.telemetry.Probe` into a report."""

    def __init__(self, config: MachineConfig | None = None):
        self.config = config or MachineConfig()

    def evaluate(self, probe: Probe) -> MachineReport:
        cfg = self.config
        predictor = cfg.make_predictor()
        hierarchy = cfg.geometry.hierarchy()

        methods = probe.methods()
        nm = len(methods)
        n_events = len(probe.events)

        # --- replay the sampled, order-preserving event stream -------------
        t0 = time.perf_counter_ns()
        rep = _replay_stream(probe, predictor, hierarchy, nm)
        replay_ns = time.perf_counter_ns() - t0
        telemetry.record("engine.profile.replay_events", n_events)
        telemetry.record("engine.profile.replay_ns", replay_ns)
        telemetry.record("engine.profile.evaluations", 1)
        telemetry.record_max(
            "engine.profile.replay_stride_max", probe.sampling_stride
        )

        # --- extrapolate sampled rates to exact counts and account cycles --
        rep_arrays = {
            "branches": rep.branches,
            "mispredicts": rep.mispredicts,
            "data": np.array(rep.data, dtype=np.int64),
            "d_l2": np.array(rep.d_l2, dtype=np.int64),
            "d_llc": np.array(rep.d_llc, dtype=np.int64),
            "d_mem": np.array(rep.d_mem, dtype=np.int64),
            "d_tlb": np.array(rep.d_tlb, dtype=np.int64),
            "calls": np.array(rep.calls, dtype=np.int64),
            "c_l2": np.array(rep.c_l2, dtype=np.int64),
            "c_llc": np.array(rep.c_llc, dtype=np.int64),
            "c_mem": np.array(rep.c_mem, dtype=np.int64),
        }
        per_method, topdown, coverage, total, seconds, mispred_rate = _account(
            cfg, methods, rep_arrays
        )

        return MachineReport(
            topdown=topdown,
            coverage=coverage,
            cycles=total,
            seconds=seconds,
            per_method=per_method,
            cache_stats=hierarchy.stats(),
            branch_misprediction_rate=mispred_rate,
            sampling_stride=probe.sampling_stride,
            counters={
                "uops": sum(c.uops for c in per_method.values()),
                "branches": float(probe.total_branches()),
                "data_accesses": float(probe.total_data_accesses()),
                "est_mispredicts": sum(c.est_mispredicts for c in per_method.values()),
                "est_data_misses": sum(c.est_data_misses for c in per_method.values()),
            },
        )
