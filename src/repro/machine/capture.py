"""The capture half of the staged characterization pipeline.

A characterize cell used to be one opaque operation: run the benchmark
under a :class:`~repro.machine.telemetry.Probe` *and* replay the
telemetry through the cost model, fused inside
:meth:`~repro.machine.profiler.Profiler.run`.  This module splits the
two stages apart:

* **capture** (:func:`capture_execution`) — execute the benchmark once
  and snapshot everything the cost model will ever read into a
  :class:`TelemetryCapture`.  The capture is *machine-independent*: it
  depends only on (benchmark, workload, repro version), never on a
  :class:`~repro.machine.cost.MachineConfig`.
* **replay** (:func:`replay_capture`) — materialize a fresh
  :class:`~repro.machine.telemetry.Probe` from a capture and evaluate
  it under any cost model.  Replays of the same capture are
  bit-identical to evaluating the original probe, because the capture
  copies the exact columns, per-method counters, and decimation state
  the probe held at the end of the run.

A machine-config or FDO-build sweep therefore executes each benchmark
once and replays the captured stream N times — the separation
SimPoint-style workflows rest on.  Each replay gets its *own*
materialized probe: the FDO cost model mutates the probe it evaluates
(layout decisions rewrite per-method counters, branch hints rewrite
the event stream), so replays must never share one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core import metrics
from ..core.errors import VerificationError, WorkloadError
from . import telemetry
from .cost import CostModel, MachineConfig
from .profiler import ExecutionProfile
from .telemetry import MethodCounters, Probe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.workload import Workload
    from .sampling import SamplingPlan

__all__ = ["TelemetryCapture", "capture_execution", "replay_capture"]


def _copy_counters(mc: MethodCounters) -> MethodCounters:
    """A deep-enough copy: all scalar fields plus a fresh ``extra`` dict."""
    return replace(mc, extra=dict(mc.extra))


@dataclass(frozen=True)
class TelemetryCapture:
    """Everything the cost model reads from one benchmark execution.

    The machine-independent artifact of the capture stage: exact
    per-method counters, the four sampled event columns, and the
    decimation state (``sampling_stride``, ``event_cap``, ``tick``).
    Captures are immutable and reusable — :meth:`materialize` builds a
    fresh probe per replay, so even mutating cost models (FDO) cannot
    corrupt the capture.
    """

    benchmark: str
    workload: str
    methods: tuple[MethodCounters, ...]
    columns: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
    sampling_stride: int
    event_cap: int
    tick: int
    verified: bool = True

    @property
    def n_events(self) -> int:
        return len(self.columns[0])

    @classmethod
    def from_probe(
        cls,
        benchmark: str,
        workload: str,
        probe: Probe,
        *,
        verified: bool = True,
    ) -> "TelemetryCapture":
        """Snapshot a probe after its benchmark run finished.

        ``EventStream.columns()`` already returns copies, and the
        method counters are copied here, so the capture stays frozen
        even if the probe keeps recording.
        """
        return cls(
            benchmark=benchmark,
            workload=workload,
            methods=tuple(_copy_counters(mc) for mc in probe.methods()),
            columns=probe.events.columns(),
            sampling_stride=probe.sampling_stride,
            event_cap=probe._event_cap,
            tick=probe._tick,
            verified=verified,
        )

    def materialize(self) -> Probe:
        """A fresh probe holding exactly this capture's end-of-run state.

        Evaluating the returned probe is bit-identical to evaluating
        the probe the benchmark originally ran under: same method
        counters (including registration order and ``extra``), same
        event columns, same sampling stride and cap.
        """
        probe = Probe(event_cap=self.event_cap)
        for mc in self.methods:
            clone = _copy_counters(mc)
            probe._methods[clone.name] = clone
            probe._by_index.append(clone)
        probe.replace_events_columns(*self.columns)
        probe._keep_every = self.sampling_stride
        probe._tick = self.tick
        return probe


def capture_execution(
    benchmark: Any,
    workload: "Workload",
    *,
    verify: bool = True,
) -> TelemetryCapture:
    """Run one benchmark on one workload and capture its telemetry.

    The machine-independent half of what ``Profiler.run`` did: execute,
    verify the output (a miscompare raises
    :class:`~repro.core.errors.VerificationError`, mirroring SPEC's
    validation step), and snapshot the probe.  No cost model is
    consulted — that is the replay stage's job.
    """
    if workload.benchmark != benchmark.name:
        raise WorkloadError(
            f"workload {workload.name!r} is for {workload.benchmark!r}, "
            f"not {benchmark.name!r}"
        )
    probe = Probe()
    output = benchmark.run(workload, probe)
    verified = True
    if verify:
        verified = bool(benchmark.verify(workload, output))
        if not verified:
            raise VerificationError(
                f"{benchmark.name}: output verification failed for "
                f"workload {workload.name!r}"
            )
    capture = TelemetryCapture.from_probe(
        benchmark.name, workload.name, probe, verified=verified
    )
    metrics.inc(
        metrics.EVENTS_EMITTED_TOTAL, capture.n_events, benchmark=capture.benchmark
    )
    metrics.gauge_set(
        metrics.SAMPLING_STRIDE_MAX,
        capture.sampling_stride,
        benchmark=capture.benchmark,
    )
    return capture


def replay_capture(
    capture: TelemetryCapture,
    *,
    machine: MachineConfig | None = None,
    cost_model: CostModel | None = None,
    sampling: "SamplingPlan | None" = None,
) -> ExecutionProfile:
    """Replay a capture under a machine model, without re-executing.

    Pass ``machine`` for a baseline replay, or ``cost_model`` for a
    build-specific model (e.g. the FDO build's
    :class:`~repro.fdo.optimizer.FdoCostModel`).  The profile carries
    ``output=None`` — same as pool workers and cache hits, the replay
    stage never sees the benchmark output.

    ``sampling`` selects phase-sampled replay
    (:mod:`repro.machine.sampling`): the result is a
    :class:`~repro.machine.sampling.SampledProfile` estimated from
    representative intervals.  ``None`` — or a plan with
    ``exact=True`` — takes the exact path, bit-identical to the
    pre-sampling behavior.
    """
    if sampling is not None and not sampling.exact:
        from .sampling import SampledProfile, sampled_replay

        t0 = time.perf_counter_ns()
        report, info = sampled_replay(capture, sampling, cost_model=cost_model or CostModel(machine))
        elapsed_ns = max(1, time.perf_counter_ns() - t0)
        telemetry.record("engine.profile.replay_events", info.events_replayed)
        telemetry.record("engine.profile.replay_ns", elapsed_ns)
        telemetry.record("engine.profile.evaluations", 1)
        telemetry.record("engine.profile.sampled_replays", 1)
        metrics.inc(
            metrics.REPLAY_EVENTS_TOTAL, info.events_replayed, benchmark=capture.benchmark
        )
        metrics.inc(metrics.REPLAY_NS_TOTAL, elapsed_ns, benchmark=capture.benchmark)
        metrics.observe(
            metrics.REPLAY_EPS,
            info.events_replayed / (elapsed_ns / 1e9),
            benchmark=capture.benchmark,
        )
        metrics.inc(metrics.SAMPLED_REPLAYS_TOTAL, benchmark=capture.benchmark)
        metrics.observe(
            metrics.SAMPLED_EVENT_RATIO, info.event_ratio, benchmark=capture.benchmark
        )
        return SampledProfile(
            benchmark=capture.benchmark,
            workload=capture.workload,
            report=report,
            output=None,
            verified=capture.verified,
            sampling=info,
        )
    if cost_model is None:
        cost_model = CostModel(machine)
    probe = capture.materialize()
    t0 = time.perf_counter_ns()
    report = cost_model.evaluate(probe)
    elapsed_ns = max(1, time.perf_counter_ns() - t0)
    metrics.inc(
        metrics.REPLAY_EVENTS_TOTAL, capture.n_events, benchmark=capture.benchmark
    )
    metrics.inc(metrics.REPLAY_NS_TOTAL, elapsed_ns, benchmark=capture.benchmark)
    metrics.observe(
        metrics.REPLAY_EPS,
        capture.n_events / (elapsed_ns / 1e9),
        benchmark=capture.benchmark,
    )
    return ExecutionProfile(
        benchmark=capture.benchmark,
        workload=capture.workload,
        report=report,
        output=None,
        verified=capture.verified,
    )
