"""Phase-sampled replay: cluster intervals, replay representatives.

Replay cost is linear in captured events, which makes the paper's
many-workload methodology expensive exactly where it pays off —
sweeps, FDO cross-validation, the watchdog all replay the same streams
over and over.  This module ports the SimPoint/PinPoints idea onto the
columnar :class:`~repro.machine.capture.TelemetryCapture`: slice the
event columns into fixed-size intervals, describe each interval with a
feature vector (method mix, event-kind mix, branch-taken rate,
access-locality profile), cluster the vectors with the k-means
machinery in :mod:`repro.fdo.clustering`, replay only stratified
representative intervals of each phase through the vectorized kernels,
and scale the measured tallies by cluster weights.

Accuracy comes from three exactness guarantees layered under the
sampling (the golden suite in ``tests/test_sampling.py`` asserts <2%
max top-down-fraction error at >=10x event-replay reduction on all 16
benchmarks):

* **exact knowns** — per-method branch/data/call counts are cheap
  column bincounts and are never estimated;
* **exact compulsory decomposition** — first touches of data lines,
  data pages, and callee code footprints are found with global
  sort/unique passes; the memory-level tallies they imply (``d_mem``,
  ``c_mem``, the compulsory part of ``d_tlb``) are computed exactly,
  because first-touch misses concentrate in intervals sampling may
  skip;
* **per-method ratio correction** — sampled tallies are rescaled so
  each method's sampled base count (branches / deduplicated accesses /
  calls) matches its exact base count, cancelling method-mix noise.

Replayed intervals are **functionally warmed**: predictor state is
advanced in stream order through every skipped gap (state depends only
on the prefix, so one pass over sorted representatives equals
full-prefix warming), and each cache level is primed by prepending its
per-set resident tags — the last ``associativity`` distinct lines per
set of the prefix stream, in LRU order — to the measured interval, so
the measured hit/miss flags match an exact replay's flags for the same
interval.

Sampled results flow through :func:`repro.machine.cost._account`, the
same accounting arithmetic the exact path uses; an
``exact=True`` plan (or ``sampling=None``) bypasses this module
entirely and is bit-identical to the pre-sampling replay path.
See DESIGN.md §12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from .cache import CacheHierarchy, HierarchyStats
from .cost import (
    _MAX_FETCH_BLOCKS,
    _ORDER_STRIDE,
    REPLAY_FIELDS,
    CostModel,
    MachineReport,
    _account,
)
from .kernel import lru_filter
from .profiler import ExecutionProfile
from .telemetry import EV_BRANCH, EV_DATA

__all__ = [
    "SAMPLED_FIELDS",
    "SamplingPlan",
    "SamplingInfo",
    "SampledProfile",
    "slice_intervals",
    "interval_features",
    "sampled_replay",
]

#: Fields whose per-method tallies are estimated from sampled intervals
#: (everything else in :data:`~repro.machine.cost.REPLAY_FIELDS` is
#: exact: branches/data/calls from column bincounts, d_mem/c_mem from
#: the compulsory decomposition, d_tlb's compulsory part likewise).
SAMPLED_FIELDS = ("mispredicts", "d_l2", "d_llc", "c_l2", "c_llc")


@dataclass(frozen=True)
class SamplingPlan:
    """Parameters of one phase-sampled replay.

    The defaults (1280 intervals, 12 phases, 1-in-14 stratified picks
    per phase) are the validated operating point: worst-case 0.97% max
    top-down-fraction error at >=10.9x event reduction across all 16
    benchmarks' refrate streams.  Coarser intervals alias with stream
    periodicity (mcf's ~316-event pattern breaks 160-interval slicing).

    ``exact=True`` is the escape hatch: the plan degenerates to the
    exact replay path (bit-identical to ``sampling=None``) while
    keeping call sites uniform.
    """

    intervals: int = 1280
    phases: int = 12
    rate: int = 14
    seed: int = 0
    min_interval_events: int = 32
    exact: bool = False

    def __post_init__(self) -> None:
        for name in ("intervals", "phases", "rate", "min_interval_events"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"SamplingPlan.{name} must be a positive int, got {value!r}")
        if not isinstance(self.seed, int):
            raise ValueError(f"SamplingPlan.seed must be an int, got {self.seed!r}")

    def cache_token(self) -> str | None:
        """Stable identity folded into replay cache keys.

        ``None`` for exact plans, so ``SamplingPlan(exact=True)`` and
        ``sampling=None`` hash to the same (pre-sampling) key and
        sampled results can never collide with exact ones.
        """
        if self.exact:
            return None
        return (
            f"iv{self.intervals}.k{self.phases}.r{self.rate}"
            f".s{self.seed}.m{self.min_interval_events}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "intervals": self.intervals,
            "phases": self.phases,
            "rate": self.rate,
            "seed": self.seed,
            "min_interval_events": self.min_interval_events,
            "exact": self.exact,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplingPlan":
        return cls(**dict(data))


@dataclass(frozen=True)
class SamplingInfo:
    """What one sampled replay actually did, and how sure it is.

    ``estimated_error`` maps each sampled replay field to the relative
    stratified standard error of its total: per phase, the dispersion
    of per-representative totals estimates the within-phase variance,
    phase variances add (scaled by the phase weight), and the square
    root is reported relative to the estimated total.  Exactly-known
    fields carry 0.0.  This is an *estimate* from the sample itself;
    the golden suite asserts the realized error against exact replay.
    """

    plan: SamplingPlan
    events_total: int
    events_replayed: int
    n_intervals: int
    interval_events: int
    phases: int
    representatives: tuple[int, ...]
    estimated_error: dict[str, float] = field(default_factory=dict)

    @property
    def event_ratio(self) -> float:
        """Exact-to-replayed event ratio (the deterministic speedup)."""
        if not self.events_replayed:
            return 0.0
        return self.events_total / self.events_replayed

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "events_total": self.events_total,
            "events_replayed": self.events_replayed,
            "n_intervals": self.n_intervals,
            "interval_events": self.interval_events,
            "phases": self.phases,
            "representatives": list(self.representatives),
            "estimated_error": dict(self.estimated_error),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SamplingInfo":
        return cls(
            plan=SamplingPlan.from_dict(data["plan"]),
            events_total=data["events_total"],
            events_replayed=data["events_replayed"],
            n_intervals=data["n_intervals"],
            interval_events=data["interval_events"],
            phases=data["phases"],
            representatives=tuple(data["representatives"]),
            estimated_error=dict(data["estimated_error"]),
        )


@dataclass(frozen=True)
class SampledProfile(ExecutionProfile):
    """An :class:`ExecutionProfile` whose report came from sampling."""

    sampling: SamplingInfo


def slice_intervals(
    n_events: int, intervals: int, min_interval_events: int = 1
) -> tuple[tuple[int, int], ...]:
    """Partition ``[0, n_events)`` into fixed-size interval bounds.

    Every interval is ``max(min_interval_events, n_events // intervals)``
    events except a possibly shorter final one; concatenating the
    half-open bounds reconstructs the full range exactly (the partition
    property ``tests/test_sampling.py`` asserts by hypothesis).
    """
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events}")
    if intervals < 1 or min_interval_events < 1:
        raise ValueError("intervals and min_interval_events must be >= 1")
    size = max(min_interval_events, n_events // intervals)
    return tuple((s, min(s + size, n_events)) for s in range(0, n_events, size))


def interval_features(
    columns: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    bounds: tuple[tuple[int, int], ...],
    n_methods: int,
    *,
    line_shift: int = 6,
    page_shift: int = 12,
) -> np.ndarray:
    """Per-interval feature vectors, z-scored over intervals.

    Each row concatenates the method mix, the event-kind mix, the
    branch-taken rate, and an access-locality profile (consecutive
    same-line and same-page fractions, unique-line ratio) — the
    behaviors that drive predictor and cache outcomes, which is what
    clustering must keep together.
    """
    midx, kind, a, b = columns
    if not bounds:
        return np.zeros((0, n_methods + 7), dtype=np.float64)
    feats = []
    for s, e in bounds:
        m, k, av, bv = midx[s:e], kind[s:e], a[s:e], b[s:e]
        n = max(1, e - s)
        mix = np.bincount(m, minlength=n_methods) / n
        kmix = np.bincount(k, minlength=3)[:3] / n
        br = k == EV_BRANCH
        taken = float((bv[br] != 0).mean()) if br.any() else 0.0
        d = k == EV_DATA
        da = av[d]
        if da.size > 1:
            lines = da >> line_shift
            same_line = float((lines[1:] == lines[:-1]).mean())
            pages = da >> page_shift
            same_page = float((pages[1:] == pages[:-1]).mean())
            unique = np.unique(lines).size / da.size
        else:
            same_line = same_page = 0.0
            unique = 1.0 if da.size else 0.0
        feats.append(np.concatenate([mix, kmix, [taken, same_line, same_page, unique]]))
    x = np.array(feats)
    mu, sd = x.mean(axis=0), x.std(axis=0)
    sd[sd == 0] = 1.0
    return (x - mu) / sd


# ------------------------------------------------------- exact knowns


def _exact_knowns(columns, nm: int, line_shift: int):
    """Per-method exact counts plus position/attribution streams.

    ``dedup`` drops consecutive same-line data accesses — the MRU
    repeats the exact replay resolves as free hits — leaving the
    access stream whose counts anchor the d_* ratio corrections.
    """
    midx, kind, a, b = columns
    bsel = kind == EV_BRANCH
    dsel = kind == EV_DATA
    csel = ~bsel & ~dsel
    pos = np.arange(midx.size, dtype=np.int64)
    d_pos, d_midx, d_addr = pos[dsel], midx[dsel], a[dsel]
    d_lines = d_addr >> line_shift
    keep = np.ones(d_pos.size, dtype=bool)
    keep[1:] = d_lines[1:] != d_lines[:-1]
    return {
        "branches": np.bincount(midx[bsel], minlength=nm).astype(np.float64),
        "data": np.bincount(midx[dsel], minlength=nm).astype(np.float64),
        "calls": np.bincount(a[csel], minlength=nm).astype(np.float64),
        "dedup": (d_pos[keep], d_midx[keep]),
        "bpos": (pos[bsel], midx[bsel]),
        "cpos": (pos[csel], a[csel]),
    }


def _first_touches(columns, code_blocks: np.ndarray, line_shift: int, page_shift: int):
    """Global first-touch streams: data lines, data pages, callees.

    Returns three ``(positions, method_index[, weights])`` tuples
    sorted by position.  A first touch of a data line is a compulsory
    miss all the way to memory; a first touch of a page is a
    compulsory TLB walk; the first call of a method streams its whole
    code footprint (``code_blocks`` lines) in from memory.
    """
    midx, kind, a, b = columns
    pos = np.arange(midx.size, dtype=np.int64)
    dsel = kind == EV_DATA
    d_pos, d_midx, d_addr = pos[dsel], midx[dsel], a[dsel]
    d_lines = d_addr >> line_shift
    keep = np.ones(d_pos.size, dtype=bool)
    keep[1:] = d_lines[1:] != d_lines[:-1]
    r_pos, r_midx, r_lines, r_addr = d_pos[keep], d_midx[keep], d_lines[keep], d_addr[keep]
    _, fidx = np.unique(r_lines, return_index=True)
    order = np.argsort(r_pos[fidx])
    ftm = (r_pos[fidx][order], r_midx[fidx][order])
    pages = r_addr >> page_shift
    pkeep = np.ones(pages.size, dtype=bool)
    pkeep[1:] = pages[1:] != pages[:-1]
    p_pos, p_midx, p_pages = r_pos[pkeep], r_midx[pkeep], pages[pkeep]
    _, pidx = np.unique(p_pages, return_index=True)
    order = np.argsort(p_pos[pidx])
    ftp = (p_pos[pidx][order], p_midx[pidx][order])
    csel = ~dsel & (kind != EV_BRANCH)
    c_pos, c_callee = pos[csel], a[csel]
    _, cidx = np.unique(c_callee, return_index=True)
    order = np.argsort(c_pos[cidx])
    callees = c_callee[cidx][order]
    ftc = (c_pos[cidx][order], callees, code_blocks[callees].astype(np.float64))
    return ftm, ftp, ftc


def _comp_in(ft, s: int, e: int, nm: int) -> np.ndarray:
    """Per-method compulsory-miss totals with position in ``[s, e)``."""
    lo, hi = np.searchsorted(ft[0], s), np.searchsorted(ft[0], e)
    if len(ft) == 3:
        return np.bincount(ft[1][lo:hi], weights=ft[2][lo:hi], minlength=nm)
    return np.bincount(ft[1][lo:hi], minlength=nm).astype(np.float64)


def _count_in(posmidx, s: int, e: int, nm: int) -> np.ndarray:
    """Per-method event counts with position in ``[s, e)``."""
    lo, hi = np.searchsorted(posmidx[0], s), np.searchsorted(posmidx[0], e)
    return np.bincount(posmidx[1][lo:hi], minlength=nm).astype(np.float64)


def _safe_scale(est: np.ndarray, est_base: np.ndarray, known_base: np.ndarray) -> np.ndarray:
    """Rescale ``est`` so each method's sampled base matches its exact
    base; methods the sample never saw keep their raw estimate."""
    out = est.copy()
    m = est_base > 0
    out[m] = est[m] * known_base[m] / est_base[m]
    return out


# ------------------------------------------------- functional warming


class _PrimedStream:
    """Prefix-residency queries over one presorted line stream.

    One global ``lexsort((positions, tags))`` up front turns every
    per-representative "which lines does the prefix leave resident?"
    query into a boolean mask plus group-tail selection — no per-query
    sort of the prefix.
    """

    __slots__ = ("tags", "pos")

    def __init__(self, tags: np.ndarray, pos: np.ndarray):
        order = np.lexsort((pos, tags))
        self.tags = tags[order]
        self.pos = pos[order]

    def resident(self, upto: int, set_mask: int, assoc: int) -> np.ndarray:
        """Per-set last-``assoc`` distinct tags of the prefix with
        position < ``upto``, in LRU->MRU order per set.

        Prepending this to a measured stream and dropping the first
        ``len(result)`` hit flags reproduces the hit/miss flags an
        exact full-prefix replay would produce for the interval.
        """
        keep = self.pos < upto
        st, sp = self.tags[keep], self.pos[keep]
        if st.size == 0:
            return np.zeros(0, dtype=np.int64)
        last = np.empty(st.size, dtype=bool)
        last[:-1] = st[1:] != st[:-1]
        last[-1] = True
        utags, upos = st[last], sp[last]
        sets = utags & set_mask
        order = np.lexsort((upos, sets))
        su, tu = sets[order], utags[order]
        gb = np.empty(tu.size, dtype=bool)
        gb[0] = True
        gb[1:] = su[1:] != su[:-1]
        gid = np.cumsum(gb) - 1
        starts = np.flatnonzero(gb)
        idx_in_g = np.arange(tu.size) - starts[gid]
        gsize = np.bincount(gid)
        return tu[idx_in_g >= (gsize[gid] - assoc)]


class _StreamIndex:
    """Presorted global views of one capture's event stream.

    Everything a representative-interval replay needs — split event
    kinds, the expanded instruction-fetch line stream, and the primed
    per-level residency indexes — computed once per capture and sliced
    per interval with ``searchsorted``.
    """

    def __init__(self, columns, nm: int, code_base: np.ndarray, code_blocks: np.ndarray,
                 hierarchy: CacheHierarchy):
        midx, kind, a, b = columns
        n = midx.size
        pos = np.arange(n, dtype=np.int64)
        bsel = kind == EV_BRANCH
        dsel = kind == EV_DATA
        csel = ~bsel & ~dsel
        self.b_pos, self.b_pc, self.b_tk = pos[bsel], a[bsel], b[bsel]
        self.b_midx = midx[bsel]
        self.d_pos, self.d_addr, self.d_midx = pos[dsel], a[dsel], midx[dsel]
        self.c_pos, self.c_callee = pos[csel], a[csel]

        self.line_shift = hierarchy.l1d._line_shift
        self.page_shift = hierarchy.dtlb._page_shift

        # Expanded instruction-fetch line stream (what calls stream
        # through L1I), computed once; merge keys use global event
        # positions so data/code interleaving matches the exact path.
        if self.c_callee.size:
            blocks = code_blocks[self.c_callee]
            starts = np.zeros(self.c_callee.size, dtype=np.int64)
            np.cumsum(blocks[:-1], out=starts[1:])
            within = np.arange(int(blocks.sum()), dtype=np.int64) - np.repeat(starts, blocks)
            self.i_addr = np.repeat(code_base[self.c_callee], blocks) + within * 64
            self.i_attr = np.repeat(self.c_callee, blocks)
            self.i_key = np.repeat(self.c_pos, blocks) * _ORDER_STRIDE + 1 + within
            self.i_evt = np.repeat(self.c_pos, blocks)
        else:
            self.i_addr = np.zeros(0, dtype=np.int64)
            self.i_attr = np.zeros(0, dtype=np.int64)
            self.i_key = np.zeros(0, dtype=np.int64)
            self.i_evt = np.zeros(0, dtype=np.int64)

        # Per-level residency indexes over the warming streams.
        self.prime_tlb = _PrimedStream(self.d_addr >> self.page_shift, self.d_pos)
        self.prime_l1d = _PrimedStream(self.d_addr >> self.line_shift, self.d_pos)
        self.prime_l1i = _PrimedStream(self.i_addr >> self.line_shift, self.i_key)
        unified_tags = np.concatenate(
            [self.d_addr >> self.line_shift, self.i_addr >> self.line_shift]
        )
        unified_pos = np.concatenate([self.d_pos * _ORDER_STRIDE, self.i_key])
        self.prime_unified = _PrimedStream(unified_tags, unified_pos)


def _measured(prime: _PrimedStream, tags: np.ndarray, upto: int,
              set_mask: int, assoc: int) -> np.ndarray:
    """Hit flags of ``tags`` under a cache warmed by the prefix."""
    resident = prime.resident(upto, set_mask, assoc)
    flags = lru_filter(np.concatenate([resident, tags]), set_mask, assoc)
    return flags[resident.size:]


def _interval_mem_tallies(idx: _StreamIndex, hierarchy: CacheHierarchy,
                          nm: int, s: int, e: int) -> dict[str, np.ndarray]:
    """Per-method memory-side tallies of ``[s, e)`` under functional
    warming from ``[0, s)`` — the sampled analogue of one exact-replay
    interval, minus branch events (handled in the predictor pass)."""
    l1d, l1i, l2, llc, dtlb = (
        hierarchy.l1d, hierarchy.l1i, hierarchy.l2, hierarchy.llc, hierarchy.dtlb
    )
    out = {f: np.zeros(nm, dtype=np.float64) for f in REPLAY_FIELDS}

    d0, d1 = np.searchsorted(idx.d_pos, (s, e))
    d_addr, d_midx, d_pos = idx.d_addr[d0:d1], idx.d_midx[d0:d1], idx.d_pos[d0:d1]
    c0, c1 = np.searchsorted(idx.c_pos, (s, e))
    i0, i1 = np.searchsorted(idx.i_evt, (s, e))
    out["data"] = np.bincount(d_midx, minlength=nm).astype(np.float64)
    out["calls"] = np.bincount(idx.c_callee[c0:c1], minlength=nm).astype(np.float64)

    if d_addr.size:
        tlb_hit = _measured(idx.prime_tlb, d_addr >> idx.page_shift, s, 0, dtlb.entries)
        out["d_tlb"] = np.bincount(d_midx[~tlb_hit], minlength=nm).astype(np.float64)
        d_hit1 = _measured(
            idx.prime_l1d, d_addr >> idx.line_shift, s,
            l1d._set_mask, l1d.config.associativity,
        )
    else:
        d_hit1 = np.zeros(0, dtype=bool)

    i_addr, i_attr, i_key = idx.i_addr[i0:i1], idx.i_attr[i0:i1], idx.i_key[i0:i1]
    if i_addr.size:
        i_hit1 = _measured(
            idx.prime_l1i, i_addr >> idx.line_shift, s * _ORDER_STRIDE,
            l1i._set_mask, l1i.config.associativity,
        )
        i_miss = ~i_hit1
        i_miss_addr, i_miss_attr, i_miss_key = i_addr[i_miss], i_attr[i_miss], i_key[i_miss]
    else:
        i_miss_addr = i_miss_attr = i_miss_key = np.zeros(0, dtype=np.int64)

    d_miss = ~d_hit1
    l2_addr = np.concatenate([d_addr[d_miss], i_miss_addr])
    if not l2_addr.size:
        return out
    l2_attr = np.concatenate([d_midx[d_miss], i_miss_attr])
    l2_from_data = np.zeros(l2_addr.size, dtype=bool)
    l2_from_data[: int(d_miss.sum())] = True
    l2_keys = np.concatenate([d_pos[d_miss] * _ORDER_STRIDE, i_miss_key])
    order = np.argsort(l2_keys)
    l2_addr, l2_attr, l2_from_data = l2_addr[order], l2_attr[order], l2_from_data[order]

    hit2 = _measured(
        idx.prime_unified, l2_addr >> idx.line_shift, s * _ORDER_STRIDE,
        l2._set_mask, l2.config.associativity,
    )
    out["d_l2"] = np.bincount(l2_attr[hit2 & l2_from_data], minlength=nm).astype(np.float64)
    out["c_l2"] = np.bincount(l2_attr[hit2 & ~l2_from_data], minlength=nm).astype(np.float64)

    miss2 = ~hit2
    llc_addr = l2_addr[miss2]
    if not llc_addr.size:
        return out
    llc_attr, llc_from_data = l2_attr[miss2], l2_from_data[miss2]
    hit3 = _measured(
        idx.prime_unified, llc_addr >> idx.line_shift, s * _ORDER_STRIDE,
        llc._set_mask, llc.config.associativity,
    )
    out["d_llc"] = np.bincount(llc_attr[hit3 & llc_from_data], minlength=nm).astype(np.float64)
    out["c_llc"] = np.bincount(llc_attr[hit3 & ~llc_from_data], minlength=nm).astype(np.float64)
    out["d_mem"] = np.bincount(llc_attr[~hit3 & llc_from_data], minlength=nm).astype(np.float64)
    out["c_mem"] = np.bincount(llc_attr[~hit3 & ~llc_from_data], minlength=nm).astype(np.float64)
    return out


def _branch_pass(idx: _StreamIndex, cfg, nm: int,
                 picks: list[tuple[int, int, int]]) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Advance one predictor in stream order through every pick.

    Predictor state depends only on the branch-event prefix, so
    replaying the gaps with discarded output and keeping flags inside
    each representative equals full-prefix warming per representative —
    at O(total branches) total work instead of O(picks x prefix).
    """
    predictor = cfg.make_predictor()
    tallies: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    cursor = 0
    for ri, s, e in picks:
        b_gap0, b_s, b_e = np.searchsorted(idx.b_pos, (cursor, s, e))
        if b_s > b_gap0:
            predictor.replay(idx.b_pc[b_gap0:b_s], idx.b_tk[b_gap0:b_s])
        br = np.zeros(nm, dtype=np.float64)
        mis = np.zeros(nm, dtype=np.float64)
        if b_e > b_s:
            miss = np.frombuffer(
                predictor.replay(idx.b_pc[b_s:b_e], idx.b_tk[b_s:b_e]), dtype=np.uint8
            )
            bm = idx.b_midx[b_s:b_e]
            br = np.bincount(bm, minlength=nm).astype(np.float64)
            mis = np.bincount(bm, weights=miss, minlength=nm)
        tallies[ri] = (br, mis)
        cursor = e
    return tallies


# ------------------------------------------------------ the estimator


def _representatives(assignments: np.ndarray, bounds, rate: int):
    """Stratified representatives per phase: evenly spaced 1-in-``rate``
    members (at least one) of each cluster, weighted so picked events
    stand in for the whole phase's events."""
    k = int(assignments.max()) + 1 if assignments.size else 0
    plan = []
    for j in range(k):
        members = np.flatnonzero(assignments == j)
        if not members.size:
            continue
        m = max(1, round(members.size / rate))
        picks = members[((np.arange(m) + 0.5) * members.size / m).astype(int)]
        cluster_events = sum(bounds[i][1] - bounds[i][0] for i in members)
        picked_events = sum(bounds[i][1] - bounds[i][0] for i in picks)
        plan.append((j, picks, cluster_events / picked_events, cluster_events))
    return plan


def sampled_replay(
    capture,
    plan: SamplingPlan,
    *,
    cost_model: CostModel | None = None,
) -> tuple[MachineReport, SamplingInfo]:
    """Estimate a capture's :class:`MachineReport` from sampled phases.

    ``cost_model`` must be the baseline :class:`CostModel` (or None);
    build-transformed models (FDO) rewrite the event stream and need
    the exact path — pass ``SamplingPlan(exact=True)`` there.
    """
    if plan.exact:
        raise ValueError("sampled_replay called with an exact plan; use replay_capture")
    if cost_model is not None and type(cost_model) is not CostModel:
        raise ValueError(
            "phase-sampled replay supports the baseline cost model only; "
            "use SamplingPlan(exact=True) for build-transformed replays"
        )
    cm = cost_model or CostModel()
    cfg = cm.config
    hierarchy = cfg.geometry.hierarchy()
    columns = capture.columns
    methods = capture.methods
    nm = len(methods)
    n = capture.n_events

    code_base = np.zeros(nm, dtype=np.int64)
    code_blocks = np.zeros(nm, dtype=np.int64)
    for mc in methods:
        code_base[mc.index] = mc.code_base
        code_blocks[mc.index] = min(max(1, mc.code_bytes // 64), _MAX_FETCH_BLOCKS)

    bounds = slice_intervals(n, plan.intervals, plan.min_interval_events)
    if not bounds:
        raise ValueError("sampled replay: capture recorded no events")
    feats = interval_features(
        columns, bounds, nm,
        line_shift=hierarchy.l1d._line_shift, page_shift=hierarchy.dtlb._page_shift,
    )
    k = min(plan.phases, len(bounds))
    from ..fdo.clustering import kmeans  # late: repro.fdo's package init imports the engine

    assignments, _centers = kmeans(feats, k, seed=plan.seed)

    idx = _StreamIndex(columns, nm, code_base, code_blocks, hierarchy)
    knowns = _exact_knowns(columns, nm, idx.line_shift)
    ftm, ftp, ftc = _first_touches(columns, code_blocks, idx.line_shift, idx.page_shift)

    phase_plan = _representatives(assignments, bounds, plan.rate)
    ordered_picks = sorted(
        (int(ri), *bounds[int(ri)]) for _, picks, _, _ in phase_plan for ri in picks
    )
    branch_tallies = _branch_pass(idx, cfg, nm, ordered_picks)

    sampled = {f: np.zeros(nm, dtype=np.float64) for f in SAMPLED_FIELDS + ("tlb_cap",)}
    bases = {f: np.zeros(nm, dtype=np.float64) for f in ("br", "dedup", "calls")}
    # Per-pick scalar totals per sampled field, grouped by phase, for
    # the stratified standard-error estimate.
    dispersion: dict[str, list[tuple[float, float, list[float]]]] = {
        f: [] for f in SAMPLED_FIELDS + ("tlb_cap",)
    }
    events_replayed = 0
    representatives: list[int] = []
    for _j, picks, weight, _cluster_events in phase_plan:
        per_pick: dict[str, list[float]] = {f: [] for f in dispersion}
        for ri in picks:
            ri = int(ri)
            s, e = bounds[ri]
            arrs = _interval_mem_tallies(idx, hierarchy, nm, s, e)
            br, mis = branch_tallies[ri]
            arrs["branches"], arrs["mispredicts"] = br, mis
            tlb_cap = np.maximum(arrs["d_tlb"] - _comp_in(ftp, s, e, nm), 0.0)
            for f in SAMPLED_FIELDS:
                sampled[f] += weight * arrs[f]
                per_pick[f].append(float(arrs[f].sum()))
            sampled["tlb_cap"] += weight * tlb_cap
            per_pick["tlb_cap"].append(float(tlb_cap.sum()))
            bases["br"] += weight * _count_in(knowns["bpos"], s, e, nm)
            bases["dedup"] += weight * _count_in(knowns["dedup"], s, e, nm)
            bases["calls"] += weight * _count_in(knowns["cpos"], s, e, nm)
            events_replayed += e - s
            representatives.append(ri)
        for f, values in per_pick.items():
            dispersion[f].append((weight, len(picks), values))

    dedup_exact = np.bincount(knowns["dedup"][1], minlength=nm).astype(np.float64)
    est = {
        "branches": knowns["branches"],
        "data": knowns["data"],
        "calls": knowns["calls"],
        "d_mem": _comp_in(ftm, 0, n, nm),
        "c_mem": _comp_in(ftc, 0, n, nm),
        "mispredicts": _safe_scale(sampled["mispredicts"], bases["br"], knowns["branches"]),
        "d_l2": _safe_scale(sampled["d_l2"], bases["dedup"], dedup_exact),
        "d_llc": _safe_scale(sampled["d_llc"], bases["dedup"], dedup_exact),
        "c_l2": _safe_scale(sampled["c_l2"], bases["calls"], knowns["calls"]),
        "c_llc": _safe_scale(sampled["c_llc"], bases["calls"], knowns["calls"]),
        "d_tlb": _comp_in(ftp, 0, n, nm)
        + _safe_scale(sampled["tlb_cap"], bases["dedup"], dedup_exact),
    }

    errors = _error_estimates(est, sampled, dispersion)
    per_method, topdown, coverage, total, seconds, mispred_rate = _account(
        cfg, methods, est
    )
    cache_stats = _estimated_hierarchy_stats(est, knowns, idx)

    report = MachineReport(
        topdown=topdown,
        coverage=coverage,
        cycles=total,
        seconds=seconds,
        per_method=per_method,
        cache_stats=cache_stats,
        branch_misprediction_rate=mispred_rate,
        sampling_stride=capture.sampling_stride,
        counters={
            "uops": sum(c.uops for c in per_method.values()),
            "branches": float(sum(mc.branches for mc in methods)),
            "data_accesses": float(sum(mc.data_accesses for mc in methods)),
            "est_mispredicts": sum(c.est_mispredicts for c in per_method.values()),
            "est_data_misses": sum(c.est_data_misses for c in per_method.values()),
        },
    )
    info = SamplingInfo(
        plan=plan,
        events_total=n,
        events_replayed=events_replayed,
        n_intervals=len(bounds),
        interval_events=(bounds[0][1] - bounds[0][0]) if bounds else 0,
        phases=len(phase_plan),
        representatives=tuple(representatives),
        estimated_error=errors,
    )
    return report, info


def _error_estimates(est, sampled, dispersion) -> dict[str, float]:
    """Relative stratified standard errors per replay field.

    For each sampled field, phase ``j`` contributes
    ``weight_j**2 * m_j * var(per-pick totals)`` to the variance of the
    estimated total (with-replacement approximation; single-pick phases
    contribute nothing observable).  Exactly-known fields report 0.0.
    """
    variances: dict[str, float] = {}
    for f, groups in dispersion.items():
        var = 0.0
        for weight, m, values in groups:
            if m > 1:
                var += (weight**2) * m * float(np.var(np.asarray(values), ddof=1))
        variances[f] = var

    errors: dict[str, float] = {f: 0.0 for f in REPLAY_FIELDS}
    for f in SAMPLED_FIELDS:
        total = float(est[f].sum())
        errors[f] = math.sqrt(variances[f]) / total if total > 0 else 0.0
    tlb_total = float(est["d_tlb"].sum())
    errors["d_tlb"] = math.sqrt(variances["tlb_cap"]) / tlb_total if tlb_total > 0 else 0.0
    return errors


def _estimated_hierarchy_stats(est, knowns, idx: _StreamIndex) -> HierarchyStats:
    """Hierarchy totals consistent with the estimated tallies.

    Access counts at each level are exact (they only depend on the
    stream and the level above's misses); miss counts are the rounded
    estimated tallies summed over methods.
    """
    l1d_misses = int(round(float((est["d_l2"] + est["d_llc"] + est["d_mem"]).sum())))
    l1i_misses = int(round(float((est["c_l2"] + est["c_llc"] + est["c_mem"]).sum())))
    l2_misses = int(round(float(
        (est["d_llc"] + est["d_mem"] + est["c_llc"] + est["c_mem"]).sum()
    )))
    llc_misses = int(round(float((est["d_mem"] + est["c_mem"]).sum())))
    return HierarchyStats(
        l1d_accesses=int(knowns["data"].sum()),
        l1d_misses=l1d_misses,
        l1i_accesses=int(idx.i_addr.size),
        l1i_misses=l1i_misses,
        l2_accesses=l1d_misses + l1i_misses,
        l2_misses=l2_misses,
        llc_accesses=l2_misses,
        llc_misses=llc_misses,
        dtlb_misses=int(round(float(est["d_tlb"].sum()))),
    )
