"""One-pass multi-config replay of a captured telemetry stream.

An N-config sweep used to replay the same capture N times — one full
pass over the event columns per :class:`~repro.machine.cost.MachineConfig`.
Every kernel the replay rests on is independent along some axis the
configs never share (counter tables are independent per slot, LRU sets
are independent per set), so the N replays collapse into *one* pass
with a config axis:

* **branch side** — configs are grouped by predictor signature
  ``(kind, table_bits, history_bits)``; each distinct signature
  contributes one row to a single
  :func:`~repro.machine.kernel.counter_scan_batched` call over
  concatenated per-signature tables.  Gshare history columns are
  computed once per distinct history depth.
* **memory side** — each cache level is memoized by the geometry
  fields it actually reads, not the whole
  :class:`~repro.machine.cache.CacheGeometry`: the dTLB result depends
  only on ``(line size, page size, entries)``, the L1D only on
  ``(line size, sets, associativity)``, and so on down the hierarchy
  (an L2 key also folds in the L1 keys above it, because it filters
  that L1 pair's own miss stream).  A sweep that varies the predictor
  and the LLC runs the full-length dTLB/L1D/L1I streams *once*, no
  matter how many configs it spans.
* **accounting** — per-config tallies flow through the same
  :func:`~repro.machine.cost._account` arithmetic the single-config
  path uses.

Each returned profile is bit-identical to
``replay_capture(capture, machine=cfg)`` — the batched kernels are
exact, the stream construction per geometry is copied from
:func:`~repro.machine.cost._replay_mem_vector` level for level, and the
accounting is shared.  ``tests/test_sweep_api.py`` asserts this on all
16 benchmarks.  The memory-vs-throughput tradeoff and the engine's
fallback conditions are documented in DESIGN.md §13.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from ..core import metrics
from . import telemetry
from .cache import CacheGeometry
from .cost import (
    _MAX_FETCH_BLOCKS,
    _ORDER_STRIDE,
    MachineConfig,
    MachineReport,
    _account,
    _replay_code_bursts,
)
from .kernel import counter_scan_batched, gshare_history, lru_filter
from .profiler import ExecutionProfile
from .telemetry import EV_BRANCH, EV_DATA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .capture import TelemetryCapture

__all__ = ["replay_capture_batched"]


def _predictor_sig(cfg: MachineConfig) -> tuple:
    hbits = cfg.predictor_history_bits if cfg.predictor == "gshare" else 0
    return (cfg.predictor, cfg.predictor_table_bits, hbits)


def _branch_miss_rows(
    sigs: list[tuple], pc: np.ndarray, tak: np.ndarray
) -> np.ndarray:
    """Per-signature mispredict rows from one batched counter scan."""
    idx_rows: list[np.ndarray] = []
    tables: list[np.ndarray] = []
    hist_cache: dict[int, np.ndarray] = {}
    for kind, tbits, hbits in sigs:
        mask = (1 << tbits) - 1
        if kind == "gshare" and hbits:
            h = hist_cache.get(hbits)
            if h is None:
                h = hist_cache[hbits] = gshare_history(tak, 0, hbits)
            idx = (pc ^ h) & mask
        else:
            idx = pc & mask
        idx_rows.append(idx)
        # fresh predictors: every counter starts weakly not-taken (1)
        tables.append(np.full(1 << tbits, 1, dtype=np.uint8))
    return counter_scan_batched(idx_rows, tak, tables)


class _GeoReplay:
    """One cache geometry's per-level streams and tallies in the batch."""

    __slots__ = (
        "hier", "nm", "data", "calls", "d_tlb", "d_l2", "d_llc", "d_mem",
        "c_l2", "c_llc", "c_mem", "r_midx", "r_addr", "r_pos", "d_hit1",
        "i_miss_addr", "i_miss_attr", "i_miss_key",
        "l2_addr", "l2_attr", "l2_from_data", "llc_addr", "llc_attr",
        "llc_from_data",
    )

    def __init__(self, geometry: CacheGeometry, nm: int):
        self.hier = geometry.hierarchy()
        self.nm = nm
        z = np.zeros(nm, dtype=np.int64)
        self.data = z.copy()
        self.calls = z.copy()
        self.d_tlb = z.copy()
        self.d_l2 = z.copy()
        self.d_llc = z.copy()
        self.d_mem = z.copy()
        self.c_l2 = z.copy()
        self.c_llc = z.copy()
        self.c_mem = z.copy()

    def rep_arrays(self) -> dict[str, np.ndarray]:
        return {
            "data": self.data,
            "d_l2": self.d_l2,
            "d_llc": self.d_llc,
            "d_mem": self.d_mem,
            "d_tlb": self.d_tlb,
            "calls": self.calls,
            "c_l2": self.c_l2,
            "c_llc": self.c_llc,
            "c_mem": self.c_mem,
        }


def _mem_replay_batched(
    geos: list[CacheGeometry],
    nm: int,
    m_midx: np.ndarray,
    m_a: np.ndarray,
    data_sel: np.ndarray,
    code_base: np.ndarray,
    code_blocks: np.ndarray,
) -> list[_GeoReplay]:
    """The data/fetch side of :func:`~repro.machine.cost._replay_mem_vector`
    for every distinct geometry at once.

    Each level's result is memoized on the geometry fields that level
    actually reads, so geometries differing only *below* a level share
    that level's work.  A level's memo key folds in the keys of the
    levels feeding it: an L2 filters the miss stream of one particular
    (L1D, L1I) pair, so its key is ``(stream key, own parameters)``.
    Replayed per distinct key — not per distinct geometry — the
    full-length dTLB/L1D/L1I streams typically resolve once or twice
    per sweep, and only the short residual miss streams fan out.
    """
    states = [_GeoReplay(g, nm) for g in geos]
    pos = np.arange(m_a.size, dtype=np.int64)
    d_midx = m_midx[data_sel]
    d_addr = m_a[data_sel]
    d_pos = pos[data_sel]
    c_midx = m_a[~data_sel]
    c_key0 = pos[~data_sel] * _ORDER_STRIDE
    nd = d_addr.size
    data_count = np.bincount(d_midx, minlength=nm)
    calls_count = np.bincount(c_midx, minlength=nm)

    kept_memo: dict = {}  # line shift -> (r_midx, r_addr, r_pos, n_dup)
    tlb_memo: dict = {}  # (line shift, page shift, entries) -> tallies
    l1d_memo: dict = {}  # (line shift, set mask, assoc) -> (d_hit1, n_hit)
    l1i_memo: dict = {}  # (line shift, set mask, assoc) -> burst result
    stream_memo: dict = {}  # (l1d key, l1i key) -> merged L2 input
    l2_memo: dict = {}  # (stream key, l2 params) -> tallies + LLC input
    llc_memo: dict = {}  # (l2 key, llc params) -> tallies

    empty_bool = np.zeros(0, dtype=bool)
    for s in states:
        s.data = data_count.copy()
        s.calls = calls_count.copy()
        l1d, l1i, l2, llc, dtlb = (
            s.hier.l1d, s.hier.l1i, s.hier.l2, s.hier.llc, s.hier.dtlb
        )

        # consecutive same-line dedup depends only on the line size
        line_key = l1d._line_shift
        kept = kept_memo.get(line_key)
        if kept is None:
            if nd:
                d_lines = d_addr >> line_key
                dup = np.zeros(nd, dtype=bool)
                dup[1:] = d_lines[1:] == d_lines[:-1]
                n_dup = int(dup.sum())
                if n_dup:
                    keep = ~dup
                    kept = (d_midx[keep], d_addr[keep], d_pos[keep], n_dup)
                else:
                    kept = (d_midx, d_addr, d_pos, 0)
            else:
                kept = (d_midx, d_addr, d_pos, 0)
            kept_memo[line_key] = kept
        r_midx, r_addr, r_pos, n_dup = kept
        s.r_midx, s.r_addr, s.r_pos = r_midx, r_addr, r_pos
        nr = r_addr.size

        dkey = ikey = None
        if nd:
            tkey = (line_key, dtlb._page_shift, dtlb.entries)
            tres = tlb_memo.get(tkey)
            if tres is None:
                pages = r_addr >> dtlb._page_shift
                pdup = np.zeros(nr, dtype=bool)
                pdup[1:] = pages[1:] == pages[:-1]
                n_pdup = int(pdup.sum())
                if n_pdup:
                    pkeep = ~pdup
                    t_hit = lru_filter(pages[pkeep], 0, dtlb.entries)
                    t_miss_midx = r_midx[pkeep][~t_hit]
                else:
                    t_hit = lru_filter(pages, 0, dtlb.entries)
                    t_miss_midx = r_midx[~t_hit]
                tres = (
                    n_pdup,
                    int(t_hit.sum()),
                    np.bincount(t_miss_midx, minlength=nm),
                )
                tlb_memo[tkey] = tres
            n_pdup, t_hits, d_tlb = tres
            dtlb.hits += n_dup + n_pdup + t_hits
            dtlb.misses += (nr - n_pdup) - t_hits
            s.d_tlb = d_tlb

            dkey = (line_key, l1d._set_mask, l1d.config.associativity)
            dres = l1d_memo.get(dkey)
            if dres is None:
                d_hit1 = lru_filter(
                    r_addr >> line_key, l1d._set_mask, l1d.config.associativity
                )
                dres = (d_hit1, int(d_hit1.sum()))
                l1d_memo[dkey] = dres
            s.d_hit1, n_hit = dres
            l1d.hits += n_dup + n_hit
            l1d.misses += nr - n_hit
        else:
            s.d_hit1 = empty_bool

        # --- L1I: burst-granular, falling back to the per-line filter
        s.i_miss_addr = s.i_miss_attr = s.i_miss_key = np.zeros(0, dtype=np.int64)
        if c_midx.size:
            ikey = (l1i._line_shift, l1i._set_mask, l1i.config.associativity)
            ires = l1i_memo.get(ikey)
            if ires is None:
                ires = _replay_code_bursts(c_midx, c_key0, code_base, code_blocks, l1i)
                if ires is None:
                    blocks = code_blocks[c_midx]
                    total_blocks = int(blocks.sum())
                    starts = np.zeros(c_midx.size, dtype=np.int64)
                    np.cumsum(blocks[:-1], out=starts[1:])
                    within = (
                        np.arange(total_blocks, dtype=np.int64)
                        - np.repeat(starts, blocks)
                    )
                    i_addr = np.repeat(code_base[c_midx], blocks) + within * 64
                    i_hit1 = lru_filter(
                        i_addr >> l1i._line_shift,
                        l1i._set_mask,
                        l1i.config.associativity,
                    )
                    n_hit = int(i_hit1.sum())
                    i_miss = ~i_hit1
                    ires = (
                        n_hit,
                        total_blocks - n_hit,
                        i_addr[i_miss],
                        np.repeat(c_midx, blocks)[i_miss],
                        (np.repeat(c_key0, blocks) + 1 + within)[i_miss],
                    )
                l1i_memo[ikey] = ires
            n_hits, n_misses, s.i_miss_addr, s.i_miss_attr, s.i_miss_key = ires
            l1i.hits += n_hits
            l1i.misses += n_misses

        # --- L2: this L1 pair's misses merged back to program order
        skey = (dkey, ikey)
        sres = stream_memo.get(skey)
        if sres is None:
            d_miss = ~s.d_hit1
            l2_addr = np.concatenate([r_addr[d_miss], s.i_miss_addr])
            if l2_addr.size:
                l2_attr = np.concatenate([r_midx[d_miss], s.i_miss_attr])
                l2_from_data = np.zeros(l2_addr.size, dtype=bool)
                l2_from_data[: int(d_miss.sum())] = True
                l2_keys = np.concatenate(
                    [r_pos[d_miss] * _ORDER_STRIDE, s.i_miss_key]
                )
                order = np.argsort(l2_keys)
                sres = (l2_addr[order], l2_attr[order], l2_from_data[order])
            else:
                sres = (l2_addr, l2_addr, l2_addr)
            stream_memo[skey] = sres
        s.l2_addr, s.l2_attr, s.l2_from_data = sres

        l2key = (skey, l2._line_shift, l2._set_mask, l2.config.associativity)
        l2res = l2_memo.get(l2key)
        if l2res is None:
            hit2 = lru_filter(
                s.l2_addr >> l2._line_shift, l2._set_mask, l2.config.associativity
            )
            n_hit = int(hit2.sum())
            if hit2.size:
                miss2 = ~hit2
                l2res = (
                    n_hit,
                    hit2.size - n_hit,
                    np.bincount(s.l2_attr[hit2 & s.l2_from_data], minlength=nm),
                    np.bincount(s.l2_attr[hit2 & ~s.l2_from_data], minlength=nm),
                    (s.l2_addr[miss2], s.l2_attr[miss2], s.l2_from_data[miss2]),
                )
            else:
                l2res = (0, 0, None, None, (s.l2_addr, s.l2_attr, s.l2_from_data))
            l2_memo[l2key] = l2res
        n_hit2, n_miss2, d_l2, c_l2, llc_in = l2res
        l2.hits += n_hit2
        l2.misses += n_miss2
        if d_l2 is not None:
            s.d_l2 = d_l2
            s.c_l2 = c_l2
        s.llc_addr, s.llc_attr, s.llc_from_data = llc_in

        lkey = (l2key, llc._line_shift, llc._set_mask, llc.config.associativity)
        lres = llc_memo.get(lkey)
        if lres is None:
            hit3 = lru_filter(
                s.llc_addr >> llc._line_shift, llc._set_mask, llc.config.associativity
            )
            n_hit = int(hit3.sum())
            if hit3.size:
                lres = (
                    n_hit,
                    hit3.size - n_hit,
                    np.bincount(s.llc_attr[hit3 & s.llc_from_data], minlength=nm),
                    np.bincount(s.llc_attr[hit3 & ~s.llc_from_data], minlength=nm),
                    np.bincount(s.llc_attr[~hit3 & s.llc_from_data], minlength=nm),
                    np.bincount(s.llc_attr[~hit3 & ~s.llc_from_data], minlength=nm),
                )
            else:
                lres = (0, 0, None, None, None, None)
            llc_memo[lkey] = lres
        n_hit3, n_miss3, d_llc, c_llc, d_mem, c_mem = lres
        llc.hits += n_hit3
        llc.misses += n_miss3
        if d_llc is not None:
            s.d_llc = d_llc
            s.c_llc = c_llc
            s.d_mem = d_mem
            s.c_mem = c_mem
    return states


def replay_capture_batched(
    capture: "TelemetryCapture",
    machines: "list[MachineConfig | None]",
) -> list[ExecutionProfile]:
    """Replay one capture under N machine configs in a single pass.

    Returns one :class:`ExecutionProfile` per entry of ``machines``
    (``None`` entries mean the default config), each bit-identical to
    ``replay_capture(capture, machine=cfg)``.  Only the exact replay
    path batches — phase-sampled and FDO-build replays stay per-config
    (see DESIGN.md §13 for the fallback conditions).
    """
    cfgs = [m if m is not None else MachineConfig() for m in machines]
    n_events = capture.n_events
    methods = capture.methods
    nm = len(methods)
    t0 = time.perf_counter_ns()

    midx, kind, a_col, b_col = capture.columns

    # --- branch side: one batched counter scan over distinct signatures
    branch_sel = kind == EV_BRANCH
    branches = np.zeros(nm, dtype=np.int64)
    sigs: list[tuple] = []
    sig_index: dict[tuple, int] = {}
    for cfg in cfgs:
        key = _predictor_sig(cfg)
        if key not in sig_index:
            sig_index[key] = len(sigs)
            sigs.append(key)
    mis_rows = [np.zeros(nm, dtype=np.int64) for _ in sigs]
    if branch_sel.any():
        b_midx = midx[branch_sel]
        pc = a_col[branch_sel]
        tak = (b_col[branch_sel] != 0).astype(np.int64)
        branches = np.bincount(b_midx, minlength=nm)
        miss = _branch_miss_rows(sigs, pc, tak)
        mis_rows = [
            np.bincount(b_midx, weights=miss[i], minlength=nm).astype(np.int64)
            for i in range(len(sigs))
        ]

    # --- memory side: one batched pass over distinct geometries
    mem_sel = ~branch_sel
    geos: list[CacheGeometry] = []
    geo_index: dict[CacheGeometry, int] = {}
    for cfg in cfgs:
        if cfg.geometry not in geo_index:
            geo_index[cfg.geometry] = len(geos)
            geos.append(cfg.geometry)
    if mem_sel.any():
        code_base = np.zeros(nm, dtype=np.int64)
        code_blocks = np.zeros(nm, dtype=np.int64)
        for mc in methods:
            code_base[mc.index] = mc.code_base
            code_blocks[mc.index] = min(max(1, mc.code_bytes // 64), _MAX_FETCH_BLOCKS)
        m_midx = midx[mem_sel]
        m_a = a_col[mem_sel]
        data_sel = kind[mem_sel] == EV_DATA
        geo_states = _mem_replay_batched(
            geos, nm, m_midx, m_a, data_sel, code_base, code_blocks
        )
    else:
        geo_states = [_GeoReplay(g, nm) for g in geos]

    # --- per-config accounting over the shared tallies
    total_branches = float(sum(mc.branches for mc in methods))
    total_data = float(sum(mc.data_accesses for mc in methods))
    profiles: list[ExecutionProfile] = []
    for cfg in cfgs:
        state = geo_states[geo_index[cfg.geometry]]
        rep = dict(state.rep_arrays())
        rep["branches"] = branches
        rep["mispredicts"] = mis_rows[sig_index[_predictor_sig(cfg)]]
        per_method, topdown, coverage, total, seconds, mispred_rate = _account(
            cfg, methods, rep
        )
        report = MachineReport(
            topdown=topdown,
            coverage=coverage,
            cycles=total,
            seconds=seconds,
            per_method=per_method,
            cache_stats=state.hier.stats(),
            branch_misprediction_rate=mispred_rate,
            sampling_stride=capture.sampling_stride,
            counters={
                "uops": sum(c.uops for c in per_method.values()),
                "branches": total_branches,
                "data_accesses": total_data,
                "est_mispredicts": sum(c.est_mispredicts for c in per_method.values()),
                "est_data_misses": sum(c.est_data_misses for c in per_method.values()),
            },
        )
        profiles.append(
            ExecutionProfile(
                benchmark=capture.benchmark,
                workload=capture.workload,
                report=report,
                output=None,
                verified=capture.verified,
            )
        )

    elapsed_ns = max(1, time.perf_counter_ns() - t0)
    replayed = n_events * len(cfgs)
    telemetry.record("engine.profile.replay_events", replayed)
    telemetry.record("engine.profile.replay_ns", elapsed_ns)
    telemetry.record("engine.profile.evaluations", len(cfgs))
    telemetry.record("engine.profile.batched_replays", len(cfgs))
    telemetry.record_max("engine.profile.replay_stride_max", capture.sampling_stride)
    metrics.inc(metrics.REPLAY_EVENTS_TOTAL, replayed, benchmark=capture.benchmark)
    metrics.inc(metrics.REPLAY_NS_TOTAL, elapsed_ns, benchmark=capture.benchmark)
    metrics.observe(
        metrics.REPLAY_EPS, replayed / (elapsed_ns / 1e9), benchmark=capture.benchmark
    )
    return profiles
