"""Named machine-configuration presets.

The paper measures on an Intel Core i7-2600 (Sandy Bridge) and quotes
Table I times from an i7-6700K (Skylake).  These presets provide both,
plus a small in-order-ish core for sensitivity studies.  Presets are
plain :class:`~repro.machine.cost.MachineConfig` values — everything
stays deterministic.
"""

from __future__ import annotations

from ..core.registry import (
    machine_preset,
    machine_preset_names,
    register_machine_config,
)
from .cost import MachineConfig

__all__ = ["I7_2600", "I7_6700K", "ATOM_LIKE", "PRESETS", "preset", "preset_names"]

#: The paper's measurement machine (Section V): 3.4 GHz Sandy Bridge.
I7_2600 = MachineConfig()

#: The Table I submission machine: 4.2 GHz Skylake — wider, faster
#: clock, better predictor, larger effective MLP.
I7_6700K = MachineConfig(
    clock_ghz=4.2,
    predictor_table_bits=16,
    predictor_history_bits=14,
    mlp=6.0,
    l2_latency=11.0,
    mem_latency=170.0,
)

#: A small 2-wide core with a bimodal predictor and slow memory —
#: the "how sensitive is customization to inputs" end of the spectrum
#: (Breughe et al., cited in Section I).
ATOM_LIKE = MachineConfig(
    width=2,
    clock_ghz=1.6,
    predictor="bimodal",
    predictor_table_bits=10,
    mlp=2.0,
    l2_latency=15.0,
    mem_latency=220.0,
    wrongpath_uops=8.0,
)

#: Legacy view of the built-in presets.  Kept for compatibility; the
#: authoritative name space is the registry's ``machine`` kind, which
#: plugins extend — use :func:`preset` / :func:`preset_names`.
PRESETS: dict[str, MachineConfig] = {
    "i7-2600": I7_2600,
    "i7-6700k": I7_6700K,
    "atom-like": ATOM_LIKE,
}

for _name, _config in PRESETS.items():
    register_machine_config(_name, _config)


def preset(name: str) -> MachineConfig:
    """Look up a preset by registered name (case-insensitive).

    Unknown names raise :class:`~repro.core.errors.UnknownScenarioError`
    (a ``KeyError`` subclass) with near-miss suggestions.
    """
    return machine_preset(name)


def preset_names() -> list[str]:
    """Every registered preset name — builtin and plugin-provided."""
    return machine_preset_names()
