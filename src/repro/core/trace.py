"""Structured run tracing for the characterization engine.

Every engine run can emit a JSONL *journal*: one record per matrix cell
(a :class:`CellSpan`) plus a terminal :class:`RunSummary`, giving a
per-run provenance record of what executed, what came from the cache,
how many attempts each cell took, and how long everything ran — the
per-run counterpart to the process-global counters in
:mod:`repro.machine.telemetry`.

Journal format (one JSON object per line, append-only, flushed per
record so a crashed run leaves a readable prefix):

* ``{"type": "run_start", "run_id": ..., "version": ..., "workers": ...,
  "cache": bool, "strict": ..., "timeout": ..., "retries": ...,
  "started_at": <unix seconds>}``
* ``{"type": "span", "benchmark": ..., "workload": ..., "cache":
  "hit"|"miss"|"off", "attempts": int, "duration_s": float, "outcome":
  "ok"|"failed"|"timeout"|"crashed", "error": str|null, "capture":
  "hit"|"run"|"-", "replay": "hit"|"run"|"-", "build": str|null}`` —
  one per cell, in matrix order.  ``duration_s`` is parent-observed
  wall time (submission to completion), so concurrent cells overlap.
  ``capture`` and ``replay`` record the stage-level story behind the
  cell-level ``cache`` field: ``capture="run"`` means the benchmark
  actually executed, ``capture="hit"`` means a stored telemetry stream
  was reused, ``"-"`` means the stage never ran (e.g. a whole-profile
  cache hit skips both stages; ``replay="hit"`` reports it).  ``build``
  names a non-baseline replay transformation (e.g. ``"fdo"``).
* ``{"type": "summary", "cells": ..., "ok": ..., "failed": ...,
  "cache_hits": ..., "cache_misses": ..., "retries": ...,
  "timeouts": ..., "crashes": ..., "quarantined": ...,
  "captures": ..., "capture_hits": ..., "replays": ...,
  "replay_hits": ..., "duration_s": ...}`` — ``captures`` is the
  number of real benchmark executions in the run; a machine sweep that
  reuses one captured stream across N configs reports ``captures=1,
  replays=N``.

Each span is also mirrored into :mod:`repro.machine.telemetry` under
``engine.run.*`` so operational tooling sees run traffic without
holding the journal.  ``repro trace summary|show PATH`` render a
journal from the CLI.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from ..machine import telemetry

__all__ = [
    "CellSpan",
    "RunSummary",
    "TraceWriter",
    "read_trace",
    "trace_spans",
    "summarize_trace",
    "render_trace_summary",
    "render_trace_spans",
]

#: Span outcomes that count as failures in summaries.
FAILURE_OUTCOMES = ("failed", "timeout", "crashed")


@dataclass(frozen=True)
class CellSpan:
    """The trace record for one (benchmark, workload) matrix cell.

    ``cache`` keeps its original cell-level meaning (did the finished
    profile come from the cache); ``capture``/``replay`` break the
    miss down by stage.  Pre-stage journals decode with both set to
    ``"-"`` (unknown), never a fabricated value.
    """

    benchmark: str
    workload: str
    cache: str  # "hit" | "miss" | "off"
    attempts: int
    duration_s: float
    outcome: str  # "ok" | "failed" | "timeout" | "crashed"
    error: str | None = None
    capture: str = "-"  # "hit" | "run" | "-"
    replay: str = "-"  # "hit" | "run" | "-"
    build: str | None = None

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {"type": "span", **asdict(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellSpan":
        return cls(
            benchmark=data["benchmark"],
            workload=data["workload"],
            cache=data.get("cache", "off"),
            attempts=int(data.get("attempts", 1)),
            duration_s=float(data.get("duration_s", 0.0)),
            outcome=data.get("outcome", "ok"),
            error=data.get("error"),
            capture=data.get("capture", "-"),
            replay=data.get("replay", "-"),
            build=data.get("build"),
        )


@dataclass(frozen=True)
class RunSummary:
    """Aggregate tallies over one engine run's spans."""

    cells: int = 0
    ok: int = 0
    failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    quarantined: int = 0
    duration_s: float = 0.0
    #: Benchmark executions (spans with capture="run") — the expensive part.
    captures: int = 0
    #: Spans served from a stored telemetry stream (capture="hit").
    capture_hits: int = 0
    #: Cost-model replays actually computed (replay="run").
    replays: int = 0
    #: Replays skipped because the finished profile was cached (replay="hit").
    replay_hits: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"type": "summary", **asdict(self)}

    @classmethod
    def from_spans(
        cls,
        spans: Iterable[CellSpan],
        *,
        quarantined: int = 0,
        duration_s: float | None = None,
    ) -> "RunSummary":
        """Recompute a summary from spans (e.g. a truncated journal)."""
        cells = ok = failed = hits = misses = retries = timeouts = crashes = 0
        captures = capture_hits = replays = replay_hits = 0
        busy = 0.0
        for span in spans:
            cells += 1
            busy += span.duration_s
            if span.ok:
                ok += 1
            else:
                failed += 1
            if span.cache == "hit":
                hits += 1
            elif span.cache == "miss":
                misses += 1
            if span.capture == "run":
                captures += 1
            elif span.capture == "hit":
                capture_hits += 1
            if span.replay == "run":
                replays += 1
            elif span.replay == "hit":
                replay_hits += 1
            retries += max(0, span.attempts - 1)
            if span.outcome == "timeout":
                timeouts += 1
            elif span.outcome == "crashed":
                crashes += 1
        return cls(
            cells=cells,
            ok=ok,
            failed=failed,
            cache_hits=hits,
            cache_misses=misses,
            retries=retries,
            timeouts=timeouts,
            crashes=crashes,
            quarantined=quarantined,
            duration_s=busy if duration_s is None else duration_s,
            captures=captures,
            capture_hits=capture_hits,
            replays=replays,
            replay_hits=replay_hits,
        )


class TraceWriter:
    """Accumulates spans, mirrors them to telemetry, optionally to disk.

    ``path=None`` makes a tally-only writer: the engine always routes
    spans through one of these so ``engine.run.*`` telemetry stays
    accurate whether or not a journal was requested.  Records are
    flushed line-by-line, so a killed run leaves a parsable journal
    (``summarize_trace`` recomputes the summary from the spans).
    """

    def __init__(self, path: str | Path | None = None, *, mirror_telemetry: bool = True):
        self.path = Path(path) if path is not None else None
        self.mirror_telemetry = mirror_telemetry
        self._fh: IO[str] | None = None
        self._spans: list[CellSpan] = []
        self._quarantined = 0
        self._started = time.perf_counter()
        self.summary: RunSummary | None = None

    # ------------------------------------------------------------ lifecycle

    def start(self, meta: dict[str, Any] | None = None) -> None:
        """Begin the journal with a ``run_start`` record."""
        self._started = time.perf_counter()
        record = {
            "type": "run_start",
            "run_id": f"{int(time.time() * 1000):x}-{os.getpid()}",
            "started_at": time.time(),
            **(meta or {}),
        }
        self._write(record)

    def span(self, span: CellSpan) -> None:
        """Record one completed cell."""
        self._spans.append(span)
        self._write(span.to_dict())
        if self.mirror_telemetry:
            telemetry.record("engine.run.cells")
            telemetry.record("engine.run.ok" if span.ok else "engine.run.failed")
            retries = max(0, span.attempts - 1)
            if retries:
                telemetry.record("engine.run.retries", retries)
            if span.outcome == "timeout":
                telemetry.record("engine.run.timeouts")
            elif span.outcome == "crashed":
                telemetry.record("engine.run.crashes")
            if span.capture == "run":
                telemetry.record("engine.run.captures")
            elif span.capture == "hit":
                telemetry.record("engine.run.capture_hits")
            if span.replay == "run":
                telemetry.record("engine.run.replays")
            elif span.replay == "hit":
                telemetry.record("engine.run.replay_hits")

    def quarantine(self, n: int = 1) -> None:
        """Note cache entries quarantined during this run."""
        self._quarantined += n

    def finish(self) -> RunSummary:
        """Write the summary record and return it (idempotent)."""
        if self.summary is None:
            self.summary = RunSummary.from_spans(
                self._spans,
                quarantined=self._quarantined,
                duration_s=time.perf_counter() - self._started,
            )
            self._write(self.summary.to_dict())
            if self.mirror_telemetry:
                telemetry.record("engine.run.runs")
        return self.summary

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.finish()
        self.close()

    # ------------------------------------------------------------ plumbing

    @property
    def spans(self) -> list[CellSpan]:
        return list(self._spans)

    def _write(self, record: dict[str, Any]) -> None:
        if self.path is None:
            return
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()


# ------------------------------------------------------------------ readers


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a journal into raw records, skipping truncated tail lines."""
    records: list[dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # truncated final line from a killed run
    return records


def trace_spans(path: str | Path) -> list[CellSpan]:
    """The journal's spans, in matrix order."""
    return [
        CellSpan.from_dict(r) for r in read_trace(path) if r.get("type") == "span"
    ]


def summarize_trace(path: str | Path) -> RunSummary:
    """The journal's summary; recomputed from spans if the run died."""
    records = read_trace(path)
    for record in reversed(records):
        if record.get("type") == "summary":
            data = {k: v for k, v in record.items() if k != "type"}
            return RunSummary(**data)
    spans = [CellSpan.from_dict(r) for r in records if r.get("type") == "span"]
    return RunSummary.from_spans(spans)


def render_trace_summary(path: str | Path) -> str:
    """Human-readable summary of a journal, for ``repro trace summary``."""
    s = summarize_trace(path)
    lines = [
        f"trace      : {path}",
        f"cells      : {s.cells}  ({s.ok} ok, {s.failed} failed)",
        f"cache      : {s.cache_hits} hits, {s.cache_misses} misses, "
        f"{s.quarantined} quarantined",
        f"stages     : {s.captures} captures ({s.capture_hits} reused), "
        f"{s.replays} replays ({s.replay_hits} cached)",
        f"resilience : {s.retries} retries, {s.timeouts} timeouts, "
        f"{s.crashes} crashes",
        f"duration   : {s.duration_s:.3f}s",
    ]
    failed = [sp for sp in trace_spans(path) if not sp.ok]
    if failed:
        lines.append("failed cells:")
        for sp in failed:
            err = f" — {sp.error}" if sp.error else ""
            lines.append(
                f"  {sp.benchmark}/{sp.workload}: {sp.outcome} "
                f"after {sp.attempts} attempt(s){err}"
            )
    return "\n".join(lines)


def render_trace_spans(path: str | Path) -> str:
    """Per-cell listing of a journal, for ``repro trace show``."""
    lines = []
    for sp in trace_spans(path):
        flag = "ok " if sp.ok else sp.outcome
        build = f" build={sp.build}" if sp.build else ""
        lines.append(
            f"{flag:<8} {sp.benchmark:<18} {sp.workload:<28} "
            f"cache={sp.cache:<4} cap={sp.capture:<3} rep={sp.replay:<3} "
            f"attempts={sp.attempts} t={sp.duration_s:.4f}s{build}"
        )
    return "\n".join(lines) if lines else "(no spans)"
