"""Structured run tracing for the characterization engine.

Every engine run can emit a JSONL *journal*: one record per matrix cell
(a :class:`CellSpan`) plus a terminal :class:`RunSummary`, giving a
per-run provenance record of what executed, what came from the cache,
how many attempts each cell took, and how long everything ran — the
per-run counterpart to the process-global counters in
:mod:`repro.machine.telemetry`.

Journal format (one JSON object per line, append-only, flushed per
record so a crashed run leaves a readable prefix):

* ``{"type": "run_start", "run_id": ..., "version": ..., "workers": ...,
  "cache": bool, "strict": ..., "timeout": ..., "retries": ...,
  "started_at": <unix seconds>}``
* ``{"type": "span", "benchmark": ..., "workload": ..., "cache":
  "hit"|"miss"|"off", "attempts": int, "duration_s": float, "outcome":
  "ok"|"failed"|"timeout"|"crashed", "error": str|null, "capture":
  "hit"|"run"|"-", "replay": "hit"|"run"|"-", "build": str|null,
  "span_id": ..., "parent_id": ..., "start_s": float}`` —
  one per cell, in matrix order.  ``duration_s`` is parent-observed
  wall time (submission to completion), so concurrent cells overlap.
  ``capture`` and ``replay`` record the stage-level story behind the
  cell-level ``cache`` field: ``capture="run"`` means the benchmark
  actually executed, ``capture="hit"`` means a stored telemetry stream
  was reused, ``"-"`` means the stage never ran (e.g. a whole-profile
  cache hit skips both stages; ``replay="hit"`` reports it).  ``build``
  names a non-baseline replay transformation (e.g. ``"fdo"``).
* ``{"type": "stage", "name": "generate"|"capture"|"replay"|
  "summarize", "benchmark": ..., "workload": ..., "start_s": ...,
  "duration_s": ..., "span_id": ..., "parent_id": ...}`` — the
  stage-level children of a cell span (or of the run root, for
  ``summarize``).  ``span_id``/``parent_id`` link the records into a
  tree — run (``parent_id=""``, id :data:`RUN_SPAN_ID`) → cell →
  stage — and ``start_s`` is seconds since the run started, so the
  tree renders on a timeline: see :func:`export_chrome_trace`, whose
  output loads in Perfetto / ``chrome://tracing``.
* ``{"type": "summary", "cells": ..., "ok": ..., "failed": ...,
  "cache_hits": ..., "cache_misses": ..., "retries": ...,
  "timeouts": ..., "crashes": ..., "quarantined": ...,
  "captures": ..., "capture_hits": ..., "replays": ...,
  "replay_hits": ..., "duration_s": ...}`` — ``captures`` is the
  number of real benchmark executions in the run; a machine sweep that
  reuses one captured stream across N configs reports ``captures=1,
  replays=N``.

Each span is also mirrored into :mod:`repro.machine.telemetry` under
``engine.run.*`` so operational tooling sees run traffic without
holding the journal.  ``repro trace summary|show PATH`` render a
journal from the CLI.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from ..machine import telemetry
from . import metrics

__all__ = [
    "CellSpan",
    "StageSpan",
    "RunSummary",
    "TraceWriter",
    "read_trace",
    "trace_spans",
    "trace_stages",
    "summarize_trace",
    "render_trace_summary",
    "render_trace_spans",
    "export_chrome_trace",
    "render_top",
    "RUN_SPAN_ID",
    "STAGE_NAMES",
]

#: Span outcomes that count as failures in summaries.
FAILURE_OUTCOMES = ("failed", "timeout", "crashed")

#: The id of the run-root span; every cell span's ``parent_id``.
RUN_SPAN_ID = "run"

#: Process-wide run serial; disambiguates same-millisecond Sessions.
_RUN_SERIAL = itertools.count(1)

#: Stage names in pipeline order (``summarize`` parents to the run root).
#: ``sample`` is the phase-sampled variant of ``replay`` — a cell emits
#: one or the other, never both.
STAGE_NAMES = ("generate", "capture", "sample", "replay", "summarize")


@dataclass(frozen=True)
class CellSpan:
    """The trace record for one (benchmark, workload) matrix cell.

    ``cache`` keeps its original cell-level meaning (did the finished
    profile come from the cache); ``capture``/``replay`` break the
    miss down by stage.  Pre-stage journals decode with both set to
    ``"-"`` (unknown), never a fabricated value.
    """

    benchmark: str
    workload: str
    cache: str  # "hit" | "miss" | "off"
    attempts: int
    duration_s: float
    outcome: str  # "ok" | "failed" | "timeout" | "crashed"
    error: str | None = None
    capture: str = "-"  # "hit" | "run" | "-"
    replay: str = "-"  # "hit" | "run" | "-"
    build: str | None = None
    span_id: str = ""
    parent_id: str = ""
    start_s: float = 0.0  # seconds since run start (0.0 in pre-tree journals)
    sampled: bool = False  # replay="run" was phase-sampled, not exact
    batched: bool = False  # replay="run" shared a one-pass multi-config kernel

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"

    def to_dict(self) -> dict[str, Any]:
        return {"type": "span", **asdict(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellSpan":
        return cls(
            benchmark=data["benchmark"],
            workload=data["workload"],
            cache=data.get("cache", "off"),
            attempts=int(data.get("attempts", 1)),
            duration_s=float(data.get("duration_s", 0.0)),
            outcome=data.get("outcome", "ok"),
            error=data.get("error"),
            capture=data.get("capture", "-"),
            replay=data.get("replay", "-"),
            build=data.get("build"),
            span_id=data.get("span_id", ""),
            parent_id=data.get("parent_id", ""),
            start_s=float(data.get("start_s", 0.0)),
            sampled=bool(data.get("sampled", False)),
            batched=bool(data.get("batched", False)),
        )


@dataclass(frozen=True)
class StageSpan:
    """A pipeline-stage child of a cell span (or of the run root).

    ``name`` is one of :data:`STAGE_NAMES`; ``start_s`` is seconds since
    the run started, so stages nest on the same timeline as their
    parent :class:`CellSpan`.
    """

    name: str  # "generate" | "capture" | "replay" | "summarize"
    benchmark: str
    workload: str
    start_s: float
    duration_s: float
    span_id: str = ""
    parent_id: str = ""
    #: Resource attribution for the stage (``cpu_user_s``/``cpu_sys_s``/
    #: ``max_rss_kb``, optional ``samples``/``replay_events``/
    #: ``replay_ns`` — see :mod:`repro.core.resources`).  ``None`` in
    #: pre-resource journals and for stages nobody measured.
    resources: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        data = {"type": "stage", **asdict(self)}
        if data.get("resources") is None:
            del data["resources"]  # keep pre-resource journals byte-stable
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StageSpan":
        res = data.get("resources")
        return cls(
            name=data["name"],
            benchmark=data.get("benchmark", "-"),
            workload=data.get("workload", "-"),
            start_s=float(data.get("start_s", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            span_id=data.get("span_id", ""),
            parent_id=data.get("parent_id", ""),
            resources=dict(res) if isinstance(res, dict) else None,
        )


@dataclass(frozen=True)
class RunSummary:
    """Aggregate tallies over one engine run's spans."""

    cells: int = 0
    ok: int = 0
    failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    quarantined: int = 0
    duration_s: float = 0.0
    #: Benchmark executions (spans with capture="run") — the expensive part.
    captures: int = 0
    #: Spans served from a stored telemetry stream (capture="hit").
    capture_hits: int = 0
    #: Cost-model replays actually computed (replay="run").
    replays: int = 0
    #: Replays skipped because the finished profile was cached (replay="hit").
    replay_hits: int = 0
    #: Computed replays that took the phase-sampled path (subset of replays).
    replays_sampled: int = 0
    #: Computed replays served by a one-pass multi-config kernel (subset).
    replays_batched: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"type": "summary", **asdict(self)}

    @classmethod
    def from_spans(
        cls,
        spans: Iterable[CellSpan],
        *,
        quarantined: int = 0,
        duration_s: float | None = None,
    ) -> "RunSummary":
        """Recompute a summary from spans (e.g. a truncated journal)."""
        cells = ok = failed = hits = misses = retries = timeouts = crashes = 0
        captures = capture_hits = replays = replay_hits = replays_sampled = 0
        replays_batched = 0
        busy = 0.0
        for span in spans:
            cells += 1
            busy += span.duration_s
            if span.ok:
                ok += 1
            else:
                failed += 1
            if span.cache == "hit":
                hits += 1
            elif span.cache == "miss":
                misses += 1
            if span.capture == "run":
                captures += 1
            elif span.capture == "hit":
                capture_hits += 1
            if span.replay == "run":
                replays += 1
                if span.sampled:
                    replays_sampled += 1
                if span.batched:
                    replays_batched += 1
            elif span.replay == "hit":
                replay_hits += 1
            retries += max(0, span.attempts - 1)
            if span.outcome == "timeout":
                timeouts += 1
            elif span.outcome == "crashed":
                crashes += 1
        return cls(
            cells=cells,
            ok=ok,
            failed=failed,
            cache_hits=hits,
            cache_misses=misses,
            retries=retries,
            timeouts=timeouts,
            crashes=crashes,
            quarantined=quarantined,
            duration_s=busy if duration_s is None else duration_s,
            captures=captures,
            capture_hits=capture_hits,
            replays=replays,
            replay_hits=replay_hits,
            replays_sampled=replays_sampled,
            replays_batched=replays_batched,
        )


class TraceWriter:
    """Accumulates spans, mirrors them to telemetry, optionally to disk.

    ``path=None`` makes a tally-only writer: the engine always routes
    spans through one of these so ``engine.run.*`` telemetry stays
    accurate whether or not a journal was requested.  Records are
    flushed line-by-line, so a killed run leaves a parsable journal
    (``summarize_trace`` recomputes the summary from the spans).
    """

    def __init__(self, path: str | Path | None = None, *, mirror_telemetry: bool = True):
        self.path = Path(path) if path is not None else None
        self.mirror_telemetry = mirror_telemetry
        self._fh: IO[str] | None = None
        self._spans: list[CellSpan] = []
        self._stages: list[StageSpan] = []
        self._records: list[dict[str, Any]] = []
        self._quarantined = 0
        self._started = time.perf_counter()
        self._next_id = 0
        #: Id of this run's root span; cell spans parent to it.
        self.run_span_id = RUN_SPAN_ID
        self.summary: RunSummary | None = None
        #: Set by :meth:`start`; the ledger keys records by this id.
        self.run_id: str | None = None
        self.started_at: float | None = None

    # ------------------------------------------------------------ span tree

    def next_span_id(self) -> str:
        """Allocate a journal-unique span id (``"s1"``, ``"s2"``, ...)."""
        self._next_id += 1
        return f"s{self._next_id}"

    def now(self) -> float:
        """Seconds since the run started (the journal's timeline)."""
        return time.perf_counter() - self._started

    def rel(self, t_perf: float) -> float:
        """Map a ``time.perf_counter()`` stamp onto the run timeline."""
        return t_perf - self._started

    # ------------------------------------------------------------ lifecycle

    def start(self, meta: dict[str, Any] | None = None) -> None:
        """Begin the journal with a ``run_start`` record."""
        self._started = time.perf_counter()
        # ms timestamp + pid + process-wide serial: unique across
        # machines-in-practice, processes, and same-millisecond Sessions
        # inside one process (concurrent writers to a shared ledger).
        serial = next(_RUN_SERIAL)
        self.run_id = f"{int(time.time() * 1000):x}-{os.getpid()}-{serial}"
        self.started_at = time.time()
        record = {
            "type": "run_start",
            "run_id": self.run_id,
            "started_at": self.started_at,
            **(meta or {}),
        }
        self._write(record)

    def span(self, span: CellSpan) -> None:
        """Record one completed cell."""
        self._spans.append(span)
        self._write(span.to_dict())
        if self.mirror_telemetry:
            telemetry.record("engine.run.cells")
            telemetry.record("engine.run.ok" if span.ok else "engine.run.failed")
            retries = max(0, span.attempts - 1)
            if retries:
                telemetry.record("engine.run.retries", retries)
            if span.outcome == "timeout":
                telemetry.record("engine.run.timeouts")
            elif span.outcome == "crashed":
                telemetry.record("engine.run.crashes")
            if span.capture == "run":
                telemetry.record("engine.run.captures")
            elif span.capture == "hit":
                telemetry.record("engine.run.capture_hits")
            if span.replay == "run":
                telemetry.record("engine.run.replays")
                if span.sampled:
                    telemetry.record("engine.run.replays_sampled")
                if span.batched:
                    telemetry.record("engine.run.replays_batched")
            elif span.replay == "hit":
                telemetry.record("engine.run.replay_hits")

    def stage(self, span: StageSpan) -> None:
        """Record one pipeline-stage child span."""
        self._stages.append(span)
        self._write(span.to_dict())

    def quarantine(self, n: int = 1) -> None:
        """Note cache entries quarantined during this run."""
        self._quarantined += n

    def finish(self) -> RunSummary:
        """Write the summary record and return it (idempotent)."""
        if self.summary is None:
            self.summary = RunSummary.from_spans(
                self._spans,
                quarantined=self._quarantined,
                duration_s=time.perf_counter() - self._started,
            )
            self._write(self.summary.to_dict())
            if self.mirror_telemetry:
                telemetry.record("engine.run.runs")
                metrics.inc(metrics.RUNS_TOTAL)
        return self.summary

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.finish()
        self.close()

    # ------------------------------------------------------------ plumbing

    @property
    def spans(self) -> list[CellSpan]:
        return list(self._spans)

    @property
    def stages(self) -> list[StageSpan]:
        return list(self._stages)

    @property
    def records(self) -> list[dict[str, Any]]:
        """Every record written so far (kept even when ``path=None``)."""
        return list(self._records)

    def _write(self, record: dict[str, Any]) -> None:
        self._records.append(record)
        if self.path is None:
            return
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()


# ------------------------------------------------------------------ readers


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a journal into raw records, skipping truncated tail lines."""
    records: list[dict[str, Any]] = []
    with Path(path).open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                break  # truncated final line from a killed run
    return records


def trace_spans(path: str | Path) -> list[CellSpan]:
    """The journal's spans, in matrix order."""
    return [
        CellSpan.from_dict(r) for r in read_trace(path) if r.get("type") == "span"
    ]


def trace_stages(path: str | Path) -> list[StageSpan]:
    """The journal's stage spans, in emission order."""
    return [
        StageSpan.from_dict(r) for r in read_trace(path) if r.get("type") == "stage"
    ]


def summarize_trace(path: str | Path) -> RunSummary:
    """The journal's summary; recomputed from spans if the run died."""
    records = read_trace(path)
    for record in reversed(records):
        if record.get("type") == "summary":
            data = {k: v for k, v in record.items() if k != "type"}
            return RunSummary(**data)
    spans = [CellSpan.from_dict(r) for r in records if r.get("type") == "span"]
    return RunSummary.from_spans(spans)


def render_trace_summary(path: str | Path) -> str:
    """Human-readable summary of a journal, for ``repro trace summary``."""
    s = summarize_trace(path)
    lines = [
        f"trace      : {path}",
        f"cells      : {s.cells}  ({s.ok} ok, {s.failed} failed)",
        f"cache      : {s.cache_hits} hits, {s.cache_misses} misses, "
        f"{s.quarantined} quarantined",
        f"stages     : {s.captures} captures ({s.capture_hits} reused), "
        f"{s.replays} replays ({s.replay_hits} cached, "
        f"{s.replays_sampled} sampled, {s.replays_batched} batched)",
        f"resilience : {s.retries} retries, {s.timeouts} timeouts, "
        f"{s.crashes} crashes",
        f"duration   : {s.duration_s:.3f}s",
    ]
    failed = [sp for sp in trace_spans(path) if not sp.ok]
    if failed:
        lines.append("failed cells:")
        for sp in failed:
            err = f" — {sp.error}" if sp.error else ""
            lines.append(
                f"  {sp.benchmark}/{sp.workload}: {sp.outcome} "
                f"after {sp.attempts} attempt(s){err}"
            )
    return "\n".join(lines)


def _stage_label(st: StageSpan) -> str:
    """Stage display name; ``sample`` keeps a distinct ``*`` suffix so
    phase-sampled replays never read as exact ones."""
    return f"{st.name}*" if st.name == "sample" else st.name


def _stage_extras(st: StageSpan) -> str:
    """Resource-attribution suffix for one stage line (empty pre-PR10)."""
    res = st.resources
    if not res:
        return ""
    parts = []
    if "cpu_user_s" in res:
        parts.append(f"cpu={res['cpu_user_s']:.3f}u+{res.get('cpu_sys_s', 0.0):.3f}s")
    if res.get("max_rss_kb"):
        parts.append(f"rss={res['max_rss_kb']}KB")
    if res.get("samples"):
        parts.append(f"samples={res['samples']}")
    return (" " + " ".join(parts)) if parts else ""


def render_trace_spans(path: str | Path) -> str:
    """Per-cell listing of a journal, for ``repro trace show``."""
    lines = []
    stages_by_parent: dict[str, list[StageSpan]] = {}
    for st in trace_stages(path):
        stages_by_parent.setdefault(st.parent_id, []).append(st)
    for sp in trace_spans(path):
        flag = "ok " if sp.ok else sp.outcome
        build = f" build={sp.build}" if sp.build else ""
        mode = ""
        if sp.sampled:
            mode += " [sampled]"
        if sp.batched:
            mode += " [batched]"
        lines.append(
            f"{flag:<8} {sp.benchmark:<18} {sp.workload:<28} "
            f"cache={sp.cache:<4} cap={sp.capture:<3} rep={sp.replay:<3} "
            f"attempts={sp.attempts} t={sp.duration_s:.4f}s{build}{mode}"
        )
        for st in stages_by_parent.get(sp.span_id, []) if sp.span_id else []:
            lines.append(
                f"         └─ {_stage_label(st):<9} t={st.duration_s:.4f}s "
                f"@{st.start_s:.4f}s{_stage_extras(st)}"
            )
    for st in stages_by_parent.get(RUN_SPAN_ID, []):
        lines.append(
            f"run      └─ {_stage_label(st):<9} t={st.duration_s:.4f}s "
            f"@{st.start_s:.4f}s{_stage_extras(st)}"
        )
    return "\n".join(lines) if lines else "(no spans)"


# ------------------------------------------------------------ chrome export

#: Reserved Chrome trace-viewer colors per stage.  ``sample`` gets its
#: own color (and the ``*`` name suffix) so a phase-sampled replay is
#: visually distinct from an exact one on the same track.
_STAGE_CNAME = {
    "generate": "thread_state_runnable",
    "capture": "rail_response",
    "replay": "thread_state_running",
    "sample": "yellow",
    "summarize": "grey",
}


def export_chrome_trace(source: str | Path | list[dict[str, Any]]) -> dict[str, Any]:
    """Convert a journal into Chrome ``trace_event`` JSON.

    ``source`` is a journal path or an in-memory record list (e.g.
    :attr:`TraceWriter.records`).  The output dict serializes to a file
    that loads in Perfetto / ``chrome://tracing``: the run root on
    track 0, each cell span greedily packed onto the first free track
    (concurrent cells land on separate tracks), and stage spans nested
    on their parent cell's track.  All timestamps are µs on the run's
    ``start_s`` timeline.
    """
    records = read_trace(source) if isinstance(source, (str, Path)) else source
    spans = [CellSpan.from_dict(r) for r in records if r.get("type") == "span"]
    stages = [StageSpan.from_dict(r) for r in records if r.get("type") == "stage"]
    run_meta = next((r for r in records if r.get("type") == "run_start"), {})
    summary = next(
        (r for r in reversed(records) if r.get("type") == "summary"), None
    )

    pid = 1
    events: list[dict[str, Any]] = []

    def _us(seconds: float) -> int:
        return max(0, round(seconds * 1e6))

    # Greedy track packing: each cell goes on the lowest track whose
    # previous occupant has already finished.
    lane_free_at: list[float] = []  # per-lane end time, lanes are tid-1
    tid_by_span_id: dict[str, int] = {RUN_SPAN_ID: 0}
    ordered = sorted(spans, key=lambda sp: sp.start_s)
    for sp in ordered:
        lane = next(
            (i for i, free in enumerate(lane_free_at) if free <= sp.start_s + 1e-9),
            None,
        )
        if lane is None:
            lane = len(lane_free_at)
            lane_free_at.append(0.0)
        lane_free_at[lane] = sp.start_s + sp.duration_s
        tid = lane + 1
        if sp.span_id:
            tid_by_span_id[sp.span_id] = tid
        suffix = " [sampled]" if sp.sampled else ""
        events.append(
            {
                "name": f"{sp.benchmark}/{sp.workload}{suffix}",
                "cat": "cell",
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": _us(sp.start_s),
                "dur": max(1, _us(sp.duration_s)),
                "args": {
                    "outcome": sp.outcome,
                    "cache": sp.cache,
                    "capture": sp.capture,
                    "replay": sp.replay,
                    "attempts": sp.attempts,
                    "sampled": sp.sampled,
                    "batched": sp.batched,
                    **({"build": sp.build} if sp.build else {}),
                    **({"error": sp.error} if sp.error else {}),
                },
            }
        )

    for st in stages:
        event = {
            "name": _stage_label(st),
            "cat": "stage.sample" if st.name == "sample" else "stage",
            "ph": "X",
            "pid": pid,
            "tid": tid_by_span_id.get(st.parent_id, 0),
            "ts": _us(st.start_s),
            "dur": max(1, _us(st.duration_s)),
            "args": {"benchmark": st.benchmark, "workload": st.workload},
        }
        cname = _STAGE_CNAME.get(st.name)
        if cname:
            event["cname"] = cname
        if st.resources:
            event["args"]["resources"] = st.resources
        events.append(event)

    run_dur = (
        float(summary["duration_s"])
        if summary and summary.get("duration_s")
        else max(
            (sp.start_s + sp.duration_s for sp in spans),
            default=max((st.start_s + st.duration_s for st in stages), default=0.0),
        )
    )
    events.insert(
        0,
        {
            "name": f"run {run_meta.get('run_id', '?')}",
            "cat": "run",
            "ph": "X",
            "pid": pid,
            "tid": 0,
            "ts": 0,
            "dur": max(1, _us(run_dur)),
            "args": {
                k: v
                for k, v in run_meta.items()
                if k not in ("type",) and not isinstance(v, (dict, list))
            },
        },
    )

    names = [(0, "run")] + [
        (lane + 1, f"cells {lane + 1}") for lane in range(len(lane_free_at))
    ]
    for tid, label in names:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


# -------------------------------------------------------------- live view


def render_top(
    records: list[dict[str, Any]], *, tail: int = 12, clock_s: float | None = None
) -> str:
    """One ``repro top`` frame from an in-flight journal's records.

    The journal is append-only and flushed per record, so tailing it
    mid-run (``read_trace`` skips a torn final line) gives a consistent
    prefix: everything that has *settled* so far.  The frame shows the
    run header, live tallies (cells, cache-hit rate, stage counts),
    aggregate replay throughput from the stage records' resource
    attribution, and the most recent ``tail`` cells with their per-stage
    states — the run-level ``top`` for a characterization in progress.
    """
    meta = next((r for r in records if r.get("type") == "run_start"), {})
    summary = next((r for r in reversed(records) if r.get("type") == "summary"), None)
    spans = [CellSpan.from_dict(r) for r in records if r.get("type") == "span"]
    stages = [StageSpan.from_dict(r) for r in records if r.get("type") == "stage"]

    s = (
        RunSummary(**{k: v for k, v in summary.items() if k != "type"})
        if summary
        else RunSummary.from_spans(spans)
    )
    last_t = max(
        (sp.start_s + sp.duration_s for sp in spans),
        default=max((st.start_s + st.duration_s for st in stages), default=0.0),
    )
    elapsed = s.duration_s if summary else (clock_s if clock_s is not None else last_t)
    state = "finished" if summary else "running"

    lines = [
        f"run {meta.get('run_id', '?')}  [{state}]  "
        f"workers={meta.get('workers', '?')} cache={meta.get('cache', '?')} "
        f"elapsed={elapsed:.2f}s",
        f"cells   : {s.cells} settled  ({s.ok} ok, {s.failed} failed, "
        f"{s.retries} retries)",
    ]
    looked_up = s.cache_hits + s.cache_misses
    rate = (s.cache_hits / looked_up * 100.0) if looked_up else 0.0
    lines.append(
        f"cache   : {s.cache_hits}/{looked_up} hits ({rate:.0f}%), "
        f"{s.quarantined} quarantined"
    )
    lines.append(
        f"stages  : {s.captures} captures ({s.capture_hits} reused), "
        f"{s.replays} replays ({s.replay_hits} cached, "
        f"{s.replays_sampled} sampled, {s.replays_batched} batched)"
    )
    ev = ns = 0
    for st in stages:
        res = st.resources or {}
        ev += int(res.get("replay_events", 0))
        ns += int(res.get("replay_ns", 0))
    if ns:
        lines.append(
            f"replay  : {ev} events in {ns / 1e9:.3f}s kernel time "
            f"({ev / (ns / 1e9) / 1e6:.2f}M events/s)"
        )
    cell_rate = s.cells / elapsed if elapsed > 0 else 0.0
    lines.append(f"rate    : {cell_rate:.2f} cells/s")
    recent = sorted(spans, key=lambda sp: sp.start_s + sp.duration_s)[-tail:]
    if recent:
        lines.append(
            f"  {'cell':<44} {'cache':<5} {'cap':<3} {'rep':<3} "
            f"{'t':>9}  state"
        )
        for sp in recent:
            flag = "ok" if sp.ok else sp.outcome
            mode = " sampled" if sp.sampled else (" batched" if sp.batched else "")
            lines.append(
                f"  {sp.benchmark + '/' + sp.workload:<44} {sp.cache:<5} "
                f"{sp.capture:<3} {sp.replay:<3} {sp.duration_s:>8.4f}s  "
                f"{flag}{mode}"
            )
    else:
        lines.append("  (no cells settled yet)")
    return "\n".join(lines)
