"""Declarative scenario registry: benchmarks, generators, machines, builds.

The paper's subject is a benchmark × workload × configuration space;
this module is the single place where that space is *declared*.  Every
scenario component registers a :class:`Descriptor` — a stable id, a
kind, capability flags, and a versioned content fingerprint — and every
consumer (engine, Session, CLI, manifest, analysis) enumerates the
space through registry queries instead of hand-maintained lists.

Three registration paths feed the same :class:`Registry`:

* **built-ins** — the 16 ``benchmarks/*.py`` substrates and their
  ``workloads/*_gen.py`` generators self-register via the
  :func:`register_benchmark` / :func:`register_generator` decorators;
  ``machine/machine.py`` registers its presets and ``fdo/optimizer.py``
  its build kind.  :meth:`Registry._bootstrap` imports those packages
  lazily, so ``import repro.core`` stays light;
* **entry points** — third-party distributions declare a
  ``repro.plugins`` entry point (:data:`PLUGIN_GROUP`); each one is a
  module (decorators run at import) or a ``register(registry)``
  callable.  See ``examples/repro-plugin-demo`` for a complete package;
* **in-process** — :func:`load_plugin` / :meth:`Registry.register` for
  tests and embedding applications.

Cache identity: each descriptor carries a ``version`` and a content
:meth:`Descriptor.fingerprint`.  At ``version=1`` (every built-in
today) :meth:`Descriptor.cache_token` is ``None`` and the descriptor
contributes *nothing* to cache keys — keys are byte-identical to the
pre-registry era, so warm caches stay warm across the refactor.
Bumping a descriptor's version makes its token non-``None``, which
:func:`repro.core.cache.cache_key` folds into the key — invalidating
exactly that scenario's cached artifacts while every untouched
descriptor keeps hitting.

Validation is eager: malformed descriptors and id collisions raise
:class:`~repro.core.errors.RegistrationError` at registration (plugin
load) time; unknown ids raise
:class:`~repro.core.errors.UnknownScenarioError` with near-miss
suggestions.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from types import ModuleType
from typing import Any, Callable, Iterator, Mapping

from .errors import RegistrationError, UnknownScenarioError

__all__ = [
    "KINDS",
    "PLUGIN_GROUP",
    "CAP_CAPTURE_ONLY",
    "CAP_SWEEPABLE",
    "CAP_REFRATE",
    "CAP_IN_TABLE2",
    "Descriptor",
    "PluginInfo",
    "Registry",
    "REGISTRY",
    "register",
    "load_plugin",
    "register_benchmark",
    "register_generator",
    "register_machine_config",
    "register_fdo_build",
    "benchmark_ids",
    "get_benchmark",
    "get_generator",
    "alberta_workloads",
    "machine_preset",
    "machine_preset_names",
]

#: The descriptor kinds the registry accepts.
KINDS = ("benchmark", "generator", "machine", "fdo_build")

#: ``importlib.metadata`` entry-point group scanned for plugins.
PLUGIN_GROUP = "repro.plugins"

#: Environment switch that skips entry-point scanning (CI tier-1 uses
#: it to stay deterministic regardless of what happens to be installed).
DISABLE_PLUGINS_ENV = "REPRO_DISABLE_PLUGINS"

# Capability flags.  A capability is any non-empty string; these are the
# ones the built-in consumers filter on.
CAP_CAPTURE_ONLY = "capture-only"  #: can capture telemetry but not replay
CAP_SWEEPABLE = "sweepable"  #: valid target for machine-config sweeps
CAP_REFRATE = "refrate"  #: Alberta set includes a ``*.refrate`` workload
CAP_IN_TABLE2 = "in_table2"  #: has a Table II row in the paper

_KIND_NOUN = {
    "benchmark": "benchmark",
    "generator": "workload generator",
    "machine": "machine preset",
    "fdo_build": "FDO build",
}


@dataclass(frozen=True)
class Descriptor:
    """One registered scenario component.

    ``factory`` is the only live object (the benchmark / generator
    class, or a closure returning a
    :class:`~repro.machine.cost.MachineConfig`); it is excluded from
    equality and serialization, so a descriptor round-trips through
    :meth:`to_dict` / :meth:`from_dict` minus the factory.
    """

    kind: str
    id: str
    version: int = 1
    suite: str | None = None
    capabilities: frozenset[str] = frozenset()
    origin: str = "builtin"
    factory: Callable[[], Any] | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise RegistrationError(
                f"descriptor kind {self.kind!r} not in {list(KINDS)}"
            )
        if not isinstance(self.id, str) or not self.id:
            raise RegistrationError(
                f"{self.kind} descriptor id must be a non-empty string, got {self.id!r}"
            )
        if (
            not isinstance(self.version, int)
            or isinstance(self.version, bool)
            or self.version < 1
        ):
            raise RegistrationError(
                f"{self.kind} {self.id!r}: version must be an int >= 1, "
                f"got {self.version!r}"
            )
        if self.suite is not None and (
            not isinstance(self.suite, str) or not self.suite
        ):
            raise RegistrationError(
                f"{self.kind} {self.id!r}: suite must be None or a non-empty string"
            )
        caps = frozenset(self.capabilities)
        for cap in caps:
            if not isinstance(cap, str) or not cap:
                raise RegistrationError(
                    f"{self.kind} {self.id!r}: capability {cap!r} must be a "
                    "non-empty string"
                )
        object.__setattr__(self, "capabilities", caps)
        if not isinstance(self.origin, str) or not self.origin:
            raise RegistrationError(
                f"{self.kind} {self.id!r}: origin must be a non-empty string"
            )
        if self.factory is not None and not callable(self.factory):
            raise RegistrationError(
                f"{self.kind} {self.id!r}: factory must be callable or None"
            )

    # ------------------------------------------------------------ identity

    def fingerprint(self) -> str:
        """Stable content digest of the descriptor's declared identity.

        Covers kind, id, version, suite, and capabilities — everything
        except provenance (``origin``) and the live ``factory``.  The
        encoding is :func:`repro.core.cache.payload_digest`, so the
        value is identical across processes and platforms.
        """
        from .cache import payload_digest

        return payload_digest(
            {
                "kind": self.kind,
                "id": self.id,
                "version": self.version,
                "suite": self.suite,
                "capabilities": sorted(self.capabilities),
            }
        )

    def cache_token(self) -> str | None:
        """The descriptor's contribution to cache keys, or ``None``.

        ``None`` at ``version=1`` — the baseline declaration hashes to
        nothing, so cache keys written before the registry existed stay
        valid.  Any version bump yields a token, which
        :func:`repro.core.cache.cache_key` folds into the key: a clean
        miss for exactly this descriptor's artifacts.
        """
        if self.version == 1:
            return None
        return f"{self.id}@v{self.version}:{self.fingerprint()[:12]}"

    # ------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (sans factory)."""
        return {
            "kind": self.kind,
            "id": self.id,
            "version": self.version,
            "suite": self.suite,
            "capabilities": sorted(self.capabilities),
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Descriptor":
        """Inverse of :meth:`to_dict` (``factory`` comes back ``None``)."""
        try:
            return cls(
                kind=data["kind"],
                id=data["id"],
                version=data.get("version", 1),
                suite=data.get("suite"),
                capabilities=frozenset(data.get("capabilities", ())),
                origin=data.get("origin", "builtin"),
            )
        except (TypeError, KeyError) as exc:
            raise RegistrationError(f"bad descriptor payload: {exc}") from exc

    def create(self) -> Any:
        """Instantiate the live object behind this descriptor."""
        if self.factory is None:
            raise RegistrationError(
                f"{self.kind} {self.id!r} has no factory (descriptor was "
                "deserialized or registered without one)"
            )
        return self.factory()


@dataclass(frozen=True)
class PluginInfo:
    """Provenance record for one loaded plugin."""

    name: str
    source: str  #: entry-point value, module name, or ``"<in-process>"``
    descriptors: tuple[str, ...]  #: ``"kind:id"`` refs it registered


class Registry:
    """Mutable descriptor store with validation and lazy bootstrap.

    The module-level :data:`REGISTRY` singleton is what the pipeline
    uses; separate instances exist only in tests.  All query methods
    bootstrap on first use (importing the built-in benchmark / workload
    / machine / FDO modules so their decorators run, then scanning the
    ``repro.plugins`` entry-point group).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], Descriptor] = {}
        self._plugins: list[PluginInfo] = []
        self._bootstrapped = False
        self._origin_stack: list[str] = []
        # Re-entrant: the bootstrap imports run registration decorators
        # that call back into this registry on the same thread, while a
        # second thread (e.g. concurrent Sessions) must block until the
        # built-ins are fully populated rather than see a half-loaded
        # registry through the eagerly-set flag.
        self._bootstrap_lock = threading.RLock()

    # --------------------------------------------------------- registration

    def register(self, descriptor: Descriptor) -> Descriptor:
        """Add one descriptor; validate and reject collisions.

        Re-registering an *identical* descriptor (same declared fields;
        factory is not compared) is a no-op that adopts the newest
        factory — module re-imports stay idempotent.  A *different*
        descriptor under an existing (kind, id) raises
        :class:`RegistrationError`.
        """
        if not isinstance(descriptor, Descriptor):
            raise RegistrationError(
                f"register() takes a Descriptor, got {type(descriptor).__name__}"
            )
        if self._origin_stack and descriptor.origin == "builtin":
            descriptor = replace(descriptor, origin=self._origin_stack[-1])
        key = (descriptor.kind, descriptor.id)
        existing = self._entries.get(key)
        if existing is not None and existing != descriptor:
            raise RegistrationError(
                f"{descriptor.kind} id {descriptor.id!r} already registered "
                f"(by {existing.origin}, v{existing.version}) — refusing the "
                f"conflicting descriptor from {descriptor.origin}"
            )
        self._entries[key] = descriptor
        return descriptor

    @contextmanager
    def _as_origin(self, origin: str) -> Iterator[None]:
        """Attribute registrations inside the block to ``origin``."""
        self._origin_stack.append(origin)
        try:
            yield
        finally:
            self._origin_stack.pop()

    def load_plugin(self, plugin: Any, *, name: str = "inline") -> PluginInfo:
        """In-process plugin loading: module, import path, or callable.

        The same adoption path the entry-point scan uses: decorators run
        (module import) and/or ``register(registry)`` is called, every
        registration inside is attributed to ``plugin:<name>``, and the
        newly-registered descriptor refs are recorded.
        """
        self._bootstrap()
        before = set(self._entries)
        if isinstance(plugin, str):
            import importlib

            source = plugin
            with self._as_origin(f"plugin:{name}"):
                try:
                    plugin = importlib.import_module(plugin)
                except RegistrationError:
                    raise
                except Exception as exc:
                    raise RegistrationError(
                        f"plugin {name!r} ({source}) failed to import: {exc}"
                    ) from exc
        else:
            source = getattr(plugin, "__name__", "<in-process>")
        return self._adopt(plugin, name=name, source=source, before=before)

    def _adopt(
        self,
        obj: Any,
        *,
        name: str,
        source: str,
        before: set[tuple[str, str]] | None = None,
    ) -> PluginInfo:
        if before is None:
            before = set(self._entries)
        with self._as_origin(f"plugin:{name}"):
            hook = obj if callable(obj) and not isinstance(obj, ModuleType) else None
            if hook is None:
                hook = getattr(obj, "register", None)
            if callable(hook):
                try:
                    hook(self)
                except RegistrationError:
                    raise
                except Exception as exc:
                    raise RegistrationError(
                        f"plugin {name!r} ({source}) register() failed: {exc}"
                    ) from exc
        refs = tuple(
            sorted(f"{k}:{i}" for (k, i) in set(self._entries) - before)
        )
        info = PluginInfo(name=name, source=source, descriptors=refs)
        self._plugins.append(info)
        return info

    # ------------------------------------------------------------ bootstrap

    def _bootstrap(self) -> None:
        """Import the built-in scenario modules, then scan entry points.

        The flag is set *before* importing so the benchmark modules'
        decorators (which call back into this registry) cannot recurse.
        """
        with self._bootstrap_lock:
            if self._bootstrapped:
                return
            self._bootstrapped = True
            import importlib

            # Package imports run every module's registration decorators.
            importlib.import_module("repro.benchmarks")
            importlib.import_module("repro.workloads")
            importlib.import_module("repro.machine.machine")
            importlib.import_module("repro.fdo.optimizer")
            self._load_entry_points()

    def _load_entry_points(self) -> None:
        if os.environ.get(DISABLE_PLUGINS_ENV):
            return
        from importlib import metadata

        try:
            eps = list(metadata.entry_points(group=PLUGIN_GROUP))
        except TypeError:  # pragma: no cover - pre-3.10 select API
            eps = list(metadata.entry_points().get(PLUGIN_GROUP, []))
        for ep in sorted(eps, key=lambda e: e.name):
            before = set(self._entries)
            with self._as_origin(f"plugin:{ep.name}"):
                try:
                    obj = ep.load()
                except RegistrationError:
                    raise
                except Exception as exc:
                    raise RegistrationError(
                        f"plugin {ep.name!r} ({ep.value}) failed to load: {exc}"
                    ) from exc
            self._adopt(obj, name=ep.name, source=ep.value, before=before)

    # -------------------------------------------------------------- queries

    def descriptors(
        self,
        kind: str | None = None,
        *,
        suite: str | None = None,
        capability: str | None = None,
        origin: str | None = None,
    ) -> list[Descriptor]:
        """All descriptors matching the filters, sorted by (kind, id)."""
        self._bootstrap()
        out = []
        for d in self._entries.values():
            if kind is not None and d.kind != kind:
                continue
            if suite is not None and d.suite != suite:
                continue
            if capability is not None and capability not in d.capabilities:
                continue
            if origin is not None and d.origin != origin:
                continue
            out.append(d)
        return sorted(out, key=lambda d: (d.kind, d.id))

    def ids(self, kind: str, **filters: Any) -> list[str]:
        """Registered ids of one kind (same filters as :meth:`descriptors`)."""
        return [d.id for d in self.descriptors(kind, **filters)]

    def find(self, kind: str, scenario_id: str) -> Descriptor | None:
        """Look up one descriptor; ``None`` when unregistered."""
        self._bootstrap()
        return self._entries.get((kind, scenario_id))

    def get(self, kind: str, scenario_id: str) -> Descriptor:
        """Look up one descriptor; unknown ids raise with suggestions."""
        found = self.find(kind, scenario_id)
        if found is None:
            raise UnknownScenarioError(
                _KIND_NOUN.get(kind, kind),
                scenario_id,
                (i for (k, i) in self._entries if k == kind),
            )
        return found

    def create(self, kind: str, scenario_id: str) -> Any:
        """Instantiate the live object for one registered id."""
        return self.get(kind, scenario_id).create()

    def plugins(self) -> list[PluginInfo]:
        """Every plugin loaded so far (entry points and in-process)."""
        self._bootstrap()
        return list(self._plugins)

    def cache_tokens(self, benchmark_id: str) -> dict[str, str]:
        """The non-``None`` descriptor tokens that key one benchmark's
        cached artifacts — empty (the common case) while the benchmark
        and its generator sit at ``version=1``."""
        self._bootstrap()
        tokens: dict[str, str] = {}
        for kind in ("benchmark", "generator"):
            d = self._entries.get((kind, benchmark_id))
            if d is not None:
                token = d.cache_token()
                if token is not None:
                    tokens[kind] = token
        return tokens

    # ---------------------------------------------------------------- tests

    @contextmanager
    def override(self, descriptor: Descriptor) -> Iterator[Descriptor]:
        """Temporarily (re)place one descriptor — the version-bump hook
        tests use to prove cache separation without editing modules."""
        self._bootstrap()
        key = (descriptor.kind, descriptor.id)
        previous = self._entries.get(key)
        self._entries[key] = descriptor
        try:
            yield descriptor
        finally:
            if previous is None:
                self._entries.pop(key, None)
            else:
                self._entries[key] = previous


#: The process-wide registry every built-in consumer queries.
REGISTRY = Registry()


def register(descriptor: Descriptor) -> Descriptor:
    """In-process registration API (see also :func:`load_plugin`)."""
    return REGISTRY.register(descriptor)


def load_plugin(plugin: Any, *, name: str = "inline") -> PluginInfo:
    """Load one plugin (module, import path, or callable) in-process."""
    return REGISTRY.load_plugin(plugin, name=name)


# ------------------------------------------------------------- decorators


def register_benchmark(
    cls: type | None = None,
    *,
    in_table2: bool = True,
    capabilities: Any = (),
    version: int = 1,
    registry: Registry | None = None,
):
    """Class decorator: register a benchmark substrate.

    Reads the class's ``name`` (the SPEC-style id) and ``suite``
    attributes.  Unless the explicit capabilities say
    :data:`CAP_CAPTURE_ONLY`, the benchmark is marked sweepable and
    refrate-bearing; ``in_table2=False`` drops it from Table II
    enumeration (the paper characterizes 525.x264_r's workloads but
    prints no row for it).
    """

    def deco(klass: type) -> type:
        benchmark_id = getattr(klass, "name", None)
        suite = getattr(klass, "suite", None)
        caps = set(capabilities)
        if CAP_CAPTURE_ONLY not in caps:
            caps.add(CAP_SWEEPABLE)
            caps.add(CAP_REFRATE)
        if in_table2:
            caps.add(CAP_IN_TABLE2)
        if suite:
            caps.add(f"suite:{suite}")
        (registry or REGISTRY).register(
            Descriptor(
                kind="benchmark",
                id=benchmark_id if isinstance(benchmark_id, str) else repr(benchmark_id),
                version=version,
                suite=suite,
                capabilities=frozenset(caps),
                factory=klass,
            )
        )
        return klass

    return deco(cls) if cls is not None else deco


def register_generator(
    cls: type | None = None,
    *,
    capabilities: Any = (CAP_REFRATE,),
    version: int = 1,
    registry: Registry | None = None,
):
    """Class decorator: register a workload generator.

    Reads the class's ``benchmark`` attribute as the id — generator and
    benchmark descriptors share the benchmark id, differing in kind.
    """

    def deco(klass: type) -> type:
        benchmark_id = getattr(klass, "benchmark", None)
        (registry or REGISTRY).register(
            Descriptor(
                kind="generator",
                id=benchmark_id if isinstance(benchmark_id, str) else repr(benchmark_id),
                version=version,
                capabilities=frozenset(capabilities),
                factory=klass,
            )
        )
        return klass

    return deco(cls) if cls is not None else deco


def register_machine_config(
    name: str,
    config: Any,
    *,
    capabilities: Any = (),
    version: int = 1,
    registry: Registry | None = None,
) -> Descriptor:
    """Register a named machine preset (ids are case-folded)."""
    return (registry or REGISTRY).register(
        Descriptor(
            kind="machine",
            id=name.lower() if isinstance(name, str) else repr(name),
            version=version,
            capabilities=frozenset(capabilities),
            factory=lambda config=config: config,
        )
    )


def register_fdo_build(
    name: str,
    factory: Callable[..., Any],
    *,
    capabilities: Any = (),
    version: int = 1,
    registry: Registry | None = None,
) -> Descriptor:
    """Register a build-transformation kind (e.g. the FDO build)."""
    return (registry or REGISTRY).register(
        Descriptor(
            kind="fdo_build",
            id=name,
            version=version,
            capabilities=frozenset(capabilities),
            factory=factory,
        )
    )


# ------------------------------------------------- canonical enumeration


def benchmark_ids(
    suite: str | None = None,
    *,
    table2_only: bool = False,
) -> list[str]:
    """Benchmark ids, optionally filtered to one suite or Table II rows."""
    out = []
    for d in REGISTRY.descriptors("benchmark"):
        if suite is not None and d.suite != suite:
            continue
        if table2_only and CAP_IN_TABLE2 not in d.capabilities:
            continue
        out.append(d.id)
    return out


def get_benchmark(benchmark_id: str) -> Any:
    """Instantiate the substrate for a benchmark id."""
    return REGISTRY.create("benchmark", benchmark_id)


def get_generator(benchmark_id: str) -> Any:
    """Instantiate the workload generator for a benchmark id."""
    return REGISTRY.create("generator", benchmark_id)


def alberta_workloads(benchmark_id: str, base_seed: int = 0) -> Any:
    """The default Alberta workload set for a benchmark."""
    try:
        generator = get_generator(benchmark_id)
    except UnknownScenarioError:
        # An id neither kind knows should be reported as an unknown
        # *benchmark* — that is the id space callers think in.
        if REGISTRY.find("benchmark", benchmark_id) is None:
            raise UnknownScenarioError(
                "benchmark", benchmark_id, REGISTRY.ids("benchmark")
            ) from None
        raise
    return generator.alberta_set(base_seed)


def machine_preset(name: str) -> Any:
    """Resolve a machine preset by registered name (case-insensitive)."""
    return REGISTRY.create("machine", name.lower() if isinstance(name, str) else name)


def machine_preset_names() -> list[str]:
    """Every registered machine-preset name, builtin and plugin."""
    return REGISTRY.ids("machine")
