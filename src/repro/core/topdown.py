"""Intel Top-Down methodology model (Section V-B of the paper).

The methodology classifies every pipeline allocation cycle into exactly
one of four top-level categories:

* **front-end bound** — the front end could not supply micro-ops;
* **back-end bound** — back-end resources were unavailable;
* **bad speculation** — micro-ops were allocated but never retired;
* **retiring** — micro-ops were allocated and retired.

:class:`TopDownVector` holds one observation (one benchmark run on one
workload); :class:`TopDownSummary` aggregates a vector per workload into
the per-category ``mu_g``/``sigma_g`` values plus the single-number
``mu_g(V)`` reported in Table II.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from .stats import RatioSummary, mu_g_of_variations

__all__ = ["CATEGORIES", "TopDownVector", "TopDownSummary", "summarize_topdown"]

#: Category keys, in the paper's reporting order (f, b, s, r).
CATEGORIES = ("front_end", "back_end", "bad_speculation", "retiring")

# Perf-counter ratios are never exactly zero in practice (the counters
# are sampled); the machine model can legitimately produce a zero, so we
# clamp to a tiny epsilon to keep geometric statistics defined.
_EPSILON = 1e-6


@dataclass(frozen=True)
class TopDownVector:
    """Fractions of allocation cycles per top-down category for one run.

    The four fractions must be non-negative and sum to 1 (within
    ``tol``).  Fractions of exactly zero are clamped to a small epsilon
    when read through :meth:`as_tuple`, mirroring the fact that sampled
    hardware counters never report a clean zero.
    """

    front_end: float
    back_end: float
    bad_speculation: float
    retiring: float

    def __post_init__(self) -> None:
        total = self.front_end + self.back_end + self.bad_speculation + self.retiring
        for name in CATEGORIES:
            value = getattr(self, name)
            if not math.isfinite(value) or value < 0.0:
                raise ValueError(f"TopDownVector.{name} must be finite and >= 0, got {value!r}")
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(f"TopDownVector fractions must sum to 1, got {total!r}")

    @classmethod
    def from_cycles(
        cls,
        front_end: float,
        back_end: float,
        bad_speculation: float,
        retiring: float,
    ) -> "TopDownVector":
        """Build a vector from raw cycle counts, normalizing to fractions."""
        total = front_end + back_end + bad_speculation + retiring
        if total <= 0:
            raise ValueError("from_cycles: total cycles must be positive")
        return cls(
            front_end=front_end / total,
            back_end=back_end / total,
            bad_speculation=bad_speculation / total,
            retiring=retiring / total,
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return (f, b, s, r) with zeros clamped to a small epsilon."""
        return (
            max(self.front_end, _EPSILON),
            max(self.back_end, _EPSILON),
            max(self.bad_speculation, _EPSILON),
            max(self.retiring, _EPSILON),
        )

    def category(self, name: str) -> float:
        if name not in CATEGORIES:
            raise KeyError(f"unknown top-down category {name!r}")
        return max(getattr(self, name), _EPSILON)


@dataclass(frozen=True)
class TopDownSummary:
    """Per-benchmark summary across workloads — one Table II row's middle.

    ``per_category`` maps each category to its :class:`RatioSummary`
    (``mu_g``, ``sigma_g``, ``V``); ``mu_g_v`` is Equation 4's single
    sensitivity number.
    """

    n_workloads: int
    per_category: dict[str, RatioSummary]
    mu_g_v: float

    def mu_g(self, category: str) -> float:
        return self.per_category[category].mu_g

    def sigma_g(self, category: str) -> float:
        return self.per_category[category].sigma_g

    def variation(self, category: str) -> float:
        return self.per_category[category].variation


def summarize_topdown(vectors: Sequence[TopDownVector] | Iterable[TopDownVector]) -> TopDownSummary:
    """Summarize one benchmark's top-down vectors across its workloads.

    Implements the full Section V-B pipeline: per-category geometric
    mean (Eq. 1) and geometric standard deviation (Eq. 2), proportional
    variation (Eq. 3), then the geometric mean of the four variations
    (Eq. 4) as ``mu_g(V)``.
    """
    vecs = list(vectors)
    if not vecs:
        raise ValueError("summarize_topdown: need at least one vector")
    per_category: dict[str, RatioSummary] = {}
    for name in CATEGORIES:
        per_category[name] = RatioSummary([v.category(name) for v in vecs])
    mu_g_v = mu_g_of_variations(per_category[c].variation for c in CATEGORIES)
    return TopDownSummary(n_workloads=len(vecs), per_category=per_category, mu_g_v=mu_g_v)
