"""Core methodology: workloads, statistics, top-down and coverage summaries."""

from .artifacts import ArtifactStore, CaptureStore, decode_capture, encode_capture
from .cache import CacheStats, ResultCache, cache_key, capture_key, payload_digest
from .characterize import (
    BenchmarkCharacterization,
    assemble_characterization,
    characterize,
    characterize_suite,
)
from .coverage import CoverageProfile, CoverageSummary, summarize_coverage
from .engine import CellOutcome, CharacterizationEngine, default_workers
from .errors import (
    CacheCorruption,
    CellFailure,
    MachineMismatch,
    RegistrationError,
    ReproError,
    StudyError,
    UnknownScenarioError,
    VerificationError,
    WorkloadError,
)
from .reports import benchmark_report, execution_time_report
from .run import Run, RunResult, Session, SweepResult
from .trace import (
    CellSpan,
    RunSummary,
    TraceWriter,
    read_trace,
    summarize_trace,
    trace_spans,
)
from .registry import (
    REGISTRY,
    Descriptor,
    Registry,
    alberta_workloads,
    benchmark_ids,
    get_benchmark,
    get_generator,
    load_plugin,
)
from .validation import ValidationReport, validate_workload_set
from .stats import (
    RatioSummary,
    geometric_mean,
    geometric_std,
    method_variation,
    mu_g_of_variations,
    proportional_variation,
    summarize_ratio,
)
from .topdown import CATEGORIES, TopDownSummary, TopDownVector, summarize_topdown
from .workload import Workload, WorkloadKind, WorkloadSet

__all__ = [
    "BenchmarkCharacterization",
    "assemble_characterization",
    "characterize",
    "characterize_suite",
    "ArtifactStore",
    "CaptureStore",
    "encode_capture",
    "decode_capture",
    "CacheStats",
    "ResultCache",
    "cache_key",
    "capture_key",
    "payload_digest",
    "CellOutcome",
    "CharacterizationEngine",
    "default_workers",
    "ReproError",
    "WorkloadError",
    "CellFailure",
    "CacheCorruption",
    "VerificationError",
    "StudyError",
    "MachineMismatch",
    "UnknownScenarioError",
    "RegistrationError",
    "REGISTRY",
    "Descriptor",
    "Registry",
    "load_plugin",
    "Run",
    "RunResult",
    "Session",
    "SweepResult",
    "CellSpan",
    "RunSummary",
    "TraceWriter",
    "read_trace",
    "summarize_trace",
    "trace_spans",
    "benchmark_report",
    "execution_time_report",
    "alberta_workloads",
    "benchmark_ids",
    "get_benchmark",
    "get_generator",
    "ValidationReport",
    "validate_workload_set",
    "CoverageProfile",
    "CoverageSummary",
    "summarize_coverage",
    "RatioSummary",
    "geometric_mean",
    "geometric_std",
    "method_variation",
    "mu_g_of_variations",
    "proportional_variation",
    "summarize_ratio",
    "CATEGORIES",
    "TopDownSummary",
    "TopDownVector",
    "summarize_topdown",
    "Workload",
    "WorkloadKind",
    "WorkloadSet",
]
